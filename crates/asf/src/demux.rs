//! Parsing ASF bytes back into an [`AsfFile`] (the demuxer).

use crate::error::AsfError;
use crate::guid;
use crate::header::{FileProperties, StreamProperties};
use crate::index::AsfIndex;
use crate::io::Reader;
use crate::mux::AsfFile;
use crate::packet::DataPacket;
use crate::script::ScriptCommandList;

fn read_object<'a>(
    r: &mut Reader<'a>,
    context: &'static str,
) -> Result<(crate::guid::Guid, Reader<'a>), AsfError> {
    let g = r.guid(context)?;
    let size = r.u64(context)?;
    if size < 24 {
        return Err(AsfError::BadSize { context, size });
    }
    let body_len = (size - 24) as usize;
    if body_len > r.remaining() {
        return Err(AsfError::BadSize { context, size });
    }
    let body = r.slice(body_len, context)?;
    Ok((g, body))
}

/// Parses a complete ASF byte stream.
///
/// # Errors
///
/// Any [`AsfError`] variant describing the malformation; in particular,
/// packets referencing streams not declared in the header fail with
/// [`AsfError::UnknownStream`].
pub fn read_asf(bytes: &[u8]) -> Result<AsfFile, AsfError> {
    let mut r = Reader::new(bytes);

    // Header object.
    let (g, mut header) = read_object(&mut r, "header object")?;
    if g != guid::HEADER_OBJECT {
        return Err(AsfError::UnexpectedObject { expected: "header" });
    }
    let mut props: Option<FileProperties> = None;
    let mut streams = Vec::new();
    let mut script = ScriptCommandList::new();
    let mut drm = None;
    while !header.is_empty() {
        let (sg, mut body) = read_object(&mut header, "header sub-object")?;
        if sg == guid::FILE_PROPERTIES {
            props = Some(FileProperties::read(&mut body)?);
        } else if sg == guid::STREAM_PROPERTIES {
            streams.push(StreamProperties::read(&mut body)?);
        } else if sg == guid::SCRIPT_COMMAND {
            script = ScriptCommandList::read(&mut body)?;
        } else if sg == guid::DRM_OBJECT {
            drm = Some(crate::drm::DrmHeader::read(&mut body)?);
        }
        // Unknown sub-objects are skipped (forward compatibility).
    }
    let props = props.ok_or(AsfError::UnexpectedObject {
        expected: "file properties",
    })?;

    // Data object.
    let (g, mut data) = read_object(&mut r, "data object")?;
    if g != guid::DATA_OBJECT {
        return Err(AsfError::UnexpectedObject { expected: "data" });
    }
    let count = data.u32("packet count")?;
    let psize = props.packet_size;
    let mut packets = Vec::with_capacity(count.min(1 << 20) as usize);
    for _ in 0..count {
        let raw = data.bytes(psize as usize, "data packet")?;
        let p = DataPacket::read(raw, psize)?;
        for payload in &p.payloads {
            if !streams.iter().any(|s| s.number == payload.stream) {
                return Err(AsfError::UnknownStream(payload.stream));
            }
        }
        packets.push(p);
    }

    // Optional index object.
    let mut index = None;
    if !r.is_empty() {
        let (g, mut body) = read_object(&mut r, "index object")?;
        if g == guid::INDEX_OBJECT {
            index = Some(AsfIndex::read(&mut body)?);
        }
    }

    Ok(AsfFile {
        props,
        streams,
        script,
        drm,
        packets,
        index,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::StreamKind;
    use crate::mux::write_asf;
    use crate::packet::{MediaSample, Packetizer};

    fn minimal() -> AsfFile {
        let mut pk = Packetizer::new(128).unwrap();
        pk.push(&MediaSample::new(1, 0, vec![9; 10]));
        AsfFile {
            props: FileProperties {
                file_id: 1,
                created: 0,
                packet_size: 128,
                play_duration: 0,
                preroll: 0,
                broadcast: true,
                max_bitrate: 0,
            },
            streams: vec![StreamProperties {
                number: 1,
                kind: StreamKind::Video,
                codec: 4,
                bitrate: 1,
                name: "v".into(),
            }],
            script: ScriptCommandList::new(),
            drm: None,
            packets: pk.finish(),
            index: None,
        }
    }

    #[test]
    fn truncated_input_fails_cleanly() {
        let bytes = write_asf(&minimal()).unwrap();
        for cut in [0, 10, bytes.len() / 2, bytes.len() - 1] {
            let err = read_asf(&bytes[..cut]);
            assert!(err.is_err(), "cut at {cut} parsed");
        }
    }

    #[test]
    fn wrong_leading_object_rejected() {
        let mut bytes = write_asf(&minimal()).unwrap();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            read_asf(&bytes),
            Err(AsfError::UnexpectedObject { .. })
        ));
    }

    #[test]
    fn undeclared_stream_rejected() {
        let mut f = minimal();
        f.packets[0].payloads[0].stream = 42;
        let bytes = write_asf(&f).unwrap();
        assert_eq!(read_asf(&bytes).unwrap_err(), AsfError::UnknownStream(42));
    }

    #[test]
    fn empty_file_round_trips() {
        let mut f = minimal();
        f.packets.clear();
        let bytes = write_asf(&f).unwrap();
        let back = read_asf(&bytes).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn size_field_sanity_checked() {
        let mut bytes = write_asf(&minimal()).unwrap();
        // Corrupt the header object size to something absurd.
        bytes[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(read_asf(&bytes), Err(AsfError::BadSize { .. })));
    }
}
