//! Digital Rights Management (simulated).
//!
//! §2.1: DRM "is the technology for securing content and managing the
//! rights for its access. It is optional in authoring and mandatory for
//! rendering." Here it is a content scrambler: payload bytes are XOR-ed
//! with a keystream derived from a key, and the header records the key id
//! so a player can look up its [`License`]. This is **not** cryptography —
//! it reproduces the *workflow* (protected authoring, license check before
//! rendering) that the paper's stack had, nothing more.

use serde::{Deserialize, Serialize};

use crate::error::AsfError;
use crate::io::{Reader, Writer};

/// DRM header carried in the ASF header object.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DrmHeader {
    /// Identifier of the key the content is scrambled with.
    pub key_id: String,
    /// Verification tag: scramble of eight zero bytes, so a license can be
    /// checked without touching media data.
    pub probe: [u8; 8],
}

/// A playback license: key id plus the actual key.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct License {
    /// Which content key this license unlocks.
    pub key_id: String,
    /// The key material.
    pub key: u64,
}

impl License {
    /// Creates a license.
    pub fn new(key_id: impl Into<String>, key: u64) -> Self {
        Self {
            key_id: key_id.into(),
            key,
        }
    }
}

/// Deterministic keystream: an xorshift sequence seeded by a splitmix64
/// scramble of the key (so near-identical keys get unrelated streams).
fn keystream(key: u64, len: usize) -> impl Iterator<Item = u8> {
    let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let mut state = if z == 0 { 0x9E37_79B9_7F4A_7C15 } else { z };
    (0..len).map(move |_| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state & 0xff) as u8
    })
}

impl DrmHeader {
    /// Builds the header for content protected with `license`.
    pub fn for_license(license: &License) -> Self {
        let mut probe = [0u8; 8];
        for (p, k) in probe.iter_mut().zip(keystream(license.key, 8)) {
            *p ^= k;
        }
        Self {
            key_id: license.key_id.clone(),
            probe,
        }
    }

    /// Checks a license against this header.
    ///
    /// # Errors
    ///
    /// [`AsfError::LicenseRejected`] when the id or key does not match.
    pub fn verify(&self, license: &License) -> Result<(), AsfError> {
        let expected = DrmHeader::for_license(license);
        if license.key_id != self.key_id || expected.probe != self.probe {
            return Err(AsfError::LicenseRejected {
                key_id: self.key_id.clone(),
            });
        }
        Ok(())
    }

    pub(crate) fn write(&self, w: &mut Writer) {
        w.string(&self.key_id);
        w.bytes(&self.probe);
    }

    pub(crate) fn read(r: &mut Reader<'_>) -> Result<Self, AsfError> {
        let key_id = r.string("drm key id")?;
        let b = r.bytes(8, "drm probe")?;
        let mut probe = [0u8; 8];
        probe.copy_from_slice(b);
        Ok(Self { key_id, probe })
    }
}

/// Scrambles (or, being XOR, unscrambles) `data` in place with `key`.
pub fn scramble_in_place(key: u64, data: &mut [u8]) {
    let len = data.len();
    for (b, k) in data.iter_mut().zip(keystream(key, len)) {
        *b ^= k;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scramble_is_involutive() {
        let original = b"the quick brown fox".to_vec();
        let mut data = original.clone();
        scramble_in_place(42, &mut data);
        assert_ne!(data, original);
        scramble_in_place(42, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn wrong_key_does_not_restore() {
        let original = b"lecture".to_vec();
        let mut data = original.clone();
        scramble_in_place(1, &mut data);
        scramble_in_place(2, &mut data);
        assert_ne!(data, original);
    }

    #[test]
    fn license_verification() {
        let lic = License::new("course-101", 777);
        let hdr = DrmHeader::for_license(&lic);
        assert!(hdr.verify(&lic).is_ok());
        assert!(hdr.verify(&License::new("course-101", 778)).is_err());
        assert!(hdr.verify(&License::new("other", 777)).is_err());
    }

    #[test]
    fn header_round_trip() {
        let hdr = DrmHeader::for_license(&License::new("k", 9));
        let mut w = Writer::new();
        hdr.write(&mut w);
        let v = w.into_vec();
        let mut r = Reader::new(&v);
        assert_eq!(DrmHeader::read(&mut r).unwrap(), hdr);
    }
}
