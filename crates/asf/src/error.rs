//! Error type for parsing and building ASF content.

use std::error::Error;
use std::fmt;

/// Errors raised while reading or writing ASF content.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AsfError {
    /// The input ended before an object or field was complete.
    UnexpectedEof {
        /// What was being parsed.
        context: &'static str,
    },
    /// An object GUID did not match what the grammar requires here.
    UnexpectedObject {
        /// What was expected.
        expected: &'static str,
    },
    /// A declared size is impossible (too small for its header, or larger
    /// than the remaining input).
    BadSize {
        /// What was being parsed.
        context: &'static str,
        /// The offending size.
        size: u64,
    },
    /// A string field was not valid UTF-8.
    BadString,
    /// A stream number appeared in a packet but was never declared in the
    /// header.
    UnknownStream(u16),
    /// A sample was larger than the declared packet size allows.
    SampleTooLarge {
        /// Bytes in the sample.
        sample: usize,
        /// Usable payload bytes per packet.
        capacity: usize,
    },
    /// Packet size too small to hold even one payload header.
    PacketSizeTooSmall(u32),
    /// DRM license missing or wrong for protected content.
    LicenseRejected {
        /// Key id the content was protected with.
        key_id: String,
    },
    /// A fragment arrived that is inconsistent with fragments seen before.
    FragmentMismatch {
        /// Stream of the fragment.
        stream: u16,
        /// Media object id of the fragment.
        object: u32,
    },
}

impl fmt::Display for AsfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsfError::UnexpectedEof { context } => {
                write!(f, "unexpected end of input while reading {context}")
            }
            AsfError::UnexpectedObject { expected } => {
                write!(f, "expected {expected} object")
            }
            AsfError::BadSize { context, size } => {
                write!(f, "impossible size {size} for {context}")
            }
            AsfError::BadString => write!(f, "string field is not valid utf-8"),
            AsfError::UnknownStream(s) => write!(f, "packet references undeclared stream {s}"),
            AsfError::SampleTooLarge { sample, capacity } => write!(
                f,
                "sample of {sample} bytes cannot fit fragment capacity {capacity}"
            ),
            AsfError::PacketSizeTooSmall(s) => {
                write!(f, "packet size {s} cannot hold a payload header")
            }
            AsfError::LicenseRejected { key_id } => {
                write!(f, "license rejected for key id \"{key_id}\"")
            }
            AsfError::FragmentMismatch { stream, object } => write!(
                f,
                "inconsistent fragment for stream {stream} object {object}"
            ),
        }
    }
}

impl Error for AsfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase() {
        let e = AsfError::UnexpectedEof { context: "packet" };
        assert!(e.to_string().starts_with("unexpected"));
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<AsfError>();
    }
}
