//! 16-byte object identifiers (the ASF object GUIDs).

use std::fmt;

use serde::{Deserialize, Serialize};

/// A 16-byte object tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Guid(pub [u8; 16]);

impl Guid {
    /// Builds a GUID from a short ASCII mnemonic, zero-padded.
    ///
    /// # Panics
    ///
    /// Panics if the mnemonic exceeds 16 bytes.
    pub const fn from_tag(tag: &str) -> Self {
        let bytes = tag.as_bytes();
        assert!(bytes.len() <= 16, "tag too long");
        let mut out = [0u8; 16];
        let mut i = 0;
        while i < bytes.len() {
            out[i] = bytes[i];
            i += 1;
        }
        Guid(out)
    }
}

impl fmt::Display for Guid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

/// Top-level header object (contains all metadata sub-objects).
pub const HEADER_OBJECT: Guid = Guid::from_tag("WMPS.HEADER");
/// File-properties sub-object.
pub const FILE_PROPERTIES: Guid = Guid::from_tag("WMPS.FILEPROP");
/// Stream-properties sub-object (one per stream).
pub const STREAM_PROPERTIES: Guid = Guid::from_tag("WMPS.STREAM");
/// Script-command sub-object.
pub const SCRIPT_COMMAND: Guid = Guid::from_tag("WMPS.SCRIPT");
/// DRM sub-object.
pub const DRM_OBJECT: Guid = Guid::from_tag("WMPS.DRM");
/// Data object holding the packets.
pub const DATA_OBJECT: Guid = Guid::from_tag("WMPS.DATA");
/// Seek-index object.
pub const INDEX_OBJECT: Guid = Guid::from_tag("WMPS.INDEX");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_distinct() {
        let all = [
            HEADER_OBJECT,
            FILE_PROPERTIES,
            STREAM_PROPERTIES,
            SCRIPT_COMMAND,
            DRM_OBJECT,
            DATA_OBJECT,
            INDEX_OBJECT,
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn display_is_hex() {
        let g = Guid::from_tag("A");
        let s = g.to_string();
        assert_eq!(s.len(), 32);
        assert!(s.starts_with("41"));
    }
}
