//! File-properties and stream-properties objects.

use serde::{Deserialize, Serialize};

use crate::error::AsfError;
use crate::io::{Reader, Writer};

/// What a stream carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum StreamKind {
    /// Compressed audio samples.
    Audio,
    /// Compressed video frames.
    Video,
    /// Still images (the slide stream).
    Image,
    /// Script commands carried in-band (rare; normally in the header).
    Script,
}

impl StreamKind {
    fn to_wire(self) -> u8 {
        match self {
            StreamKind::Audio => 1,
            StreamKind::Video => 2,
            StreamKind::Image => 3,
            StreamKind::Script => 4,
        }
    }

    fn from_wire(v: u8) -> Result<Self, AsfError> {
        match v {
            1 => Ok(StreamKind::Audio),
            2 => Ok(StreamKind::Video),
            3 => Ok(StreamKind::Image),
            4 => Ok(StreamKind::Script),
            _ => Err(AsfError::UnexpectedObject {
                expected: "stream kind 1..=4",
            }),
        }
    }
}

/// The file-properties object: global facts about the content.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileProperties {
    /// Random file id chosen by the encoder.
    pub file_id: u64,
    /// Creation time in ticks (simulation wall clock).
    pub created: u64,
    /// Fixed size of every data packet, in bytes.
    pub packet_size: u32,
    /// Total play duration in ticks (0 while a live broadcast is running).
    pub play_duration: u64,
    /// Client preroll: how much to buffer before starting playback, ticks.
    pub preroll: u64,
    /// `true` while the content is an in-progress live broadcast.
    pub broadcast: bool,
    /// Peak bitrate of all streams combined, bit/s.
    pub max_bitrate: u32,
}

impl FileProperties {
    pub(crate) fn write(&self, w: &mut Writer) {
        w.u64(self.file_id);
        w.u64(self.created);
        w.u32(self.packet_size);
        w.u64(self.play_duration);
        w.u64(self.preroll);
        w.u8(u8::from(self.broadcast));
        w.u32(self.max_bitrate);
    }

    pub(crate) fn read(r: &mut Reader<'_>) -> Result<Self, AsfError> {
        Ok(Self {
            file_id: r.u64("file id")?,
            created: r.u64("creation time")?,
            packet_size: r.u32("packet size")?,
            play_duration: r.u64("play duration")?,
            preroll: r.u64("preroll")?,
            broadcast: r.u8("broadcast flag")? != 0,
            max_bitrate: r.u32("max bitrate")?,
        })
    }
}

/// Per-stream metadata.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamProperties {
    /// Stream number referenced by packet payloads (1-based by convention).
    pub number: u16,
    /// Payload kind.
    pub kind: StreamKind,
    /// Codec identifier (wire value of `lod_media::CodecId`, but the
    /// container does not interpret it).
    pub codec: u16,
    /// Average bitrate in bit/s.
    pub bitrate: u32,
    /// Human-readable stream name.
    pub name: String,
}

impl StreamProperties {
    pub(crate) fn write(&self, w: &mut Writer) {
        w.u16(self.number);
        w.u8(self.kind.to_wire());
        w.u16(self.codec);
        w.u32(self.bitrate);
        w.string(&self.name);
    }

    pub(crate) fn read(r: &mut Reader<'_>) -> Result<Self, AsfError> {
        Ok(Self {
            number: r.u16("stream number")?,
            kind: StreamKind::from_wire(r.u8("stream kind")?)?,
            codec: r.u16("codec id")?,
            bitrate: r.u32("stream bitrate")?,
            name: r.string("stream name")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_properties_round_trip() {
        let p = FileProperties {
            file_id: 0xDEAD_BEEF,
            created: 123,
            packet_size: 1500,
            play_duration: 9_999_999,
            preroll: 30_000_000,
            broadcast: true,
            max_bitrate: 1_000_000,
        };
        let mut w = Writer::new();
        p.write(&mut w);
        let v = w.into_vec();
        let mut r = Reader::new(&v);
        assert_eq!(FileProperties::read(&mut r).unwrap(), p);
        assert!(r.is_empty());
    }

    #[test]
    fn stream_properties_round_trip() {
        let s = StreamProperties {
            number: 2,
            kind: StreamKind::Video,
            codec: 4,
            bitrate: 300_000,
            name: "camera".into(),
        };
        let mut w = Writer::new();
        s.write(&mut w);
        let v = w.into_vec();
        let mut r = Reader::new(&v);
        assert_eq!(StreamProperties::read(&mut r).unwrap(), s);
    }

    #[test]
    fn bad_kind_rejected() {
        let mut w = Writer::new();
        w.u16(1);
        w.u8(99);
        let v = w.into_vec();
        let mut r = Reader::new(&v);
        assert!(StreamProperties::read(&mut r).is_err());
    }

    #[test]
    fn kinds_round_trip() {
        for k in [
            StreamKind::Audio,
            StreamKind::Video,
            StreamKind::Image,
            StreamKind::Script,
        ] {
            assert_eq!(StreamKind::from_wire(k.to_wire()).unwrap(), k);
        }
    }
}
