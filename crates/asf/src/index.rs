//! The seek-index object (the paper's "ASF Indexer" output).

use serde::{Deserialize, Serialize};

use crate::error::AsfError;
use crate::io::{Reader, Writer};

/// Maps presentation times to packet numbers for efficient seeking.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AsfIndex {
    /// `(presentation time, packet number)` pairs, sorted by time.
    entries: Vec<(u64, u32)>,
}

impl AsfIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an index from `(time, packet)` pairs (sorted internally).
    pub fn from_entries(mut entries: Vec<(u64, u32)>) -> Self {
        entries.sort_unstable();
        Self { entries }
    }

    /// Adds an entry.
    pub fn push(&mut self, time: u64, packet: u32) {
        let at = self.entries.partition_point(|&(t, _)| t <= time);
        self.entries.insert(at, (time, packet));
    }

    /// The entries in time order.
    pub fn entries(&self) -> &[(u64, u32)] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The packet from which playback at `time` should start: the last
    /// entry at or before `time` (packet 0 when the index starts later).
    pub fn packet_for(&self, time: u64) -> u32 {
        let at = self.entries.partition_point(|&(t, _)| t <= time);
        if at == 0 {
            0
        } else {
            self.entries[at - 1].1
        }
    }

    pub(crate) fn write(&self, w: &mut Writer) {
        w.u32(self.entries.len() as u32);
        for &(t, p) in &self.entries {
            w.u64(t);
            w.u32(p);
        }
    }

    pub(crate) fn read(r: &mut Reader<'_>) -> Result<Self, AsfError> {
        let n = r.u32("index entry count")?;
        let mut entries = Vec::with_capacity(n.min(1 << 20) as usize);
        for _ in 0..n {
            let t = r.u64("index time")?;
            let p = r.u32("index packet")?;
            entries.push((t, p));
        }
        Ok(Self::from_entries(entries))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seek_finds_floor_entry() {
        let idx = AsfIndex::from_entries(vec![(100, 5), (0, 0), (200, 12)]);
        assert_eq!(idx.packet_for(0), 0);
        assert_eq!(idx.packet_for(150), 5);
        assert_eq!(idx.packet_for(200), 12);
        assert_eq!(idx.packet_for(99_999), 12);
    }

    #[test]
    fn before_first_entry_is_packet_zero() {
        let idx = AsfIndex::from_entries(vec![(100, 5)]);
        assert_eq!(idx.packet_for(50), 0);
    }

    #[test]
    fn wire_round_trip() {
        let idx = AsfIndex::from_entries(vec![(0, 0), (500, 3), (1000, 9)]);
        let mut w = Writer::new();
        idx.write(&mut w);
        let v = w.into_vec();
        let mut r = Reader::new(&v);
        assert_eq!(AsfIndex::read(&mut r).unwrap(), idx);
    }

    #[test]
    fn push_keeps_sorted() {
        let mut idx = AsfIndex::new();
        idx.push(500, 2);
        idx.push(100, 1);
        idx.push(900, 3);
        let times: Vec<u64> = idx.entries().iter().map(|e| e.0).collect();
        assert_eq!(times, [100, 500, 900]);
    }
}
