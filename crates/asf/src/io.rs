//! Little-endian byte reader/writer helpers (crate-internal).

use bytes::{BufMut, BytesMut};

use crate::error::AsfError;
use crate::guid::Guid;

/// Append-only little-endian writer.
#[derive(Debug, Default)]
pub(crate) struct Writer {
    buf: BytesMut,
}

impl Writer {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    pub(crate) fn u16(&mut self, v: u16) {
        self.buf.put_u16_le(v);
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    pub(crate) fn guid(&mut self, g: Guid) {
        self.buf.put_slice(&g.0);
    }

    pub(crate) fn bytes(&mut self, b: &[u8]) {
        self.buf.put_slice(b);
    }

    /// Length-prefixed (u16) UTF-8 string.
    ///
    /// # Panics
    ///
    /// Panics if the string exceeds 65535 bytes.
    pub(crate) fn string(&mut self, s: &str) {
        let b = s.as_bytes();
        assert!(b.len() <= usize::from(u16::MAX), "string too long for wire");
        self.u16(b.len() as u16);
        self.bytes(b);
    }

    pub(crate) fn len(&self) -> usize {
        self.buf.len()
    }

    pub(crate) fn into_vec(self) -> Vec<u8> {
        self.buf.to_vec()
    }
}

/// Cursor-style little-endian reader with EOF checking.
#[derive(Debug)]
pub(crate) struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], AsfError> {
        if self.remaining() < n {
            return Err(AsfError::UnexpectedEof { context });
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self, context: &'static str) -> Result<u8, AsfError> {
        Ok(self.take(1, context)?[0])
    }

    pub(crate) fn u16(&mut self, context: &'static str) -> Result<u16, AsfError> {
        let b = self.take(2, context)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    pub(crate) fn u32(&mut self, context: &'static str) -> Result<u32, AsfError> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self, context: &'static str) -> Result<u64, AsfError> {
        let b = self.take(8, context)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub(crate) fn guid(&mut self, context: &'static str) -> Result<Guid, AsfError> {
        let b = self.take(16, context)?;
        let mut out = [0u8; 16];
        out.copy_from_slice(b);
        Ok(Guid(out))
    }

    pub(crate) fn bytes(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], AsfError> {
        self.take(n, context)
    }

    pub(crate) fn string(&mut self, context: &'static str) -> Result<String, AsfError> {
        let len = self.u16(context)? as usize;
        let b = self.take(len, context)?;
        String::from_utf8(b.to_vec()).map_err(|_| AsfError::BadString)
    }

    /// Sub-reader over the next `n` bytes.
    pub(crate) fn slice(
        &mut self,
        n: usize,
        context: &'static str,
    ) -> Result<Reader<'a>, AsfError> {
        Ok(Reader::new(self.take(n, context)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let mut w = Writer::new();
        w.u8(7);
        w.u16(300);
        w.u32(70_000);
        w.u64(u64::MAX - 1);
        w.string("héllo");
        let v = w.into_vec();
        let mut r = Reader::new(&v);
        assert_eq!(r.u8("t").unwrap(), 7);
        assert_eq!(r.u16("t").unwrap(), 300);
        assert_eq!(r.u32("t").unwrap(), 70_000);
        assert_eq!(r.u64("t").unwrap(), u64::MAX - 1);
        assert_eq!(r.string("t").unwrap(), "héllo");
        assert!(r.is_empty());
    }

    #[test]
    fn eof_detected() {
        let v = vec![1u8, 2];
        let mut r = Reader::new(&v);
        assert!(matches!(
            r.u32("field"),
            Err(AsfError::UnexpectedEof { context: "field" })
        ));
    }

    #[test]
    fn bad_utf8_rejected() {
        let mut w = Writer::new();
        w.u16(2);
        w.bytes(&[0xff, 0xfe]);
        let v = w.into_vec();
        let mut r = Reader::new(&v);
        assert_eq!(r.string("t").unwrap_err(), AsfError::BadString);
    }

    #[test]
    fn sub_reader_bounds() {
        let mut w = Writer::new();
        w.u32(1);
        w.u32(2);
        let v = w.into_vec();
        let mut r = Reader::new(&v);
        let mut sub = r.slice(4, "t").unwrap();
        assert_eq!(sub.u32("t").unwrap(), 1);
        assert!(sub.is_empty());
        assert_eq!(r.u32("t").unwrap(), 2);
    }
}
