//! Whole-file model and serialization (the muxer).

use serde::{Deserialize, Serialize};

use crate::drm::{scramble_in_place, DrmHeader, License};
use crate::error::AsfError;
use crate::guid;
use crate::header::{FileProperties, StreamProperties};
use crate::index::AsfIndex;
use crate::io::Writer;
use crate::packet::DataPacket;
use crate::script::ScriptCommandList;

/// A complete piece of ASF content: header metadata, data packets, and an
/// optional seek index. This is what the encoder produces, the server
/// streams, and the player consumes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AsfFile {
    /// Global file properties.
    pub props: FileProperties,
    /// Stream declarations.
    pub streams: Vec<StreamProperties>,
    /// Script commands (slide flips, annotations, captions, URLs).
    pub script: ScriptCommandList,
    /// DRM header when the content is protected.
    pub drm: Option<DrmHeader>,
    /// The data packets in send order.
    pub packets: Vec<DataPacket>,
    /// Optional seek index.
    pub index: Option<AsfIndex>,
}

impl AsfFile {
    /// Looks up a stream declaration by number.
    pub fn stream(&self, number: u16) -> Option<&StreamProperties> {
        self.streams.iter().find(|s| s.number == number)
    }

    /// Latest payload presentation time across all packets (the observable
    /// content duration).
    pub fn last_presentation_time(&self) -> u64 {
        self.packets
            .iter()
            .flat_map(|p| &p.payloads)
            .map(|p| p.pres_time)
            .max()
            .unwrap_or(0)
    }

    /// Builds a seek index with roughly one entry per `interval` ticks and
    /// stores it in the file (the "ASF Indexer" command-line utility of
    /// §2.1).
    pub fn build_index(&mut self, interval: u64) {
        let mut idx = AsfIndex::new();
        let mut next_mark = 0u64;
        for (i, p) in self.packets.iter().enumerate() {
            if p.send_time >= next_mark {
                idx.push(p.send_time, i as u32);
                next_mark = p.send_time.saturating_add(interval.max(1));
            }
        }
        self.index = Some(idx);
    }

    /// Scrambles every payload with `license` and records the DRM header.
    ///
    /// Calling it twice restores plaintext but leaves the header — don't.
    pub fn protect(&mut self, license: &License) {
        scramble_payloads(license, &mut self.packets);
        self.drm = Some(DrmHeader::for_license(license));
    }

    /// Verifies `license` and unscrambles the content. No-op for
    /// unprotected content.
    ///
    /// # Errors
    ///
    /// [`AsfError::LicenseRejected`] when the license does not match.
    pub fn unprotect(&mut self, license: &License) -> Result<(), AsfError> {
        let Some(drm) = &self.drm else {
            return Ok(());
        };
        drm.verify(license)?;
        scramble_payloads(license, &mut self.packets);
        self.drm = None;
        Ok(())
    }

    /// Total serialized size in bytes (header + data + index).
    pub fn wire_size(&self) -> usize {
        write_asf(self).map(|v| v.len()).unwrap_or(0)
    }
}

/// XOR-scrambles every payload with the license key. Payload data is
/// immutable shared [`bytes::Bytes`], so each payload gets fresh backing
/// storage — fine off the hot path, and it keeps protected content from
/// ever aliasing the plaintext a cache or reader may still hold.
fn scramble_payloads(license: &License, packets: &mut [DataPacket]) {
    for packet in packets {
        for payload in &mut packet.payloads {
            let mut buf = payload.data.to_vec();
            scramble_in_place(license.key, &mut buf);
            payload.data = buf.into();
        }
    }
}

fn write_object(out: &mut Writer, g: crate::guid::Guid, body: Writer) {
    out.guid(g);
    out.u64(24 + body.len() as u64);
    out.bytes(&body.into_vec());
}

/// Serializes `file` to bytes.
///
/// # Errors
///
/// [`AsfError::BadSize`] if any packet's payloads exceed the declared
/// packet size.
pub fn write_asf(file: &AsfFile) -> Result<Vec<u8>, AsfError> {
    let mut out = Writer::new();

    // Header object: nested sub-objects.
    let mut header = Writer::new();
    {
        let mut body = Writer::new();
        file.props.write(&mut body);
        write_object(&mut header, guid::FILE_PROPERTIES, body);
    }
    for s in &file.streams {
        let mut body = Writer::new();
        s.write(&mut body);
        write_object(&mut header, guid::STREAM_PROPERTIES, body);
    }
    if !file.script.is_empty() {
        let mut body = Writer::new();
        file.script.write(&mut body);
        write_object(&mut header, guid::SCRIPT_COMMAND, body);
    }
    if let Some(drm) = &file.drm {
        let mut body = Writer::new();
        drm.write(&mut body);
        write_object(&mut header, guid::DRM_OBJECT, body);
    }
    write_object(&mut out, guid::HEADER_OBJECT, header);

    // Data object.
    let mut data = Writer::new();
    data.u32(file.packets.len() as u32);
    for p in &file.packets {
        data.bytes(&p.write(file.props.packet_size)?);
    }
    write_object(&mut out, guid::DATA_OBJECT, data);

    // Index object.
    if let Some(idx) = &file.index {
        let mut body = Writer::new();
        idx.write(&mut body);
        write_object(&mut out, guid::INDEX_OBJECT, body);
    }

    Ok(out.into_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demux::read_asf;
    use crate::header::StreamKind;
    use crate::packet::{MediaSample, Packetizer};
    use crate::script::ScriptCommand;

    pub(crate) fn sample_file() -> AsfFile {
        let mut pk = Packetizer::new(200).unwrap();
        pk.push(&MediaSample::new(1, 0, vec![1; 300]));
        pk.push(&MediaSample::new(2, 50, vec![2; 80]));
        pk.push(&MediaSample::new(1, 100, vec![3; 20]));
        let packets = pk.finish();
        AsfFile {
            props: FileProperties {
                file_id: 7,
                created: 1_000,
                packet_size: 200,
                play_duration: 100,
                preroll: 10,
                broadcast: false,
                max_bitrate: 64_000,
            },
            streams: vec![
                StreamProperties {
                    number: 1,
                    kind: StreamKind::Video,
                    codec: 4,
                    bitrate: 48_000,
                    name: "camera".into(),
                },
                StreamProperties {
                    number: 2,
                    kind: StreamKind::Audio,
                    codec: 1,
                    bitrate: 16_000,
                    name: "mic".into(),
                },
            ],
            script: [
                ScriptCommand::new(0, "slide", "s1.png"),
                ScriptCommand::new(60, "slide", "s2.png"),
            ]
            .into_iter()
            .collect(),
            drm: None,
            packets,
            index: None,
        }
    }

    #[test]
    fn full_round_trip() {
        let mut f = sample_file();
        f.build_index(50);
        let bytes = write_asf(&f).unwrap();
        let back = read_asf(&bytes).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn protect_then_unprotect_round_trips() {
        let f = sample_file();
        let mut g = f.clone();
        let lic = License::new("cs101", 0xABCD);
        g.protect(&lic);
        assert_ne!(g.packets, f.packets);
        // Also survives the wire.
        let bytes = write_asf(&g).unwrap();
        let mut back = read_asf(&bytes).unwrap();
        back.unprotect(&lic).unwrap();
        assert_eq!(back.packets, f.packets);
        assert!(back.drm.is_none());
    }

    #[test]
    fn wrong_license_rejected_and_content_untouched() {
        let mut f = sample_file();
        f.protect(&License::new("cs101", 1));
        let scrambled = f.packets.clone();
        let err = f.unprotect(&License::new("cs101", 2)).unwrap_err();
        assert!(matches!(err, AsfError::LicenseRejected { .. }));
        assert_eq!(f.packets, scrambled);
    }

    #[test]
    fn last_presentation_time_scans_payloads() {
        let f = sample_file();
        assert_eq!(f.last_presentation_time(), 100);
    }

    #[test]
    fn index_entries_cover_packets() {
        let mut f = sample_file();
        f.build_index(1);
        let idx = f.index.as_ref().unwrap();
        assert!(!idx.is_empty());
        assert_eq!(idx.packet_for(0), 0);
    }

    #[test]
    fn stream_lookup() {
        let f = sample_file();
        assert_eq!(f.stream(2).unwrap().name, "mic");
        assert!(f.stream(9).is_none());
    }
}
