//! Fixed-size data packets, payload fragmentation and reassembly.
//!
//! ASF streams media "in packets over a network" (§2.1): every data packet
//! has the same size (declared in the file properties), and large media
//! samples are split across packets as *payload fragments*. The
//! [`Packetizer`] performs the split; the [`Reassembler`] undoes it on the
//! receiving side, tolerating packet loss (incomplete samples are simply
//! never emitted) and out-of-order arrival.

use std::collections::HashMap;

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use crate::error::AsfError;
use crate::io::{Reader, Writer};

/// Wire size of a packet header: send time (8) + payload count (1).
pub const PACKET_HEADER_BYTES: usize = 9;
/// Wire size of a payload header: stream (2) + object id (4) + offset (4)
/// + total (4) + presentation time (8) + length (2).
pub const PAYLOAD_HEADER_BYTES: usize = 24;

/// A complete media sample handed to the packetizer / produced by the
/// reassembler.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MediaSample {
    /// Stream the sample belongs to.
    pub stream: u16,
    /// Presentation time in ticks.
    pub pres_time: u64,
    /// Encoded bytes (ref-counted: fragments produced by the
    /// [`Packetizer`] are zero-copy views of this buffer).
    pub data: Bytes,
}

impl MediaSample {
    /// Creates a sample. A `Vec<u8>` converts without copying.
    pub fn new(stream: u16, pres_time: u64, data: impl Into<Bytes>) -> Self {
        Self {
            stream,
            pres_time,
            data: data.into(),
        }
    }
}

/// One payload fragment inside a packet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Payload {
    /// Stream number.
    pub stream: u16,
    /// Media-object id: which sample of the stream this fragment belongs to.
    pub object_id: u32,
    /// Byte offset of this fragment within the sample.
    pub offset: u32,
    /// Total byte length of the sample.
    pub total: u32,
    /// Presentation time of the sample.
    pub pres_time: u64,
    /// The fragment bytes: a zero-copy view of the sample's backing
    /// buffer, shared (not duplicated) by caches and fan-out readers.
    pub data: Bytes,
}

/// A fixed-size data packet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataPacket {
    /// Send time in ticks: when the pacer should put the packet on the wire.
    pub send_time: u64,
    /// The payload fragments.
    pub payloads: Vec<Payload>,
}

impl DataPacket {
    /// Serializes to exactly `packet_size` bytes (zero padding at the end).
    ///
    /// # Errors
    ///
    /// [`AsfError::BadSize`] if the payloads do not fit in `packet_size`.
    pub fn write(&self, packet_size: u32) -> Result<Vec<u8>, AsfError> {
        let mut w = Writer::new();
        w.u64(self.send_time);
        w.u8(self.payloads.len() as u8);
        for p in &self.payloads {
            w.u16(p.stream);
            w.u32(p.object_id);
            w.u32(p.offset);
            w.u32(p.total);
            w.u64(p.pres_time);
            w.u16(p.data.len() as u16);
            w.bytes(&p.data);
        }
        if w.len() > packet_size as usize {
            return Err(AsfError::BadSize {
                context: "data packet payloads",
                size: w.len() as u64,
            });
        }
        let mut v = w.into_vec();
        v.resize(packet_size as usize, 0);
        Ok(v)
    }

    /// Parses one packet of exactly `packet_size` bytes.
    ///
    /// # Errors
    ///
    /// [`AsfError::UnexpectedEof`] on truncated input or a payload running
    /// past the packet end.
    pub fn read(bytes: &[u8], packet_size: u32) -> Result<Self, AsfError> {
        if bytes.len() != packet_size as usize {
            return Err(AsfError::BadSize {
                context: "data packet",
                size: bytes.len() as u64,
            });
        }
        let mut r = Reader::new(bytes);
        let send_time = r.u64("packet send time")?;
        let count = r.u8("payload count")?;
        let mut payloads = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let stream = r.u16("payload stream")?;
            let object_id = r.u32("payload object id")?;
            let offset = r.u32("payload offset")?;
            let total = r.u32("payload total")?;
            let pres_time = r.u64("payload presentation time")?;
            let len = r.u16("payload length")? as usize;
            let data = Bytes::copy_from_slice(r.bytes(len, "payload data")?);
            payloads.push(Payload {
                stream,
                object_id,
                offset,
                total,
                pres_time,
                data,
            });
        }
        Ok(Self {
            send_time,
            payloads,
        })
    }

    /// Sum of payload byte lengths (excludes headers and padding).
    pub fn media_bytes(&self) -> usize {
        self.payloads.iter().map(|p| p.data.len()).sum()
    }
}

/// Splits media samples into fixed-size packets.
#[derive(Debug)]
pub struct Packetizer {
    packet_size: u32,
    next_object: HashMap<u16, u32>,
    current: Vec<Payload>,
    current_bytes: usize,
    current_first_time: Option<u64>,
    done: Vec<DataPacket>,
}

impl Packetizer {
    /// Creates a packetizer for the given fixed packet size.
    ///
    /// # Errors
    ///
    /// [`AsfError::PacketSizeTooSmall`] when a packet could not hold even a
    /// single one-byte fragment.
    pub fn new(packet_size: u32) -> Result<Self, AsfError> {
        if (packet_size as usize) < PACKET_HEADER_BYTES + PAYLOAD_HEADER_BYTES + 1 {
            return Err(AsfError::PacketSizeTooSmall(packet_size));
        }
        Ok(Self {
            packet_size,
            next_object: HashMap::new(),
            current: Vec::new(),
            current_bytes: PACKET_HEADER_BYTES,
            current_first_time: None,
            done: Vec::new(),
        })
    }

    /// The fixed packet size.
    pub fn packet_size(&self) -> u32 {
        self.packet_size
    }

    /// Adds a sample, fragmenting as needed. Samples should be pushed in
    /// presentation-time order per stream (the reassembler does not require
    /// it, but players assume monotone object ids mean monotone time).
    pub fn push(&mut self, sample: &MediaSample) {
        let object_id = {
            let ctr = self.next_object.entry(sample.stream).or_insert(0);
            let id = *ctr;
            *ctr += 1;
            id
        };
        let total = sample.data.len() as u32;
        let mut offset = 0usize;
        // Zero-length samples still emit one empty fragment (markers).
        loop {
            let space = self.packet_size as usize - self.current_bytes;
            if space < PAYLOAD_HEADER_BYTES + 1 {
                self.flush_packet();
                continue;
            }
            let chunk = (sample.data.len() - offset)
                .min(space - PAYLOAD_HEADER_BYTES)
                .min(u16::MAX as usize);
            self.current.push(Payload {
                stream: sample.stream,
                object_id,
                offset: offset as u32,
                total,
                pres_time: sample.pres_time,
                data: sample.data.slice(offset..offset + chunk),
            });
            self.current_bytes += PAYLOAD_HEADER_BYTES + chunk;
            self.current_first_time.get_or_insert(sample.pres_time);
            offset += chunk;
            if offset >= sample.data.len() {
                break;
            }
        }
    }

    fn flush_packet(&mut self) {
        if self.current.is_empty() {
            return;
        }
        let send_time = self.current_first_time.take().unwrap_or(0);
        self.done.push(DataPacket {
            send_time,
            payloads: std::mem::take(&mut self.current),
        });
        self.current_bytes = PACKET_HEADER_BYTES;
    }

    /// Packets completed so far (drains them).
    pub fn take_completed(&mut self) -> Vec<DataPacket> {
        std::mem::take(&mut self.done)
    }

    /// Flushes any partial packet and returns everything.
    pub fn finish(mut self) -> Vec<DataPacket> {
        self.flush_packet();
        self.done
    }
}

/// Rebuilds media samples from packets (loss- and reorder-tolerant).
#[derive(Debug, Default)]
pub struct Reassembler {
    partial: HashMap<(u16, u32), PartialSample>,
    finished: std::collections::HashSet<(u16, u32)>,
    complete: Vec<MediaSample>,
}

#[derive(Debug)]
struct PartialSample {
    pres_time: u64,
    total: u32,
    received: u32,
    data: Vec<u8>,
    seen: Vec<(u32, u32)>, // (offset, len) received, for duplicate checks
}

impl Reassembler {
    /// An empty reassembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one packet's payloads.
    ///
    /// # Errors
    ///
    /// [`AsfError::FragmentMismatch`] when a fragment contradicts earlier
    /// fragments of the same object (different total or overlapping range
    /// with different content length bookkeeping).
    pub fn push_packet(&mut self, packet: &DataPacket) -> Result<(), AsfError> {
        for p in &packet.payloads {
            self.push_payload(p)?;
        }
        Ok(())
    }

    fn push_payload(&mut self, p: &Payload) -> Result<(), AsfError> {
        let key = (p.stream, p.object_id);
        if self.finished.contains(&key) {
            // Late or duplicate fragment of an already-delivered sample.
            return Ok(());
        }
        let entry = self.partial.entry(key).or_insert_with(|| PartialSample {
            pres_time: p.pres_time,
            total: p.total,
            received: 0,
            data: vec![0; p.total as usize],
            seen: Vec::new(),
        });
        if entry.total != p.total || entry.pres_time != p.pres_time {
            return Err(AsfError::FragmentMismatch {
                stream: p.stream,
                object: p.object_id,
            });
        }
        let end = p.offset as usize + p.data.len();
        if end > entry.data.len() {
            return Err(AsfError::FragmentMismatch {
                stream: p.stream,
                object: p.object_id,
            });
        }
        // Ignore exact duplicates (retransmission); reject overlaps.
        if entry.seen.contains(&(p.offset, p.data.len() as u32)) {
            return Ok(());
        }
        if entry
            .seen
            .iter()
            .any(|&(o, l)| p.offset < o + l && o < p.offset + p.data.len() as u32)
        {
            return Err(AsfError::FragmentMismatch {
                stream: p.stream,
                object: p.object_id,
            });
        }
        entry.data[p.offset as usize..end].copy_from_slice(&p.data);
        entry.seen.push((p.offset, p.data.len() as u32));
        entry.received += p.data.len() as u32;
        if entry.received >= entry.total {
            let done = self.partial.remove(&key).expect("entry exists");
            self.finished.insert(key);
            self.complete.push(MediaSample {
                stream: key.0,
                pres_time: done.pres_time,
                data: done.data.into(),
            });
        }
        Ok(())
    }

    /// Drains completed samples, sorted by presentation time then stream.
    pub fn take_completed(&mut self) -> Vec<MediaSample> {
        let mut out = std::mem::take(&mut self.complete);
        out.sort_by_key(|s| (s.pres_time, s.stream));
        out
    }

    /// Number of samples still missing fragments.
    pub fn incomplete(&self) -> usize {
        self.partial.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(stream: u16, t: u64, len: usize, fill: u8) -> MediaSample {
        MediaSample::new(stream, t, vec![fill; len])
    }

    #[test]
    fn small_samples_share_a_packet() {
        let mut pk = Packetizer::new(500).unwrap();
        pk.push(&sample(1, 0, 50, 0xAA));
        pk.push(&sample(2, 0, 50, 0xBB));
        let packets = pk.finish();
        assert_eq!(packets.len(), 1);
        assert_eq!(packets[0].payloads.len(), 2);
    }

    #[test]
    fn large_sample_fragments() {
        let mut pk = Packetizer::new(200).unwrap();
        pk.push(&sample(1, 0, 500, 0xCC));
        let packets = pk.finish();
        assert!(packets.len() >= 3, "got {}", packets.len());
        // All fragments carry the same object id and consistent offsets.
        let frags: Vec<&Payload> = packets.iter().flat_map(|p| &p.payloads).collect();
        assert!(frags.iter().all(|f| f.object_id == 0 && f.total == 500));
        let covered: usize = frags.iter().map(|f| f.data.len()).sum();
        assert_eq!(covered, 500);
    }

    #[test]
    fn packetize_reassemble_identity() {
        let samples = vec![
            sample(1, 0, 333, 1),
            sample(2, 10, 10, 2),
            sample(1, 40, 1200, 3),
            sample(1, 80, 0, 4), // empty marker sample
            sample(2, 90, 64, 5),
        ];
        let mut pk = Packetizer::new(256).unwrap();
        for s in &samples {
            pk.push(s);
        }
        let packets = pk.finish();
        let mut rs = Reassembler::new();
        for p in &packets {
            rs.push_packet(p).unwrap();
        }
        let mut got = rs.take_completed();
        got.sort_by_key(|s| (s.pres_time, s.stream));
        let mut want = samples;
        want.sort_by_key(|s| (s.pres_time, s.stream));
        assert_eq!(got, want);
        assert_eq!(rs.incomplete(), 0);
    }

    #[test]
    fn loss_leaves_sample_incomplete() {
        let mut pk = Packetizer::new(128).unwrap();
        pk.push(&sample(1, 0, 1000, 7));
        let packets = pk.finish();
        assert!(packets.len() > 2);
        let mut rs = Reassembler::new();
        // Drop the middle packet.
        for (i, p) in packets.iter().enumerate() {
            if i != packets.len() / 2 {
                rs.push_packet(p).unwrap();
            }
        }
        assert!(rs.take_completed().is_empty());
        assert_eq!(rs.incomplete(), 1);
    }

    #[test]
    fn reorder_tolerated() {
        let mut pk = Packetizer::new(128).unwrap();
        pk.push(&sample(1, 5, 700, 9));
        let mut packets = pk.finish();
        packets.reverse();
        let mut rs = Reassembler::new();
        for p in &packets {
            rs.push_packet(p).unwrap();
        }
        let got = rs.take_completed();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].data, vec![9u8; 700]);
    }

    #[test]
    fn duplicates_ignored() {
        let mut pk = Packetizer::new(128).unwrap();
        pk.push(&sample(1, 5, 300, 9));
        let packets = pk.finish();
        let mut rs = Reassembler::new();
        for p in packets.iter().chain(packets.iter()) {
            rs.push_packet(p).unwrap();
        }
        assert_eq!(rs.take_completed().len(), 1);
    }

    #[test]
    fn conflicting_total_rejected() {
        let mut rs = Reassembler::new();
        let a = Payload {
            stream: 1,
            object_id: 0,
            offset: 0,
            total: 100,
            pres_time: 0,
            data: vec![0; 10].into(),
        };
        let mut b = a.clone();
        b.offset = 10;
        b.total = 999;
        rs.push_packet(&DataPacket {
            send_time: 0,
            payloads: vec![a],
        })
        .unwrap();
        let err = rs
            .push_packet(&DataPacket {
                send_time: 0,
                payloads: vec![b],
            })
            .unwrap_err();
        assert!(matches!(err, AsfError::FragmentMismatch { .. }));
    }

    #[test]
    fn packet_wire_round_trip() {
        let mut pk = Packetizer::new(300).unwrap();
        pk.push(&sample(3, 123, 400, 0x5A));
        let packets = pk.finish();
        for p in &packets {
            let bytes = p.write(300).unwrap();
            assert_eq!(bytes.len(), 300);
            let back = DataPacket::read(&bytes, 300).unwrap();
            assert_eq!(&back, p);
        }
    }

    #[test]
    fn too_small_packet_size_rejected() {
        assert!(matches!(
            Packetizer::new(16),
            Err(AsfError::PacketSizeTooSmall(16))
        ));
    }

    #[test]
    fn object_ids_independent_per_stream() {
        let mut pk = Packetizer::new(512).unwrap();
        pk.push(&sample(1, 0, 10, 1));
        pk.push(&sample(2, 0, 10, 2));
        pk.push(&sample(1, 1, 10, 3));
        let packets = pk.finish();
        let ids: Vec<(u16, u32)> = packets
            .iter()
            .flat_map(|p| &p.payloads)
            .map(|p| (p.stream, p.object_id))
            .collect();
        assert_eq!(ids, [(1, 0), (2, 0), (1, 1)]);
    }

    #[test]
    fn fragments_are_zero_copy_views_of_the_sample() {
        let s = sample(1, 0, 1_000, 0x3C);
        let mut pk = Packetizer::new(200).unwrap();
        pk.push(&s);
        let packets = pk.finish();
        assert!(packets.len() > 1, "sample must fragment");
        for frag in packets.iter().flat_map(|p| &p.payloads) {
            assert_eq!(
                frag.data.backing_id(),
                s.data.backing_id(),
                "fragment copied instead of slicing the sample buffer"
            );
        }
    }

    #[test]
    fn send_time_is_first_payload_time() {
        let mut pk = Packetizer::new(512).unwrap();
        pk.push(&sample(1, 42, 10, 1));
        pk.push(&sample(1, 99, 10, 1));
        let packets = pk.finish();
        assert_eq!(packets[0].send_time, 42);
    }
}
