//! The script-command object.
//!
//! "Script commands instruct Microsoft Windows Media Player to perform
//! additional tasks … along with rendering the ASF stream" (§2.1). The
//! publisher uses them to flip slides ("the video and presented slides
//! synchronized with the temporal script commands", Fig. 5); annotations
//! ride the same mechanism.

use serde::{Deserialize, Serialize};

use crate::error::AsfError;
use crate::io::{Reader, Writer};

/// One timed command.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScriptCommand {
    /// Presentation time at which the command fires, in ticks.
    pub time: u64,
    /// Command type, e.g. `"slide"`, `"annotation"`, `"url"`, `"caption"`.
    pub kind: String,
    /// Command parameter, e.g. the slide URI to display.
    pub param: String,
}

impl ScriptCommand {
    /// Creates a command.
    pub fn new(time: u64, kind: impl Into<String>, param: impl Into<String>) -> Self {
        Self {
            time,
            kind: kind.into(),
            param: param.into(),
        }
    }

    /// Serializes the command as the payload of an in-band script-stream
    /// sample ([`crate::StreamKind::Script`]), which is how live ASF
    /// streams carried commands that post-dated the header.
    pub fn to_sample_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u64(self.time);
        w.string(&self.kind);
        w.string(&self.param);
        w.into_vec()
    }

    /// Parses an in-band script-stream sample payload.
    ///
    /// # Errors
    ///
    /// [`crate::AsfError::UnexpectedEof`] on truncation,
    /// [`crate::AsfError::BadString`] on invalid UTF-8.
    pub fn from_sample_bytes(bytes: &[u8]) -> Result<Self, AsfError> {
        let mut r = Reader::new(bytes);
        let time = r.u64("script sample time")?;
        let kind = r.string("script sample kind")?;
        let param = r.string("script sample param")?;
        Ok(Self { time, kind, param })
    }
}

/// The ordered list of script commands in a presentation.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ScriptCommandList {
    commands: Vec<ScriptCommand>,
}

impl ScriptCommandList {
    /// An empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a command, keeping the list sorted by time (stable for ties).
    pub fn push(&mut self, cmd: ScriptCommand) {
        let at = self.commands.partition_point(|c| c.time <= cmd.time);
        self.commands.insert(at, cmd);
    }

    /// The commands in time order.
    pub fn commands(&self) -> &[ScriptCommand] {
        &self.commands
    }

    /// Number of commands.
    pub fn len(&self) -> usize {
        self.commands.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.commands.is_empty()
    }

    /// Commands with `from < time ≤ to` — what fires when the player's
    /// clock moves from `from` to `to`.
    pub fn fired_between(&self, from: u64, to: u64) -> &[ScriptCommand] {
        let lo = self.commands.partition_point(|c| c.time <= from);
        let hi = self.commands.partition_point(|c| c.time <= to);
        &self.commands[lo..hi]
    }

    /// The last command of `kind` at or before `time` (e.g. "which slide
    /// should be visible right now").
    pub fn current_of_kind(&self, kind: &str, time: u64) -> Option<&ScriptCommand> {
        let upto = self.commands.partition_point(|c| c.time <= time);
        self.commands[..upto].iter().rev().find(|c| c.kind == kind)
    }

    pub(crate) fn write(&self, w: &mut Writer) {
        w.u32(self.commands.len() as u32);
        for c in &self.commands {
            w.u64(c.time);
            w.string(&c.kind);
            w.string(&c.param);
        }
    }

    pub(crate) fn read(r: &mut Reader<'_>) -> Result<Self, AsfError> {
        let n = r.u32("script command count")?;
        let mut list = Self::new();
        for _ in 0..n {
            let time = r.u64("script command time")?;
            let kind = r.string("script command kind")?;
            let param = r.string("script command param")?;
            list.push(ScriptCommand { time, kind, param });
        }
        Ok(list)
    }
}

impl FromIterator<ScriptCommand> for ScriptCommandList {
    fn from_iter<I: IntoIterator<Item = ScriptCommand>>(iter: I) -> Self {
        let mut l = Self::new();
        for c in iter {
            l.push(c);
        }
        l
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list() -> ScriptCommandList {
        [
            ScriptCommand::new(300, "slide", "s3.png"),
            ScriptCommand::new(100, "slide", "s1.png"),
            ScriptCommand::new(200, "slide", "s2.png"),
            ScriptCommand::new(200, "annotation", "circle eq. 4"),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn kept_sorted() {
        let l = list();
        let times: Vec<u64> = l.commands().iter().map(|c| c.time).collect();
        assert_eq!(times, [100, 200, 200, 300]);
    }

    #[test]
    fn fired_between_window() {
        let l = list();
        assert_eq!(l.fired_between(0, 100).len(), 1);
        assert_eq!(l.fired_between(100, 250).len(), 2);
        assert!(l.fired_between(300, 999).is_empty());
    }

    #[test]
    fn current_slide_query() {
        let l = list();
        assert_eq!(l.current_of_kind("slide", 250).unwrap().param, "s2.png");
        assert_eq!(l.current_of_kind("slide", 99), None);
        assert_eq!(l.current_of_kind("slide", 1000).unwrap().param, "s3.png");
    }

    #[test]
    fn wire_round_trip() {
        let l = list();
        let mut w = Writer::new();
        l.write(&mut w);
        let v = w.into_vec();
        let mut r = Reader::new(&v);
        assert_eq!(ScriptCommandList::read(&mut r).unwrap(), l);
        assert!(r.is_empty());
    }

    #[test]
    fn in_band_sample_round_trip() {
        let c = ScriptCommand::new(12_345, "slide", "decks/s7.png");
        let bytes = c.to_sample_bytes();
        assert_eq!(ScriptCommand::from_sample_bytes(&bytes).unwrap(), c);
        // Truncation fails cleanly at every cut.
        for cut in 0..bytes.len() {
            assert!(ScriptCommand::from_sample_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn stable_order_for_equal_times() {
        let l = list();
        let at_200: Vec<&str> = l
            .fired_between(100, 200)
            .iter()
            .map(|c| c.kind.as_str())
            .collect();
        assert_eq!(at_200, ["slide", "annotation"]);
    }
}
