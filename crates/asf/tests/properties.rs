//! Property-based tests: the container round-trips arbitrary content.

use lod_asf::{
    read_asf, write_asf, AsfFile, FileProperties, License, MediaSample, Packetizer, Reassembler,
    ScriptCommand, ScriptCommandList, StreamKind, StreamProperties,
};
use proptest::prelude::*;

fn arb_samples() -> impl Strategy<Value = Vec<MediaSample>> {
    proptest::collection::vec(
        (
            1u16..=3,
            0u64..100_000,
            proptest::collection::vec(any::<u8>(), 0..600),
        ),
        0..20,
    )
    .prop_map(|v| {
        v.into_iter()
            .map(|(s, t, d)| MediaSample::new(s, t, d))
            .collect()
    })
}

fn arb_script() -> impl Strategy<Value = ScriptCommandList> {
    proptest::collection::vec((0u64..10_000, "[a-z]{1,8}", "[ -~]{0,20}"), 0..10).prop_map(|v| {
        v.into_iter()
            .map(|(t, k, p)| ScriptCommand::new(t, k, p))
            .collect()
    })
}

fn make_file(samples: &[MediaSample], script: ScriptCommandList, packet_size: u32) -> AsfFile {
    let mut pk = Packetizer::new(packet_size).unwrap();
    for s in samples {
        pk.push(s);
    }
    AsfFile {
        props: FileProperties {
            file_id: 99,
            created: 5,
            packet_size,
            play_duration: 0,
            preroll: 0,
            broadcast: false,
            max_bitrate: 128_000,
        },
        streams: (1..=3)
            .map(|n| StreamProperties {
                number: n,
                kind: StreamKind::Video,
                codec: 4,
                bitrate: 1000,
                name: format!("s{n}"),
            })
            .collect(),
        script,
        drm: None,
        packets: pk.finish(),
        index: None,
    }
}

proptest! {
    /// write → read is the identity on the whole file model.
    #[test]
    fn mux_demux_identity(
        samples in arb_samples(),
        script in arb_script(),
        packet_size in 64u32..2048,
    ) {
        let mut f = make_file(&samples, script, packet_size);
        f.build_index(1_000);
        let bytes = write_asf(&f).unwrap();
        let back = read_asf(&bytes).unwrap();
        prop_assert_eq!(back, f);
    }

    /// Packetize → reassemble restores every sample exactly.
    #[test]
    fn fragment_reassemble_identity(
        samples in arb_samples(),
        packet_size in 64u32..512,
    ) {
        let mut pk = Packetizer::new(packet_size).unwrap();
        for s in &samples {
            pk.push(s);
        }
        let packets = pk.finish();
        let mut rs = Reassembler::new();
        for p in &packets {
            rs.push_packet(p).unwrap();
        }
        let mut got = rs.take_completed();
        let mut want = samples.clone();
        // Order by (time, stream, data) — object ids disambiguate on the
        // wire but equal (time, stream) pairs are unordered here.
        let key = |s: &MediaSample| (s.pres_time, s.stream, s.data.clone());
        got.sort_by_key(key);
        want.sort_by_key(key);
        prop_assert_eq!(got, want);
        prop_assert_eq!(rs.incomplete(), 0);
    }

    /// Every serialized packet is exactly the declared size.
    #[test]
    fn packets_have_fixed_size(
        samples in arb_samples(),
        packet_size in 64u32..512,
    ) {
        let mut pk = Packetizer::new(packet_size).unwrap();
        for s in &samples {
            pk.push(s);
        }
        for p in pk.finish() {
            prop_assert_eq!(p.write(packet_size).unwrap().len(), packet_size as usize);
        }
    }

    /// DRM protect → unprotect restores the content bit-exactly, and the
    /// wrong key never verifies.
    #[test]
    fn drm_round_trip(
        samples in arb_samples(),
        key in any::<u64>(),
    ) {
        let f = make_file(&samples, ScriptCommandList::new(), 256);
        let mut g = f.clone();
        let lic = License::new("k", key);
        g.protect(&lic);
        let mut wrong = g.clone();
        prop_assert!(wrong.unprotect(&License::new("k", key.wrapping_add(1))).is_err());
        g.unprotect(&lic).unwrap();
        prop_assert_eq!(g.packets, f.packets);
    }

    /// Parsing arbitrary bytes never panics (it may error).
    #[test]
    fn demux_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = read_asf(&bytes);
    }

    /// Truncating a valid file at any point fails cleanly, never panics.
    #[test]
    fn truncation_fails_cleanly(
        samples in arb_samples(),
        cut_ratio in 0.0f64..1.0,
    ) {
        let f = make_file(&samples, ScriptCommandList::new(), 128);
        let bytes = write_asf(&f).unwrap();
        let cut = ((bytes.len() as f64) * cut_ratio) as usize;
        if cut < bytes.len() {
            prop_assert!(read_asf(&bytes[..cut]).is_err());
        }
    }
}
