//! P3: ASF container throughput — mux, demux, and DRM scrambling.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lod_asf::{
    read_asf, write_asf, AsfFile, FileProperties, License, MediaSample, Packetizer, ScriptCommand,
    ScriptCommandList, StreamKind, StreamProperties,
};

fn sample_file(seconds: u64) -> AsfFile {
    let mut pk = Packetizer::new(1_400).unwrap();
    // ~400 kbit/s of media: 5 kB per 100 ms sample.
    for i in 0..(seconds * 10) {
        pk.push(&MediaSample::new(1, i * 1_000_000, vec![0xAB; 5_000]));
    }
    let mut script = ScriptCommandList::new();
    for i in 0..seconds / 30 {
        script.push(ScriptCommand::new(
            i * 300_000_000,
            "slide",
            format!("slides/s{i}.png"),
        ));
    }
    AsfFile {
        props: FileProperties {
            file_id: 1,
            created: 0,
            packet_size: 1_400,
            play_duration: seconds * 10_000_000,
            preroll: 20_000_000,
            broadcast: false,
            max_bitrate: 400_000,
        },
        streams: vec![StreamProperties {
            number: 1,
            kind: StreamKind::Video,
            codec: 4,
            bitrate: 400_000,
            name: "camera".into(),
        }],
        script,
        drm: None,
        packets: pk.finish(),
        index: None,
    }
}

fn bench_mux(c: &mut Criterion) {
    let file = sample_file(60);
    let size = write_asf(&file).unwrap().len() as u64;
    let mut g = c.benchmark_group("asf");
    g.throughput(Throughput::Bytes(size));
    g.bench_function("mux_60s", |b| {
        b.iter(|| write_asf(std::hint::black_box(&file)).unwrap().len());
    });
    let bytes = write_asf(&file).unwrap();
    g.bench_function("demux_60s", |b| {
        b.iter(|| {
            read_asf(std::hint::black_box(&bytes))
                .unwrap()
                .packets
                .len()
        });
    });
    g.finish();
}

fn bench_drm(c: &mut Criterion) {
    let file = sample_file(60);
    let media: u64 = file.packets.iter().map(|p| p.media_bytes() as u64).sum();
    let lic = License::new("k", 42);
    let mut g = c.benchmark_group("asf");
    g.throughput(Throughput::Bytes(media));
    g.bench_function("drm_protect_60s", |b| {
        b.iter_batched(
            || file.clone(),
            |mut f| {
                f.protect(&lic);
                f
            },
            criterion::BatchSize::LargeInput,
        );
    });
    g.finish();
}

fn bench_index(c: &mut Criterion) {
    let file = sample_file(300);
    c.bench_function("asf/build_index_300s", |b| {
        b.iter_batched(
            || file.clone(),
            |mut f| {
                f.build_index(10_000_000);
                f
            },
            criterion::BatchSize::LargeInput,
        );
    });
}

criterion_group!(benches, bench_mux, bench_drm, bench_index);
criterion_main!(benches);
