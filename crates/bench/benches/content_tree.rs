//! P1: content-tree operation micro-benchmarks (the Abstractor's data
//! structure at realistic and stress sizes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lod_content_tree::{ContentTree, Segment};

fn build_tree(nodes: usize) -> ContentTree {
    let mut t = ContentTree::new(Segment::new("root", 10));
    for i in 0..nodes {
        let level = 1 + i % 3;
        t.add_at_level(level, Segment::new(format!("s{i}"), 10))
            .unwrap();
    }
    t
}

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("content_tree/build");
    for nodes in [100usize, 1_000, 5_000] {
        g.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, &n| {
            b.iter(|| build_tree(n));
        });
    }
    g.finish();
}

fn bench_level_value(c: &mut Criterion) {
    let tree = build_tree(5_000);
    c.bench_function("content_tree/level_value", |b| {
        b.iter(|| std::hint::black_box(&tree).level_value(2));
    });
}

fn bench_presentation(c: &mut Criterion) {
    let tree = build_tree(5_000);
    c.bench_function("content_tree/presentation_at_level", |b| {
        b.iter(|| std::hint::black_box(&tree).presentation_at_level(3).len());
    });
}

fn bench_insert_delete(c: &mut Criterion) {
    c.bench_function("content_tree/insert_above+delete_adopt", |b| {
        let tree = build_tree(1_000);
        b.iter_batched(
            || tree.clone(),
            |mut t| {
                let target = t.find("s500").unwrap();
                let id = t.insert_above(target, Segment::new("wedge", 1)).unwrap();
                t.delete_adopt(id).unwrap();
                t
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

criterion_group!(
    benches,
    bench_build,
    bench_level_value,
    bench_presentation,
    bench_insert_delete
);
criterion_main!(benches);
