//! Q15 companion: criterion micro-benches over the zero-copy hot path.
//!
//! Same workloads as the `q15_hotpath` binary (which owns the JSON
//! report the perf gate consumes): mux packet serialization, the
//! packetizer's zero-copy fragmentation, and the relay fan-out of one
//! cached segment to many readers.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lod_asf::{
    write_asf, AsfFile, FileProperties, MediaSample, Packetizer, ScriptCommandList, StreamKind,
    StreamProperties,
};
use lod_relay::{CachedSegment, SegmentCache};
use lod_streaming::wire::{SegmentData, Wire};
use lod_transport::{decode_frame, encode_frame, WireCodec};

const PACKET_SIZE: u32 = 1_400;

fn lecture_file() -> AsfFile {
    let mut pk = Packetizer::new(PACKET_SIZE).unwrap();
    for i in 0..600 {
        pk.push(&MediaSample::new(1, i * 1_000_000, vec![0xAB; 5_000]));
    }
    AsfFile {
        props: FileProperties {
            file_id: 15,
            created: 0,
            packet_size: PACKET_SIZE,
            play_duration: 600_000_000,
            preroll: 20_000_000,
            broadcast: false,
            max_bitrate: 400_000,
        },
        streams: vec![StreamProperties {
            number: 1,
            kind: StreamKind::Video,
            codec: 4,
            bitrate: 400_000,
            name: "camera".into(),
        }],
        script: ScriptCommandList::new(),
        drm: None,
        packets: pk.finish(),
        index: None,
    }
}

fn origin_segment() -> Wire {
    let mut pk = Packetizer::new(PACKET_SIZE).unwrap();
    for i in 0..10 {
        pk.push(&MediaSample::new(1, i * 1_000_000, vec![0x5A; 5_000]));
    }
    let mut packets = pk.finish();
    packets.truncate(32);
    Wire::Segment(SegmentData {
        content: "lecture".into(),
        segment: 5,
        base_packet: 160,
        total_packets: 1_600,
        total_segments: 50,
        segment_packets: 32,
        packet_size: PACKET_SIZE,
        packets,
        header: None,
        start_packet: Some(160),
        at_time: Some(7_000_000),
        epoch: 1,
        trace: None,
    })
}

fn bench_mux(c: &mut Criterion) {
    let file = lecture_file();
    let size = write_asf(&file).unwrap().len() as u64;
    let mut g = c.benchmark_group("hotpath");
    g.throughput(Throughput::Bytes(size));
    g.bench_function("mux_60s", |b| {
        b.iter(|| write_asf(std::hint::black_box(&file)).unwrap().len());
    });
    g.bench_function("packetize_60s", |b| {
        b.iter(|| {
            let mut pk = Packetizer::new(PACKET_SIZE).unwrap();
            for i in 0..600 {
                pk.push(&MediaSample::new(1, i * 1_000_000, vec![0xAB; 5_000]));
            }
            pk.finish().len()
        });
    });
    g.finish();
}

fn bench_fanout(c: &mut Criterion) {
    let seg = origin_segment();
    let frame = encode_frame(1, 0, false, &seg.to_frame_payload());
    let mut g = c.benchmark_group("hotpath");
    g.bench_function("relay_decode_cache", |b| {
        b.iter(|| {
            let (_, payload) = decode_frame(std::hint::black_box(&frame)).expect("frame");
            let payload = bytes::Bytes::copy_from_slice(payload);
            let Wire::Segment(mut seg) = Wire::from_shared_payload(&payload).expect("payload")
            else {
                panic!("origin sent a segment");
            };
            let mut cache = SegmentCache::new(1 << 20);
            let data = CachedSegment {
                base_packet: seg.base_packet,
                bytes: seg.packets.len() as u64 * u64::from(seg.packet_size),
                packets: std::mem::take(&mut seg.packets),
            };
            cache.insert(&seg.content, seg.segment, data);
            cache.len()
        });
    });
    // One cached segment delivered to 256 readers as Wire values.
    let Wire::Segment(mut sd) = origin_segment() else {
        unreachable!();
    };
    let mut cache = SegmentCache::new(1 << 20);
    let data = CachedSegment {
        base_packet: sd.base_packet,
        bytes: sd.packets.len() as u64 * u64::from(sd.packet_size),
        packets: std::mem::take(&mut sd.packets),
    };
    cache.insert(&sd.content, sd.segment, data);
    g.bench_function("fanout_256_readers", |b| {
        b.iter(|| {
            let mut deliveries = 0u64;
            for _ in 0..256 {
                let cached = cache.get(&sd.content, sd.segment).expect("resident");
                for p in &cached.packets {
                    std::hint::black_box(Wire::Data(p.clone()));
                    deliveries += 1;
                }
            }
            deliveries
        });
    });
    g.finish();
}

criterion_group!(benches, bench_mux, bench_fanout);
criterion_main!(benches);
