//! P4: packetizer / reassembler throughput across packet sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lod_asf::{MediaSample, Packetizer, Reassembler};

fn samples(count: usize, bytes: usize) -> Vec<MediaSample> {
    (0..count)
        .map(|i| MediaSample::new(1, i as u64 * 400_000, vec![(i % 251) as u8; bytes]))
        .collect()
}

fn bench_packetize(c: &mut Criterion) {
    let input = samples(500, 5_000); // 2.5 MB of media
    let total: u64 = input.iter().map(|s| s.data.len() as u64).sum();
    let mut g = c.benchmark_group("packetizer/fragment");
    g.throughput(Throughput::Bytes(total));
    for packet in [256u32, 1_400, 8_192] {
        g.bench_with_input(BenchmarkId::from_parameter(packet), &packet, |b, &p| {
            b.iter(|| {
                let mut pk = Packetizer::new(p).unwrap();
                for s in &input {
                    pk.push(s);
                }
                pk.finish().len()
            });
        });
    }
    g.finish();
}

fn bench_reassemble(c: &mut Criterion) {
    let input = samples(500, 5_000);
    let total: u64 = input.iter().map(|s| s.data.len() as u64).sum();
    let mut pk = Packetizer::new(1_400).unwrap();
    for s in &input {
        pk.push(s);
    }
    let packets = pk.finish();
    let mut g = c.benchmark_group("packetizer/reassemble");
    g.throughput(Throughput::Bytes(total));
    g.bench_function("1400B", |b| {
        b.iter(|| {
            let mut rs = Reassembler::new();
            for p in &packets {
                rs.push_packet(p).unwrap();
            }
            rs.take_completed().len()
        });
    });
    g.finish();
}

criterion_group!(benches, bench_packetize, bench_reassemble);
criterion_main!(benches);
