//! P2: Petri-net substrate micro-benchmarks — firing throughput, timed
//! execution, and reachability analysis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lod_petri::analysis::{ExploreLimits, ReachabilityGraph};
use lod_petri::{Marking, NetBuilder, PetriNet, RandomFirer, TimedExecutor, TimedNet};

/// A token ring of `n` places.
fn ring(n: usize) -> (PetriNet, Marking) {
    let mut b = NetBuilder::new();
    let ps: Vec<_> = (0..n).map(|i| b.place(format!("p{i}"))).collect();
    for i in 0..n {
        let t = b.transition(format!("t{i}"));
        b.arc_in(ps[i], t, 1).unwrap();
        b.arc_out(t, ps[(i + 1) % n], 1).unwrap();
    }
    let net = b.build();
    let mut m = Marking::new(n);
    m.set(ps[0], 1);
    (net, m)
}

fn bench_firing(c: &mut Criterion) {
    let mut g = c.benchmark_group("petri/fire_1000_steps");
    for n in [10usize, 100, 500] {
        let (net, m0) = ring(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut firer = RandomFirer::new(&net, m0.clone());
                firer.run(1_000, |_| 0)
            });
        });
    }
    g.finish();
}

fn bench_timed_executor(c: &mut Criterion) {
    // A sequential chain of 500 timed transitions.
    let mut b = NetBuilder::new();
    let ps: Vec<_> = (0..=500).map(|i| b.place(format!("p{i}"))).collect();
    let mut ts = Vec::new();
    for i in 0..500 {
        let t = b.transition(format!("t{i}"));
        b.arc_in(ps[i], t, 1).unwrap();
        b.arc_out(t, ps[i + 1], 1).unwrap();
        ts.push(t);
    }
    let mut timed = TimedNet::new(b.build());
    for t in &ts {
        timed.set_duration(*t, 7);
    }
    let mut m0 = Marking::new(501);
    m0.set(ps[0], 1);
    c.bench_function("petri/timed_chain_500", |b| {
        b.iter(|| {
            let mut exec = TimedExecutor::new(&timed, m0.clone());
            exec.run_to_quiescence(10_000).unwrap();
            exec.now()
        });
    });
}

fn bench_reachability(c: &mut Criterion) {
    // k-token ring: state space = C(n+k-1, k)-ish; keep it moderate.
    let (net, mut m0) = ring(12);
    m0.set(net.places().next().unwrap(), 3);
    c.bench_function("petri/reachability_ring12x3", |b| {
        b.iter(|| {
            ReachabilityGraph::explore(&net, &m0, ExploreLimits::default())
                .unwrap()
                .state_count()
        });
    });
}

fn bench_invariants(c: &mut Criterion) {
    let (net, _) = ring(100);
    c.bench_function("petri/p_invariants_ring100", |b| {
        b.iter(|| lod_petri::invariants::p_invariants(std::hint::black_box(&net)).len());
    });
}

criterion_group!(
    benches,
    bench_firing,
    bench_timed_executor,
    bench_reachability,
    bench_invariants
);
criterion_main!(benches);
