//! P5: the Q1 sync-model comparison as a benchmark — how expensive is
//! each controller, and full ETPN replay cost at growing lecture sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lod_core::etpn::{instant_arrivals, EtpnConfig, LectureNet};
use lod_core::replay::{replay, simulate_arrivals, ReplayConfig, SyncModelKind};
use lod_simnet::LinkSpec;

fn bench_models(c: &mut Criterion) {
    let mut cfg = ReplayConfig::new(
        LinkSpec::broadband().with_jitter(8_000_000).with_loss(0.02),
        11,
    );
    cfg.units = 40;
    let arrivals = simulate_arrivals(&cfg);
    let mut g = c.benchmark_group("sync_models/replay40");
    for model in [
        SyncModelKind::Ocpn,
        SyncModelKind::Xocpn,
        SyncModelKind::Etpn,
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(model.to_string()),
            &model,
            |b, &m| {
                b.iter(|| replay(&cfg, m, &arrivals).units_rendered);
            },
        );
    }
    g.finish();
}

fn bench_etpn_scale(c: &mut Criterion) {
    let mut g = c.benchmark_group("sync_models/etpn_units");
    for units in [60usize, 300, 1_200] {
        let cfg = EtpnConfig {
            unit_ticks: 10_000_000,
            units,
            streams: 2,
            sync_every: 1,
            block_prefetch: true,
        };
        let net = LectureNet::new(cfg);
        let arrivals = instant_arrivals(net.config());
        g.bench_with_input(BenchmarkId::from_parameter(units), &units, |b, _| {
            b.iter(|| net.run(&arrivals, &[]).units_rendered);
        });
    }
    g.finish();
}

fn bench_arrival_simulation(c: &mut Criterion) {
    let mut cfg = ReplayConfig::new(LinkSpec::broadband(), 3);
    cfg.units = 40;
    c.bench_function("sync_models/simulate_arrivals40", |b| {
        b.iter(|| simulate_arrivals(std::hint::black_box(&cfg)).len());
    });
}

criterion_group!(
    benches,
    bench_models,
    bench_etpn_scale,
    bench_arrival_simulation
);
criterion_main!(benches);
