//! A1 (ablation): ETPN sync granularity — how the `sync_every` block size
//! trades startup latency against stall structure on a trickling network.

use lod_bench::report::{header, ms, row, secs};
use lod_core::etpn::{EtpnConfig, LectureNet};

fn main() {
    println!("A1 — ETPN sync granularity (60 × 1 s units, arrivals trickle at 1.05×)\n");

    // Arrivals slightly slower than real time: unit k lands at 1.05·k s.
    let arrivals = |cfg: &EtpnConfig| {
        let mut v = Vec::new();
        for s in 0..cfg.streams {
            for k in 0..cfg.units {
                v.push((k as u64 * 10_500_000, s, k));
            }
        }
        v
    };

    let widths = [12usize, 14, 12, 12, 14];
    header(
        &[
            "sync_every",
            "startup ms",
            "stall s",
            "finish s",
            "max skew ms",
        ],
        &widths,
    );
    for sync_every in [1usize, 2, 5, 10, 20] {
        let cfg = EtpnConfig {
            unit_ticks: 10_000_000,
            units: 60,
            streams: 2,
            sync_every,
            block_prefetch: true,
        };
        let net = LectureNet::new(cfg);
        let r = net.run(&arrivals(net.config()), &[]);
        row(
            &[
                sync_every.to_string(),
                ms(r.startup().unwrap_or(0)),
                secs(r.network_stall()),
                secs(r.finish_time),
                ms(r.max_skew),
            ],
            &widths,
        );
    }
    println!(
        "\nshape: fine sync (1) starts as soon as one unit is buffered but stalls\n\
         at every boundary; coarse sync buffers whole blocks — higher startup,\n\
         fewer/longer stalls, same finish (the trickle rate bounds everyone).\n\
         Skew is 0 at every granularity because joins gate on block arrival."
    );
}
