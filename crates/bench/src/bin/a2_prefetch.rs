//! A2 (ablation): block prefetch on/off — the design choice separating
//! the ETPN's receiver-driven joins from per-object arrival gating.

use lod_bench::report::{header, ms, row, secs};
use lod_core::etpn::{EtpnConfig, LectureNet};

/// Arrivals with one stream's units randomly late (deterministic xorshift).
fn noisy_arrivals(cfg: &EtpnConfig, seed: u64, max_late: u64) -> Vec<(u64, usize, usize)> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut v = Vec::new();
    for s in 0..cfg.streams {
        for k in 0..cfg.units {
            let base = k as u64 * cfg.unit_ticks;
            let late = if s == 1 { next() % max_late } else { 0 };
            v.push((base.saturating_sub(cfg.unit_ticks) + late, s, k));
        }
    }
    v
}

fn main() {
    println!("A2 — block prefetch ablation (40 × 1 s units, stream 1 jittered)\n");
    let widths = [20usize, 12, 14, 12, 12];
    header(
        &[
            "jitter bound",
            "prefetch",
            "max skew ms",
            "stall s",
            "finish s",
        ],
        &widths,
    );
    for max_late_ms in [500u64, 2_000, 5_000] {
        for prefetch in [true, false] {
            let cfg = EtpnConfig {
                unit_ticks: 10_000_000,
                units: 40,
                streams: 2,
                sync_every: 1,
                block_prefetch: prefetch,
            };
            let net = LectureNet::new(cfg);
            let arrivals = noisy_arrivals(net.config(), 99, max_late_ms * 10_000);
            let r = net.run(&arrivals, &[]);
            row(
                &[
                    format!("≤ {max_late_ms} ms"),
                    prefetch.to_string(),
                    ms(r.max_skew),
                    secs(r.network_stall()),
                    secs(r.finish_time),
                ],
                &widths,
            );
        }
    }
    println!(
        "\nshape: with prefetch the joins absorb lateness — skew pinned at 0 for\n\
         any jitter; without it, late units start late on their own stream and\n\
         skew grows with the jitter bound. Finish times are comparable: prefetch\n\
         moves waiting to the sync points, it does not add waiting."
    );
}
