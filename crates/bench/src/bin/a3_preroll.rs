//! A3 (ablation): client preroll — startup latency vs. rebuffering on a
//! jittery path (the knob behind every "buffering…" spinner of the era).

use lod_bench::report::{header, ms, row};
use lod_core::{synthetic_lecture, Wmps};
use lod_media::TickDuration;
use lod_simnet::LinkSpec;

fn main() {
    println!("A3 — preroll ablation (1-minute lecture, broadband + 1.5 s jitter)\n");
    let lecture = synthetic_lecture(33, 1, 300_000);
    let link = LinkSpec::broadband().with_jitter(15_000_000).with_loss(0.0);

    let widths = [12usize, 14, 10, 14, 14];
    header(
        &[
            "preroll ms",
            "startup ms",
            "stalls",
            "stall ms",
            "p95 skew ms",
        ],
        &widths,
    );
    for preroll_ms in [200u64, 500, 1_000, 2_000, 5_000] {
        let wmps = Wmps::new().with_preroll(TickDuration::from_millis(preroll_ms));
        let file = wmps.publish(&lecture).expect("publish");
        let report = wmps.serve_and_replay(file, link, 1, 31);
        let m = &report.clients[0];
        let s = &report.skew[0];
        row(
            &[
                preroll_ms.to_string(),
                ms(m.startup_ticks),
                m.stalls.to_string(),
                ms(m.stall_ticks),
                ms(s.p95),
            ],
            &widths,
        );
    }
    println!(
        "\nshape: short prerolls start fast but leave no jitter headroom\n\
         (stalls/skew); long prerolls trade seconds of startup for smooth\n\
         playout — the curve every streaming system of the era navigated."
    );
}
