//! A4 (ablation): stream thinning — a modem student drops the video
//! stream and keeps audio + slides, trading pictures of the teacher for
//! smooth playback of the material.

use lod_bench::report::{header, ms, row};
use lod_core::{synthetic_lecture, Wmps};
use lod_simnet::{LinkSpec, Network};
use lod_streaming::{run_to_completion, StreamingClient, StreamingServer, Wire};

enum Mode {
    All,
    Fixed(Vec<u16>),
    Adaptive(Vec<u16>),
}

fn run(mode: Mode, link: LinkSpec) -> (lod_streaming::ClientMetrics, bool) {
    let lecture = synthetic_lecture(40, 1, 300_000);
    let file = Wmps::new().publish(&lecture).expect("publish");
    let mut net: Network<Wire> = Network::new(17);
    let s = net.add_node("server");
    let c = net.add_node("client");
    net.connect_bidirectional(s, c, link);
    let mut server = StreamingServer::new(s);
    server.publish("lec", file);
    let mut client = StreamingClient::new(c, s, "lec");
    match mode {
        Mode::All => {}
        Mode::Fixed(streams) => client = client.with_streams(streams),
        Mode::Adaptive(fallback) => client = client.with_adaptive_thinning(2, fallback),
    }
    run_to_completion(&mut net, &mut server, &mut [&mut client], 4_000_000_000_000);
    (*client.metrics(), client.is_done())
}

fn main() {
    println!("A4 — stream thinning over a 56k modem (1-minute, 332 kbit/s lecture)\n");
    let widths = [26usize, 12, 10, 14, 14];
    header(
        &[
            "selection",
            "startup ms",
            "stalls",
            "stall ms",
            "bytes rcvd",
        ],
        &widths,
    );
    let modem = LinkSpec::modem().with_loss(0.0);
    for (label, mode) in [
        ("all streams", Mode::All),
        ("audio + slides (2, 3)", Mode::Fixed(vec![2u16, 3])),
        ("audio only (2)", Mode::Fixed(vec![2u16])),
        ("adaptive (drop to 2,3)", Mode::Adaptive(vec![2u16, 3])),
    ] {
        let (m, done) = run(mode, modem);
        row(
            &[
                format!("{label}{}", if done { "" } else { " (never finished)" }),
                ms(m.startup_ticks),
                m.stalls.to_string(),
                ms(m.stall_ticks),
                m.bytes_received.to_string(),
            ],
            &widths,
        );
    }
    println!(
        "\nshape: the full 332 kbit/s lecture drowns a 56 kbit/s modem; dropping\n\
         the 300 kbit/s video leaves ~33 kbit/s of audio + slides, which fits\n\
         and plays smoothly — §2.5's low-bandwidth story, server-side. The\n\
         adaptive client discovers this itself after two stalls."
    );
}
