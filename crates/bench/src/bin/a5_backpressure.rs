//! A5 (ablation): the server's backpressure window — how much first-hop
//! queueing the sender tolerates before pausing its push. The window
//! decides how fast an adaptive downgrade (A4) takes effect: everything
//! already queued ahead of the thinned stream still has to drain through
//! the modem.

use lod_bench::report::{header, ms, row};
use lod_core::{synthetic_lecture, Wmps};
use lod_simnet::{LinkSpec, Network};
use lod_streaming::{run_to_completion, StreamingClient, StreamingServer, Wire};

fn run(backlog_ticks: u64) -> (lod_streaming::ClientMetrics, bool) {
    let lecture = synthetic_lecture(40, 1, 300_000); // 332 kbit/s on a 56k modem
    let file = Wmps::new().publish(&lecture).expect("publish");
    let mut net: Network<Wire> = Network::new(23);
    let s = net.add_node("server");
    let c = net.add_node("client");
    net.connect_bidirectional(s, c, LinkSpec::modem().with_loss(0.0));
    let mut server = StreamingServer::new(s).with_backlog_limit(backlog_ticks);
    server.publish("lec", file);
    // Adaptive client: drops to audio + slides after 2 stalls.
    let mut client = StreamingClient::new(c, s, "lec").with_adaptive_thinning(2, vec![2, 3]);
    run_to_completion(&mut net, &mut server, &mut [&mut client], 4_000_000_000_000);
    (*client.metrics(), client.is_done())
}

fn main() {
    println!(
        "A5 — backpressure window vs. adaptive-thinning recovery\n\
         (332 kbit/s lecture, 56k modem, client drops video after 2 stalls)\n"
    );
    let widths = [16usize, 12, 10, 14, 14];
    header(
        &["window", "startup ms", "stalls", "stall ms", "bytes rcvd"],
        &widths,
    );
    for (label, ticks) in [
        ("500 ms", 5_000_000u64),
        ("2 s (default)", 20_000_000),
        ("8 s", 80_000_000),
        ("30 s", 300_000_000),
        ("unbounded", u64::MAX),
    ] {
        let (m, done) = run(ticks);
        row(
            &[
                format!("{label}{}", if done { "" } else { " (!)" }),
                ms(m.startup_ticks),
                m.stalls.to_string(),
                ms(m.stall_ticks),
                m.bytes_received.to_string(),
            ],
            &widths,
        );
    }
    println!(
        "\nshape: with a small window the downgrade bites immediately — only\n\
         what was already queued (≤ window) must still drain. Large or\n\
         unbounded windows bury the thinned stream behind tens of seconds of\n\
         doomed video, so stall time grows with the window: the send window is\n\
         what makes adaptation responsive."
    );
}
