//! E1 (Figs. 1–2): the multiple-level content tree — construction,
//! well-formedness, and the ASCII equivalent of the paper's figures.

use lod_content_tree::{render_ascii, ContentTree, Segment};

fn main() {
    println!("E1 — multiple-level content tree (Figs. 1 and 2)\n");

    // The paper's running example tree.
    let mut t = ContentTree::new(Segment::new("S0", 20));
    t.add_at_level(1, Segment::new("S1", 20)).unwrap();
    t.add_at_level(2, Segment::new("S2", 20)).unwrap();
    t.add_at_level(1, Segment::new("S3", 20)).unwrap();
    t.add_at_level(2, Segment::new("S4", 20)).unwrap();
    t.validate().expect("well-formed (Fig. 2)");
    println!("{}", render_ascii(&t));

    println!("presentation order by level:");
    for q in 0..=t.highest_level() {
        let names: Vec<&str> = t
            .presentation_at_level(q)
            .iter()
            .map(|s| s.name())
            .collect();
        println!("  level {q}: {:?} ({} time units)", names, t.level_value(q));
    }
    println!("\n\"The higher level gives the longer presentation\": ");
    for q in 1..=t.highest_level() {
        assert!(t.level_value(q) > t.level_value(q - 1));
    }
    println!("verified for all levels.");
}
