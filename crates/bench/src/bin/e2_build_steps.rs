//! E2 (§2.3): the four-step build, printing exactly the quantities the
//! paper prints (`highestLevel`, `LevelNodes[q]->value`) next to the
//! paper's own values.

use lod_bench::report::{header, row};
use lod_content_tree::{ContentTree, Segment};

fn main() {
    println!("E2 — §2.3 worked example: building the content tree\n");
    let widths = [22usize, 14, 26, 26];
    header(
        &[
            "step",
            "highestLevel",
            "LevelNodes (measured)",
            "LevelNodes (paper)",
        ],
        &widths,
    );

    let mut t = ContentTree::new(Segment::new("S0", 20));
    let print = |t: &ContentTree, step: &str, paper: &str| {
        row(
            &[
                step.to_string(),
                t.highest_level().to_string(),
                format!("{:?}", t.level_values()),
                paper.to_string(),
            ],
            &widths,
        );
    };
    print(&t, "1: add S0 (lvl 0)", "[0]=20");
    t.add_at_level(1, Segment::new("S1", 20)).unwrap();
    print(&t, "2: add S1 (lvl 1)", "[1]=40");
    t.add_at_level(2, Segment::new("S2", 20)).unwrap();
    print(&t, "3: add S2 (lvl 2)", "[2]=60");
    t.add_at_level(1, Segment::new("S3", 20)).unwrap();
    t.add_at_level(2, Segment::new("S4", 20)).unwrap();
    print(&t, "4: add S3,S4", "[1]=60, [2]=100");

    assert_eq!(t.level_values(), &[20, 60, 100]);
    println!("\nall measured values match the paper.");
}
