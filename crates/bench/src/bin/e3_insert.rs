//! E3 (§2.4, Fig. 3): inserting node S5 at level 1.

use lod_bench::report::{header, row};
use lod_content_tree::{render_ascii, ContentTree, Segment};

fn main() {
    println!("E3 — Fig. 3: insert S5 (level 1) into the content tree\n");
    let mut t = ContentTree::new(Segment::new("S0", 20));
    t.add_at_level(1, Segment::new("S1", 20)).unwrap();
    t.add_at_level(2, Segment::new("S2", 20)).unwrap();
    t.add_at_level(1, Segment::new("S3", 20)).unwrap();
    t.add_at_level(2, Segment::new("S4", 20)).unwrap();

    println!("(a) before:\n{}", render_ascii(&t));
    let s3 = t.find("S3").unwrap();
    t.insert_above(s3, Segment::new("S5", 20)).unwrap();
    println!("(b) after inserting S5 above S3:\n{}", render_ascii(&t));

    let widths = [14usize, 12, 12];
    header(&["quantity", "measured", "paper"], &widths);
    row(
        &[
            "highestLevel".into(),
            t.highest_level().to_string(),
            "2".into(),
        ],
        &widths,
    );
    for (q, paper) in [(0u64, 20u64), (1, 60), (2, 120)] {
        row(
            &[
                format!("LevelNodes[{q}]"),
                t.level_value(q as usize).to_string(),
                paper.to_string(),
            ],
            &widths,
        );
    }
    assert_eq!(t.level_values(), &[20, 60, 120]);
    println!("\nall measured values match Fig. 3.");
}
