//! E4 (Fig. 4): deleting node S5 — "the S5's children will be adopted by
//! S5's siblings S1".

use lod_content_tree::{render_ascii, ContentTree, Segment};

fn main() {
    println!("E4 — Fig. 4: delete S5 (level 1)\n");
    let mut t = ContentTree::new(Segment::new("S0", 20));
    t.add_at_level(1, Segment::new("S1", 20)).unwrap();
    t.add_at_level(2, Segment::new("S2", 20)).unwrap();
    t.add_at_level(1, Segment::new("S3", 20)).unwrap();
    t.add_at_level(2, Segment::new("S4", 20)).unwrap();
    let s3 = t.find("S3").unwrap();
    t.insert_above(s3, Segment::new("S5", 20)).unwrap();

    println!("(a) before (S5 holds S3):\n{}", render_ascii(&t));
    let s5 = t.find("S5").unwrap();
    t.delete_adopt(s5).unwrap();
    println!("(b) after deleting S5:\n{}", render_ascii(&t));

    let s1 = t.find("S1").unwrap();
    let s3 = t.find("S3").unwrap();
    assert_eq!(t.parent(s3).unwrap(), Some(s1));
    t.validate().unwrap();
    println!("S5's child S3 is now a child of S5's sibling S1 — matching Fig. 4.");
}
