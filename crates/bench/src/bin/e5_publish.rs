//! E5 (Fig. 5): the web publishing manager — video path + slide directory
//! in, one synchronized ASF file out.

use lod_bench::report::{header, row, secs};
use lod_core::{synthetic_lecture, Wmps};

fn main() {
    println!("E5 — Fig. 5: publish a lecture (video + slides + annotations → ASF)\n");
    let widths = [10usize, 10, 8, 10, 12, 12, 12];
    header(
        &[
            "minutes",
            "packets",
            "slides",
            "script",
            "media MB",
            "wire MB",
            "duration s",
        ],
        &widths,
    );
    for minutes in [1u64, 5, 15] {
        let lecture = synthetic_lecture(42 + minutes, minutes, 300_000);
        let file = Wmps::new().publish(&lecture).expect("publishing succeeds");
        let media_bytes: u64 = file.packets.iter().map(|p| p.media_bytes() as u64).sum();
        row(
            &[
                minutes.to_string(),
                file.packets.len().to_string(),
                lecture.slide_count().to_string(),
                file.script.len().to_string(),
                format!("{:.2}", media_bytes as f64 / 1e6),
                format!("{:.2}", file.wire_size() as f64 / 1e6),
                secs(file.props.play_duration),
            ],
            &widths,
        );
    }
    println!(
        "\nscript commands = slides + annotations; every slide flip is a temporal\n\
         script command in the header, exactly as §2.1/Fig. 5 describe."
    );
}
