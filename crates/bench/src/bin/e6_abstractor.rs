//! E6 (Fig. 6): the multi-level content tree of a published web
//! presentation, with the per-level duration table.

use lod_bench::report::{header, row};
use lod_content_tree::render_ascii;
use lod_core::{synthetic_lecture, Abstractor};

fn main() {
    println!("E6 — Fig. 6: content tree of a web-based multimedia presentation\n");
    let lecture = synthetic_lecture(6, 45, 300_000);
    let a = Abstractor::new();
    let tree = a
        .tree_from_outline(&lecture.outline)
        .expect("outline is valid");
    println!("{}", render_ascii(&tree));

    let widths = [8usize, 10, 12, 24];
    header(
        &["level", "segments", "duration s", "for a budget of"],
        &widths,
    );
    for r in a.level_table(&tree) {
        // Smallest budget (in whole minutes) that selects this level.
        let budget = (0..=90)
            .map(|m| m * 60)
            .find(|&b| a.level_for_budget(&tree, b) == r.level);
        row(
            &[
                r.level.to_string(),
                r.segments.to_string(),
                r.duration_secs.to_string(),
                budget.map_or("-".into(), |b| format!("≥ {} min", b / 60)),
            ],
            &widths,
        );
    }
    println!("\nhigher level ⇒ longer presentation; the Abstractor picks the deepest\nlevel that fits the student's time budget.");
}
