//! E7 (Fig. 7): replaying the orchestrated presentation — video +
//! synchronized slides + annotations — locally and over the network.

use lod_bench::report::{header, ms, row};
use lod_core::{synthetic_lecture, Wmps};
use lod_player::{PlayerEngine, SkewStats};
use lod_simnet::LinkSpec;

fn main() {
    println!("E7 — Fig. 7: synchronized replay\n");
    let lecture = synthetic_lecture(7, 2, 300_000);
    let wmps = Wmps::new();
    let file = wmps.publish(&lecture).expect("publishing succeeds");

    // Local replay (the paper's screenshot scenario).
    let engine = PlayerEngine::load(file.clone(), None).expect("no DRM");
    let trace = engine.render_ideal();
    println!("local replay:");
    println!("  video frames : {}", trace.video_frames());
    println!("  slide flips  : {}", trace.slide_changes().len());
    println!("  annotations  : {}", trace.annotations().len());
    let skew = SkewStats::of_slides(&trace, 0);
    println!("  slide skew   : max {} ticks (ideal = 0)\n", skew.max);

    // Networked replay over three paths.
    let widths = [12usize, 12, 8, 14, 14];
    header(
        &["link", "startup ms", "stalls", "p95 skew ms", "max skew ms"],
        &widths,
    );
    for (label, link) in [
        ("LAN", LinkSpec::lan()),
        ("broadband", LinkSpec::broadband()),
        ("56k modem", LinkSpec::modem()),
    ] {
        let report = wmps.serve_and_replay(file.clone(), link, 1, 7);
        let m = &report.clients[0];
        let s = &report.skew[0];
        row(
            &[
                label.to_string(),
                ms(m.startup_ticks),
                m.stalls.to_string(),
                ms(s.p95),
                ms(s.max),
            ],
            &widths,
        );
    }
    println!("\nshape: LAN replays cleanly; the modem cannot carry a 332 kbit/s\nlecture and rebuffers — the reason §2.5 offers bandwidth profiles.");
}
