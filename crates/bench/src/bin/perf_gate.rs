//! The perf-regression gate: compares a fresh benchmark report against
//! a committed baseline and fails when any tracked value regressed.
//!
//! Reports (`BENCH_q14.json`, `BENCH_q15.json`) carry a `"tracked"`
//! object of integer values where lower is better — codec/mux medians
//! and the (deterministic) payload-copy counters. Everything outside
//! `"tracked"` is wall-clock context and is ignored here. A fresh value
//! passes when
//!
//! ```text
//! fresh * 1000 <= baseline * (1000 + tolerance_permille)
//! ```
//!
//! integer math only, so the verdict is identical on every machine.
//! Improvements always pass (they are adopted by re-running the bench
//! with `--json` and committing the new baseline — see README, "Perf
//! trajectory"). Every baseline key must be present in the fresh
//! report: a silently dropped metric is a gate failure, not a pass.
//!
//! Usage:
//!   perf_gate --fresh FRESH.json --check-against BASELINE.json \
//!             [--tolerance-permille 150]
//!   perf_gate --self-test
//!
//! `--self-test` runs the comparator against fixtures with an injected
//! regression (must FAIL) and an in-tolerance drift (must PASS) —
//! `scripts/ci.sh` runs it before trusting any real comparison.

use std::fmt::Write as _;
use std::process::ExitCode;

/// Integer entries of the `"tracked"` object, in file order.
fn parse_tracked(source: &str) -> Result<Vec<(String, u64)>, String> {
    let Some(at) = source.find("\"tracked\"") else {
        return Err("no \"tracked\" section".into());
    };
    let rest = &source[at + "\"tracked\"".len()..];
    let open = rest.find('{').ok_or("no object after \"tracked\"")?;
    let body = &rest[open + 1..];
    let close = body.find('}').ok_or("unterminated \"tracked\" object")?;
    let mut out = Vec::new();
    for entry in body[..close].split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (key, value) = entry
            .split_once(':')
            .ok_or_else(|| format!("malformed entry {entry:?}"))?;
        let key = key.trim().trim_matches('"').to_string();
        let value: u64 = value
            .trim()
            .parse()
            .map_err(|_| format!("non-integer tracked value for {key:?}: {}", value.trim()))?;
        out.push((key, value));
    }
    if out.is_empty() {
        return Err("\"tracked\" section is empty".into());
    }
    Ok(out)
}

/// Compares fresh against baseline; returns a human-readable report and
/// whether the gate passes.
fn compare(baseline: &str, fresh: &str, tolerance_permille: u64) -> Result<(String, bool), String> {
    let baseline = parse_tracked(baseline).map_err(|e| format!("baseline: {e}"))?;
    let fresh = parse_tracked(fresh).map_err(|e| format!("fresh: {e}"))?;
    let mut report = String::new();
    let mut pass = true;
    for (key, base) in &baseline {
        let Some((_, new)) = fresh.iter().find(|(k, _)| k == key) else {
            let _ = writeln!(report, "FAIL {key}: missing from fresh report");
            pass = false;
            continue;
        };
        // Lower is better; `base * (1000 + tol)` fits u64 comfortably
        // for ns-scale medians.
        let limit = base * (1000 + tolerance_permille);
        if new * 1000 <= limit {
            let _ = writeln!(report, "ok   {key}: {new} (baseline {base})");
        } else {
            let _ = writeln!(
                report,
                "FAIL {key}: {new} regressed past baseline {base} \
                 (+{tolerance_permille} permille allowed, limit {})",
                limit / 1000
            );
            pass = false;
        }
    }
    Ok((report, pass))
}

/// Fixture-driven check of the comparator itself.
fn self_test() -> Result<(), String> {
    let baseline = r#"{ "bench": "fixture", "tracked": { "a_ns": 1000, "b_allocs": 4 } }"#;
    // +10% on a_ns: inside the default 15% tolerance.
    let drift = r#"{ "bench": "fixture", "tracked": { "a_ns": 1100, "b_allocs": 4 } }"#;
    // +20% on a_ns: a deliberate regression the gate must catch.
    let regressed = r#"{ "bench": "fixture", "tracked": { "a_ns": 1200, "b_allocs": 4 } }"#;
    // b_allocs quadrupled: the copy-counter blow-up must also fail.
    let copies = r#"{ "bench": "fixture", "tracked": { "a_ns": 1000, "b_allocs": 16 } }"#;
    // A tracked key vanished: must fail, not silently pass.
    let dropped = r#"{ "bench": "fixture", "tracked": { "a_ns": 1000 } }"#;

    let (_, pass) = compare(baseline, baseline, 150)?;
    if !pass {
        return Err("identical reports must pass".into());
    }
    let (_, pass) = compare(baseline, drift, 150)?;
    if !pass {
        return Err("in-tolerance drift must pass".into());
    }
    let (report, pass) = compare(baseline, regressed, 150)?;
    if pass {
        return Err(format!("injected +20% regression must fail:\n{report}"));
    }
    let (report, pass) = compare(baseline, copies, 150)?;
    if pass {
        return Err(format!("copy-counter blow-up must fail:\n{report}"));
    }
    let (report, pass) = compare(baseline, dropped, 150)?;
    if pass {
        return Err(format!("dropped tracked key must fail:\n{report}"));
    }
    if compare(r#"{ "untracked": {} }"#, drift, 150).is_ok() {
        return Err("baseline without a tracked section must error".into());
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut fresh = None;
    let mut baseline = None;
    let mut tolerance_permille = 150u64;
    let mut run_self_test = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--fresh" => fresh = Some(args.next().expect("--fresh takes a path")),
            "--check-against" => {
                baseline = Some(args.next().expect("--check-against takes a path"));
            }
            "--tolerance-permille" => {
                tolerance_permille = args
                    .next()
                    .expect("--tolerance-permille takes an integer")
                    .parse()
                    .expect("tolerance must be a non-negative integer");
            }
            "--self-test" => run_self_test = true,
            other => panic!(
                "unknown argument {other} (usage: perf_gate --fresh F.json \
                 --check-against B.json [--tolerance-permille N] | --self-test)"
            ),
        }
    }

    if run_self_test {
        return match self_test() {
            Ok(()) => {
                println!("perf_gate self-test: comparator catches injected regressions — ok");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("perf_gate self-test FAILED: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let (Some(fresh), Some(baseline)) = (fresh, baseline) else {
        eprintln!("usage: perf_gate --fresh F.json --check-against B.json | --self-test");
        return ExitCode::FAILURE;
    };
    let fresh_text = std::fs::read_to_string(&fresh)
        .unwrap_or_else(|e| panic!("cannot read fresh report {fresh}: {e}"));
    let baseline_text = std::fs::read_to_string(&baseline)
        .unwrap_or_else(|e| panic!("cannot read baseline {baseline}: {e}"));
    match compare(&baseline_text, &fresh_text, tolerance_permille) {
        Ok((report, pass)) => {
            print!(
                "perf gate: {fresh} vs baseline {baseline} \
                 (tolerance +{tolerance_permille} permille)\n{report}"
            );
            if pass {
                println!("perf gate: PASS");
                ExitCode::SUCCESS
            } else {
                println!(
                    "perf gate: FAIL — if the regression is intended, re-run the bench \
                     with --json and commit the new baseline (see README, Perf trajectory)"
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("perf gate: cannot compare: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tracked_integers_in_order() {
        let parsed =
            parse_tracked(r#"{ "bench": "x", "tracked": { "a": 1, "b": 2 }, "untracked": {} }"#)
                .unwrap();
        assert_eq!(parsed, vec![("a".into(), 1), ("b".into(), 2)]);
    }

    #[test]
    fn rejects_float_tracked_values() {
        let err = parse_tracked(r#"{ "tracked": { "a": 1.5 } }"#).unwrap_err();
        assert!(err.contains("non-integer"), "{err}");
    }

    #[test]
    fn boundary_is_inclusive() {
        // Exactly +15.0% passes; one more ns fails.
        let base = r#"{ "tracked": { "a": 1000 } }"#;
        let at_limit = r#"{ "tracked": { "a": 1150 } }"#;
        let over = r#"{ "tracked": { "a": 1151 } }"#;
        assert!(compare(base, at_limit, 150).unwrap().1);
        assert!(!compare(base, over, 150).unwrap().1);
    }

    #[test]
    fn improvements_and_extra_fresh_keys_pass() {
        let base = r#"{ "tracked": { "a": 1000 } }"#;
        let fresh = r#"{ "tracked": { "a": 10, "brand_new": 99999 } }"#;
        assert!(compare(base, fresh, 150).unwrap().1);
    }

    #[test]
    fn self_test_fixture_suite_holds() {
        self_test().unwrap();
    }
}
