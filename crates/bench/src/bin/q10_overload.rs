//! Q10: the flash crowd — 256 students charging a 4-relay tier with a
//! constrained origin uplink, graded on how gracefully the system sheds
//! load it cannot carry.
//!
//! Three rows, same crowd, same wires:
//!
//! * `unprotected` — no admission, no degradation: everyone is accepted
//!   and the shared links drown; sessions crawl and rebuffer.
//! * `admit_only`  — admission budgets at the origin and every relay:
//!   the overflow is explicitly bounced with Busy (and steered between
//!   relays by the redirect manager) until their patience runs out.
//! * `admit_degrade` — the full ladder: admission, plus profile
//!   downshift at the origin (video thins, audio and script commands
//!   keep flowing), plus upstream circuit breakers at the relays.
//!   Downshifted sessions commit less bitrate, so bounced students are
//!   readmitted into the freed budget — strictly fewer are shed than
//!   under admission alone, and nobody fails silently.
//!
//! Everything is seeded; two runs with the same `--seed` emit
//! byte-identical reports (checked by `scripts/ci.sh`).
//!
//! Usage: `q10_overload [--seed N] [--json PATH]`

use std::fmt::Write as _;

use lod_bench::report::{header, row};
use lod_core::{
    synthetic_lecture, AdmissionPolicy, BreakerPolicy, DegradePolicy, RelayTierConfig, Wmps,
    WmpsReport,
};
use lod_simnet::LinkSpec;
use lod_streaming::RetryPolicy;

const STUDENTS: usize = 256;
const RELAYS: usize = 4;
const SECOND: u64 = 10_000_000; // ticks
/// Seats each relay admits.
const RELAY_SEATS: u32 = 12;
/// Seats the redirect manager steers into each relay — deliberately a
/// couple past the admission budget so the bench exercises the relay
/// Busy bounce and the sibling steering that follows it.
const RELAY_STEER: usize = 14;
/// Full-rate seats the origin's bitrate budget covers.
const ORIGIN_SEATS: u64 = 16;

/// One protection posture against the same flash crowd.
struct Scenario {
    name: &'static str,
    admission: bool,
    degrade: bool,
}

fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "unprotected",
            admission: false,
            degrade: false,
        },
        Scenario {
            name: "admit_only",
            admission: true,
            degrade: false,
        },
        Scenario {
            name: "admit_degrade",
            admission: true,
            degrade: true,
        },
    ]
}

/// Everything one run is graded on, integers only so the JSON report is
/// byte-for-byte reproducible.
struct Outcome {
    name: &'static str,
    completed: usize,
    shed: usize,
    hard_failures: usize,
    degraded_sessions: u64,
    downshifts: u64,
    upshifts: u64,
    busy_bounces: u64,
    origin_shed: u64,
    relay_shed: u64,
    breaker_opens: u64,
    fetches_suppressed: u64,
    worst_rebuffer_permille: u64,
    session_ms: u64,
}

impl Outcome {
    fn grade(name: &'static str, report: &WmpsReport, play_duration: u64) -> Self {
        let relay = report.relay.as_ref();
        Self {
            name,
            completed: report.completed_sessions(),
            shed: report.shed_clients(),
            hard_failures: report.hard_failures(),
            degraded_sessions: report.degraded_sessions(),
            downshifts: report.server.downshifts,
            upshifts: report.server.upshifts,
            busy_bounces: report.clients.iter().map(|c| c.busy_bounces).sum(),
            origin_shed: report.server.sessions_shed,
            relay_shed: relay.map_or(0, |r| r.metrics.sessions_shed),
            breaker_opens: relay.map_or(0, |r| r.metrics.breaker_opens),
            fetches_suppressed: relay.map_or(0, |r| r.metrics.fetches_suppressed),
            // Integer per-mille so no float ever reaches the report
            // (shed clients never played, so their zero stall time would
            // only dilute the max).
            worst_rebuffer_permille: report
                .clients
                .iter()
                .filter(|c| !c.shed)
                .map(|c| c.rebuffer_permille(play_duration.max(1)))
                .max()
                .unwrap_or(0),
            session_ms: report.session_ticks / 10_000,
        }
    }

    fn json(&self, out: &mut String) {
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"completed\": {}, \"shed\": {}, \
             \"hard_failures\": {}, \"degraded_sessions\": {}, \
             \"downshifts\": {}, \"upshifts\": {}, \"busy_bounces\": {}, \
             \"origin_shed\": {}, \"relay_shed\": {}, \"breaker_opens\": {}, \
             \"fetches_suppressed\": {}, \"worst_rebuffer_permille\": {}, \
             \"session_ms\": {}}}",
            self.name,
            self.completed,
            self.shed,
            self.hard_failures,
            self.degraded_sessions,
            self.downshifts,
            self.upshifts,
            self.busy_bounces,
            self.origin_shed,
            self.relay_shed,
            self.breaker_opens,
            self.fetches_suppressed,
            self.worst_rebuffer_permille,
            self.session_ms,
        );
    }
}

fn parse_args() -> (u64, Option<String>) {
    let mut seed = 7u64;
    let mut json = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed takes an integer");
            }
            "--json" => json = Some(args.next().expect("--json takes a path")),
            other => {
                panic!("unknown argument {other} (usage: q10_overload [--seed N] [--json PATH])")
            }
        }
    }
    (seed, json)
}

fn main() {
    let (seed, json_path) = parse_args();
    println!("Q10 — flash crowd: overload protection & graceful degradation");
    println!(
        "({STUDENTS} students in waves of 32 every 2 s, {RELAYS} relays, \
         1-minute lecture, seed {seed})\n"
    );
    let lecture = synthetic_lecture(55, 1, 300_000);
    let wmps = Wmps::new();
    let file = wmps.publish(&lecture).expect("publish");
    let play_duration = file.props.play_duration;
    let nominal = u64::from(file.props.max_bitrate).max(64_000);
    // The crowd is ~4x the seated capacity: 4 relays x RELAY_SEATS plus
    // ORIGIN_SEATS full-rate seats at the origin.
    let seats = RELAYS as u64 * u64::from(RELAY_SEATS) + ORIGIN_SEATS;
    println!(
        "nominal profile {} bit/s; {seats} full-rate seats for {STUDENTS} students\n",
        nominal
    );
    // The origin uplink is sized *below* the origin's own admission
    // budget, so admitted sessions congest it and (in the last row) the
    // degrade ladder has something to relieve. Relay links carry exactly
    // their seat budget.
    let uplink = LinkSpec::broadband().with_bandwidth(6_000_000);
    let relay_link = LinkSpec::broadband().with_bandwidth(4_000_000);
    let access = LinkSpec::lan();

    let widths = [14usize, 10, 6, 6, 11, 9, 8, 8, 8, 11];
    header(
        &[
            "posture",
            "complete",
            "shed",
            "hard",
            "downshifts",
            "upshifts",
            "bounces",
            "breaker",
            "rebuf\u{2030}",
            "session ms",
        ],
        &widths,
    );

    let mut outcomes = Vec::new();
    for sc in scenarios() {
        let admission = sc.admission.then(|| {
            (
                AdmissionPolicy::new(64, nominal * ORIGIN_SEATS),
                AdmissionPolicy::new(RELAY_SEATS, nominal * u64::from(RELAY_SEATS)),
            )
        });
        let cfg = RelayTierConfig {
            relays: RELAYS,
            relay_link,
            origin_admission: admission.map(|(o, _)| o),
            relay_admission: admission.map(|(_, r)| r),
            relay_capacity_sessions: sc.admission.then_some(RELAY_STEER),
            degrade: sc.degrade.then(DegradePolicy::default),
            breaker: sc.degrade.then(BreakerPolicy::upstream),
            arrival_wave: Some((32, 2 * SECOND)),
            client_retry: Some(RetryPolicy::client()),
            idle_timeout: Some(120 * SECOND),
            ..RelayTierConfig::default()
        };
        let report = wmps.serve_with_relays(file.clone(), uplink, access, STUDENTS, seed, &cfg);
        let o = Outcome::grade(sc.name, &report, play_duration);
        row(
            &[
                o.name.to_string(),
                format!("{}/{}", o.completed, STUDENTS),
                o.shed.to_string(),
                o.hard_failures.to_string(),
                o.downshifts.to_string(),
                o.upshifts.to_string(),
                o.busy_bounces.to_string(),
                o.breaker_opens.to_string(),
                o.worst_rebuffer_permille.to_string(),
                o.session_ms.to_string(),
            ],
            &widths,
        );
        outcomes.push(o);
    }

    let unprotected = &outcomes[0];
    let admit_only = &outcomes[1];
    let admit_degrade = &outcomes[2];
    // The ladder's whole promise: under a 4x crowd nobody fails silently
    // — every student played, downshifted-but-played, or was told Busy.
    assert_eq!(unprotected.shed, 0, "without admission nobody is ever shed");
    assert_eq!(
        admit_degrade.hard_failures, 0,
        "admit+degrade must leave zero silent failures"
    );
    assert_eq!(
        admit_degrade.completed + admit_degrade.shed,
        STUDENTS,
        "every student accounted for: completed or explicitly shed"
    );
    assert!(
        admit_degrade.shed < admit_only.shed,
        "downshifting must free budget and readmit bounced students: \
         {} shed with degradation vs {} without",
        admit_degrade.shed,
        admit_only.shed
    );
    assert!(
        admit_degrade.downshifts >= 1 && admit_degrade.degraded_sessions >= 1,
        "the congested uplink must actually trigger degradation"
    );
    println!(
        "\nPASS: admit+degrade — {}/{STUDENTS} completed, {} explicitly shed, 0 silent failures",
        admit_degrade.completed, admit_degrade.shed
    );
    println!(
        "PASS: degradation readmits — {} shed vs {} under admission alone",
        admit_degrade.shed, admit_only.shed
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"students\": {STUDENTS},");
    let _ = writeln!(json, "  \"relays\": {RELAYS},");
    let _ = writeln!(json, "  \"nominal_bps\": {nominal},");
    let _ = writeln!(json, "  \"seats\": {seats},");
    json.push_str("  \"scenarios\": [\n");
    for (i, o) in outcomes.iter().enumerate() {
        o.json(&mut json);
        json.push_str(if i + 1 < outcomes.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    if let Some(path) = json_path {
        std::fs::write(&path, &json).expect("write json report");
        println!("\nreport written to {path}");
    } else {
        println!("\n{json}");
    }

    println!(
        "shape: the same crowd hits the same wires three times. Unprotected,\n\
         everyone is accepted and the links drown in rebuffering. Admission\n\
         alone keeps the admitted sessions healthy but turns the overflow\n\
         away. With degradation, congested sessions drop one bandwidth rung\n\
         (audio and slide flips intact), the freed budget readmits bounced\n\
         students, and the shed count falls."
    );
}
