//! Q11: observability — replay one seeded overload + chaos run through
//! the structured event recorder and grade the *trace itself*.
//!
//! Q9 and Q10 grade outcomes (who completed, who was shed); this
//! experiment grades the story the system tells about itself. A flash
//! crowd charges a constrained relay tier while the chaos plan yanks
//! cables, with every emitter armed: the run must produce an event log
//! whose causal structure checks out against the aggregate counters.
//!
//! Gates:
//!
//! * every `downshift` is preceded by a `backlog_high` sample for the
//!   same client (no unheralded downshifts),
//! * every `recovery` closes an `outage_start` opened earlier (no
//!   unmatched recoveries),
//! * the event log's admission-shed count per node agrees with
//!   `ServerMetrics::sessions_shed` and the relays' own counters,
//! * the log survives a JSONL round trip, and
//! * the scenario actually exercised the emitters: at least one
//!   downshift and one recovered outage appear in the log.
//!
//! Everything is seeded; two runs with the same `--seed` emit
//! byte-identical JSONL, exposition and JSON (checked by
//! `scripts/ci.sh`).
//!
//! Usage: `q11_observability [--seed N] [--json PATH] [--events PATH]
//! [--prom PATH]`

use std::fmt::Write as _;

use lod_core::{
    check_causal, parse_jsonl, session_timelines, synthetic_lecture, worst_by_stall,
    AdmissionPolicy, BreakerPolicy, ChaosSpec, DegradePolicy, Recorder, RelayTierConfig, Wmps,
};
use lod_simnet::LinkSpec;
use lod_streaming::RetryPolicy;

const STUDENTS: usize = 96;
const RELAYS: usize = 4;
const SECOND: u64 = 10_000_000; // ticks
/// Seats each relay admits.
const RELAY_SEATS: u32 = 12;
/// Seats the redirect manager steers into each relay.
const RELAY_STEER: usize = 14;
/// Full-rate seats the origin's bitrate budget covers.
const ORIGIN_SEATS: u64 = 16;

fn parse_args() -> (u64, Option<String>, Option<String>, Option<String>) {
    let mut seed = 7u64;
    let mut json = None;
    let mut events = None;
    let mut prom = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed takes an integer");
            }
            "--json" => json = Some(args.next().expect("--json takes a path")),
            "--events" => events = Some(args.next().expect("--events takes a path")),
            "--prom" => prom = Some(args.next().expect("--prom takes a path")),
            other => panic!(
                "unknown argument {other} (usage: q11_observability [--seed N] \
                 [--json PATH] [--events PATH] [--prom PATH])"
            ),
        }
    }
    (seed, json, events, prom)
}

fn main() {
    let (seed, json_path, events_path, prom_path) = parse_args();
    println!("Q11 — observability: causal trace invariants under overload + chaos");
    println!(
        "({STUDENTS} students in waves of 32 every 2 s, {RELAYS} relays, \
         1-minute lecture, seed {seed})\n"
    );
    let lecture = synthetic_lecture(55, 1, 300_000);
    let wmps = Wmps::new();
    let file = wmps.publish(&lecture).expect("publish");
    let play_duration = file.props.play_duration;
    let nominal = u64::from(file.props.max_bitrate).max(64_000);
    // Same squeeze as Q10's admit_degrade row: the uplink is sized below
    // the origin's admission budget so degradation has work to do, and
    // the chaos plan yanks two access cables mid-lecture so the retry
    // layer logs real outages.
    let uplink = LinkSpec::broadband().with_bandwidth(6_000_000);
    let relay_link = LinkSpec::broadband().with_bandwidth(4_000_000);
    let access = LinkSpec::lan();
    let recorder = Recorder::new();
    let cfg = RelayTierConfig {
        relays: RELAYS,
        relay_link,
        origin_admission: Some(AdmissionPolicy::new(64, nominal * ORIGIN_SEATS)),
        relay_admission: Some(AdmissionPolicy::new(
            RELAY_SEATS,
            nominal * u64::from(RELAY_SEATS),
        )),
        relay_capacity_sessions: Some(RELAY_STEER),
        degrade: Some(DegradePolicy::default()),
        breaker: Some(BreakerPolicy::upstream()),
        arrival_wave: Some((32, 2 * SECOND)),
        client_retry: Some(RetryPolicy::client()),
        idle_timeout: Some(120 * SECOND),
        chaos: ChaosSpec {
            // First-wave students: admitted and playing when the cable
            // goes, so each flap opens an outage the log must close.
            access_flaps: vec![(5 * SECOND, 3 * SECOND, 1), (9 * SECOND, 2 * SECOND, 2)],
            ..ChaosSpec::default()
        },
        recorder: recorder.clone(),
        ..RelayTierConfig::default()
    };
    let report = wmps.serve_with_relays(file, uplink, access, STUDENTS, seed, &cfg);

    let events = recorder.events();
    let causal = check_causal(&events);
    let origin = recorder.node_by_label("origin").expect("origin labelled");
    let relay_shed = report.relay.as_ref().map_or(0, |r| r.metrics.sessions_shed);

    println!(
        "run: {}/{STUDENTS} completed, {} shed, {} downshift(s), {} recover(ies), \
         {} event(s) recorded\n",
        report.completed_sessions(),
        report.shed_clients(),
        report.server.downshifts,
        report.recoveries.len(),
        events.len()
    );

    // Gate 1: causal invariants over the whole log.
    assert_eq!(
        causal.unheralded_downshifts, 0,
        "every downshift must be preceded by a backlog-high sample: {causal:?}"
    );
    assert_eq!(
        causal.unmatched_recoveries, 0,
        "every recovery must close an outage-start opened earlier: {causal:?}"
    );
    println!(
        "PASS: causal invariants — {} downshift(s) heralded, {} recover(ies) matched",
        causal.downshifts, causal.recoveries
    );

    // Gate 2: the log agrees with the aggregate counters.
    assert_eq!(
        causal.sheds_at(origin),
        report.server.sessions_shed,
        "origin sheds in the event log vs ServerMetrics"
    );
    assert_eq!(
        causal.total_sheds(),
        report.server.sessions_shed + relay_shed,
        "total admission-shed events vs server + relay counters"
    );
    println!(
        "PASS: log vs counters — {} origin shed(s), {} relay shed(s), both ledgers agree",
        report.server.sessions_shed, relay_shed
    );

    // Gate 3: the scenario actually exercised the emitters.
    assert!(
        causal.downshifts >= 1,
        "the congested uplink must trigger at least one downshift"
    );
    assert!(
        causal.recoveries >= 1,
        "the yanked cables must force at least one recovered outage"
    );

    // Gate 4: the log survives a JSONL round trip.
    let jsonl = recorder.to_jsonl();
    assert_eq!(
        parse_jsonl(&jsonl).expect("log parses"),
        events,
        "JSONL round trip"
    );
    println!("PASS: {} event(s) round-trip through JSONL\n", events.len());

    let timelines = session_timelines(&events);
    println!("worst sessions by stalled time:");
    for t in worst_by_stall(&timelines, 5) {
        print!("{}", t.render());
    }

    // Integers only, so the JSON report is byte-for-byte reproducible.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"students\": {STUDENTS},");
    let _ = writeln!(json, "  \"relays\": {RELAYS},");
    let _ = writeln!(json, "  \"events\": {},", events.len());
    let _ = writeln!(json, "  \"sessions\": {},", timelines.len());
    let _ = writeln!(json, "  \"completed\": {},", report.completed_sessions());
    let _ = writeln!(json, "  \"shed\": {},", report.shed_clients());
    let _ = writeln!(json, "  \"hard_failures\": {},", report.hard_failures());
    let _ = writeln!(json, "  \"downshifts\": {},", causal.downshifts);
    let _ = writeln!(json, "  \"upshifts\": {},", report.server.upshifts);
    let _ = writeln!(json, "  \"recoveries\": {},", causal.recoveries);
    let _ = writeln!(json, "  \"origin_shed\": {},", report.server.sessions_shed);
    let _ = writeln!(json, "  \"relay_shed\": {relay_shed},");
    let _ = writeln!(json, "  \"faults_applied\": {},", report.faults_applied);
    let _ = writeln!(
        json,
        "  \"worst_rebuffer_permille\": {},",
        report.worst_rebuffer_permille(play_duration.max(1))
    );
    let _ = writeln!(json, "  \"session_ms\": {}", report.session_ticks / 10_000);
    json.push_str("}\n");
    if let Some(path) = json_path {
        std::fs::write(&path, &json).expect("write json report");
        println!("\nreport written to {path}");
    } else {
        println!("\n{json}");
    }
    if let Some(path) = events_path {
        std::fs::write(&path, &jsonl).expect("write event log");
        println!("event log written to {path}");
    }
    if let Some(path) = prom_path {
        std::fs::write(&path, recorder.prometheus()).expect("write exposition");
        println!("exposition written to {path}");
    }

    println!(
        "\nshape: the same ladder Q10 grades by outcome, graded here by its\n\
         trace. The recorder stamps every admission refusal, downshift,\n\
         stall, retry and fault strike in driver order; the causal checker\n\
         then proves the log is a story — each downshift rooted in a\n\
         backlog sample, each recovery closing a real outage — and the\n\
         per-node ledgers reconcile against the aggregate counters."
    );
}
