//! Q12: origin failover — kill the origin mid-lecture and grade the
//! warm-standby takeover.
//!
//! 64 students stream a one-minute lecture through a 4-relay tier; 20 s
//! in, the origin node crashes for good, wiping its volatile session
//! state. The standby has been applying the replicated checkpoint
//! journal all along; its heartbeat monitor counts the silence, declares
//! the origin dead after the miss threshold, and the driver promotes it
//! at fencing epoch 2 — relays re-point their uplinks, the redirect
//! manager re-fronts, clients re-home and resume from their checkpointed
//! horizons.
//!
//! Gates (all in-binary):
//!
//! * all 64 students complete — an origin crash mid-lecture costs nobody
//!   their session,
//! * the standby was actually promoted and migrated checkpointed
//!   sessions (the drill is not vacuous),
//! * zero restarts from packet 0 on the standby: every migrated session
//!   resumes `Play{from>0}` at its checkpointed horizon,
//! * zero stale-epoch packets after promotion (fencing holds; no
//!   split-brain),
//! * the causal trace checks out: the promotion is heralded by a full
//!   run of heartbeat misses, every migrated session has a prior
//!   checkpoint, and no second node ever serves the promoted epoch,
//! * the event log survives a JSONL round trip.
//!
//! Everything is seeded; two runs with the same `--seed` emit
//! byte-identical JSONL, exposition and JSON (checked by
//! `scripts/ci.sh`).
//!
//! Usage: `q12_failover [--seed N] [--json PATH] [--events PATH]
//! [--prom PATH]`

use std::fmt::Write as _;

use lod_core::{
    check_causal, parse_jsonl, session_timelines, synthetic_lecture, worst_by_stall,
    AdmissionPolicy, ChaosSpec, DegradePolicy, FailoverConfig, Recorder, RelayTierConfig, Wmps,
};
use lod_simnet::LinkSpec;
use lod_streaming::RetryPolicy;

const STUDENTS: usize = 64;
const RELAYS: usize = 4;
const SECOND: u64 = 10_000_000; // ticks
/// Seats the redirect manager steers into each relay: half the class
/// streams via relays, the other half sits on the origin itself — the
/// sessions the failover must migrate.
const RELAY_STEER: usize = 8;
/// Tick the origin node crashes at (for good).
const ORIGIN_DIES_AT: u64 = 20 * SECOND;

fn parse_args() -> (u64, Option<String>, Option<String>, Option<String>) {
    let mut seed = 7u64;
    let mut json = None;
    let mut events = None;
    let mut prom = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed takes an integer");
            }
            "--json" => json = Some(args.next().expect("--json takes a path")),
            "--events" => events = Some(args.next().expect("--events takes a path")),
            "--prom" => prom = Some(args.next().expect("--prom takes a path")),
            other => panic!(
                "unknown argument {other} (usage: q12_failover [--seed N] \
                 [--json PATH] [--events PATH] [--prom PATH])"
            ),
        }
    }
    (seed, json, events, prom)
}

fn main() {
    let (seed, json_path, events_path, prom_path) = parse_args();
    println!("Q12 — origin failover: warm-standby promotion under a mid-lecture crash");
    println!(
        "({STUDENTS} students, {RELAYS} relays, 1-minute lecture, origin dies at \
         {} s, seed {seed})\n",
        ORIGIN_DIES_AT / SECOND
    );
    let lecture = synthetic_lecture(55, 1, 300_000);
    let wmps = Wmps::new();
    let file = wmps.publish(&lecture).expect("publish");
    let play_duration = file.props.play_duration;
    let nominal = u64::from(file.props.max_bitrate).max(64_000);
    // Headroom matters: half the class streams straight off the origin,
    // and heartbeats share the uplink with their media. A saturated
    // uplink queues the Pongs behind two seconds of backlog and the
    // detector false-positives on a *live* origin — so the uplink is
    // sized above the startup burst (32 sessions × 2× preroll pacing),
    // and the miss threshold buys a full second of silence.
    let uplink = LinkSpec::broadband().with_bandwidth(40_000_000);
    let relay_link = LinkSpec::broadband().with_bandwidth(10_000_000);
    let access = LinkSpec::lan();
    let recorder = Recorder::new();
    let cfg = RelayTierConfig {
        relays: RELAYS,
        relay_link,
        // Seats for the whole class at the origin (and, replicated, at
        // the standby): the drill grades failover, not admission — but
        // the seat budget must *survive* the migration, so it stays
        // armed.
        origin_admission: Some(AdmissionPolicy::new(
            STUDENTS as u32,
            nominal * STUDENTS as u64,
        )),
        relay_capacity_sessions: Some(RELAY_STEER),
        degrade: Some(DegradePolicy::default()),
        client_retry: Some(RetryPolicy::client()),
        idle_timeout: Some(120 * SECOND),
        chaos: ChaosSpec {
            origin_down: vec![(ORIGIN_DIES_AT, u64::MAX)],
            ..ChaosSpec::default()
        },
        failover: Some(FailoverConfig {
            heartbeat_interval: 2_000_000, // 200 ms beats
            miss_threshold: 5,             // dead after 1 s of silence
            checkpoint_every: 10_000_000,  // journal progress every 1 s
        }),
        recorder: recorder.clone(),
        ..RelayTierConfig::default()
    };
    let report = wmps.serve_with_relays(file, uplink, access, STUDENTS, seed, &cfg);

    let events = recorder.events();
    let causal = check_causal(&events);
    let fo = report.failover.expect("failover tier ran");

    println!(
        "run: {}/{STUDENTS} completed, promoted at {} ms (epoch {}), \
         {} session(s) migrated, {} checkpoint(s) replicated, {} event(s) recorded\n",
        report.completed_sessions(),
        fo.promoted_at.unwrap_or(0) / 10_000,
        fo.epoch,
        fo.sessions_migrated,
        fo.checkpoints_replicated,
        events.len()
    );

    // Gate 1: nobody lost the lecture to the crash.
    assert_eq!(
        report.completed_sessions(),
        STUDENTS,
        "an origin crash must cost nobody their session: {:?}",
        report.clients
    );
    println!("PASS: {STUDENTS}/{STUDENTS} students completed across the failover");

    // Gate 2: the drill is not vacuous — a real promotion migrated real
    // sessions.
    assert!(fo.promoted_at.is_some(), "the standby must be promoted");
    assert_eq!(fo.epoch, 2, "exactly one promotion past the primary");
    assert!(
        fo.sessions_migrated > 0,
        "checkpointed sessions must migrate: {fo:?}"
    );
    assert!(fo.checkpoints_replicated > 0);
    println!(
        "PASS: promotion at epoch {} migrated {} session(s)",
        fo.epoch, fo.sessions_migrated
    );

    // Gate 3: zero restarts from packet 0 — every migrated session
    // resumed from its checkpointed horizon.
    assert_eq!(
        fo.standby.plays_from_zero, 0,
        "migrated sessions must resume from their horizons, never from 0: {fo:?}"
    );
    println!("PASS: zero restarts from packet 0 on the promoted standby");

    // Gate 4: fencing held — nothing carrying the old epoch reached
    // anyone after the promotion.
    assert_eq!(
        fo.stale_epoch_replies, 0,
        "no stale-epoch packets may survive the promotion: {fo:?}"
    );
    println!("PASS: zero stale-epoch packets after promotion");

    // Gate 5: the causal story checks out.
    assert!(causal.holds(), "causal invariants must hold: {causal:?}");
    assert_eq!(causal.promotions, 1, "exactly one promotion in the log");
    assert_eq!(
        causal.unheralded_promotions, 0,
        "the promotion must be heralded by a full run of heartbeat misses"
    );
    assert_eq!(
        causal.unmatched_migrations, 0,
        "every migrated session must have a prior checkpoint in the log"
    );
    assert_eq!(
        causal.epoch_conflicts, 0,
        "no two nodes may ever serve the same epoch"
    );
    println!(
        "PASS: causal trace — 1 promotion heralded, {} migration(s) matched, 0 epoch conflicts",
        causal.migrations
    );

    // Gate 6: the log survives a JSONL round trip.
    let jsonl = recorder.to_jsonl();
    assert_eq!(
        parse_jsonl(&jsonl).expect("log parses"),
        events,
        "JSONL round trip"
    );
    println!("PASS: {} event(s) round-trip through JSONL\n", events.len());

    let timelines = session_timelines(&events);
    println!("worst sessions by stalled time:");
    for t in worst_by_stall(&timelines, 5) {
        print!("{}", t.render());
    }

    // Integers only, so the JSON report is byte-for-byte reproducible.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"students\": {STUDENTS},");
    let _ = writeln!(json, "  \"relays\": {RELAYS},");
    let _ = writeln!(json, "  \"origin_dies_ms\": {},", ORIGIN_DIES_AT / 10_000);
    let _ = writeln!(
        json,
        "  \"promoted_ms\": {},",
        fo.promoted_at.unwrap_or(0) / 10_000
    );
    let _ = writeln!(json, "  \"epoch\": {},", fo.epoch);
    let _ = writeln!(json, "  \"completed\": {},", report.completed_sessions());
    let _ = writeln!(json, "  \"sessions_migrated\": {},", fo.sessions_migrated);
    let _ = writeln!(
        json,
        "  \"checkpoints_replicated\": {},",
        fo.checkpoints_replicated
    );
    let _ = writeln!(
        json,
        "  \"checkpoints_emitted\": {},",
        report.server.checkpoints_emitted
    );
    let _ = writeln!(
        json,
        "  \"plays_from_zero\": {},",
        fo.standby.plays_from_zero
    );
    let _ = writeln!(
        json,
        "  \"stale_epoch_replies\": {},",
        fo.stale_epoch_replies
    );
    let _ = writeln!(json, "  \"heartbeat_misses\": {},", causal.heartbeat_misses);
    let _ = writeln!(json, "  \"events\": {},", events.len());
    let _ = writeln!(json, "  \"faults_applied\": {},", report.faults_applied);
    let _ = writeln!(
        json,
        "  \"worst_rebuffer_permille\": {},",
        report.worst_rebuffer_permille(play_duration.max(1))
    );
    let _ = writeln!(json, "  \"session_ms\": {}", report.session_ticks / 10_000);
    json.push_str("}\n");
    if let Some(path) = json_path {
        std::fs::write(&path, &json).expect("write json report");
        println!("\nreport written to {path}");
    } else {
        println!("\n{json}");
    }
    if let Some(path) = events_path {
        std::fs::write(&path, &jsonl).expect("write event log");
        println!("event log written to {path}");
    }
    if let Some(path) = prom_path {
        std::fs::write(&path, recorder.prometheus()).expect("write exposition");
        println!("exposition written to {path}");
    }

    println!(
        "\nshape: the paper's single origin is the system's one unforgivable\n\
         failure point. The warm standby buys it back with integers only —\n\
         compact session checkpoints journaled on every transition,\n\
         replicated each driver step, a tick-counted heartbeat verdict, and\n\
         a monotonic fencing epoch stamped into every reply so the healed\n\
         origin demotes itself instead of splitting the brain. Students\n\
         notice a sub-second gap, then resume exactly where they left off."
    );
}
