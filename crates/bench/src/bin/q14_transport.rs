//! Q14: the transport tier on real sockets — first entry in the perf
//! trajectory.
//!
//! Two measurements, both on the production `UdpTransport` path:
//!
//! * **Codec micro-bench** — median ns to encode and decode
//!   representative `Wire` messages (a 32-packet `Segment` near the
//!   datagram ceiling, and a small control `Request`), since the UDP
//!   backend runs the codec on every frame on the hot path.
//! * **Loopback deployment** — origin + 2 relays + 32 clients as real
//!   threads on localhost sockets completing a one-minute lecture;
//!   reported as frames/sec and bytes/sec through the transports, plus
//!   the run's reorder counters.
//!
//! The JSON report is split into two sections so the CI perf gate can
//! consume it:
//!
//! * `"tracked"` — integer medians and frame sizes that are stable on a
//!   quiet machine. `scripts/ci.sh` re-runs this bench and fails when a
//!   fresh tracked value regresses more than the tolerance against the
//!   committed `BENCH_q14.json` (see `perf_gate`). Lower is better for
//!   every tracked key.
//! * `"untracked"` — wall-clock loopback numbers (seconds, frames/sec,
//!   machine-dependent counters). Recorded for the perf trajectory but
//!   never gated: two runs of the loopback deployment legitimately
//!   differ by scheduler whim.
//!
//! Usage: `q14_transport [--json PATH] [--codec-only]`
//!
//! `--codec-only` skips the loopback deployment (the slow, untracked
//! half) — what the CI perf gate uses to refresh tracked medians
//! quickly.

use std::fmt::Write as _;
use std::time::Instant;

use lod_core::{serve_loopback_udp, synthetic_lecture, LoopbackConfig, Wmps};
use lod_streaming::wire::{ControlRequest, Wire};
use lod_transport::{decode_frame, encode_frame, WireCodec};

struct Args {
    json: Option<String>,
    codec_only: bool,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        json: None,
        codec_only: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => parsed.json = Some(args.next().expect("--json takes a path")),
            "--codec-only" => parsed.codec_only = true,
            other => panic!(
                "unknown argument {other} (usage: q14_transport [--json PATH] [--codec-only])"
            ),
        }
    }
    parsed
}

/// Median ns per call of `f` over `iters` timed samples.
fn median_ns(iters: usize, mut f: impl FnMut()) -> u64 {
    let mut samples: Vec<u64> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// A 32 × 1400 B segment, the frame the relay tier actually ships.
fn big_segment() -> Wire {
    let packets = (0..32)
        .map(|i| lod_asf::DataPacket {
            send_time: u64::from(i) * 10_000,
            payloads: vec![lod_asf::Payload {
                stream: 1,
                object_id: i,
                offset: 0,
                total: 1_400,
                pres_time: u64::from(i) * 10_000,
                data: vec![0x5A; 1_400].into(),
            }],
        })
        .collect();
    Wire::Segment(lod_streaming::wire::SegmentData {
        content: "lecture".into(),
        segment: 5,
        base_packet: 160,
        total_packets: 1_600,
        total_segments: 50,
        segment_packets: 32,
        packet_size: 1_400,
        packets,
        header: None,
        start_packet: Some(160),
        at_time: Some(7_000_000),
        epoch: 1,
        trace: None,
    })
}

fn main() {
    let args = parse_args();
    println!("Q14 — transport perf: codec medians + loopback UDP throughput\n");

    // Codec micro-bench. Warm up, then take medians.
    const ITERS: usize = 2_000;
    let seg = big_segment();
    let ctrl = Wire::Request(ControlRequest::FetchSegment {
        content: "lecture".into(),
        segment: 5,
        at_time: Some(7_000_000),
        want_header: false,
        trace: None,
    });
    let seg_payload = seg.to_frame_payload();
    let seg_frame = encode_frame(1, 0, false, &seg_payload);
    let ctrl_payload = ctrl.to_frame_payload();
    let ctrl_frame = encode_frame(1, 0, true, &ctrl_payload);

    let enc_segment_ns = median_ns(ITERS, || {
        std::hint::black_box(encode_frame(1, 0, false, &seg.to_frame_payload()));
    });
    let dec_segment_ns = median_ns(ITERS, || {
        let (_, payload) = decode_frame(std::hint::black_box(&seg_frame)).expect("frame");
        std::hint::black_box(Wire::from_frame_payload(payload).expect("payload"));
    });
    // The production receive path: one allocation per datagram, then
    // zero-copy payload views into it.
    let dec_segment_shared_ns = median_ns(ITERS, || {
        let (_, payload) = decode_frame(std::hint::black_box(&seg_frame)).expect("frame");
        let payload = bytes::Bytes::copy_from_slice(payload);
        std::hint::black_box(Wire::from_shared_payload(&payload).expect("payload"));
    });
    let enc_control_ns = median_ns(ITERS, || {
        std::hint::black_box(encode_frame(1, 0, true, &ctrl.to_frame_payload()));
    });
    let dec_control_ns = median_ns(ITERS, || {
        let (_, payload) = decode_frame(std::hint::black_box(&ctrl_frame)).expect("frame");
        std::hint::black_box(Wire::from_frame_payload(payload).expect("payload"));
    });
    println!(
        "codec: segment ({} B) encode {enc_segment_ns} ns / decode {dec_segment_ns} ns \
         (shared {dec_segment_shared_ns} ns), control ({} B) encode {enc_control_ns} ns / \
         decode {dec_control_ns} ns",
        seg_frame.len(),
        ctrl_frame.len()
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"q14_transport\",");
    let _ = writeln!(json, "  \"tracked\": {{");
    let _ = writeln!(json, "    \"segment_frame_bytes\": {},", seg_frame.len());
    let _ = writeln!(json, "    \"segment_encode_ns_median\": {enc_segment_ns},");
    let _ = writeln!(json, "    \"segment_decode_ns_median\": {dec_segment_ns},");
    let _ = writeln!(
        json,
        "    \"segment_decode_shared_ns_median\": {dec_segment_shared_ns},"
    );
    let _ = writeln!(json, "    \"control_frame_bytes\": {},", ctrl_frame.len());
    let _ = writeln!(json, "    \"control_encode_ns_median\": {enc_control_ns},");
    let _ = writeln!(json, "    \"control_decode_ns_median\": {dec_control_ns}");
    let _ = writeln!(json, "  }}{}", if args.codec_only { "" } else { "," });

    if !args.codec_only {
        // Loopback deployment: the acceptance scenario, timed. Everything
        // it reports is wall-clock flavored, so it all lands in
        // "untracked" — present for the record, invisible to the gate.
        let wmps = Wmps::new();
        let file = wmps
            .publish(&synthetic_lecture(1, 1, 300_000))
            .expect("publish");
        let cfg = LoopbackConfig::default();
        let report = serve_loopback_udp(file, &cfg);
        assert_eq!(
            report.completed, cfg.clients,
            "perf record requires a clean run: {report:?}"
        );
        assert_eq!(report.abandoned, 0);
        let wall_s = report.wall.as_secs_f64();
        let frames_per_sec = report.transport.frames_sent as f64 / wall_s;
        let bytes_per_sec = report.transport.bytes_sent as f64 / wall_s;
        println!(
            "loopback: {} clients / {} relays completed in {wall_s:.2} s wall — \
             {frames_per_sec:.0} frames/s, {:.1} MB/s, {} reordered, {} skipped",
            cfg.clients,
            cfg.relays,
            bytes_per_sec / 1e6,
            report.reorder.out_of_order,
            report.reorder.skipped_seqs
        );

        let _ = writeln!(json, "  \"untracked\": {{");
        let _ = writeln!(json, "    \"clients\": {},", cfg.clients);
        let _ = writeln!(json, "    \"relays\": {},", cfg.relays);
        let _ = writeln!(json, "    \"accel\": {},", cfg.accel);
        let _ = writeln!(json, "    \"completed\": {},", report.completed);
        let _ = writeln!(json, "    \"abandoned\": {},", report.abandoned);
        let _ = writeln!(json, "    \"wall_seconds\": {wall_s:.3},");
        let _ = writeln!(
            json,
            "    \"frames_sent\": {},",
            report.transport.frames_sent
        );
        let _ = writeln!(
            json,
            "    \"frames_received\": {},",
            report.transport.frames_received
        );
        let _ = writeln!(json, "    \"bytes_sent\": {},", report.transport.bytes_sent);
        let _ = writeln!(json, "    \"frames_per_sec\": {frames_per_sec:.0},");
        let _ = writeln!(json, "    \"bytes_per_sec\": {bytes_per_sec:.0},");
        let _ = writeln!(json, "    \"reordered\": {},", report.reorder.out_of_order);
        let _ = writeln!(json, "    \"skipped\": {},", report.reorder.skipped_seqs);
        let _ = writeln!(
            json,
            "    \"decode_errors\": {}",
            report.transport.decode_errors
        );
        let _ = writeln!(json, "  }}");
    }
    json.push('}');
    json.push('\n');

    match args.json {
        Some(path) => {
            std::fs::write(&path, &json).expect("write json report");
            println!("\nreport written to {path}");
        }
        None => println!("\n{json}"),
    }

    println!(
        "\nshape: the codec costs microseconds against a millisecond-scale\n\
         datagram path, so framing is nowhere near the bottleneck; the\n\
         loopback tier moves an accelerated lecture for a 35-node deployment\n\
         with reordering absorbed entirely by the receive-side buffer."
    );
}
