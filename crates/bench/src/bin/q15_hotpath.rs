//! Q15: the zero-copy segment hot path — second entry in the perf
//! trajectory.
//!
//! Three measurements over the path a lecture's bytes actually travel:
//!
//! * **Mux ns/packet** — median ns per data packet to serialize a
//!   60-second lecture with `write_asf` (the origin's publish cost).
//! * **Fan-out throughput** — 1 origin ships one 32-packet segment to
//!   4 relays over the real UDP codec; each relay caches it and fans it
//!   out to its share of 256 readers, simnet-style (`Wire::Data` values,
//!   no re-serialization). Reported as median ns per packet delivery and
//!   MB/s of payload moved.
//! * **Payload-copy counters** — `bytes::stats` counts every backing
//!   allocation and deep-copied byte. With ref-counted payloads the
//!   whole fan-out performs exactly one backing allocation per relay
//!   (the datagram buffer), *independent of reader count*; the
//!   deep-copy counterfactual (cloning payload storage per reader, the
//!   pre-zero-copy behavior) is re-enacted and reported alongside so
//!   the O(readers) → O(1) collapse is visible in the same JSON.
//!
//! The JSON splits into `"tracked"` (integer medians and the — fully
//! deterministic — copy counters; the CI perf gate compares these
//! against the committed `BENCH_q15.json`, lower is better) and
//! `"untracked"` (wall-clock throughput and counterfactual context).
//! A reintroduced per-reader copy would blow `fanout_backing_allocs_256`
//! three orders of magnitude past its committed value and fail the gate.
//!
//! Usage: `q15_hotpath [--json PATH]`

use std::fmt::Write as _;
use std::time::Instant;

use lod_asf::{
    write_asf, AsfFile, FileProperties, MediaSample, Packetizer, ScriptCommandList, StreamKind,
    StreamProperties,
};
use lod_relay::{CachedSegment, SegmentCache};
use lod_streaming::wire::{SegmentData, Wire};
use lod_transport::{decode_frame, encode_frame, WireCodec};

const RELAYS: usize = 4;
const READERS: usize = 256;
const SEGMENT_PACKETS: u32 = 32;
const PACKET_SIZE: u32 = 1_400;

fn parse_args() -> Option<String> {
    let mut json = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = Some(args.next().expect("--json takes a path")),
            other => panic!("unknown argument {other} (usage: q15_hotpath [--json PATH])"),
        }
    }
    json
}

/// Median ns per call of `f` over `iters` timed samples.
fn median_ns(iters: usize, mut f: impl FnMut()) -> u64 {
    let mut samples: Vec<u64> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// A 60-second ~400 kbit/s lecture, the mux workload.
fn lecture_file() -> AsfFile {
    let mut pk = Packetizer::new(PACKET_SIZE).unwrap();
    for i in 0..600 {
        pk.push(&MediaSample::new(1, i * 1_000_000, vec![0xAB; 5_000]));
    }
    AsfFile {
        props: FileProperties {
            file_id: 15,
            created: 0,
            packet_size: PACKET_SIZE,
            play_duration: 600_000_000,
            preroll: 20_000_000,
            broadcast: false,
            max_bitrate: 400_000,
        },
        streams: vec![StreamProperties {
            number: 1,
            kind: StreamKind::Video,
            codec: 4,
            bitrate: 400_000,
            name: "camera".into(),
        }],
        script: ScriptCommandList::new(),
        drm: None,
        packets: pk.finish(),
        index: None,
    }
}

/// One relay-sized segment as the origin would answer a fetch: 32
/// packets of fragments slicing a handful of large samples.
fn origin_segment() -> Wire {
    let mut pk = Packetizer::new(PACKET_SIZE).unwrap();
    for i in 0..10 {
        pk.push(&MediaSample::new(1, i * 1_000_000, vec![0x5A; 5_000]));
    }
    let mut packets = pk.finish();
    packets.truncate(SEGMENT_PACKETS as usize);
    assert_eq!(packets.len(), SEGMENT_PACKETS as usize);
    Wire::Segment(SegmentData {
        content: "lecture".into(),
        segment: 5,
        base_packet: 160,
        total_packets: 1_600,
        total_segments: 50,
        segment_packets: SEGMENT_PACKETS,
        packet_size: PACKET_SIZE,
        packets,
        header: None,
        start_packet: Some(160),
        at_time: Some(7_000_000),
        epoch: 1,
        trace: None,
    })
}

/// Ships `frame` to every relay (real codec decode into one shared
/// buffer each), caches the segment, then delivers it to `readers`
/// simnet-style. Returns total packet deliveries.
fn fan_out(frame: &[u8], readers: usize) -> u64 {
    let mut deliveries = 0u64;
    for relay in 0..RELAYS {
        // The production receive path: one allocation per datagram,
        // payloads are zero-copy views into it.
        let (_, payload) = decode_frame(frame).expect("frame");
        let payload = bytes::Bytes::copy_from_slice(payload);
        let Wire::Segment(mut seg) = Wire::from_shared_payload(&payload).expect("payload") else {
            panic!("origin sent a segment");
        };
        let mut cache = SegmentCache::new(1 << 20);
        let data = CachedSegment {
            base_packet: seg.base_packet,
            bytes: seg.packets.len() as u64 * u64::from(seg.packet_size),
            packets: std::mem::take(&mut seg.packets),
        };
        cache.insert(&seg.content, seg.segment, data);

        // This relay's share of the readers, served from cache: each
        // delivery clones the packet value (Arc bumps on payloads), as
        // the simnet fan-out does.
        let share = readers / RELAYS + usize::from(relay < readers % RELAYS);
        for _ in 0..share {
            let cached = cache.get(&seg.content, seg.segment).expect("just inserted");
            for p in &cached.packets {
                std::hint::black_box(Wire::Data(p.clone()));
                deliveries += 1;
            }
        }
    }
    deliveries
}

/// The pre-zero-copy behavior, re-enacted: every delivery duplicates the
/// payload storage, so allocations scale with readers.
fn fan_out_deep_copy(frame: &[u8], readers: usize) -> u64 {
    let mut deliveries = 0u64;
    for relay in 0..RELAYS {
        let (_, payload) = decode_frame(frame).expect("frame");
        let payload = bytes::Bytes::copy_from_slice(payload);
        let Wire::Segment(seg) = Wire::from_shared_payload(&payload).expect("payload") else {
            panic!("origin sent a segment");
        };
        let share = readers / RELAYS + usize::from(relay < readers % RELAYS);
        for _ in 0..share {
            for p in &seg.packets {
                let mut copy = p.clone();
                for pl in &mut copy.payloads {
                    pl.data = bytes::Bytes::copy_from_slice(&pl.data);
                }
                std::hint::black_box(Wire::Data(copy));
                deliveries += 1;
            }
        }
    }
    deliveries
}

fn main() {
    let json_path = parse_args();
    println!("Q15 — zero-copy hot path: mux ns/packet, fan-out, copy counters\n");

    // Mux: median ns per packet over the whole serialized lecture.
    let file = lecture_file();
    let n_packets = file.packets.len() as u64;
    let mux_ns = median_ns(50, || {
        std::hint::black_box(write_asf(std::hint::black_box(&file)).unwrap().len());
    });
    let mux_ns_per_packet = mux_ns / n_packets;
    println!("mux: {n_packets} packets, {mux_ns_per_packet} ns/packet");

    // Fan-out timing: 1 origin segment -> 4 relays -> 256 readers.
    let seg = origin_segment();
    let seg_payload = seg.to_frame_payload();
    let frame = encode_frame(1, 0, false, &seg_payload);
    let deliveries = fan_out(&frame, READERS);
    let fanout_ns = median_ns(30, || {
        std::hint::black_box(fan_out(std::hint::black_box(&frame), READERS));
    });
    let fanout_ns_per_packet = fanout_ns / deliveries;
    let payload_bytes_moved = deliveries * u64::from(PACKET_SIZE);
    let mb_per_sec = payload_bytes_moved as f64 / (fanout_ns as f64 / 1e9) / 1e6;
    println!(
        "fan-out: {RELAYS} relays x {READERS} readers, {deliveries} deliveries, \
         {fanout_ns_per_packet} ns/packet, {mb_per_sec:.0} MB/s"
    );

    // Copy counters: deterministic, so the perf gate can hold them to
    // exact-scale. One backing allocation per relay datagram — whether 4
    // readers or 256 are watching.
    bytes::stats::reset();
    fan_out(&frame, 4);
    let allocs_4 = bytes::stats::backing_allocations();
    bytes::stats::reset();
    fan_out(&frame, READERS);
    let allocs_256 = bytes::stats::backing_allocations();
    let copied_256 = bytes::stats::bytes_deep_copied();
    bytes::stats::reset();
    fan_out_deep_copy(&frame, READERS);
    let deep_allocs_256 = bytes::stats::backing_allocations();
    let deep_copied_256 = bytes::stats::bytes_deep_copied();
    assert_eq!(
        allocs_4, allocs_256,
        "zero-copy fan-out must not scale allocations with readers"
    );
    assert!(
        deep_allocs_256 > allocs_256 * 100,
        "counterfactual must show the O(readers) blow-up"
    );
    println!(
        "copies: shared fan-out {allocs_256} allocs ({copied_256} B copied) for 256 readers \
         (= {allocs_4} for 4 readers); deep-copy counterfactual {deep_allocs_256} allocs \
         ({deep_copied_256} B copied)"
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"q15_hotpath\",");
    let _ = writeln!(json, "  \"tracked\": {{");
    let _ = writeln!(json, "    \"mux_ns_per_packet\": {mux_ns_per_packet},");
    let _ = writeln!(
        json,
        "    \"fanout_ns_per_packet\": {fanout_ns_per_packet},"
    );
    let _ = writeln!(json, "    \"fanout_backing_allocs_4\": {allocs_4},");
    let _ = writeln!(json, "    \"fanout_backing_allocs_256\": {allocs_256},");
    let _ = writeln!(json, "    \"fanout_bytes_deep_copied_256\": {copied_256}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"untracked\": {{");
    let _ = writeln!(json, "    \"relays\": {RELAYS},");
    let _ = writeln!(json, "    \"readers\": {READERS},");
    let _ = writeln!(json, "    \"segment_packets\": {SEGMENT_PACKETS},");
    let _ = writeln!(json, "    \"mux_packets\": {n_packets},");
    let _ = writeln!(json, "    \"fanout_deliveries\": {deliveries},");
    let _ = writeln!(json, "    \"fanout_mb_per_sec\": {},", mb_per_sec as u64);
    let _ = writeln!(
        json,
        "    \"deepcopy_backing_allocs_256\": {deep_allocs_256},"
    );
    let _ = writeln!(
        json,
        "    \"deepcopy_bytes_deep_copied_256\": {deep_copied_256}"
    );
    let _ = writeln!(json, "  }}");
    json.push('}');
    json.push('\n');

    match json_path {
        Some(path) => {
            std::fs::write(&path, &json).expect("write json report");
            println!("\nreport written to {path}");
        }
        None => println!("\n{json}"),
    }

    println!(
        "\nshape: payload copies no longer scale with the audience — the\n\
         shared path allocates once per relay datagram where the deep-copy\n\
         era allocated once per reader per fragment, and the cache holds\n\
         views into the same storage the fan-out ships."
    );
}
