//! Q16: the transport repair sublayer under seeded loss — NACK,
//! retransmit, give-up and gap-skip accounting on a deterministic
//! virtual wire.
//!
//! The drill runs the *production* repair machinery — [`FaultEngine`],
//! [`RepairTx`], [`RepairRx`], [`ReorderBuffer`] and the real frame /
//! control-frame codec — over an all-integer in-memory wire instead of
//! kernel sockets. Frames cross a fixed-latency link whose fate (drop,
//! duplicate, delay) comes from the seeded fault engine, NACKs ride the
//! reverse direction through the same chaos, and time advances in fixed
//! ticks. Two processes therefore produce byte-identical reports —
//! `scripts/ci.sh` diffs them — while the real-socket flavor of the
//! same scenario lives in the `loopback_chaos` integration test, whose
//! wall-clock numbers could never be gated this tightly.
//!
//! Each loss profile runs twice: repair **off** (the reorder buffer
//! times gaps out and skips them up to the application — every skipped
//! sequence is a hole the app must re-request) and repair **on** (gaps
//! are NACKed and retransmitted inside the transport; only sequences
//! whose retry budget is exhausted are ever skipped). The canonical
//! profile — 12% steady loss with a near-total burst on top, plus
//! duplication and delay-reordering — feeds the `"tracked"` section the
//! CI perf gate compares against `BENCH_q16.json` (lower is better for
//! every key: more NACKs, retransmits, give-ups or skips for the same
//! seeded chaos means the protocol got chattier or weaker). A sweep
//! over steady-loss rates lands in `"untracked"` for the experiment
//! record.
//!
//! Usage: `q16_repair [--json PATH]`

use std::fmt::Write as _;

use lod_simnet::{FaultPlan, NodeId};
use lod_transport::{
    decode_frame, encode_frame, encode_frame_with_flags, mark_retransmit, ControlFrame,
    FaultAction, FaultEngine, FaultSpec, ReorderBuffer, RepairConfig, RepairRx, RepairTx,
    WireCodec, FLAG_CONTROL,
};

/// Virtual-time step per drill iteration.
const STEP: u64 = 1_000;
/// One-way latency of the virtual wire.
const WIRE_DELAY: u64 = 2_000;
/// Data frames the sender ships, one per step.
const N_FRAMES: u64 = 2_000;
/// Payload bytes per data frame.
const PAYLOAD_BYTES: usize = 1_200;
/// Cap on missing sequences named per receiver poll (mirrors the UDP
/// backend's NACK batching).
const MISSING_CAP: usize = 64;
/// Hard tick ceiling — a stuck drill is a bug, not a long run.
const MAX_TICKS: u64 = 200_000_000;
/// Gap-flush deadline for the repair-off runs (the reorder buffer's
/// only recovery when nobody NACKs).
const FLUSH_AFTER: u64 = 50_000;

/// One loss profile of the sweep.
struct Profile {
    name: &'static str,
    loss_permille: u16,
    /// Adds a near-total loss burst plus duplication and
    /// delay-reordering on top of the steady loss.
    chaos_extras: bool,
}

/// Counters one drill run produces — all deterministic integers.
#[derive(Debug, Default)]
struct DrillOut {
    delivered: u64,
    skipped: u64,
    out_of_order: u64,
    duplicates: u64,
    data_frames_dropped: u64,
    control_frames_dropped: u64,
    nacks_sent: u64,
    seqs_nacked: u64,
    retransmits: u64,
    give_ups: u64,
    repaired_gaps: u64,
    ticks: u64,
}

/// A frame in flight on one direction of the virtual wire.
struct InFlight {
    deliver_at: u64,
    /// Insertion order, the tiebreak that keeps equal-tick delivery
    /// deterministic.
    id: u64,
    frame: Vec<u8>,
}

/// The virtual wire: a lossy, delaying, duplicating unidirectional
/// link fed by a seeded fault engine.
struct WireDir {
    engine: FaultEngine,
    src: NodeId,
    dst: NodeId,
    in_flight: Vec<InFlight>,
    next_id: u64,
    dropped: u64,
}

impl WireDir {
    fn new(spec: FaultSpec, src: NodeId, dst: NodeId) -> Self {
        Self {
            engine: FaultEngine::new(spec),
            src,
            dst,
            in_flight: Vec::new(),
            next_id: 0,
            dropped: 0,
        }
    }

    /// Rolls the fault engine for `frame` and schedules what survives.
    fn send(&mut self, now: u64, frame: Vec<u8>) {
        let mut push = |deliver_at: u64, frame: Vec<u8>, next_id: &mut u64| {
            self.in_flight.push(InFlight {
                deliver_at,
                id: *next_id,
                frame,
            });
            *next_id += 1;
        };
        match self.engine.action(now, self.src, self.dst) {
            FaultAction::Drop => self.dropped += 1,
            FaultAction::Deliver => {
                let mut id = self.next_id;
                push(now + WIRE_DELAY, frame, &mut id);
                self.next_id = id;
            }
            FaultAction::Duplicate => {
                let mut id = self.next_id;
                push(now + WIRE_DELAY, frame.clone(), &mut id);
                push(now + WIRE_DELAY, frame, &mut id);
                self.next_id = id;
            }
            FaultAction::Delay(extra) => {
                let mut id = self.next_id;
                push(now + WIRE_DELAY + extra, frame, &mut id);
                self.next_id = id;
            }
        }
    }

    /// Frames due at `now`, oldest scheduled first.
    fn deliver_due(&mut self, now: u64) -> Vec<Vec<u8>> {
        let mut due: Vec<(u64, u64, usize)> = self
            .in_flight
            .iter()
            .enumerate()
            .filter(|(_, f)| f.deliver_at <= now)
            .map(|(i, f)| (f.deliver_at, f.id, i))
            .collect();
        due.sort_unstable();
        let indices: Vec<usize> = due.iter().map(|&(_, _, i)| i).collect();
        let mut out = Vec::with_capacity(indices.len());
        // Remove from the back so earlier indices stay valid.
        let mut sorted_desc = indices.clone();
        sorted_desc.sort_unstable_by(|a, b| b.cmp(a));
        let mut pulled: Vec<(usize, Vec<u8>)> = sorted_desc
            .into_iter()
            .map(|i| (i, self.in_flight.swap_remove(i).frame))
            .collect();
        for &(_, _, i) in &due {
            let at = pulled
                .iter()
                .position(|&(j, _)| j == i)
                .expect("pulled what was due");
            out.push(pulled.swap_remove(at).1);
        }
        out
    }

    fn idle(&self) -> bool {
        self.in_flight.is_empty()
    }
}

/// The fault profile of the data direction (sender → receiver).
fn data_spec(p: &Profile) -> FaultSpec {
    let sender = NodeId::from_index(0);
    let receiver = NodeId::from_index(1);
    let mut spec = FaultSpec {
        seed: 16,
        loss_permille: p.loss_permille,
        ..FaultSpec::default()
    };
    if p.chaos_extras {
        spec.dup_permille = 10;
        spec.delay_permille = 30;
        spec.delay_ticks = 5_000;
        // A near-total burst long enough to exhaust retry budgets:
        // originals and their retransmits both die inside the window.
        spec.plan = FaultPlan::new().loss_burst(400_000, 60_000, sender, receiver, 0.999);
    }
    spec
}

/// The fault profile of the control direction (receiver → sender):
/// NACKs ride the same lossy network, so re-NACKs genuinely happen.
fn control_spec(p: &Profile) -> FaultSpec {
    FaultSpec {
        seed: 17,
        loss_permille: p.loss_permille,
        ..FaultSpec::default()
    }
}

/// One run of the drill. `repair` carries the sublayer's tuning, or
/// `None` for the repair-off baseline.
fn run_drill(p: &Profile, repair: Option<RepairConfig>) -> DrillOut {
    let sender = NodeId::from_index(0);
    let receiver = NodeId::from_index(1);
    let mut s2r = WireDir::new(data_spec(p), sender, receiver);
    let mut r2s = WireDir::new(control_spec(p), receiver, sender);

    let mut tx = repair.map(RepairTx::new);
    let mut rx = repair.map(RepairRx::new);
    let mut buffer: ReorderBuffer<u64> = ReorderBuffer::new(FLUSH_AFTER);
    let payload = vec![0x5A; PAYLOAD_BYTES];

    let mut out = DrillOut::default();
    let mut next_seq: u64 = 1;
    // Highest sequence the receiver knows the sender shipped (observed
    // data seqs plus heartbeat advertisements) — the tail-loss horizon.
    let mut peer_top: u64 = 0;
    // Sender-side heartbeat state once the data runs dry: a bounded
    // burst advertising the final sequence so a lost tail still gets
    // NACKed (mirrors the UDP backend's heartbeat protocol).
    let mut hb_sent: u32 = 0;
    let mut hb_last_at: u64 = 0;

    let mut now = 0;
    while now < MAX_TICKS {
        now += STEP;

        // Sender: one data frame per step until the lecture is shipped.
        if next_seq <= N_FRAMES {
            let frame = encode_frame(next_seq, now, true, &payload);
            if let Some(tx) = tx.as_mut() {
                tx.record(next_seq, &frame);
            }
            s2r.send(now, frame);
            next_seq += 1;
            hb_last_at = now;
        } else if let Some(cfg) = repair {
            // Data is quiet: advertise the top sequence a bounded
            // number of times so a dropped tail is still repairable.
            let interval = cfg.min_nack_interval_ticks * 2;
            if hb_sent <= cfg.retry_budget && now.saturating_sub(hb_last_at) >= interval {
                hb_sent += 1;
                hb_last_at = now;
                let hb = ControlFrame::Heartbeat { top_seq: N_FRAMES }.to_frame_payload();
                s2r.send(now, encode_frame_with_flags(0, now, FLAG_CONTROL, &hb));
            }
        }

        // Receiver: take delivery of everything due on the data wire.
        for frame in s2r.deliver_due(now) {
            let (header, body) = decode_frame(&frame).expect("self-encoded frame");
            if header.control {
                let ControlFrame::Heartbeat { top_seq } =
                    ControlFrame::from_frame_payload(body).expect("self-encoded control")
                else {
                    unreachable!("only heartbeats ride the data direction")
                };
                peer_top = peer_top.max(top_seq);
                continue;
            }
            if let Some(rx) = rx.as_mut() {
                // Karn's rule: a retransmitted frame's delay includes
                // the NACK round trip and must not feed the estimator.
                if !header.retransmit {
                    rx.observe_delay(now.saturating_sub(header.sent_at));
                }
            }
            peer_top = peer_top.max(header.seq);
            buffer.accept(header.seq, now, header.seq);
        }

        match (rx.as_mut(), tx.as_mut()) {
            (Some(rx), Some(tx)) => {
                // Receiver half: reconcile gaps (including the tail the
                // peer advertised past every pending frame) and emit
                // due NACKs into the lossy control direction.
                let mut missing = buffer.missing(MISSING_CAP);
                for seq in buffer.horizon()..=peer_top {
                    if missing.len() == MISSING_CAP {
                        break;
                    }
                    missing.push(seq);
                }
                let decision = rx.poll(now, &missing);
                for nack in &decision.nacks {
                    let body = nack.to_frame_payload();
                    r2s.send(now, encode_frame_with_flags(0, now, FLAG_CONTROL, &body));
                }
                if !decision.skippable.is_empty() {
                    // Budget-exhausted gaps: skip the contiguous
                    // authorized prefix (head-of-line case and the
                    // tail case in one walk — pending frames are never
                    // skippable, so the walk cannot cross one).
                    let authorized: std::collections::BTreeSet<u64> =
                        decision.skippable.iter().map(|s| s.seq).collect();
                    let mut end = buffer.expected();
                    while authorized.contains(&end) {
                        end += 1;
                    }
                    if end > buffer.expected() {
                        for seq in buffer.expected()..end {
                            rx.on_skipped(seq);
                        }
                        let mut released = Vec::new();
                        buffer.skip_to(end, &mut released);
                    }
                }

                // Sender half: answer whatever NACKs survived the
                // control direction.
                for frame in r2s.deliver_due(now) {
                    let (_, body) = decode_frame(&frame).expect("self-encoded frame");
                    let nack =
                        ControlFrame::from_frame_payload(body).expect("self-encoded control");
                    let response = tx.on_nack(now, &nack.seqs());
                    for rt in response.resend {
                        let mut frame = rt.frame;
                        mark_retransmit(&mut frame);
                        s2r.send(now, frame);
                    }
                }
            }
            _ => {
                // Repair off: the reorder buffer's flush deadline is
                // the only gap recovery — every flush is a skip the
                // application must notice and re-request.
                buffer.flush_due(now);
            }
        }

        let drained = buffer.expected() > N_FRAMES;
        let sender_done = next_seq > N_FRAMES && (repair.is_none() || hb_sent > 0);
        if drained && sender_done && s2r.idle() && r2s.idle() {
            break;
        }
    }

    let stats = *buffer.stats();
    out.delivered = stats.delivered;
    out.skipped = stats.skipped_seqs;
    out.out_of_order = stats.out_of_order;
    out.duplicates = stats.duplicates;
    out.data_frames_dropped = s2r.dropped;
    out.control_frames_dropped = r2s.dropped;
    out.ticks = now;
    if let Some(rx) = rx.as_ref() {
        let s = rx.stats();
        out.nacks_sent = s.nacks_sent;
        out.seqs_nacked = s.seqs_nacked;
        out.repaired_gaps = s.repaired;
    }
    if let Some(tx) = tx.as_ref() {
        let s = tx.stats();
        out.retransmits = s.retransmits;
        out.give_ups = s.give_ups;
    }
    assert_eq!(
        out.delivered + out.skipped,
        N_FRAMES,
        "every sequence ends delivered or skipped ({p_name}): {out:?}",
        p_name = p.name
    );
    out
}

fn main() {
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json_path = Some(args.next().expect("--json takes a path")),
            other => panic!("unknown argument {other} (usage: q16_repair [--json PATH])"),
        }
    }

    println!("Q16 — transport repair under seeded loss: NACK/retransmit vs gap-flush\n");

    // Representative control-frame sizes: a dense 64-sequence NACK (one
    // base + full bitmap) and a heartbeat, framed as shipped.
    let dense: Vec<u64> = (100..164).collect();
    let nacks = ControlFrame::build_nacks(&dense);
    assert_eq!(nacks.len(), 1, "64 contiguous seqs fit one NACK");
    let nack_frame = encode_frame_with_flags(0, 0, FLAG_CONTROL, &nacks[0].to_frame_payload());
    let hb_frame = encode_frame_with_flags(
        0,
        0,
        FLAG_CONTROL,
        &ControlFrame::Heartbeat { top_seq: u64::MAX }.to_frame_payload(),
    );

    let profiles = [
        Profile {
            name: "steady_050",
            loss_permille: 50,
            chaos_extras: false,
        },
        Profile {
            name: "steady_100",
            loss_permille: 100,
            chaos_extras: false,
        },
        Profile {
            name: "steady_150",
            loss_permille: 150,
            chaos_extras: false,
        },
        Profile {
            name: "chaos_120",
            loss_permille: 120,
            chaos_extras: true,
        },
    ];

    let mut sweep = Vec::new();
    for p in &profiles {
        let off = run_drill(p, None);
        let on = run_drill(p, Some(RepairConfig::default()));
        println!(
            "{:<11} loss {:>3}‰{}: off skipped {:>3} | on skipped {:>3}, \
             {} NACKs / {} retransmits / {} give-ups / {} gaps repaired",
            p.name,
            p.loss_permille,
            if p.chaos_extras {
                " + burst"
            } else {
                "        "
            },
            off.skipped,
            on.skipped,
            on.nacks_sent,
            on.retransmits,
            on.give_ups,
            on.repaired_gaps,
        );
        sweep.push((p, off, on));
    }

    let (_, chaos_off, chaos_on) = sweep.last().expect("profiles is non-empty");
    // The acceptance shape, at drill scale: repair turns nearly every
    // application-visible hole into an in-transport retransmit, and the
    // only skips left are budget-exhausted burst casualties.
    assert!(
        chaos_on.skipped * 5 <= chaos_off.skipped,
        "repair must cut app-visible holes at least 5x: {} on vs {} off",
        chaos_on.skipped,
        chaos_off.skipped
    );
    assert!(chaos_on.repaired_gaps > 0, "{chaos_on:?}");

    // Sender-side give-ups need the retransmit buffer to lose the race
    // against the NACK round trip — a starved buffer makes eviction
    // (and the explicit give-up accounting it triggers) deterministic.
    let tinybuf = run_drill(
        &profiles[3],
        Some(RepairConfig {
            buffer_bytes: 4 * 1024,
            ..RepairConfig::default()
        }),
    );
    println!(
        "chaos_120 with a 4 KiB retransmit buffer: {} give-ups, {} skipped \
         (eviction outruns the NACK round trip by design)",
        tinybuf.give_ups, tinybuf.skipped
    );
    assert!(
        tinybuf.give_ups > 0,
        "a starved buffer must produce explicit give-ups: {tinybuf:?}"
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"q16_repair\",");
    let _ = writeln!(json, "  \"tracked\": {{");
    let _ = writeln!(json, "    \"nack_frame_bytes\": {},", nack_frame.len());
    let _ = writeln!(json, "    \"heartbeat_frame_bytes\": {},", hb_frame.len());
    let _ = writeln!(
        json,
        "    \"chaos_off_skipped_seqs\": {},",
        chaos_off.skipped
    );
    let _ = writeln!(json, "    \"chaos_on_skipped_seqs\": {},", chaos_on.skipped);
    let _ = writeln!(
        json,
        "    \"chaos_on_nacks_sent\": {},",
        chaos_on.nacks_sent
    );
    let _ = writeln!(
        json,
        "    \"chaos_on_seqs_nacked\": {},",
        chaos_on.seqs_nacked
    );
    let _ = writeln!(
        json,
        "    \"chaos_on_retransmits\": {},",
        chaos_on.retransmits
    );
    let _ = writeln!(json, "    \"chaos_on_give_ups\": {},", chaos_on.give_ups);
    let _ = writeln!(json, "    \"tinybuf_give_ups\": {},", tinybuf.give_ups);
    let _ = writeln!(json, "    \"tinybuf_skipped_seqs\": {}", tinybuf.skipped);
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"untracked\": {{");
    let _ = writeln!(json, "    \"frames_per_run\": {N_FRAMES},");
    let _ = writeln!(json, "    \"payload_bytes\": {PAYLOAD_BYTES},");
    let _ = writeln!(json, "    \"sweep\": [");
    for (i, (p, off, on)) in sweep.iter().enumerate() {
        let _ = writeln!(json, "      {{");
        let _ = writeln!(json, "        \"profile\": \"{}\",", p.name);
        let _ = writeln!(json, "        \"loss_permille\": {},", p.loss_permille);
        let _ = writeln!(json, "        \"burst\": {},", p.chaos_extras);
        let _ = writeln!(json, "        \"off_skipped\": {},", off.skipped);
        let _ = writeln!(
            json,
            "        \"off_data_dropped\": {},",
            off.data_frames_dropped
        );
        let _ = writeln!(json, "        \"on_skipped\": {},", on.skipped);
        let _ = writeln!(
            json,
            "        \"on_data_dropped\": {},",
            on.data_frames_dropped
        );
        let _ = writeln!(
            json,
            "        \"on_control_dropped\": {},",
            on.control_frames_dropped
        );
        let _ = writeln!(json, "        \"on_nacks_sent\": {},", on.nacks_sent);
        let _ = writeln!(json, "        \"on_retransmits\": {},", on.retransmits);
        let _ = writeln!(json, "        \"on_give_ups\": {},", on.give_ups);
        let _ = writeln!(json, "        \"on_repaired_gaps\": {},", on.repaired_gaps);
        let _ = writeln!(json, "        \"on_out_of_order\": {},", on.out_of_order);
        let _ = writeln!(json, "        \"on_duplicates\": {},", on.duplicates);
        let _ = writeln!(json, "        \"on_ticks\": {},", on.ticks);
        let _ = writeln!(json, "        \"off_ticks\": {}", off.ticks);
        let _ = writeln!(
            json,
            "      }}{}",
            if i + 1 == sweep.len() { "" } else { "," }
        );
    }
    let _ = writeln!(json, "    ]");
    let _ = writeln!(json, "  }}");
    json.push('}');
    json.push('\n');

    match json_path {
        Some(path) => {
            std::fs::write(&path, &json).expect("write json report");
            println!("\nreport written to {path}");
        }
        None => println!("\n{json}"),
    }

    println!(
        "\nshape: a 13-byte NACK covering up to 64 sequences replaces\n\
         per-segment application round trips; under steady loss the repair\n\
         sublayer absorbs essentially every hole, and under a near-total\n\
         burst it degrades by budget — bounded retries, explicit give-ups,\n\
         authorized skips — instead of stalling the lecture."
    );
}
