//! Q17: the tracing plane — what end-to-end segment tracing costs and
//! what it buys.
//!
//! Three interleaved runs of the same seeded relay-tier lecture grade
//! the telemetry plane's overhead contract:
//!
//! * **obs-off** — recorder disabled, `trace_permille = 0`: the
//!   baseline hot path.
//! * **sampled** — ring recorder armed, 10‰ head-sampling: the
//!   always-on production posture. The acceptance gate: its median
//!   wall time must stay within **5%** of obs-off.
//! * **full** — every segment traced (1000‰): the debugging posture,
//!   reported for the record but never gated.
//!
//! The full-trace run then feeds the fidelity gates: causal span
//! invariants must hold over the merged log, the assembler must
//! reconstruct a waterfall carrying the whole delivery chain
//! (`relay_fetch → packetize → fan_out → reassemble → playout_wait`),
//! and the event log must survive a JSONL round trip.
//!
//! The JSON report follows the perf-trajectory convention:
//!
//! * `"tracked"` — wire-format byte counts and the deterministic span
//!   ledger (span/trace/event counts, violation totals). No wall clock
//!   lands here, so the ±15% gate tolerance is pure slack: any drift is
//!   a protocol-behavior change that should come with a deliberate
//!   baseline update.
//! * `"untracked"` — wall-clock medians and the derived overhead
//!   permilles, machine-dependent by nature.
//!
//! Usage: `q17_tracing [--json PATH] [--events PATH]`
//!
//! `--events` writes the full-trace run's event log as JSONL — the
//! determinism artifact `scripts/ci.sh` byte-diffs across two
//! processes, and the input `wmps trace` renders waterfalls from.

use std::fmt::Write as _;
use std::time::Instant;

use lod_core::obs::TraceCtx;
use lod_core::{
    check_causal, fmt_ticks, lecture_id, parse_jsonl, synthetic_lecture, Recorder, RelayTierConfig,
    SpanAssembler, Wmps, WmpsReport,
};
use lod_transport::frame::{encode_frame_traced, TRACE_EXT_BYTES};
use lod_transport::{WireCodec, FLAG_RELIABLE};

const STUDENTS: usize = 24;
const RELAYS: usize = 2;
const SEED: u64 = 7;
/// Timed repetitions per configuration, interleaved so scheduler drift
/// hits all three configurations alike.
const REPS: usize = 5;
/// Production sampling rate under test: 10‰ (1% of segments). On this
/// 30-segment lecture the head-sampler deterministically keeps zero
/// segments — the honest always-on posture, and the cheapest.
const SAMPLED_PERMILLE: u16 = 10;
/// A sparse diagnostic rate that deterministically keeps a handful of
/// this lecture's segments, proving a sub-full plane still assembles
/// complete waterfalls (ctx presence on the wire is the whole
/// propagated decision — nothing downstream re-rolls the dice).
const SPARSE_PERMILLE: u16 = 50;
/// The five delivery-chain hops a complete simnet waterfall carries.
const CHAIN: [&str; 5] = [
    "relay_fetch",
    "packetize",
    "fan_out",
    "reassemble",
    "playout_wait",
];

fn parse_args() -> (Option<String>, Option<String>) {
    let mut json = None;
    let mut events = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = Some(args.next().expect("--json takes a path")),
            "--events" => events = Some(args.next().expect("--events takes a path")),
            other => {
                panic!(
                    "unknown argument {other} (usage: q17_tracing [--json PATH] [--events PATH])"
                )
            }
        }
    }
    (json, events)
}

/// One relay-tier run at `permille` with `recorder` armed; same seed,
/// links and students every time.
fn run_tier(wmps: &Wmps, file: &lod_asf::AsfFile, recorder: Recorder, permille: u16) -> WmpsReport {
    let cfg = RelayTierConfig {
        relays: RELAYS,
        recorder,
        trace_permille: permille,
        ..RelayTierConfig::default()
    };
    wmps.serve_with_relays(
        file.clone(),
        lod_simnet::LinkSpec::lan(),
        lod_simnet::LinkSpec::lan(),
        STUDENTS,
        SEED,
        &cfg,
    )
}

/// Median of `samples` (sorted in place, nearest-rank).
fn median(samples: &mut [u64]) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn main() {
    let (json_path, events_path) = parse_args();
    println!("Q17 — tracing plane: sampled-overhead contract + waterfall fidelity");
    println!(
        "({STUDENTS} students, {RELAYS} relays, 1-minute lecture, seed {SEED}, \
         {REPS} interleaved reps per config)\n"
    );

    let wmps = Wmps::new();
    let file = wmps
        .publish(&synthetic_lecture(11, 1, 300_000))
        .expect("publish");

    // Wire-format costs: the one reliable Mark a sampled segment adds
    // per session, and the fixed per-frame trace extension.
    let ctx = TraceCtx {
        lecture: lecture_id("lecture"),
        segment: 5,
        seq: 1,
        origin: 7_000_000,
    };
    let mark = lod_streaming::wire::Wire::Mark(ctx);
    let mark_frame = encode_frame_traced(1, 0, FLAG_RELIABLE, Some(ctx), &mark.to_frame_payload());
    println!(
        "wire: Mark frame {} B, per-frame trace extension {TRACE_EXT_BYTES} B\n",
        mark_frame.len()
    );

    // Timed runs, interleaved: off / sampled / full per repetition.
    // Fresh recorders every run so the ring never carries state across
    // repetitions.
    let mut off_ns = Vec::with_capacity(REPS);
    let mut sampled_ns = Vec::with_capacity(REPS);
    let mut full_ns = Vec::with_capacity(REPS);
    let mut session_ticks = 0;
    for _ in 0..REPS {
        let t = Instant::now();
        let report = run_tier(&wmps, &file, Recorder::disabled(), 0);
        off_ns.push(t.elapsed().as_nanos() as u64);
        session_ticks = report.session_ticks;

        let t = Instant::now();
        run_tier(
            &wmps,
            &file,
            Recorder::with_event_capacity(1 << 16),
            SAMPLED_PERMILLE,
        );
        sampled_ns.push(t.elapsed().as_nanos() as u64);

        let t = Instant::now();
        run_tier(&wmps, &file, Recorder::with_event_capacity(1 << 16), 1000);
        full_ns.push(t.elapsed().as_nanos() as u64);
    }
    let off_med = median(&mut off_ns);
    let sampled_med = median(&mut sampled_ns);
    let full_med = median(&mut full_ns);
    // Signed permille deltas against obs-off; a quiet machine lands the
    // sampled figure in single digits.
    let permille_over = |ns: u64| (ns as i64 - off_med as i64) * 1000 / off_med as i64;
    let ns_per_ktick = |ns: u64| ns * 1000 / session_ticks.max(1);
    println!(
        "overhead (median of {REPS}, {} session-ticks/run):\n\
         \x20 obs-off      {:>12} ns  ({:>5} ns/ktick)\n\
         \x20 sampled 10\u{2030} {:>12} ns  ({:>5} ns/ktick, {:+} \u{2030} vs off)\n\
         \x20 full 1000\u{2030}  {:>12} ns  ({:>5} ns/ktick, {:+} \u{2030} vs off)\n",
        session_ticks,
        off_med,
        ns_per_ktick(off_med),
        sampled_med,
        ns_per_ktick(sampled_med),
        permille_over(sampled_med),
        full_med,
        ns_per_ktick(full_med),
        permille_over(full_med),
    );

    // Gate 1: the sampled plane's overhead contract — ≤5% over obs-off.
    assert!(
        sampled_med <= off_med.saturating_mul(105) / 100,
        "sampled tracing at {SAMPLED_PERMILLE}\u{2030} must cost ≤5% over obs-off \
         (off {off_med} ns, sampled {sampled_med} ns)"
    );
    println!("PASS: sampled tracing within the 5% overhead budget");

    // Untimed analysis runs: the deterministic span ledgers.
    let full_rec = Recorder::with_event_capacity(1 << 16);
    let full_report = run_tier(&wmps, &file, full_rec.clone(), 1000);
    let sampled_rec = Recorder::with_event_capacity(1 << 16);
    let sampled_report = run_tier(&wmps, &file, sampled_rec.clone(), SAMPLED_PERMILLE);
    assert_eq!(
        full_report.completed_sessions(),
        STUDENTS,
        "tracing must not disturb delivery: {full_report:?}"
    );
    assert_eq!(sampled_report.completed_sessions(), STUDENTS);

    // Gate 2: causal span invariants over both logs.
    let full_events = full_rec.events();
    let full_causal = check_causal(&full_events);
    assert!(
        full_causal.holds(),
        "full-trace log must satisfy the causal span invariants: {full_causal:?}"
    );
    let sampled_events = sampled_rec.events();
    let sampled_causal = check_causal(&sampled_events);
    assert!(
        sampled_causal.holds(),
        "sampled log must satisfy the causal span invariants: {sampled_causal:?}"
    );
    println!(
        "PASS: causal invariants — {} span(s) opened full-trace, {} sampled, zero violations",
        full_causal.spans_opened, sampled_causal.spans_opened
    );

    // Gate 3: the assembler reconstructs complete waterfalls.
    let mut full_asm = SpanAssembler::default();
    full_asm.ingest_all(&full_events);
    let full_traces = full_asm.traces();
    assert!(
        !full_traces.is_empty(),
        "a 1000\u{2030} run must assemble at least one trace"
    );
    let complete = full_traces
        .iter()
        .filter(|t| {
            CHAIN
                .iter()
                .all(|hop| t.spans.iter().any(|s| s.hop == *hop))
        })
        .count();
    assert!(
        complete > 0,
        "at least one waterfall must carry the whole delivery chain {CHAIN:?}"
    );
    let mut sampled_asm = SpanAssembler::default();
    sampled_asm.ingest_all(&sampled_events);
    let sampled_traces = sampled_asm.traces();
    // Head-sampling at 10‰ must shrink the plane, not mirror it.
    assert!(
        sampled_traces.len() <= full_traces.len() / 10,
        "10\u{2030} sampling must trace a small fraction of segments \
         ({} sampled vs {} full)",
        sampled_traces.len(),
        full_traces.len()
    );
    assert!(
        sampled_events.len() < full_events.len(),
        "the sampled plane must emit fewer events than full tracing"
    );

    // Gate 3b: a sparse plane still assembles complete waterfalls for
    // the segments it keeps.
    let sparse_rec = Recorder::with_event_capacity(1 << 16);
    run_tier(&wmps, &file, sparse_rec.clone(), SPARSE_PERMILLE);
    let sparse_events = sparse_rec.events();
    let sparse_causal = check_causal(&sparse_events);
    assert!(sparse_causal.holds(), "sparse log: {sparse_causal:?}");
    let mut sparse_asm = SpanAssembler::default();
    sparse_asm.ingest_all(&sparse_events);
    let sparse_traces = sparse_asm.traces();
    assert!(
        !sparse_traces.is_empty() && sparse_traces.len() < full_traces.len(),
        "the {SPARSE_PERMILLE}\u{2030} plane must keep some but not all segments \
         ({} of {})",
        sparse_traces.len(),
        full_traces.len()
    );
    assert!(
        sparse_traces.iter().all(|t| CHAIN
            .iter()
            .all(|hop| t.spans.iter().any(|s| s.hop == *hop))),
        "every sparse-sampled segment must carry the whole delivery chain"
    );
    println!(
        "PASS: waterfalls — {}/{} full traces carry all {} chain hops; \
         {SPARSE_PERMILLE}\u{2030} keeps {} complete trace(s); \
         10\u{2030} keeps {} trace(s) / {} event(s) (full: {} / {})\n",
        complete,
        full_traces.len(),
        CHAIN.len(),
        sparse_traces.len(),
        sampled_traces.len(),
        sampled_events.len(),
        full_traces.len(),
        full_events.len()
    );

    // Gate 4: the log survives a JSONL round trip.
    let jsonl = full_rec.to_jsonl();
    assert_eq!(
        parse_jsonl(&jsonl).expect("log parses"),
        full_events,
        "JSONL round trip"
    );

    println!("hop latency across every full trace:");
    println!("  {:<13} {:>7} {:>10} {:>10}", "hop", "count", "p50", "p99");
    for h in full_asm.hop_stats() {
        println!(
            "  {:<13} {:>7} {:>10} {:>10}",
            h.hop,
            h.count,
            fmt_ticks(h.p50),
            fmt_ticks(h.p99)
        );
    }
    println!("\nworst segment by end-to-end latency:");
    for t in full_asm.worst_by_end_to_end(1) {
        print!("{}", t.waterfall(48));
    }

    // Integers only under "tracked", so the gate verdict is portable.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"q17_tracing\",");
    let _ = writeln!(json, "  \"tracked\": {{");
    let _ = writeln!(json, "    \"mark_frame_bytes\": {},", mark_frame.len());
    let _ = writeln!(json, "    \"trace_ext_bytes\": {TRACE_EXT_BYTES},");
    let _ = writeln!(
        json,
        "    \"full_spans_opened\": {},",
        full_causal.spans_opened
    );
    let _ = writeln!(
        json,
        "    \"full_span_violations\": {},",
        full_causal.spans_unclosed
            + full_causal.span_order_violations
            + full_causal.span_receipt_violations
    );
    let _ = writeln!(json, "    \"full_traces\": {},", full_traces.len());
    let _ = writeln!(json, "    \"full_events\": {},", full_events.len());
    let _ = writeln!(
        json,
        "    \"sampled_spans_opened\": {},",
        sampled_causal.spans_opened
    );
    let _ = writeln!(json, "    \"sampled_traces\": {},", sampled_traces.len());
    let _ = writeln!(json, "    \"sampled_events\": {},", sampled_events.len());
    let _ = writeln!(json, "    \"sparse_traces\": {}", sparse_traces.len());
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"untracked\": {{");
    let _ = writeln!(json, "    \"students\": {STUDENTS},");
    let _ = writeln!(json, "    \"relays\": {RELAYS},");
    let _ = writeln!(json, "    \"reps\": {REPS},");
    let _ = writeln!(json, "    \"session_ticks\": {session_ticks},");
    let _ = writeln!(json, "    \"off_ns_median\": {off_med},");
    let _ = writeln!(json, "    \"sampled_ns_median\": {sampled_med},");
    let _ = writeln!(json, "    \"full_ns_median\": {full_med},");
    let _ = writeln!(
        json,
        "    \"sampled_overhead_permille\": {},",
        permille_over(sampled_med)
    );
    let _ = writeln!(
        json,
        "    \"full_overhead_permille\": {}",
        permille_over(full_med)
    );
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");

    match json_path {
        Some(path) => {
            std::fs::write(&path, &json).expect("write json report");
            println!("\nreport written to {path}");
        }
        None => println!("\n{json}"),
    }
    if let Some(path) = events_path {
        std::fs::write(&path, &jsonl).expect("write event log");
        println!(
            "event log written to {path} ({} record(s))",
            full_events.len()
        );
    }

    println!(
        "\nshape: tracing rides the messages the system already sends — a\n\
         32-byte frame extension, one Mark per sampled segment — so the\n\
         sampled plane is within noise of obs-off while still producing\n\
         causally-checked waterfalls; full tracing is the debugging dial,\n\
         paid for only when turned."
    );
}
