//! Q1: OCPN vs XOCPN vs ETPN under network jitter/loss and user
//! interaction — the quantified version of the paper's §1 claims.

use lod_bench::report::{header, ms, row};
use lod_core::replay::{compare, ReplayConfig};
use lod_simnet::LinkSpec;

fn main() {
    println!("Q1 — sync models under distribution (40 × 1 s units, 2 streams)\n");

    let scenarios: Vec<(&str, LinkSpec)> = vec![
        ("LAN (clean)", LinkSpec::lan()),
        ("broadband", LinkSpec::broadband()),
        (
            "broadband + 8 ms jitter + 2% loss",
            LinkSpec::broadband().with_jitter(8_000_000).with_loss(0.02),
        ),
        (
            "broadband + 20 ms jitter + 5% loss",
            LinkSpec::broadband()
                .with_jitter(20_000_000)
                .with_loss(0.05),
        ),
    ];

    for (label, link) in scenarios {
        let mut cfg = ReplayConfig::new(link, 11);
        cfg.units = 40;
        println!("-- {label} --");
        let widths = [8usize, 14, 14, 12, 12];
        header(
            &[
                "model",
                "max skew ms",
                "mean skew ms",
                "stall ms",
                "finish s",
            ],
            &widths,
        );
        for r in compare(&cfg) {
            row(
                &[
                    r.model.to_string(),
                    ms(r.max_skew),
                    format!("{:.1}", r.mean_skew / 10_000.0),
                    ms(r.stall),
                    format!("{:.2}", r.finish as f64 / 1e7),
                ],
                &widths,
            );
        }
        println!();
    }

    // User interaction: pause for 5 s at unit 10.
    println!("-- user interaction: pause 5 s at unit 10 (LAN) --");
    let mut cfg = ReplayConfig::new(LinkSpec::lan(), 5);
    cfg.units = 30;
    cfg.pause = Some((10, 50_000_000));
    let widths = [8usize, 22, 16, 12];
    header(
        &[
            "model",
            "units missed in pause",
            "units rendered",
            "finish s",
        ],
        &widths,
    );
    for r in compare(&cfg) {
        row(
            &[
                r.model.to_string(),
                r.units_missed_during_pause.to_string(),
                r.units_rendered.to_string(),
                format!("{:.2}", r.finish as f64 / 1e7),
            ],
            &widths,
        );
    }
    println!(
        "\nshape (paper §1): OCPN skews under jitter, XOCPN's channel reservation\n\
         absorbs nominal delay only, and only the ETPN holds sync (skew 0, paying\n\
         with stalls) and honours user interaction without rebuilding the schedule."
    );
}
