//! Q2 (§2.5): the bandwidth-profile table — "the more high bit rate means
//! the content will be encoded to a more high-resolution content" — and
//! what each profile delivers over its matching link.

use lod_bench::report::{header, row};
use lod_encoder::{
    AudioCaptureDevice, BandwidthProfile, CaptureSource, Encoder, VideoCaptureDevice,
};
use lod_media::{MediaKind, Ticks};

fn main() {
    println!("Q2 — §2.5 bandwidth profiles (10 s of live encoding each)\n");
    let widths = [26usize, 10, 12, 6, 20, 10, 10, 10];
    header(
        &[
            "profile",
            "kbit/s",
            "resolution",
            "fps",
            "video codec",
            "quality",
            "frames",
            "dropped",
        ],
        &widths,
    );
    for profile in BandwidthProfile::all() {
        let mut enc = Encoder::new(profile.clone());
        let mut cam = VideoCaptureDevice::new(640, 480, 30);
        let mut mic = AudioCaptureDevice::new(16_000, 100);
        let until = Ticks::from_secs(10);
        loop {
            let mut any = false;
            if let Some(f) = cam.next_frame(until) {
                any = true;
                let _ = enc.encode(&f);
            }
            if let Some(f) = mic.next_frame(until) {
                any = true;
                let _ = enc.encode(&f);
            }
            if !any {
                break;
            }
        }
        let s = enc.stats();
        let (w, h) = profile.resolution();
        row(
            &[
                profile.name().to_string(),
                (profile.total_bitrate() / 1000).to_string(),
                if profile.has_video() {
                    format!("{w}x{h}")
                } else {
                    "audio only".into()
                },
                profile.frame_rate().to_string(),
                if profile.has_video() {
                    profile.codec_for(MediaKind::Video).to_string()
                } else {
                    "-".into()
                },
                format!("{:.2}", enc.video_quality()),
                s.frames_encoded.to_string(),
                s.frames_dropped.to_string(),
            ],
            &widths,
        );
    }
    println!(
        "\nshape: bitrate, resolution, frame rate and quality all rise together\n\
         across profiles, exactly the §2.5 claim; the frame-rate governor drops\n\
         camera frames on slow profiles.\n"
    );

    // The point of picking a profile: matched to the student's link, the
    // live classroom plays without stalls.
    println!("-- each profile live-streamed over a link of twice its bitrate --");
    let widths = [26usize, 14, 10, 14];
    header(&["profile", "startup ms", "stalls", "samples"], &widths);
    for profile in BandwidthProfile::all() {
        let link = lod_simnet::LinkSpec::broadband()
            .with_bandwidth(profile.total_bitrate() * 2)
            .with_jitter(100_000)
            .with_loss(0.0);
        let report = lod_core::Wmps::new().live_classroom(profile.clone(), 8, 2, link, 19);
        let m = &report.clients[0];
        row(
            &[
                profile.name().to_string(),
                format!("{:.0}", m.startup_ticks as f64 / 10_000.0),
                m.stalls.to_string(),
                m.samples_rendered.to_string(),
            ],
            &widths,
        );
    }
    println!(
        "\nshape: every profile plays cleanly on a link sized for it — choosing\n\
         the profile by bandwidth is exactly what makes the system work on\n\
         everything from modems to LANs."
    );
}
