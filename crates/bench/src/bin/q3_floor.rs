//! Q3: floor control with multiple users — grant latency, fairness, and
//! teacher priority (paper §1 / ref \[13\]).

use lod_bench::report::{header, row};
use lod_core::floor::run_floor;
use lod_core::FloorRequest;

const SECOND: u64 = 10_000_000;

fn contention(users: usize, hold_secs: u64) -> Vec<FloorRequest> {
    (0..users)
        .map(|u| FloorRequest {
            user: u,
            at: u as u64 * SECOND / 2, // staggered half-second requests
            hold: hold_secs * SECOND,
            priority: 0,
        })
        .collect()
}

fn main() {
    println!("Q3 — floor control under contention (each speaker holds 5 s)\n");
    let widths = [8usize, 14, 14, 10];
    header(&["users", "mean wait s", "max wait s", "Jain"], &widths);
    for users in [2usize, 4, 8, 16, 32] {
        let r = run_floor(&contention(users, 5));
        row(
            &[
                users.to_string(),
                format!("{:.1}", r.mean_wait() / SECOND as f64),
                format!("{:.1}", r.max_wait() as f64 / SECOND as f64),
                format!("{:.3}", r.jain_index()),
            ],
            &widths,
        );
    }

    println!("\nteacher priority (priority 10 vs students at 0):");
    let mut requests = contention(6, 5);
    requests.push(FloorRequest {
        user: 99,
        at: 3 * SECOND,
        hold: 2 * SECOND,
        priority: 10,
    });
    let r = run_floor(&requests);
    println!("  grant order: {:?}", r.grant_order());
    let teacher = r
        .grants
        .iter()
        .find(|g| g.user == 99)
        .expect("teacher granted");
    println!(
        "  teacher waited {:.1} s (jumped the queue, did not preempt the holder)",
        teacher.wait as f64 / SECOND as f64
    );
    let position = r.grant_order().iter().position(|&u| u == 99).unwrap();
    assert!(position <= 2, "teacher must be near the front");
    println!(
        "\nshape: mean wait grows linearly with contenders (single floor token is\n\
         a structural invariant of the net); priority jumps the queue without\n\
         preempting the current holder."
    );
}
