//! Q4: slide/script synchronization robustness — what jitter does once it
//! approaches the client preroll, and what packet size costs on the wire.

use lod_bench::report::{header, ms, row};
use lod_core::{synthetic_lecture, Wmps};
use lod_simnet::LinkSpec;

fn main() {
    println!("Q4 — script-command sync vs jitter and packet size\n");
    let lecture = synthetic_lecture(44, 1, 300_000);

    // The published file carries a 2 s preroll; jitter is invisible until
    // it approaches that bound, then rebuffering starts.
    println!("-- jitter sweep (broadband, packet 1400 B, preroll 2 s) --");
    let widths = [14usize, 14, 14, 10, 14];
    header(
        &[
            "jitter ms",
            "p95 skew ms",
            "max skew ms",
            "stalls",
            "stall ms",
        ],
        &widths,
    );
    for jitter_ms in [0u64, 100, 500, 1_500, 3_000, 6_000] {
        let link = LinkSpec::broadband()
            .with_jitter(jitter_ms * 10_000)
            .with_loss(0.0);
        let wmps = Wmps::new();
        let file = wmps.publish(&lecture).expect("publish");
        let report = wmps.serve_and_replay(file, link, 1, 13);
        let s = &report.skew[0];
        let m = &report.clients[0];
        row(
            &[
                jitter_ms.to_string(),
                ms(s.p95),
                ms(s.max),
                m.stalls.to_string(),
                ms(m.stall_ticks),
            ],
            &widths,
        );
    }

    println!("\n-- packet-size sweep (wire efficiency of the same lecture) --");
    let widths = [12usize, 10, 12, 14, 12];
    header(
        &["packet B", "packets", "media MB", "wire MB", "overhead %"],
        &widths,
    );
    for packet in [128u32, 256, 512, 1_400, 4_096] {
        let wmps = Wmps::new().with_packet_size(packet);
        let file = wmps.publish(&lecture).expect("publish");
        let media: u64 = file.packets.iter().map(|p| p.media_bytes() as u64).sum();
        let wire = file.packets.len() as u64 * u64::from(packet);
        row(
            &[
                packet.to_string(),
                file.packets.len().to_string(),
                format!("{:.2}", media as f64 / 1e6),
                format!("{:.2}", wire as f64 / 1e6),
                format!("{:.1}", (wire as f64 / media as f64 - 1.0) * 100.0),
            ],
            &widths,
        );
    }
    println!(
        "\nshape: sync is immune to jitter well below the 2 s preroll and degrades\n\
         gracefully once jitter approaches it; per-packet headers dominate at\n\
         tiny packet sizes (≈37% overhead at 128 B) and shrink below 5% at the\n\
         era-typical 1400 B."
    );
}
