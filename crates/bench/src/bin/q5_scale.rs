//! Q5: server scalability — concurrent students behind one shared campus
//! uplink ("many students cannot attend the presentation" is the paper's
//! whole motivation; here is what happens when they all connect).

use lod_bench::report::{header, ms, row};
use lod_core::{synthetic_lecture, Wmps};
use lod_simnet::LinkSpec;

fn main() {
    println!("Q5 — scalability behind a shared 10 Mbit/s uplink (1-minute lecture)\n");
    let lecture = synthetic_lecture(55, 1, 300_000);
    let wmps = Wmps::new();
    let file = wmps.publish(&lecture).expect("publish");
    let uplink = LinkSpec::broadband().with_bandwidth(10_000_000); // the bottleneck
    let access = LinkSpec::lan(); // each student's own fast access link

    let widths = [10usize, 18, 16, 12, 14, 14, 12];
    header(
        &[
            "students",
            "uplink load %",
            "mean startup ms",
            "max stalls",
            "worst rebuf %",
            "srv out MB",
            "bp pauses",
        ],
        &widths,
    );
    let media_rate = 332_000.0; // the lecture's video+audio+slides rate
    for n in [1usize, 2, 4, 8, 16, 32, 48] {
        let report = wmps.serve_shared_uplink(file.clone(), uplink, access, n, 21);
        let mean_startup: u64 =
            report.clients.iter().map(|m| m.startup_ticks).sum::<u64>() / n as u64;
        let max_stalls = report.clients.iter().map(|m| m.stalls).max().unwrap_or(0);
        let worst = report.worst_rebuffer(file.props.play_duration);
        row(
            &[
                n.to_string(),
                format!("{:.0}", n as f64 * media_rate / 10_000_000.0 * 100.0),
                ms(mean_startup),
                max_stalls.to_string(),
                format!("{:.1}", worst * 100.0),
                format!("{:.1}", report.server.payload_bytes_sent as f64 / 1e6),
                report.server.backpressure_pauses.to_string(),
            ],
            &widths,
        );
    }
    println!(
        "\nshape: all flows share the real server→router queue; quality is flat\n\
         while aggregate demand stays under the uplink, then startup and\n\
         rebuffering climb past ~100% load (≈30 students at 332 kbit/s each)\n\
         — the capacity wall that motivates multicast."
    );
}
