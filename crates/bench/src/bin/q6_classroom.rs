//! Q6: synchronization across distributed platforms — when the teacher
//! flips a slide in a live broadcast, how far apart in time do the
//! students actually see it?

use lod_bench::report::{header, ms, row};
use lod_core::Wmps;
use lod_encoder::BandwidthProfile;
use lod_simnet::LinkSpec;

fn main() {
    println!("Q6 — live classroom slide-flip spread across students\n");
    let slides: Vec<(u64, String)> = (0..6)
        .map(|i| (i * 50_000_000 + 10_000_000, format!("live/slide_{i}.png")))
        .collect();
    let profile = BandwidthProfile::by_name("dual ISDN (128k)").unwrap();
    let wmps = Wmps::new();

    let widths = [28usize, 10, 16, 16, 12];
    header(
        &[
            "link",
            "students",
            "mean spread ms",
            "max spread ms",
            "flips",
        ],
        &widths,
    );
    for (label, link) in [
        ("LAN", LinkSpec::lan()),
        ("broadband", LinkSpec::broadband()),
        (
            "broadband + 100 ms jitter",
            LinkSpec::broadband().with_jitter(1_000_000),
        ),
        (
            "broadband + 1 s jitter",
            LinkSpec::broadband().with_jitter(10_000_000),
        ),
    ] {
        for n in [4usize, 16] {
            let report = wmps.live_classroom_with_slides(profile.clone(), 35, n, link, 66, &slides);
            let s = &report.classroom_spread;
            row(
                &[
                    label.to_string(),
                    n.to_string(),
                    format!("{:.1}", s.mean / 10_000.0),
                    ms(s.max),
                    s.count.to_string(),
                ],
                &widths,
            );
        }
    }
    println!(
        "\nshape: on a clean LAN every student flips within the driver cadence;\n\
         jitter widens the spread toward its own magnitude — the distributed-\n\
         platform synchronization problem §1 says OCPN/XOCPN cannot express,\n\
         and which the ETPN's arrival-gated joins bound."
    );
}
