//! Q7: cross-site joins — the ETPN's synchronization across distributed
//! platforms, with and without the barrier protocol.

use lod_bench::report::{header, ms, row, secs};
use lod_core::distributed::{run_classroom, ClassroomConfig};
use lod_simnet::LinkSpec;

fn main() {
    println!(
        "Q7 — distributed-platform sync: 4 sites, 20 × 1 s units,\n\
         per-site data lag staggered (site i lags i × stagger)\n"
    );
    let widths = [12usize, 10, 16, 14, 12, 10];
    header(
        &[
            "stagger ms",
            "barrier",
            "max skew ms",
            "mean skew ms",
            "finish s",
            "msgs",
        ],
        &widths,
    );
    for stagger_ms in [0u64, 200, 1_000, 3_000] {
        for barrier in [false, true] {
            let cfg = ClassroomConfig::staggered(
                4,
                20,
                10_000_000,
                stagger_ms * 10_000,
                LinkSpec::lan(),
                barrier,
                9,
            );
            let r = run_classroom(&cfg);
            row(
                &[
                    stagger_ms.to_string(),
                    barrier.to_string(),
                    ms(r.max_skew),
                    format!("{:.1}", r.mean_skew / 10_000.0),
                    secs(r.finish),
                    r.control_messages.to_string(),
                ],
                &widths,
            );
        }
    }
    println!(
        "\nshape: free-running sites drift apart by the full data stagger (what\n\
         per-site OCPN gives you); the barrier pins inter-site skew to network\n\
         round-trip scale at the cost of 2 control messages per site per unit\n\
         and everyone pacing at the slowest site."
    );
}
