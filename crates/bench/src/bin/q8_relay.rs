//! Q8: the edge-relay distribution tier — what a campus full of students
//! costs the origin with and without relays in between.
//!
//! The paper distributes one lecture to many students over limited
//! links; Q8 measures the relay answer: K edge relays pull each ASF
//! packet segment across the shared origin uplink **once**, cache it,
//! and fan it out locally, so origin egress scales with K instead of
//! with the class size. A failure drill kills one relay mid-lecture and
//! checks every re-homed student still finishes.

use lod_bench::report::{header, ms, row};
use lod_core::{synthetic_lecture, RelayTierConfig, Wmps, WmpsReport};
use lod_simnet::LinkSpec;

const STUDENTS: usize = 64;
const SEED: u64 = 88;

fn mb(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / 1e6)
}

fn table_row(label: &str, report: &WmpsReport, baseline_egress: u64, widths: &[usize]) {
    let n = report.clients.len() as u64;
    let mean_startup: u64 = report.clients.iter().map(|m| m.startup_ticks).sum::<u64>() / n;
    let max_stalls = report.clients.iter().map(|m| m.stalls).max().unwrap_or(0);
    let hit_rate = report
        .relay
        .as_ref()
        .map_or("-".to_string(), |r| format!("{:.2}", r.cache.hit_rate()));
    row(
        &[
            label.to_string(),
            mb(report.origin_egress_bytes),
            format!(
                "{:.1}x",
                baseline_egress as f64 / report.origin_egress_bytes as f64
            ),
            hit_rate,
            ms(mean_startup),
            max_stalls.to_string(),
        ],
        widths,
    );
}

fn main() {
    println!("Q8 — edge relays vs. origin-only over a shared 10 Mbit/s uplink");
    println!("({STUDENTS} students, 1-minute lecture)\n");
    let lecture = synthetic_lecture(55, 1, 300_000);
    let wmps = Wmps::new();
    let file = wmps.publish(&lecture).expect("publish");
    let play_duration = file.props.play_duration;
    let uplink = LinkSpec::broadband().with_bandwidth(10_000_000);
    let access = LinkSpec::lan();

    let baseline = wmps.serve_shared_uplink(file.clone(), uplink, access, STUDENTS, SEED);
    let baseline_egress = baseline.origin_egress_bytes;

    let widths = [12usize, 16, 14, 10, 16, 10];
    header(
        &[
            "relays",
            "origin out MB",
            "uplink cut",
            "cache hit",
            "mean startup ms",
            "max stalls",
        ],
        &widths,
    );
    table_row("origin only", &baseline, baseline_egress, &widths);
    let mut four_relays = None;
    for k in [1usize, 2, 4] {
        let cfg = RelayTierConfig {
            relays: k,
            ..RelayTierConfig::default()
        };
        let report = wmps.serve_with_relays(file.clone(), uplink, access, STUDENTS, SEED, &cfg);
        table_row(&format!("K = {k}"), &report, baseline_egress, &widths);
        if k == 4 {
            four_relays = Some(report);
        }
    }
    let four = four_relays.expect("K=4 ran");

    // The acceptance gates: a 4-relay tier must cut origin uplink bytes
    // at least 2x without making rebuffering worse, and a warm cache must
    // serve most lookups locally.
    let cut = baseline_egress as f64 / four.origin_egress_bytes as f64;
    let base_rebuf = baseline.worst_rebuffer(play_duration);
    let four_rebuf = four.worst_rebuffer(play_duration);
    let hit_rate = four
        .relay
        .as_ref()
        .expect("relay tier ran")
        .cache
        .hit_rate();
    println!(
        "\nuplink cut at K=4: {cut:.1}x  (worst rebuffer {:.1}% -> {:.1}%)",
        base_rebuf * 100.0,
        four_rebuf * 100.0
    );
    assert!(cut >= 2.0, "relays must cut origin egress at least 2x");
    assert!(
        four_rebuf <= base_rebuf,
        "relays must not worsen rebuffering"
    );
    assert!(hit_rate >= 0.8, "warm cache hit rate {hit_rate:.2} < 0.8");
    println!("PASS: K=4 cuts origin uplink {cut:.1}x with no rebuffer regression");
    println!("PASS: warm segment-cache hit rate {hit_rate:.2} >= 0.80");

    // Failure drill: one of four relays dies 20 s into the lecture.
    let cfg = RelayTierConfig {
        relays: 4,
        fail_first_at: Some(200_000_000),
        ..RelayTierConfig::default()
    };
    let drill = wmps.serve_with_relays(file.clone(), uplink, access, STUDENTS, SEED, &cfg);
    let relay = drill.relay.expect("relay tier ran");
    let complete = drill
        .clients
        .iter()
        .filter(|m| m.samples_rendered > 0)
        .count();
    println!(
        "\nfailure drill: relay 1/4 died at t=20s; {} students re-attached, {}/{} completed",
        relay.reattached, complete, STUDENTS
    );
    assert!(relay.reattached > 0, "the dead relay carried students");
    assert_eq!(complete, STUDENTS, "every student must finish the lecture");
    println!("PASS: mid-lecture relay failure re-attaches students and all complete");

    println!(
        "\nshape: origin egress scales with K (one segment pull per relay)\n\
         instead of with the class; the redirect manager spreads students\n\
         across relays and re-homes them on failure, so the 10 Mbit/s\n\
         uplink that buckled under {STUDENTS} direct sessions carries the\n\
         whole class through {} relay pulls.",
        4
    );
}
