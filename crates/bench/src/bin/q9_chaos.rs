//! Q9: the chaos drill — scripted fault storms against the full relay
//! tier, graded on how many of 64 students still finish the lecture and
//! how fast their clients recover.
//!
//! Each severity row is one deterministic storm: loss bursts brown out
//! every access link, an edge relay crashes for good, the origin uplink
//! is severed for two seconds, and individual students lose their cable.
//! The resilience layer under test: client retry-from-horizon with
//! jittered exponential backoff, relay fetch retries, redirect-manager
//! re-homing, and origin idle-session reaping. Everything is seeded, so
//! two runs with the same `--seed` emit byte-identical reports — which
//! is exactly what `scripts/ci.sh` checks.
//!
//! Usage: `q9_chaos [--seed N] [--json PATH]`

use std::fmt::Write as _;

use lod_bench::report::{header, ms, row};
use lod_core::{synthetic_lecture, ChaosSpec, RelayTierConfig, Wmps, WmpsReport};
use lod_simnet::LinkSpec;
use lod_streaming::RetryPolicy;

const STUDENTS: usize = 64;
const RELAYS: usize = 4;
const SECOND: u64 = 10_000_000; // ticks

/// One named storm at one severity.
struct Scenario {
    name: &'static str,
    chaos: ChaosSpec,
}

fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "calm",
            chaos: ChaosSpec::default(),
        },
        Scenario {
            name: "mild",
            // A 2% brownout on every access link mid-lecture.
            chaos: ChaosSpec {
                access_loss_bursts: vec![(10 * SECOND, 15 * SECOND, 0.02)],
                ..ChaosSpec::default()
            },
        },
        Scenario {
            name: "moderate",
            // 5% brownout plus one relay crashing for good.
            chaos: ChaosSpec {
                access_loss_bursts: vec![(10 * SECOND, 15 * SECOND, 0.05)],
                relay_crashes: vec![(20 * SECOND, u64::MAX, 0)],
                ..ChaosSpec::default()
            },
        },
        Scenario {
            name: "severe",
            // The acceptance storm: 5% loss burst, one relay crash, a
            // 2 s uplink partition, and two students' cables yanked.
            chaos: ChaosSpec {
                access_loss_bursts: vec![(10 * SECOND, 15 * SECOND, 0.05)],
                relay_crashes: vec![(20 * SECOND, u64::MAX, 0)],
                uplink_partitions: vec![(30 * SECOND, 2 * SECOND)],
                access_flaps: vec![(12 * SECOND, 3 * SECOND / 2, 7), (35 * SECOND, SECOND, 21)],
                ..ChaosSpec::default()
            },
        },
    ]
}

/// Everything one storm run is graded on, in integers only so the JSON
/// report is byte-for-byte reproducible.
struct Outcome {
    name: &'static str,
    completed: usize,
    abandoned: usize,
    faults_applied: u64,
    reattached: usize,
    retries: u64,
    recoveries: usize,
    recover_ms_p95: u64,
    recover_ms_max: u64,
    mean_startup_ms: u64,
    max_stalls: u64,
    origin_egress_bytes: u64,
    session_ms: u64,
}

impl Outcome {
    fn grade(name: &'static str, report: &WmpsReport) -> Self {
        let n = report.clients.len() as u64;
        Self {
            name,
            completed: report.completed_sessions(),
            abandoned: report.clients.iter().filter(|m| m.abandoned).count(),
            faults_applied: report.faults_applied,
            reattached: report.relay.as_ref().map_or(0, |r| r.reattached),
            retries: report.clients.iter().map(|m| m.retries).sum(),
            recoveries: report.recoveries.len(),
            recover_ms_p95: report.p95_recovery_ticks() / 10_000,
            recover_ms_max: report.recoveries.iter().max().copied().unwrap_or(0) / 10_000,
            mean_startup_ms: report.clients.iter().map(|m| m.startup_ticks).sum::<u64>()
                / n
                / 10_000,
            max_stalls: report.clients.iter().map(|m| m.stalls).max().unwrap_or(0),
            origin_egress_bytes: report.origin_egress_bytes,
            session_ms: report.session_ticks / 10_000,
        }
    }

    fn json(&self, out: &mut String) {
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"completed\": {}, \"abandoned\": {}, \
             \"faults_applied\": {}, \"reattached\": {}, \"retries\": {}, \
             \"recoveries\": {}, \"recover_ms_p95\": {}, \"recover_ms_max\": {}, \
             \"mean_startup_ms\": {}, \"max_stalls\": {}, \
             \"origin_egress_bytes\": {}, \"session_ms\": {}}}",
            self.name,
            self.completed,
            self.abandoned,
            self.faults_applied,
            self.reattached,
            self.retries,
            self.recoveries,
            self.recover_ms_p95,
            self.recover_ms_max,
            self.mean_startup_ms,
            self.max_stalls,
            self.origin_egress_bytes,
            self.session_ms,
        );
    }
}

fn parse_args() -> (u64, Option<String>) {
    let mut seed = 7u64;
    let mut json = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed takes an integer");
            }
            "--json" => json = Some(args.next().expect("--json takes a path")),
            other => panic!("unknown argument {other} (usage: q9_chaos [--seed N] [--json PATH])"),
        }
    }
    (seed, json)
}

fn main() {
    let (seed, json_path) = parse_args();
    println!("Q9 — chaos drill: fault storms against the relay tier");
    println!("({STUDENTS} students, {RELAYS} relays, 1-minute lecture, seed {seed})\n");
    let lecture = synthetic_lecture(55, 1, 300_000);
    let wmps = Wmps::new();
    let file = wmps.publish(&lecture).expect("publish");
    let uplink = LinkSpec::broadband().with_bandwidth(10_000_000);
    let access = LinkSpec::lan();

    let widths = [10usize, 10, 9, 7, 9, 11, 13, 12, 10];
    header(
        &[
            "storm",
            "complete",
            "faults",
            "rehomed",
            "retries",
            "recoveries",
            "p95 recov ms",
            "max recov ms",
            "max stalls",
        ],
        &widths,
    );

    let mut outcomes = Vec::new();
    for sc in scenarios() {
        let cfg = RelayTierConfig {
            relays: RELAYS,
            chaos: sc.chaos.clone(),
            client_retry: Some(RetryPolicy::client()),
            idle_timeout: Some(120 * SECOND),
            ..RelayTierConfig::default()
        };
        let report = wmps.serve_with_relays(file.clone(), uplink, access, STUDENTS, seed, &cfg);
        let o = Outcome::grade(sc.name, &report);
        row(
            &[
                o.name.to_string(),
                format!("{}/{}", o.completed, STUDENTS),
                o.faults_applied.to_string(),
                o.reattached.to_string(),
                o.retries.to_string(),
                o.recoveries.to_string(),
                ms(report.p95_recovery_ticks()),
                o.recover_ms_max.to_string(),
                o.max_stalls.to_string(),
            ],
            &widths,
        );
        outcomes.push(o);
    }

    // The acceptance gates run against the severe storm: nearly everyone
    // finishes, nobody is stuck, and recovery is fast.
    let calm = &outcomes[0];
    let severe = outcomes.last().expect("severe ran");
    assert_eq!(
        calm.completed, STUDENTS,
        "a calm run must complete everyone"
    );
    assert_eq!(calm.faults_applied, 0, "calm means calm");
    assert!(
        severe.completed >= STUDENTS - 1,
        "severe storm: only {}/{STUDENTS} sessions completed",
        severe.completed
    );
    assert!(
        severe.recover_ms_p95 < 3_000,
        "p95 time-to-recover {} ms >= 3 s",
        severe.recover_ms_p95
    );
    assert!(severe.faults_applied >= 4, "the storm must actually strike");
    assert!(severe.retries > 0, "the retry layer must have acted");
    println!(
        "\nPASS: severe storm — {}/{STUDENTS} sessions complete (>= {})",
        severe.completed,
        STUDENTS - 1
    );
    println!(
        "PASS: p95 time-to-recover {} ms < 3000 ms across {} recoveries",
        severe.recover_ms_p95, severe.recoveries
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"students\": {STUDENTS},");
    let _ = writeln!(json, "  \"relays\": {RELAYS},");
    json.push_str("  \"scenarios\": [\n");
    for (i, o) in outcomes.iter().enumerate() {
        o.json(&mut json);
        json.push_str(if i + 1 < outcomes.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    if let Some(path) = json_path {
        std::fs::write(&path, &json).expect("write json report");
        println!("\nreport written to {path}");
    } else {
        println!("\n{json}");
    }

    println!(
        "shape: the storm knocks out a relay (its students re-home through\n\
         the redirect manager), browns out every access link (the loss\n\
         burst rides on retries), severs the uplink for 2 s (relay caches\n\
         absorb it), and yanks two cables (retry-from-horizon resumes\n\
         them) — and the class still finishes the lecture."
    );
}
