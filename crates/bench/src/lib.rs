//! Experiment harness for the WMPS reproduction.
//!
//! One binary per paper figure/experiment (see `src/bin/`), plus Criterion
//! micro-benchmarks (see `benches/`). `EXPERIMENTS.md` at the repository
//! root records paper-vs-measured for every artifact.

pub mod report;
