//! Shared table-printing helpers for the experiment binaries.

/// Prints a fixed-width table row.
pub fn row(cells: &[String], widths: &[usize]) {
    let line: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:<w$}", w = w))
        .collect();
    println!("| {} |", line.join(" | "));
}

/// Prints a table header with a separator line.
pub fn header(cells: &[&str], widths: &[usize]) {
    row(
        &cells.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        widths,
    );
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("|-{}-|", sep.join("-|-"));
}

/// Formats ticks as milliseconds with one decimal.
pub fn ms(ticks: u64) -> String {
    format!("{:.1}", ticks as f64 / 10_000.0)
}

/// Formats ticks as seconds with two decimals.
pub fn secs(ticks: u64) -> String {
    format!("{:.2}", ticks as f64 / 10_000_000.0)
}
