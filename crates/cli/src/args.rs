//! Tiny dependency-free argument parsing.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// CLI failures (bad flags, missing values, I/O).
#[derive(Debug)]
#[non_exhaustive]
pub enum CliError {
    /// No subcommand or an unknown one.
    UnknownCommand(String),
    /// A flag that requires a value did not get one.
    MissingValue(String),
    /// A required flag is absent.
    MissingFlag(&'static str),
    /// A value failed to parse.
    BadValue {
        /// The flag.
        flag: String,
        /// The offending value.
        value: String,
    },
    /// Filesystem trouble.
    Io(std::io::Error),
    /// Content-level trouble (bad ASF file, rejected license, …).
    Content(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::UnknownCommand(c) => write!(
                f,
                "unknown command {c:?} (try publish, inspect, replay, serve, report, trace, abstract)"
            ),
            CliError::MissingValue(flag) => write!(f, "flag {flag} needs a value"),
            CliError::MissingFlag(flag) => write!(f, "required flag {flag} is missing"),
            CliError::BadValue { flag, value } => {
                write!(f, "cannot parse {value:?} for {flag}")
            }
            CliError::Io(e) => write!(f, "i/o error: {e}"),
            CliError::Content(msg) => write!(f, "{msg}"),
        }
    }
}

impl Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

/// Parsed command line: a subcommand, positional arguments, and
/// `--flag value` pairs.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first argument).
    pub command: String,
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
    flags: HashMap<String, String>,
}

impl Args {
    /// Parses `argv` (without the program name). A `--flag` followed by
    /// another `--token` (or by the end of the line) is a boolean
    /// switch: it gets the value `"on"` rather than swallowing its
    /// neighbour (`serve --standby --checkpoint-every 10` keeps both).
    pub fn parse(argv: &[String]) -> Result<Self, CliError> {
        let mut out = Args::default();
        let mut it = argv.iter().peekable();
        if let Some(cmd) = it.next() {
            out.command = cmd.clone();
        }
        while let Some(tok) = it.next() {
            if let Some(name) = tok.strip_prefix("--") {
                let value = match it.peek() {
                    Some(next) if !next.starts_with("--") => it.next().cloned().expect("peeked"),
                    _ => "on".to_string(),
                };
                out.flags.insert(name.to_string(), value);
            } else {
                out.positional.push(tok.clone());
            }
        }
        Ok(out)
    }

    /// Raw string flag.
    pub fn flag(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// Boolean switch: present (with no value, or `on`/`true`/`1`) =
    /// true, absent (or `off`/`false`/`0`) = false.
    pub fn switch(&self, name: &str) -> bool {
        matches!(self.flag(name), Some("on" | "true" | "1"))
    }

    /// String flag with a default.
    pub fn flag_or(&self, name: &str, default: &str) -> String {
        self.flag(name).unwrap_or(default).to_string()
    }

    /// Parsed numeric flag with a default.
    ///
    /// # Errors
    ///
    /// [`CliError::BadValue`] when present but unparsable.
    pub fn num_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.flag(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| CliError::BadValue {
                flag: format!("--{name}"),
                value: v.to_string(),
            }),
        }
    }

    /// Required positional argument by index.
    ///
    /// # Errors
    ///
    /// [`CliError::MissingFlag`] (named for the message) when absent.
    pub fn positional(&self, index: usize, what: &'static str) -> Result<&str, CliError> {
        self.positional
            .get(index)
            .map(String::as_str)
            .ok_or(CliError::MissingFlag(what))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_subcommand_flags_and_positionals() {
        let a = Args::parse(&argv("publish file.asf --duration-secs 120 --slides 6")).unwrap();
        assert_eq!(a.command, "publish");
        assert_eq!(a.positional, ["file.asf"]);
        assert_eq!(a.flag("duration-secs"), Some("120"));
        assert_eq!(a.num_or("slides", 0u32).unwrap(), 6);
        assert_eq!(a.num_or("absent", 7u32).unwrap(), 7);
    }

    #[test]
    fn trailing_and_adjacent_flags_are_boolean_switches() {
        // A flag followed by another --token (or the end of the line)
        // must not swallow its neighbour.
        let a = Args::parse(&argv("serve --standby --checkpoint-every 10 --verbose")).unwrap();
        assert!(a.switch("standby"));
        assert_eq!(a.num_or("checkpoint-every", 0u64).unwrap(), 10);
        assert!(a.switch("verbose"));
        assert!(!a.switch("absent"));
        // Explicit off still reads as false.
        let b = Args::parse(&argv("serve --standby off")).unwrap();
        assert!(!b.switch("standby"));
    }

    #[test]
    fn bad_numeric_value_rejected() {
        let a = Args::parse(&argv("serve --students many")).unwrap();
        assert!(matches!(
            a.num_or("students", 1usize),
            Err(CliError::BadValue { .. })
        ));
    }

    #[test]
    fn empty_argv_is_empty_command() {
        let a = Args::parse(&[]).unwrap();
        assert_eq!(a.command, "");
    }
}
