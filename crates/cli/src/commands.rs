//! The subcommands.

use std::io::Write;

use lod_asf::{read_asf, write_asf, License};
use lod_content_tree::render_ascii;
use lod_core::{
    check_causal, fmt_ticks, parse_jsonl, serve_loopback_udp, session_timelines, synthetic_lecture,
    worst_by_stall, Abstractor, AdmissionPolicy, DegradePolicy, FailoverConfig, FaultSpec,
    LoopbackConfig, Recorder, RelayTierConfig, RepairConfig, RetryPolicy, SpanAssembler, Wmps,
};
use lod_encoder::{evenly_spaced_deck, Annotation, Publisher, VideoFileSpec};
use lod_media::{TickDuration, Ticks};
use lod_player::{PlayerEngine, SkewStats};
use lod_simnet::LinkSpec;

use crate::args::{Args, CliError};

/// Runs a parsed command, writing human output to `out`.
///
/// # Errors
///
/// Any [`CliError`]; the binary prints it and exits nonzero.
pub fn run(args: &Args, out: &mut impl Write) -> Result<(), CliError> {
    match args.command.as_str() {
        "publish" => publish(args, out),
        "inspect" => inspect(args, out),
        "replay" => replay(args, out),
        "serve" => serve(args, out),
        "report" => report_cmd(args, out),
        "trace" => trace_cmd(args, out),
        "abstract" => abstract_cmd(args, out),
        "net" => net_cmd(args, out),
        other => Err(CliError::UnknownCommand(other.to_string())),
    }
}

fn link_by_name(name: &str) -> Result<LinkSpec, CliError> {
    match name {
        "lan" => Ok(LinkSpec::lan()),
        "broadband" => Ok(LinkSpec::broadband()),
        "modem" => Ok(LinkSpec::modem()),
        other => Err(CliError::BadValue {
            flag: "--link".into(),
            value: other.to_string(),
        }),
    }
}

fn license_flag(args: &Args) -> Result<Option<License>, CliError> {
    match args.flag("license") {
        None => Ok(None),
        Some(spec) => {
            let (id, key) = spec.split_once(':').ok_or(CliError::BadValue {
                flag: "--license".into(),
                value: spec.to_string(),
            })?;
            let key = key.parse().map_err(|_| CliError::BadValue {
                flag: "--license".into(),
                value: spec.to_string(),
            })?;
            Ok(Some(License::new(id, key)))
        }
    }
}

/// `wmps publish <out.asf> [--video path] [--duration-secs N]
/// [--video-kbps N] [--audio-kbps N] [--slides N] [--slide-dir path]
/// [--annotation t:text]... [--license id:key]`
fn publish(args: &Args, out: &mut impl Write) -> Result<(), CliError> {
    let path = args.positional(0, "<output .asf path>")?;
    let duration = TickDuration::from_secs(args.num_or("duration-secs", 120u64)?);
    let video = VideoFileSpec {
        path: args.flag_or("video", "lecture/camera.m4v"),
        duration,
        video_bitrate: args.num_or("video-kbps", 300u64)? * 1_000,
        audio_bitrate: args.num_or("audio-kbps", 32u64)? * 1_000,
    };
    let slide_dir = args.flag_or("slide-dir", "lecture/slides");
    let deck = evenly_spaced_deck(&slide_dir, args.num_or("slides", 6usize)?, 40_000, duration);
    let annotations: Vec<Annotation> = match args.flag("annotation") {
        None => Vec::new(),
        Some(spec) => {
            let (t, text) = spec.split_once(':').ok_or(CliError::BadValue {
                flag: "--annotation".into(),
                value: spec.to_string(),
            })?;
            let secs: u64 = t.parse().map_err(|_| CliError::BadValue {
                flag: "--annotation".into(),
                value: spec.to_string(),
            })?;
            vec![Annotation {
                at: Ticks::from_secs(secs),
                text: text.to_string(),
            }]
        }
    };

    let mut file = Publisher::new(args.num_or("packet-size", 1_400u32)?)
        .publish(&video, &deck, &annotations)
        .map_err(|e| CliError::Content(e.to_string()))?;
    if let Some(license) = license_flag(args)? {
        file.protect(&license);
        writeln!(out, "protected with key id {:?}", license.key_id)?;
    }
    let bytes = write_asf(&file).map_err(|e| CliError::Content(e.to_string()))?;
    std::fs::write(path, &bytes)?;
    writeln!(
        out,
        "published {path}: {} bytes, {} packets, {} script commands, {:.1} s",
        bytes.len(),
        file.packets.len(),
        file.script.len(),
        file.props.play_duration as f64 / 1e7
    )?;
    Ok(())
}

/// `wmps inspect <file.asf>`
fn inspect(args: &Args, out: &mut impl Write) -> Result<(), CliError> {
    let path = args.positional(0, "<.asf path>")?;
    let bytes = std::fs::read(path)?;
    let file = read_asf(&bytes).map_err(|e| CliError::Content(e.to_string()))?;
    writeln!(out, "{path}: {} bytes on disk", bytes.len())?;
    writeln!(
        out,
        "  duration    : {:.1} s{}",
        file.props.play_duration as f64 / 1e7,
        if file.props.broadcast { " (live)" } else { "" }
    )?;
    writeln!(out, "  packet size : {} bytes", file.props.packet_size)?;
    writeln!(out, "  packets     : {}", file.packets.len())?;
    writeln!(out, "  max bitrate : {} bit/s", file.props.max_bitrate)?;
    writeln!(
        out,
        "  drm         : {}",
        file.drm
            .as_ref()
            .map_or("none".to_string(), |d| format!("key id {:?}", d.key_id))
    )?;
    writeln!(out, "  streams:")?;
    for s in &file.streams {
        writeln!(
            out,
            "    #{} {:?} {} bit/s — {}",
            s.number, s.kind, s.bitrate, s.name
        )?;
    }
    writeln!(out, "  script commands: {}", file.script.len())?;
    for c in file.script.commands().iter().take(10) {
        writeln!(
            out,
            "    {:>8.1}s {} {}",
            c.time as f64 / 1e7,
            c.kind,
            c.param
        )?;
    }
    if file.script.len() > 10 {
        writeln!(out, "    … and {} more", file.script.len() - 10)?;
    }
    writeln!(
        out,
        "  index       : {}",
        file.index
            .as_ref()
            .map_or("none".to_string(), |i| format!("{} entries", i.len()))
    )?;
    Ok(())
}

/// `wmps replay <file.asf> [--license id:key]`
fn replay(args: &Args, out: &mut impl Write) -> Result<(), CliError> {
    let path = args.positional(0, "<.asf path>")?;
    let bytes = std::fs::read(path)?;
    let file = read_asf(&bytes).map_err(|e| CliError::Content(e.to_string()))?;
    let license = license_flag(args)?;
    let engine =
        PlayerEngine::load(file, license.as_ref()).map_err(|e| CliError::Content(e.to_string()))?;
    let trace = engine.render_ideal();
    writeln!(out, "replayed {path}:")?;
    writeln!(out, "  video frames : {}", trace.video_frames())?;
    writeln!(out, "  slide flips  : {}", trace.slide_changes().len())?;
    writeln!(out, "  annotations  : {}", trace.annotations().len())?;
    let skew = SkewStats::of_slides(&trace, 0);
    writeln!(out, "  slide skew   : max {} ticks (ideal = 0)", skew.max)?;
    for s in trace.slide_changes().iter().take(10) {
        writeln!(out, "    slide at {:>7.1}s", s.wall_time as f64 / 1e7)?;
    }
    Ok(())
}

/// `wmps serve <file.asf> [--students N] [--link lan|broadband|modem]
/// [--seed N] [--relays K] [--max-sessions N] [--degrade on|off]
/// [--standby] [--checkpoint-every N] [--metrics-out PATH]
/// [--transport sim|udp]`
///
/// With `--relays K`, students sit behind K edge relays that pull packet
/// segments across the server link once and fan them out locally.
/// `--max-sessions N` arms admission control (students beyond the budget
/// are answered Busy) and `--degrade on` arms graceful profile downshift
/// under sustained backlog. `--standby` arms a warm standby: the origin
/// journals a compact checkpoint on every session transition (and at
/// least every `--checkpoint-every N` seconds, default 1), the standby
/// replays the journal, and a tick-counted heartbeat monitor stands
/// ready to promote it at a higher fencing epoch should the origin die.
/// `--metrics-out PATH` arms the structured event recorder and writes
/// the Prometheus-style exposition to `PATH` and the JSONL event log to
/// `PATH.jsonl` (feed that to `wmps report`). `--trace-permille N`
/// samples N‰ of segments for end-to-end tracing: relays mint a trace
/// context per sampled segment, every hop books paired span events into
/// the recorder, and `wmps trace` renders the waterfalls from the JSONL
/// log (combine with `--metrics-out` and `--relays`).
///
/// `--transport udp` swaps the discrete-event simulator for the real
/// thing: origin, relays (default 2) and every student run as threads
/// on localhost UDP sockets, exercising datagram framing, pacing and
/// reordering. Link shaping and the overload/standby knobs are
/// simulator features and are ignored on udp; the udp arm instead
/// takes `--repair on|off`, `--retry-budget N`, `--loss-permille N`
/// and `--fault-seed S` (see [`serve_udp`]).
fn serve(args: &Args, out: &mut impl Write) -> Result<(), CliError> {
    let path = args.positional(0, "<.asf path>")?;
    let bytes = std::fs::read(path)?;
    let file = read_asf(&bytes).map_err(|e| CliError::Content(e.to_string()))?;
    let students = args.num_or("students", 2usize)?;
    match args.flag_or("transport", "sim").as_str() {
        "sim" => {}
        "udp" => return serve_udp(path, file, students, args, out),
        other => {
            return Err(CliError::BadValue {
                flag: "--transport".into(),
                value: other.to_string(),
            })
        }
    }
    let link = link_by_name(&args.flag_or("link", "broadband"))?;
    let seed = args.num_or("seed", 7u64)?;
    let relays = args.num_or("relays", 0usize)?;
    let max_sessions = args.num_or("max-sessions", 0u32)?;
    let degrade = match args.flag_or("degrade", "off").as_str() {
        "on" | "true" | "yes" => true,
        "off" | "false" | "no" => false,
        other => {
            return Err(CliError::BadValue {
                flag: "--degrade".into(),
                value: other.to_string(),
            })
        }
    };
    let standby = args.switch("standby");
    let checkpoint_secs = args.num_or("checkpoint-every", 1u64)?;
    let admission = (max_sessions > 0).then(|| {
        // Budget the bitrate to exactly max_sessions full-rate seats, so
        // the session cap is the binding constraint.
        let seat = u64::from(file.props.max_bitrate).max(64_000);
        AdmissionPolicy::new(max_sessions, seat * u64::from(max_sessions))
    });
    let metrics_out = args.flag("metrics-out").map(str::to_string);
    let trace_permille = args.num_or("trace-permille", 0u16)?;
    let recorder = match metrics_out {
        Some(_) => Recorder::new(),
        None => Recorder::disabled(),
    };
    let report = if relays > 0
        || admission.is_some()
        || degrade
        || standby
        || recorder.is_enabled()
        || trace_permille > 0
    {
        // Overload knobs, the standby and the recorder live on the
        // relay-tier driver; with --relays 0 it degenerates to students
        // behind one campus router.
        let cfg = RelayTierConfig {
            relays,
            origin_admission: admission,
            relay_admission: admission,
            relay_capacity_sessions: admission.map(|a| a.max_sessions as usize),
            degrade: degrade.then(DegradePolicy::default),
            // Heartbeats share the origin uplink with media, and the
            // workload here is whatever the user asked for — startup
            // prefetch bursts can park the Pongs behind a second or
            // more of queued media on a busy link. Size the detection
            // tolerance well above that: 500 ms beats, dead only after
            // 10 misses = 5 s of true silence.
            failover: standby.then(|| FailoverConfig {
                heartbeat_interval: 5_000_000,
                miss_threshold: 10,
                checkpoint_every: checkpoint_secs.max(1) * 10_000_000,
            }),
            recorder: recorder.clone(),
            // Tracing needs relays to mint contexts: with --relays 0 the
            // knob arms the tier driver anyway, which degenerates to
            // students behind one campus router and zero sampled spans.
            trace_permille,
            ..RelayTierConfig::default()
        };
        Wmps::new().serve_with_relays(file, link, LinkSpec::lan(), students, seed, &cfg)
    } else {
        Wmps::new().serve_and_replay(file, link, students, seed)
    };
    writeln!(
        out,
        "served {path} to {students} student(s) over {}{}:",
        args.flag_or("link", "broadband"),
        if relays > 0 {
            format!(" through {relays} relay(s)")
        } else {
            String::new()
        }
    )?;
    for (i, m) in report.clients.iter().enumerate() {
        writeln!(
            out,
            "  student {i}: startup {:.0} ms, {} stalls ({:.0} ms), {} samples, {} bytes",
            m.startup_ticks as f64 / 1e4,
            m.stalls,
            m.stall_ticks as f64 / 1e4,
            m.samples_rendered,
            m.bytes_received
        )?;
    }
    writeln!(
        out,
        "  server: {:.1} MB egress, {} segment(s) served",
        report.origin_egress_bytes as f64 / 1e6,
        report.server.segments_served
    )?;
    if let Some(relay) = &report.relay {
        writeln!(
            out,
            "  relays: {} fetch(es) upstream, cache hit rate {:.2}",
            relay.metrics.segment_fetches,
            relay.cache.hit_rate()
        )?;
    }
    if max_sessions > 0 || degrade {
        writeln!(
            out,
            "  overload: {} shed, {} downshift(s), {} upshift(s), {} degraded session(s)",
            report.shed_clients(),
            report.server.downshifts,
            report.server.upshifts,
            report.server.sessions_degraded
        )?;
    }
    if let Some(fo) = &report.failover {
        writeln!(
            out,
            "  standby: {} checkpoint(s) replicated, {}",
            fo.checkpoints_replicated,
            match fo.promoted_at {
                Some(at) => format!("promoted at {:.0} ms (epoch {})", at as f64 / 1e4, fo.epoch),
                None => "never promoted (origin stayed up)".to_string(),
            }
        )?;
    }
    if let Some(path) = metrics_out {
        std::fs::write(&path, recorder.prometheus())?;
        let jsonl = format!("{path}.jsonl");
        std::fs::write(&jsonl, recorder.to_jsonl())?;
        writeln!(
            out,
            "  metrics: {} event(s) -> {jsonl}, exposition -> {path}",
            recorder.event_count()
        )?;
    }
    Ok(())
}

/// The `--transport udp` arm of `serve`: a loopback deployment on real
/// sockets (see `lod_core::serve_loopback_udp`).
///
/// Extra knobs on this arm: `--repair on|off` (default off) arms the
/// transport-layer NACK/retransmit sublayer, `--retry-budget N` caps
/// retransmissions per lost sequence, and `--loss-permille N` with
/// `--fault-seed S` injects seeded datagram loss at the origin and
/// relay egress — the way to watch repair actually earn its keep.
/// `--trace-permille N` samples N‰ of segments for end-to-end tracing
/// across the real sockets (contexts ride the UDP frame headers);
/// `--events-out PATH` records every node's events and writes the
/// tick-merged JSONL to `PATH` for `wmps report` / `wmps trace`.
fn serve_udp(
    path: &str,
    file: lod_asf::AsfFile,
    students: usize,
    args: &Args,
    out: &mut impl Write,
) -> Result<(), CliError> {
    let relays = args.num_or("relays", 0usize)?.max(1);
    let repair = match args.flag_or("repair", "off").as_str() {
        "on" | "true" | "yes" => true,
        "off" | "false" | "no" => false,
        other => {
            return Err(CliError::BadValue {
                flag: "--repair".into(),
                value: other.to_string(),
            })
        }
    };
    let retry_budget = args.num_or("retry-budget", 3u32)?;
    let loss_permille = args.num_or("loss-permille", 0u16)?;
    let fault_seed = args.num_or("fault-seed", 7u64)?;
    let trace_permille = args.num_or("trace-permille", 0u16)?;
    let events_out = args.flag("events-out").map(str::to_string);
    let mut cfg = LoopbackConfig {
        relays,
        clients: students,
        record_events: events_out.is_some(),
        trace_permille,
        ..LoopbackConfig::default()
    };
    if repair {
        cfg.udp = cfg.udp.with_repair(RepairConfig {
            retry_budget,
            ..RepairConfig::default()
        });
    }
    if loss_permille > 0 {
        cfg.fault = Some(FaultSpec::loss(fault_seed, loss_permille));
        // Injected loss needs a last-resort recovery above the
        // transport, exactly as a lossy deployment would run.
        cfg.client_retry = Some(RetryPolicy::client());
    }
    let report = serve_loopback_udp(file, &cfg);
    writeln!(
        out,
        "served {path} to {students} student(s) over loopback udp through {relays} relay(s):"
    )?;
    for (i, m) in report.clients.iter().enumerate() {
        writeln!(
            out,
            "  student {i}: startup {:.0} ms, {} stalls, {} samples, {} bytes",
            m.startup_ticks as f64 / 1e4,
            m.stalls,
            m.samples_rendered,
            m.bytes_received
        )?;
    }
    writeln!(
        out,
        "  outcome: {}/{} completed, {} abandoned, wall {:.2}s",
        report.completed,
        students,
        report.abandoned,
        report.wall.as_secs_f64()
    )?;
    writeln!(
        out,
        "  transport: {} frame(s) sent, {} received, {} reordered, {} skipped",
        report.transport.frames_sent,
        report.transport.frames_received,
        report.reorder.out_of_order,
        report.reorder.skipped_seqs
    )?;
    if repair || loss_permille > 0 {
        writeln!(
            out,
            "  repair: {} dropped by injection, {} NACK(s), {} retransmit(s), {} give-up(s)",
            report.transport.faults_dropped,
            report.transport.nacks_sent,
            report.transport.retransmits_sent,
            report.transport.repair_give_ups
        )?;
    }
    writeln!(
        out,
        "  relays: {} fetch(es) upstream; server served {} segment(s)",
        report.relay.segment_fetches, report.server.segments_served
    )?;
    if let Some(path) = events_out {
        let jsonl: String = report
            .events
            .iter()
            .map(|r| format!("{}\n", r.to_json()))
            .collect();
        std::fs::write(&path, jsonl)?;
        writeln!(out, "  events: {} record(s) -> {path}", report.events.len())?;
    }
    Ok(())
}

/// `wmps report <events.jsonl> [--top N]`
///
/// Reconstructs per-session timelines from a JSONL event log written by
/// `wmps serve --metrics-out` and prints the `N` (default 5) sessions
/// with the most stalled time, worst first, plus the causal-invariant
/// verdict over the whole log. When the log carries trace spans the
/// verdict covers the span invariants too, and the `N` sampled segments
/// with the worst end-to-end delivery latency are listed (dig into one
/// with `wmps trace`).
fn report_cmd(args: &Args, out: &mut impl Write) -> Result<(), CliError> {
    let path = args.positional(0, "<events .jsonl path>")?;
    let top = args.num_or("top", 5usize)?;
    let text = std::fs::read_to_string(path)?;
    let events = parse_jsonl(&text).map_err(CliError::Content)?;
    let timelines = session_timelines(&events);
    writeln!(
        out,
        "{path}: {} event(s), {} session(s)",
        events.len(),
        timelines.len()
    )?;
    let causal = check_causal(&events);
    writeln!(
        out,
        "causal invariants: {} ({} downshift(s) heralded, {} recover(ies) matched, {} shed(s))",
        if causal.holds() { "ok" } else { "VIOLATED" },
        causal.downshifts - causal.unheralded_downshifts,
        causal.recoveries - causal.unmatched_recoveries,
        causal.total_sheds()
    )?;
    writeln!(out, "worst sessions by stalled time:")?;
    for t in worst_by_stall(&timelines, top) {
        write!(out, "{}", t.render())?;
    }
    if causal.spans_opened > 0 {
        let mut asm = SpanAssembler::new();
        for rec in &events {
            asm.ingest(rec);
        }
        writeln!(out, "worst segments by end-to-end latency:")?;
        for t in asm.worst_by_end_to_end(top) {
            writeln!(
                out,
                "  segment {:>4} (lecture {:016x}): {} across {} span(s)",
                t.segment,
                t.lecture,
                fmt_ticks(t.end_to_end()),
                t.spans.len()
            )?;
        }
    }
    Ok(())
}

/// `wmps trace <events.jsonl> [--segment N] [--lecture HEX] [--width W]`
///
/// Renders the sampled tracing plane from a JSONL event log: a per-hop
/// latency table (p50/p99 across every sampled segment), and — with
/// `--segment N` — the ASCII hop waterfall of that segment's delivery.
/// `--lecture HEX` (the 16-digit id `wmps report` prints) disambiguates
/// when several lectures share the log; `--width` sizes the bars.
fn trace_cmd(args: &Args, out: &mut impl Write) -> Result<(), CliError> {
    let path = args.positional(0, "<events .jsonl path>")?;
    let width = args.num_or("width", 48usize)?;
    let lecture = match args.flag("lecture") {
        None => None,
        Some(v) => Some(u64::from_str_radix(v, 16).map_err(|_| CliError::BadValue {
            flag: "--lecture".into(),
            value: v.to_string(),
        })?),
    };
    let text = std::fs::read_to_string(path)?;
    let events = parse_jsonl(&text).map_err(CliError::Content)?;
    let mut asm = SpanAssembler::new();
    for rec in &events {
        asm.ingest(rec);
    }
    let traces = asm.traces();
    writeln!(
        out,
        "{path}: {} event(s), {} sampled segment(s)",
        events.len(),
        traces.len()
    )?;
    if traces.is_empty() {
        writeln!(
            out,
            "no trace spans in this log (serve with --trace-permille to sample segments)"
        )?;
        return Ok(());
    }
    writeln!(out, "hop latency across sampled segments:")?;
    writeln!(
        out,
        "  {:<13} {:>7} {:>10} {:>10}",
        "hop", "count", "p50", "p99"
    )?;
    for h in asm.hop_stats() {
        writeln!(
            out,
            "  {:<13} {:>7} {:>10} {:>10}",
            h.hop,
            h.count,
            fmt_ticks(h.p50),
            fmt_ticks(h.p99)
        )?;
    }
    if let Some(segment) = args.flag("segment") {
        let segment: u64 = segment.parse().map_err(|_| CliError::BadValue {
            flag: "--segment".into(),
            value: segment.to_string(),
        })?;
        let trace = asm.trace(lecture, segment).ok_or_else(|| {
            CliError::Content(format!(
                "segment {segment} has no sampled trace in this log"
            ))
        })?;
        write!(out, "{}", trace.waterfall(width))?;
    }
    Ok(())
}

/// `wmps abstract [--seed N] [--minutes N] [--budget-secs N]`
fn abstract_cmd(args: &Args, out: &mut impl Write) -> Result<(), CliError> {
    let seed = args.num_or("seed", 1u64)?;
    let minutes = args.num_or("minutes", 45u64)?;
    let lecture = synthetic_lecture(seed, minutes, 300_000);
    let a = Abstractor::new();
    let tree = a
        .tree_from_outline(&lecture.outline)
        .map_err(|e| CliError::Content(e.to_string()))?;
    writeln!(out, "{}", render_ascii(&tree))?;
    for row in a.level_table(&tree) {
        writeln!(
            out,
            "level {}: {:>2} segments, {:>5} s",
            row.level, row.segments, row.duration_secs
        )?;
    }
    if let Some(budget) = args.flag("budget-secs") {
        let budget: u64 = budget.parse().map_err(|_| CliError::BadValue {
            flag: "--budget-secs".into(),
            value: budget.to_string(),
        })?;
        let level = a.level_for_budget(&tree, budget);
        let summary = a.summarize(&lecture, level);
        writeln!(
            out,
            "budget {budget} s -> level {level}: \"{}\" ({} s, {} slides)",
            summary.title,
            summary.video.duration.as_millis() / 1000,
            summary.slide_count()
        )?;
    }
    Ok(())
}

/// `wmps net [--units N] [--streams N] [--sync-every N] [--floor N]`
///
/// Prints the extended timed Petri net (or, with `--floor`, the
/// floor-control net for N users) as Graphviz DOT.
fn net_cmd(args: &Args, out: &mut impl Write) -> Result<(), CliError> {
    if let Some(users) = args.flag("floor") {
        let users: usize = users.parse().map_err(|_| CliError::BadValue {
            flag: "--floor".into(),
            value: users.to_string(),
        })?;
        let requests: Vec<lod_core::FloorRequest> = (0..users)
            .map(|u| lod_core::FloorRequest {
                user: u,
                at: 0,
                hold: 100,
                priority: 0,
            })
            .collect();
        let fc = lod_core::FloorControl::new(&requests);
        writeln!(out, "{}", lod_petri::to_dot(fc.timed_net().net(), None))?;
        return Ok(());
    }
    let cfg = lod_core::EtpnConfig {
        unit_ticks: 10_000_000,
        units: args.num_or("units", 3usize)?,
        streams: args.num_or("streams", 2usize)?,
        sync_every: args.num_or("sync-every", 1usize)?,
        block_prefetch: true,
    };
    let net = lod_core::LectureNet::new(cfg);
    let marking = net.initial_marking();
    writeln!(
        out,
        "{}",
        lod_petri::to_dot(net.timed_net().net(), Some(&marking))
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Args {
        Args::parse(&s.split_whitespace().map(String::from).collect::<Vec<_>>()).unwrap()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("lod-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn publish_inspect_replay_round_trip_on_disk() {
        let path = tmp("lecture.asf");
        let mut buf = Vec::new();
        run(
            &argv(&format!(
                "publish {path} --duration-secs 30 --slides 3 --annotation 10:remember-this"
            )),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("published"));
        assert!(text.contains("4 script commands")); // 3 slides + 1 annotation

        let mut buf = Vec::new();
        run(&argv(&format!("inspect {path}")), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("duration    : 30.0 s"));
        assert!(text.contains("script commands: 4"));

        let mut buf = Vec::new();
        run(&argv(&format!("replay {path}")), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("slide flips  : 3"));
        assert!(text.contains("max 0 ticks"));
    }

    #[test]
    fn drm_protected_file_needs_license_on_replay() {
        let path = tmp("protected.asf");
        run(
            &argv(&format!(
                "publish {path} --duration-secs 10 --slides 1 --license cs101:42"
            )),
            &mut Vec::new(),
        )
        .unwrap();
        let err = run(&argv(&format!("replay {path}")), &mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("license"));
        run(
            &argv(&format!("replay {path} --license cs101:42")),
            &mut Vec::new(),
        )
        .unwrap();
        assert!(run(
            &argv(&format!("replay {path} --license cs101:43")),
            &mut Vec::new()
        )
        .is_err());
    }

    #[test]
    fn serve_reports_per_student() {
        let path = tmp("served.asf");
        run(
            &argv(&format!("publish {path} --duration-secs 20 --slides 2")),
            &mut Vec::new(),
        )
        .unwrap();
        let mut buf = Vec::new();
        run(
            &argv(&format!("serve {path} --students 2 --link lan")),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("student 0"));
        assert!(text.contains("student 1"));
        assert!(text.contains("server:"));
    }

    #[test]
    fn serve_rejects_an_unknown_transport() {
        let path = tmp("transported.asf");
        run(
            &argv(&format!("publish {path} --duration-secs 10 --slides 1")),
            &mut Vec::new(),
        )
        .unwrap();
        let err = run(
            &argv(&format!("serve {path} --transport carrier-pigeon")),
            &mut Vec::new(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("--transport"));
    }

    #[test]
    fn serve_over_loopback_udp_reports_the_transport() {
        let path = tmp("udp-served.asf");
        run(
            &argv(&format!("publish {path} --duration-secs 10 --slides 1")),
            &mut Vec::new(),
        )
        .unwrap();
        let mut buf = Vec::new();
        run(
            &argv(&format!(
                "serve {path} --students 2 --relays 1 --transport udp"
            )),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("loopback udp"), "{text}");
        assert!(text.contains("2/2 completed, 0 abandoned"), "{text}");
        assert!(text.contains("transport:"), "{text}");
    }

    #[test]
    fn serve_udp_with_repair_and_injected_loss_reports_the_sublayer() {
        let path = tmp("udp-repaired.asf");
        run(
            &argv(&format!("publish {path} --duration-secs 10 --slides 1")),
            &mut Vec::new(),
        )
        .unwrap();
        let mut buf = Vec::new();
        run(
            &argv(&format!(
                "serve {path} --students 2 --relays 1 --transport udp \
                 --repair on --retry-budget 4 --loss-permille 80 --fault-seed 11"
            )),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("repair:"), "{text}");
        assert!(text.contains("dropped by injection"), "{text}");
        assert!(text.contains("2/2 completed"), "{text}");
    }

    #[test]
    fn serve_udp_rejects_a_bad_repair_value() {
        let path = tmp("udp-badrepair.asf");
        run(
            &argv(&format!("publish {path} --duration-secs 10 --slides 1")),
            &mut Vec::new(),
        )
        .unwrap();
        let err = run(
            &argv(&format!("serve {path} --transport udp --repair sometimes")),
            &mut Vec::new(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("--repair"), "{err}");
    }

    #[test]
    fn serve_through_relays_reports_the_tier() {
        let path = tmp("relayed.asf");
        run(
            &argv(&format!("publish {path} --duration-secs 20 --slides 2")),
            &mut Vec::new(),
        )
        .unwrap();
        let mut buf = Vec::new();
        run(
            &argv(&format!("serve {path} --students 4 --link lan --relays 2")),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("through 2 relay(s)"));
        assert!(text.contains("student 3"));
        assert!(text.contains("relays:"));
        assert!(text.contains("cache hit rate"));
    }

    #[test]
    fn serve_with_admission_reports_overload_line() {
        let path = tmp("guarded.asf");
        run(
            &argv(&format!("publish {path} --duration-secs 10 --slides 1")),
            &mut Vec::new(),
        )
        .unwrap();
        let mut buf = Vec::new();
        run(
            &argv(&format!(
                "serve {path} --students 3 --link lan --max-sessions 2 --degrade on"
            )),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("overload:"), "{text}");
        assert!(text.contains("student 2"), "{text}");
        // Bad --degrade values are rejected, not silently off.
        assert!(run(
            &argv(&format!("serve {path} --degrade sideways")),
            &mut Vec::new()
        )
        .is_err());
    }

    #[test]
    fn serve_standby_reports_replication() {
        let path = tmp("standby.asf");
        run(
            &argv(&format!("publish {path} --duration-secs 10 --slides 1")),
            &mut Vec::new(),
        )
        .unwrap();
        let mut buf = Vec::new();
        run(
            &argv(&format!(
                "serve {path} --students 2 --link lan --standby --checkpoint-every 1"
            )),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("standby:"), "{text}");
        assert!(text.contains("never promoted (origin stayed up)"), "{text}");
        assert!(!text.contains("0 checkpoint(s) replicated"), "{text}");
    }

    #[test]
    fn serve_metrics_out_feeds_report() {
        let asf = tmp("observed.asf");
        run(
            &argv(&format!("publish {asf} --duration-secs 10 --slides 1")),
            &mut Vec::new(),
        )
        .unwrap();
        let prom = tmp("observed.prom");
        let mut buf = Vec::new();
        run(
            &argv(&format!(
                "serve {asf} --students 2 --link lan --metrics-out {prom}"
            )),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("metrics:"), "{text}");

        let exposition = std::fs::read_to_string(&prom).unwrap();
        assert!(
            exposition.contains("lod_server_sessions_served_total"),
            "{exposition}"
        );
        assert!(exposition.contains("lod_events_total"), "{exposition}");
        let jsonl = std::fs::read_to_string(format!("{prom}.jsonl")).unwrap();
        assert!(jsonl.contains("\"kind\":\"session_start\""), "{jsonl}");

        let mut buf = Vec::new();
        run(&argv(&format!("report {prom}.jsonl --top 1")), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("causal invariants: ok"), "{text}");
        assert!(text.contains("2 session(s)"), "{text}");
        assert!(text.contains("session student0"), "{text}");
        // --top 1 prints exactly one session block.
        assert_eq!(text.matches("session student").count(), 1, "{text}");
    }

    #[test]
    fn serve_traced_feeds_trace_and_report() {
        let asf = tmp("traced.asf");
        run(
            &argv(&format!("publish {asf} --duration-secs 20 --slides 2")),
            &mut Vec::new(),
        )
        .unwrap();
        let prom = tmp("traced.prom");
        let mut buf = Vec::new();
        run(
            &argv(&format!(
                "serve {asf} --students 2 --link lan --relays 2 \
                 --trace-permille 1000 --metrics-out {prom}"
            )),
            &mut buf,
        )
        .unwrap();

        // The report surfaces the span verdict and the worst segments.
        let mut buf = Vec::new();
        run(&argv(&format!("report {prom}.jsonl --top 3")), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("causal invariants: ok"), "{text}");
        assert!(
            text.contains("worst segments by end-to-end latency:"),
            "{text}"
        );
        assert!(text.contains("segment"), "{text}");

        // The trace command renders hop stats and a waterfall.
        let mut buf = Vec::new();
        run(
            &argv(&format!("trace {prom}.jsonl --segment 0 --width 32")),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(
            text.contains("hop latency across sampled segments:"),
            "{text}"
        );
        assert!(text.contains("packetize"), "{text}");
        assert!(text.contains("playout_wait"), "{text}");
        assert!(text.contains("segment 0 (lecture"), "{text}");
        assert!(text.contains("█"), "{text}");

        // Asking for a segment nobody sampled is an explicit error.
        let err = run(
            &argv(&format!("trace {prom}.jsonl --segment 9999")),
            &mut Vec::new(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("no sampled trace"), "{err}");
    }

    #[test]
    fn trace_on_a_spanless_log_says_so() {
        let asf = tmp("untraced.asf");
        run(
            &argv(&format!("publish {asf} --duration-secs 10 --slides 1")),
            &mut Vec::new(),
        )
        .unwrap();
        let prom = tmp("untraced.prom");
        run(
            &argv(&format!(
                "serve {asf} --students 1 --link lan --metrics-out {prom}"
            )),
            &mut Vec::new(),
        )
        .unwrap();
        let mut buf = Vec::new();
        run(&argv(&format!("trace {prom}.jsonl")), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("no trace spans"), "{text}");
    }

    #[test]
    fn serve_udp_traced_writes_causal_events() {
        let asf = tmp("udp-traced.asf");
        run(
            &argv(&format!("publish {asf} --duration-secs 10 --slides 1")),
            &mut Vec::new(),
        )
        .unwrap();
        let events = tmp("udp-traced.jsonl");
        let mut buf = Vec::new();
        run(
            &argv(&format!(
                "serve {asf} --students 2 --relays 1 --transport udp \
                 --trace-permille 1000 --events-out {events}"
            )),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("2/2 completed"), "{text}");
        assert!(text.contains("events:"), "{text}");

        // The merged cross-thread log still satisfies the span
        // invariants, and the waterfall includes the transport hops the
        // simulator cannot see.
        let log = std::fs::read_to_string(&events).unwrap();
        assert!(log.contains("\"kind\":\"span_open\""), "spans in {events}");
        let mut buf = Vec::new();
        run(&argv(&format!("report {events} --top 2")), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("causal invariants: ok"), "{text}");
        let mut buf = Vec::new();
        run(&argv(&format!("trace {events}")), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("wire"), "{text}");
        assert!(text.contains("reassemble"), "{text}");
    }

    #[test]
    fn report_rejects_garbage_logs() {
        let path = tmp("garbage.jsonl");
        std::fs::write(&path, "not json at all\n").unwrap();
        assert!(matches!(
            run(&argv(&format!("report {path}")), &mut Vec::new()),
            Err(CliError::Content(_))
        ));
    }

    #[test]
    fn abstract_prints_levels_and_budget_choice() {
        let mut buf = Vec::new();
        run(
            &argv("abstract --seed 7 --minutes 30 --budget-secs 600"),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("level 0"));
        assert!(text.contains("budget 600 s"));
    }

    #[test]
    fn unknown_command_and_bad_link_error() {
        assert!(matches!(
            run(&argv("frobnicate"), &mut Vec::new()),
            Err(CliError::UnknownCommand(_))
        ));
        let path = tmp("x.asf");
        run(
            &argv(&format!("publish {path} --duration-secs 5 --slides 1")),
            &mut Vec::new(),
        )
        .unwrap();
        assert!(matches!(
            run(
                &argv(&format!("serve {path} --link carrier-pigeon")),
                &mut Vec::new()
            ),
            Err(CliError::BadValue { .. })
        ));
    }

    #[test]
    fn net_prints_dot() {
        let mut buf = Vec::new();
        run(&argv("net --units 2 --streams 2"), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("digraph petri {"));
        assert!(text.contains("play[0,0]"));
        assert!(text.contains("join[1]"));

        let mut buf = Vec::new();
        run(&argv("net --floor 3"), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("floor"));
        assert!(text.contains("grant[2]u2"));
    }

    #[test]
    fn inspect_rejects_garbage_files() {
        let path = tmp("garbage.asf");
        std::fs::write(&path, b"this is not asf").unwrap();
        assert!(matches!(
            run(&argv(&format!("inspect {path}")), &mut Vec::new()),
            Err(CliError::Content(_))
        ));
    }
}
