//! `wmps` — the paper's web publishing manager as a command-line tool.
//!
//! Fig. 5 shows a form: the video path, the slide directory, publish,
//! replay. This is the same workflow as subcommands, and the `.asf` files
//! it writes are real files in this reproduction's byte format:
//!
//! ```text
//! wmps publish  --out lecture.asf --duration-secs 120 --slides 6
//! wmps inspect  lecture.asf
//! wmps replay   lecture.asf
//! wmps serve    lecture.asf --students 4 --link broadband
//! wmps abstract --minutes 45 --budget-secs 900
//! ```
//!
//! The library half exists so the commands are unit-testable without
//! spawning processes; `main.rs` is a thin shim.

pub mod args;
pub mod commands;

pub use args::{Args, CliError};
pub use commands::run;
