//! The `wmps` binary: parse, run, report.

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "--help" || argv[0] == "help" {
        print_help();
        return ExitCode::SUCCESS;
    }
    let args = match lod_cli::Args::parse(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("wmps: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut out = std::io::stdout();
    match lod_cli::run(&args, &mut out) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("wmps: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_help() {
    println!(
        "wmps — the Lecture-on-Demand web publishing manager (ICDCSW'02 reproduction)

USAGE:
  wmps publish <out.asf> [--duration-secs N] [--video-kbps N] [--audio-kbps N]
               [--slides N] [--slide-dir PATH] [--annotation SECS:TEXT]
               [--packet-size N] [--license ID:KEY]
  wmps inspect <file.asf>
  wmps replay  <file.asf> [--license ID:KEY]
  wmps serve   <file.asf> [--students N] [--link lan|broadband|modem] [--seed N]
               [--relays K] [--max-sessions N] [--degrade on|off]
               [--metrics-out PATH] [--transport sim|udp]
               [--repair on|off] [--retry-budget N] [--loss-permille N]
               [--fault-seed S]                           # udp-only knobs
  wmps report  <events.jsonl> [--top N]
  wmps abstract [--seed N] [--minutes N] [--budget-secs N]
  wmps net     [--units N] [--streams N] [--sync-every N] | [--floor N]   # Graphviz DOT

EXAMPLES:
  wmps publish lecture.asf --duration-secs 180 --slides 6 --annotation 45:见公式
  wmps serve lecture.asf --students 4 --link modem"
    );
}
