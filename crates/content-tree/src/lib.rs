//! The multiple-level content tree of the WMPS paper (§2.2–2.4).
//!
//! "A content tree is a finite set of one or more nodes such that there is a
//! particularly designated node called the root. The level of a node is
//! defined by initially letting the root be at level 0. If a node is at
//! level q, then its children are at level q+1. Since a node is composed of
//! a presentation segment, the siblings with the order from left to right
//! represent a presentation with some sequence fashion. **The higher level
//! gives the longer presentation.**"
//!
//! The tree is the paper's *Abstractor*: presenting "at level q" plays every
//! segment whose level is ≤ q, in depth-first, left-to-right order, so
//! deeper levels add detail. `LevelNodes[q]` (the paper's name, kept as
//! [`ContentTree::level_value`]) is the cumulative duration of levels 0..=q
//! — exactly the numbers printed in the paper's §2.3/§2.4 walk-throughs.
//!
//! Primitive operations from §2.2: *initialize* ([`ContentTree::new`]),
//! *attach* ([`ContentTree::attach`]), *detach*
//! ([`ContentTree::detach`]), *insert* ([`ContentTree::insert_above`],
//! Fig. 3), *delete with adoption* ([`ContentTree::delete_adopt`], Fig. 4),
//! and *presentation time at a level* ([`ContentTree::level_value`]).
//!
//! # Example (the paper's §2.3 build, steps 1–4)
//!
//! ```
//! use lod_content_tree::{ContentTree, Segment};
//!
//! let mut t = ContentTree::new(Segment::new("S0", 20));
//! t.add_at_level(1, Segment::new("S1", 20)).unwrap();
//! t.add_at_level(2, Segment::new("S2", 20)).unwrap();
//! t.add_at_level(1, Segment::new("S3", 20)).unwrap();
//! t.add_at_level(2, Segment::new("S4", 20)).unwrap();
//! assert_eq!(t.highest_level(), 2);
//! assert_eq!(t.level_value(1), 60);  // paper: LevelNodes[1]->value = 60
//! assert_eq!(t.level_value(2), 100); // paper: LevelNodes[2]->value = 100
//! ```

mod render;
mod tree;

pub use render::render_ascii;
pub use tree::{ContentTree, NodeId, Segment, Side, TreeError};
