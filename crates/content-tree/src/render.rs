//! ASCII rendering of a content tree (for Fig. 1/Fig. 6 style output).

use crate::tree::{ContentTree, NodeId};

/// Renders the tree as indented ASCII, one node per line, with each node's
/// segment name, duration and level, followed by the `LevelNodes` summary —
/// the textual equivalent of the paper's Figure 1.
///
/// # Example
///
/// ```
/// use lod_content_tree::{ContentTree, Segment, render_ascii};
/// let mut t = ContentTree::new(Segment::new("S0", 20));
/// t.add_at_level(1, Segment::new("S1", 20)).unwrap();
/// let art = render_ascii(&t);
/// assert!(art.contains("S0(20)"));
/// assert!(art.contains("└── S1(20)"));
/// ```
pub fn render_ascii(tree: &ContentTree) -> String {
    let mut out = String::new();
    render_node(tree, tree.root(), "", true, true, &mut out);
    out.push('\n');
    for (level, value) in tree.level_values().iter().enumerate() {
        out.push_str(&format!("LevelNodes[{level}]->value = {value}\n"));
    }
    out.push_str(&format!("highestLevel = {}\n", tree.highest_level()));
    out
}

fn render_node(
    tree: &ContentTree,
    node: NodeId,
    prefix: &str,
    is_last: bool,
    is_root: bool,
    out: &mut String,
) {
    let seg = tree.segment(node).expect("live node");
    if is_root {
        out.push_str(&format!("{seg}\n"));
    } else {
        let branch = if is_last { "└── " } else { "├── " };
        out.push_str(&format!("{prefix}{branch}{seg}\n"));
    }
    let children = tree.children(node).expect("live node");
    let child_prefix = if is_root {
        String::new()
    } else {
        format!("{prefix}{}", if is_last { "    " } else { "│   " })
    };
    for (i, c) in children.iter().enumerate() {
        render_node(tree, *c, &child_prefix, i + 1 == children.len(), false, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::Segment;

    #[test]
    fn renders_paper_tree() {
        let mut t = ContentTree::new(Segment::new("S0", 20));
        t.add_at_level(1, Segment::new("S1", 20)).unwrap();
        t.add_at_level(2, Segment::new("S2", 20)).unwrap();
        t.add_at_level(1, Segment::new("S3", 20)).unwrap();
        t.add_at_level(2, Segment::new("S4", 20)).unwrap();
        let art = render_ascii(&t);
        assert!(art.contains("S0(20)"));
        assert!(art.contains("├── S1(20)"));
        assert!(art.contains("│   ├── S2(20)"));
        assert!(art.contains("│   └── S4(20)"));
        assert!(art.contains("└── S3(20)"));
        assert!(art.contains("LevelNodes[2]->value = 100"));
        assert!(art.contains("highestLevel = 2"));
    }

    #[test]
    fn single_node_render() {
        let t = ContentTree::new(Segment::new("only", 7));
        let art = render_ascii(&t);
        assert!(art.starts_with("only(7)\n"));
        assert!(art.contains("LevelNodes[0]->value = 7"));
    }
}
