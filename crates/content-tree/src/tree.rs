//! Core tree structure and the paper's primitive operations.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A presentation segment stored in one tree node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    name: String,
    /// Presentation duration of this segment, in the caller's unit
    /// (the paper's examples use plain numbers like 20).
    duration: u64,
}

impl Segment {
    /// Creates a segment.
    pub fn new(name: impl Into<String>, duration: u64) -> Self {
        Self {
            name: name.into(),
            duration,
        }
    }

    /// Segment name (the paper's `S0`, `S1`, …).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Presentation duration.
    pub fn duration(&self) -> u64 {
        self.duration
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.name, self.duration)
    }
}

/// Identifier of a node within one [`ContentTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Which side of a sibling to insert on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Side {
    /// Insert immediately to the left (played just before the sibling).
    Left,
    /// Insert immediately to the right (played just after the sibling).
    Right,
}

/// Errors from content-tree operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TreeError {
    /// The node id does not name a live node of this tree.
    UnknownNode(NodeId),
    /// The root cannot be deleted, detached, or given a new parent.
    RootImmovable,
    /// `add_at_level` was called with a level more than one beyond the
    /// current highest level, so there is no parent to attach under.
    LevelGap {
        /// The requested level.
        requested: usize,
        /// The current highest level.
        highest: usize,
    },
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::UnknownNode(n) => write!(f, "unknown node {n}"),
            TreeError::RootImmovable => write!(f, "the root node cannot be removed or reparented"),
            TreeError::LevelGap { requested, highest } => write!(
                f,
                "cannot add at level {requested}: highest level is {highest}"
            ),
        }
    }
}

impl Error for TreeError {}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Node {
    segment: Segment,
    parent: Option<usize>,
    children: Vec<usize>,
    /// Tombstone flag: deleted slots stay in the arena.
    live: bool,
}

/// The multiple-level content tree (see the crate docs for semantics).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ContentTree {
    nodes: Vec<Node>,
    root: usize,
    /// `level_values[q]` = cumulative duration of levels 0..=q — the
    /// paper's `LevelNodes[q]->value`, kept incrementally.
    level_values: Vec<u64>,
}

impl ContentTree {
    /// Initializes a tree holding only the root segment (§2.3 step 1).
    pub fn new(root: Segment) -> Self {
        let d = root.duration();
        Self {
            nodes: vec![Node {
                segment: root,
                parent: None,
                children: Vec::new(),
                live: true,
            }],
            root: 0,
            level_values: vec![d],
        }
    }

    /// The root node (level 0).
    pub fn root(&self) -> NodeId {
        NodeId(self.root)
    }

    /// The paper's `highestLevel`: the maximum level of any live node.
    pub fn highest_level(&self) -> usize {
        self.level_values.len() - 1
    }

    /// The paper's `LevelNodes[q]->value`: total presentation time when
    /// presenting at level `q` (cumulative duration of levels 0..=q).
    ///
    /// Levels above [`ContentTree::highest_level`] return the full duration.
    pub fn level_value(&self, level: usize) -> u64 {
        let idx = level.min(self.level_values.len() - 1);
        self.level_values[idx]
    }

    /// All cumulative level values, index 0 being the root level.
    pub fn level_values(&self) -> &[u64] {
        &self.level_values
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.nodes.iter().filter(|n| n.live).count()
    }

    /// Whether the tree holds only the root. Never truly empty: a content
    /// tree is "a finite set of **one** or more nodes".
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Segment stored at `node`.
    ///
    /// # Errors
    ///
    /// [`TreeError::UnknownNode`] for dead or foreign ids.
    pub fn segment(&self, node: NodeId) -> Result<&Segment, TreeError> {
        self.get(node).map(|n| &n.segment)
    }

    /// Level of `node` (root = 0).
    ///
    /// # Errors
    ///
    /// [`TreeError::UnknownNode`] for dead or foreign ids.
    pub fn level(&self, node: NodeId) -> Result<usize, TreeError> {
        self.get(node)?;
        let mut level = 0;
        let mut cur = node.0;
        while let Some(p) = self.nodes[cur].parent {
            level += 1;
            cur = p;
        }
        Ok(level)
    }

    /// Parent of `node`, or `None` for the root.
    ///
    /// # Errors
    ///
    /// [`TreeError::UnknownNode`] for dead or foreign ids.
    pub fn parent(&self, node: NodeId) -> Result<Option<NodeId>, TreeError> {
        Ok(self.get(node)?.parent.map(NodeId))
    }

    /// Children of `node`, left to right.
    ///
    /// # Errors
    ///
    /// [`TreeError::UnknownNode`] for dead or foreign ids.
    pub fn children(&self, node: NodeId) -> Result<Vec<NodeId>, TreeError> {
        Ok(self
            .get(node)?
            .children
            .iter()
            .map(|&i| NodeId(i))
            .collect())
    }

    /// Finds the first live node whose segment has the given name.
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.preorder(usize::MAX)
            .into_iter()
            .find(|id| self.nodes[id.0].segment.name() == name)
    }

    /// Attaches `segment` as the rightmost child of `parent` (§2.2
    /// "attach a node").
    ///
    /// # Errors
    ///
    /// [`TreeError::UnknownNode`] if `parent` is dead or foreign.
    pub fn attach(&mut self, parent: NodeId, segment: Segment) -> Result<NodeId, TreeError> {
        self.get(parent)?;
        let id = self.alloc(segment, Some(parent.0));
        self.nodes[parent.0].children.push(id);
        self.recompute_levels();
        Ok(NodeId(id))
    }

    /// The §2.3 builder step "add Sᵢ (level q)": appends the segment at
    /// `level`, attaching under the **leftmost** node of `level - 1`. This
    /// parent rule is what makes a linear script of `add` calls reproduce
    /// the paper's build *and* its Fig. 3/Fig. 4 follow-ups exactly (S2 and
    /// S4 both land under S1, leaving S3 free to be reparented by the
    /// Fig. 3 insertion).
    ///
    /// # Errors
    ///
    /// [`TreeError::LevelGap`] if `level` exceeds `highest_level() + 1`, and
    /// [`TreeError::RootImmovable`] if `level == 0` (there is exactly one
    /// root).
    pub fn add_at_level(&mut self, level: usize, segment: Segment) -> Result<NodeId, TreeError> {
        if level == 0 {
            return Err(TreeError::RootImmovable);
        }
        if level > self.highest_level() + 1 {
            return Err(TreeError::LevelGap {
                requested: level,
                highest: self.highest_level(),
            });
        }
        let parent = self
            .leftmost_at_level(level - 1)
            .expect("level-1 <= highest level, so a node exists");
        self.attach(parent, segment)
    }

    /// Inserts `segment` as a sibling of `anchor`, on the given side.
    ///
    /// # Errors
    ///
    /// [`TreeError::RootImmovable`] if `anchor` is the root (the root has no
    /// siblings), or [`TreeError::UnknownNode`].
    pub fn insert_sibling(
        &mut self,
        anchor: NodeId,
        side: Side,
        segment: Segment,
    ) -> Result<NodeId, TreeError> {
        let parent = self.parent(anchor)?.ok_or(TreeError::RootImmovable)?;
        let id = self.alloc(segment, Some(parent.0));
        let pos = self.nodes[parent.0]
            .children
            .iter()
            .position(|&c| c == anchor.0)
            .expect("anchor is a child of its parent");
        let pos = match side {
            Side::Left => pos,
            Side::Right => pos + 1,
        };
        self.nodes[parent.0].children.insert(pos, id);
        self.recompute_levels();
        Ok(NodeId(id))
    }

    /// The Fig. 3 insertion: places `segment` at `target`'s position and
    /// makes `target` (with its whole subtree) the new node's child, pushing
    /// it one level deeper.
    ///
    /// With the paper's running tree, `insert_above(S3, S5(20))` yields
    /// `LevelNodes = [20, 60, 120]`, matching Fig. 3 exactly.
    ///
    /// # Errors
    ///
    /// [`TreeError::RootImmovable`] if `target` is the root, or
    /// [`TreeError::UnknownNode`].
    pub fn insert_above(&mut self, target: NodeId, segment: Segment) -> Result<NodeId, TreeError> {
        let parent = self.parent(target)?.ok_or(TreeError::RootImmovable)?;
        let id = self.alloc(segment, Some(parent.0));
        let pos = self.nodes[parent.0]
            .children
            .iter()
            .position(|&c| c == target.0)
            .expect("target is a child of its parent");
        self.nodes[parent.0].children[pos] = id;
        self.nodes[target.0].parent = Some(id);
        self.nodes[id].children.push(target.0);
        self.recompute_levels();
        Ok(NodeId(id))
    }

    /// The Fig. 4 deletion: removes `node`; its children "will be adopted
    /// by \[its\] siblings" — the left sibling if one exists, otherwise the
    /// right sibling, otherwise the parent (splicing the children into the
    /// deleted node's position). Children keep their subtrees.
    ///
    /// Returns the removed segment.
    ///
    /// # Errors
    ///
    /// [`TreeError::RootImmovable`] for the root, or
    /// [`TreeError::UnknownNode`].
    pub fn delete_adopt(&mut self, node: NodeId) -> Result<Segment, TreeError> {
        let parent = self.parent(node)?.ok_or(TreeError::RootImmovable)?;
        let pos = self.nodes[parent.0]
            .children
            .iter()
            .position(|&c| c == node.0)
            .expect("node is a child of its parent");
        let orphans = std::mem::take(&mut self.nodes[node.0].children);
        let siblings = &self.nodes[parent.0].children;
        let adopter = if pos > 0 {
            Some(siblings[pos - 1])
        } else if pos + 1 < siblings.len() {
            Some(siblings[pos + 1])
        } else {
            None
        };
        match adopter {
            Some(adopter) => {
                // Children append to the adopting sibling, keeping order.
                for &c in &orphans {
                    self.nodes[c].parent = Some(adopter);
                }
                if pos > 0 {
                    self.nodes[adopter].children.extend(orphans);
                } else {
                    // Adopted by the right sibling: play before its own kids.
                    let mut merged = orphans.clone();
                    merged.extend(self.nodes[adopter].children.iter().copied());
                    self.nodes[adopter].children = merged;
                }
                self.nodes[parent.0].children.remove(pos);
            }
            None => {
                // No sibling: splice children into the parent at `pos`
                // (they move up one level).
                for &c in &orphans {
                    self.nodes[c].parent = Some(parent.0);
                }
                self.nodes[parent.0].children.splice(pos..=pos, orphans);
            }
        }
        self.nodes[node.0].live = false;
        self.nodes[node.0].parent = None;
        let seg = self.nodes[node.0].segment.clone();
        self.recompute_levels();
        Ok(seg)
    }

    /// The §2.2 "detach a node": removes `node` *and its entire subtree*.
    /// Returns the number of nodes removed.
    ///
    /// # Errors
    ///
    /// [`TreeError::RootImmovable`] for the root, or
    /// [`TreeError::UnknownNode`].
    pub fn detach(&mut self, node: NodeId) -> Result<usize, TreeError> {
        let parent = self.parent(node)?.ok_or(TreeError::RootImmovable)?;
        self.nodes[parent.0].children.retain(|&c| c != node.0);
        let mut removed = 0;
        let mut stack = vec![node.0];
        while let Some(i) = stack.pop() {
            self.nodes[i].live = false;
            self.nodes[i].parent = None;
            removed += 1;
            stack.extend(std::mem::take(&mut self.nodes[i].children));
        }
        self.recompute_levels();
        Ok(removed)
    }

    /// Depth-first, left-to-right traversal restricted to nodes at level
    /// ≤ `max_level` — the playout order of a presentation at that level.
    pub fn preorder(&self, max_level: usize) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.preorder_into(self.root, 0, max_level, &mut out);
        out
    }

    fn preorder_into(&self, node: usize, level: usize, max_level: usize, out: &mut Vec<NodeId>) {
        if level > max_level {
            return;
        }
        out.push(NodeId(node));
        for &c in &self.nodes[node].children {
            self.preorder_into(c, level + 1, max_level, out);
        }
    }

    /// Segments of the presentation at `level`, in playout order — what the
    /// Abstractor hands to the publisher.
    pub fn presentation_at_level(&self, level: usize) -> Vec<&Segment> {
        self.preorder(level)
            .into_iter()
            .map(|id| &self.nodes[id.0].segment)
            .collect()
    }

    /// Recomputes the cumulative level durations from scratch; also the
    /// oracle the incremental values are property-tested against.
    pub fn recomputed_level_values(&self) -> Vec<u64> {
        let mut per_level: Vec<u64> = Vec::new();
        let mut stack = vec![(self.root, 0usize)];
        while let Some((i, level)) = stack.pop() {
            if per_level.len() <= level {
                per_level.resize(level + 1, 0);
            }
            per_level[level] += self.nodes[i].segment.duration();
            for &c in &self.nodes[i].children {
                stack.push((c, level + 1));
            }
        }
        let mut acc = 0;
        per_level
            .iter()
            .map(|v| {
                acc += v;
                acc
            })
            .collect()
    }

    /// Checks the Fig. 2 well-formedness conditions: exactly one root, all
    /// live nodes reachable from it, parent/child links mutually
    /// consistent, and the cached level values equal to a recomputation.
    pub fn validate(&self) -> Result<(), String> {
        let live: usize = self.nodes.iter().filter(|n| n.live).count();
        let reachable = self.preorder(usize::MAX);
        if reachable.len() != live {
            return Err(format!(
                "{} live nodes but {} reachable from the root",
                live,
                reachable.len()
            ));
        }
        for id in &reachable {
            let n = &self.nodes[id.0];
            if !n.live {
                return Err(format!("dead node {id} reachable"));
            }
            for &c in &n.children {
                if self.nodes[c].parent != Some(id.0) {
                    return Err(format!("child link {id}->n{c} not mirrored"));
                }
            }
            if let Some(p) = n.parent {
                if !self.nodes[p].children.contains(&id.0) {
                    return Err(format!("parent link {id}->n{p} not mirrored"));
                }
            }
        }
        if self.level_values != self.recomputed_level_values() {
            return Err("cached level values diverge from recomputation".into());
        }
        Ok(())
    }

    fn get(&self, node: NodeId) -> Result<&Node, TreeError> {
        self.nodes
            .get(node.0)
            .filter(|n| n.live)
            .ok_or(TreeError::UnknownNode(node))
    }

    fn alloc(&mut self, segment: Segment, parent: Option<usize>) -> usize {
        self.nodes.push(Node {
            segment,
            parent,
            children: Vec::new(),
            live: true,
        });
        self.nodes.len() - 1
    }

    /// First node at exactly `level` in left-to-right (pre-order) order.
    fn leftmost_at_level(&self, level: usize) -> Option<NodeId> {
        self.preorder(level)
            .into_iter()
            .find(|&id| self.level(id).expect("preorder yields live nodes") == level)
    }

    /// Extracts the subtree rooted at `node` as an independent content
    /// tree — the "reuse of presentation templates" idea the paper credits
    /// LMDM with: a section of one lecture becomes teaching material of
    /// its own, with `node` as the new level-0 root.
    ///
    /// # Errors
    ///
    /// [`TreeError::UnknownNode`] for dead or foreign ids.
    pub fn subtree(&self, node: NodeId) -> Result<ContentTree, TreeError> {
        let seg = self.segment(node)?.clone();
        let mut out = ContentTree::new(seg);
        let mut stack: Vec<(usize, NodeId)> = vec![(node.0, out.root())];
        while let Some((old, new_parent)) = stack.pop() {
            // Attach this node's children in left-to-right order (the
            // attach order fixes sibling order; stack order only affects
            // which branch descends first, which is irrelevant).
            for &c in &self.nodes[old].children {
                let id = out
                    .attach(new_parent, self.nodes[c].segment.clone())
                    .expect("fresh tree accepts its own ids");
                stack.push((c, id));
            }
        }
        Ok(out)
    }

    fn recompute_levels(&mut self) {
        self.level_values = self.recomputed_level_values();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The §2.3 tree after all four steps.
    fn paper_tree() -> ContentTree {
        let mut t = ContentTree::new(Segment::new("S0", 20));
        t.add_at_level(1, Segment::new("S1", 20)).unwrap();
        t.add_at_level(2, Segment::new("S2", 20)).unwrap();
        t.add_at_level(1, Segment::new("S3", 20)).unwrap();
        t.add_at_level(2, Segment::new("S4", 20)).unwrap();
        t
    }

    #[test]
    fn paper_build_step_values() {
        // Step 1: add S0.
        let mut t = ContentTree::new(Segment::new("S0", 20));
        assert_eq!(t.highest_level(), 0);
        assert_eq!(t.level_value(0), 20);
        // Step 2: add S1.
        t.add_at_level(1, Segment::new("S1", 20)).unwrap();
        assert_eq!(t.highest_level(), 1);
        assert_eq!(t.level_value(1), 40);
        // Step 3: add S2.
        t.add_at_level(2, Segment::new("S2", 20)).unwrap();
        assert_eq!(t.highest_level(), 2);
        assert_eq!(t.level_value(2), 60);
        // Step 4: add S3 and S4.
        t.add_at_level(1, Segment::new("S3", 20)).unwrap();
        t.add_at_level(2, Segment::new("S4", 20)).unwrap();
        assert_eq!(t.highest_level(), 2);
        assert_eq!(t.level_value(1), 60);
        assert_eq!(t.level_value(2), 100);
    }

    #[test]
    fn figure3_insert_s5() {
        let mut t = paper_tree();
        let s3 = t.find("S3").unwrap();
        t.insert_above(s3, Segment::new("S5", 20)).unwrap();
        assert_eq!(t.highest_level(), 2);
        assert_eq!(t.level_value(0), 20);
        assert_eq!(t.level_value(1), 60);
        assert_eq!(t.level_value(2), 120);
        // S3 is now at level 2, under S5.
        assert_eq!(t.level(t.find("S3").unwrap()).unwrap(), 2);
        let s5 = t.find("S5").unwrap();
        assert_eq!(t.level(s5).unwrap(), 1);
        assert_eq!(t.children(s5).unwrap().len(), 1);
        t.validate().unwrap();
    }

    #[test]
    fn figure4_delete_s5_children_adopted_by_s1() {
        let mut t = paper_tree();
        let s3 = t.find("S3").unwrap();
        t.insert_above(s3, Segment::new("S5", 20)).unwrap();
        let s5 = t.find("S5").unwrap();
        let seg = t.delete_adopt(s5).unwrap();
        assert_eq!(seg.name(), "S5");
        // S5's child S3 was adopted by S5's sibling S1.
        let s1 = t.find("S1").unwrap();
        let s3 = t.find("S3").unwrap();
        assert_eq!(t.parent(s3).unwrap(), Some(s1));
        assert_eq!(t.level(s3).unwrap(), 2);
        // Level values back to pre-insert totals for levels 0/1; S3 now
        // counts at level 2.
        assert_eq!(t.level_values(), &[20, 40, 100]);
        t.validate().unwrap();
    }

    #[test]
    fn levels_and_parents() {
        let t = paper_tree();
        let s0 = t.find("S0").unwrap();
        let s1 = t.find("S1").unwrap();
        let s2 = t.find("S2").unwrap();
        assert_eq!(t.level(s0).unwrap(), 0);
        assert_eq!(t.level(s1).unwrap(), 1);
        assert_eq!(t.level(s2).unwrap(), 2);
        assert_eq!(t.parent(s2).unwrap(), Some(s1));
        assert_eq!(t.parent(s0).unwrap(), None);
    }

    #[test]
    fn add_at_level_attaches_under_leftmost() {
        let t = paper_tree();
        // Both level-2 segments hang under S1, the leftmost level-1 node,
        // leaving S3 childless — the shape Figs. 3 and 4 operate on.
        let s1 = t.find("S1").unwrap();
        let s4 = t.find("S4").unwrap();
        assert_eq!(t.parent(s4).unwrap(), Some(s1));
        let s3 = t.find("S3").unwrap();
        assert!(t.children(s3).unwrap().is_empty());
    }

    #[test]
    fn add_at_level_rejects_gap_and_root() {
        let mut t = ContentTree::new(Segment::new("S0", 20));
        assert_eq!(
            t.add_at_level(2, Segment::new("X", 5)),
            Err(TreeError::LevelGap {
                requested: 2,
                highest: 0
            })
        );
        assert_eq!(
            t.add_at_level(0, Segment::new("X", 5)),
            Err(TreeError::RootImmovable)
        );
    }

    #[test]
    fn presentation_order_is_preorder() {
        let t = paper_tree();
        let names: Vec<&str> = t
            .presentation_at_level(2)
            .iter()
            .map(|s| s.name())
            .collect();
        assert_eq!(names, ["S0", "S1", "S2", "S4", "S3"]);
        let level1: Vec<&str> = t
            .presentation_at_level(1)
            .iter()
            .map(|s| s.name())
            .collect();
        assert_eq!(level1, ["S0", "S1", "S3"]);
        let level0: Vec<&str> = t
            .presentation_at_level(0)
            .iter()
            .map(|s| s.name())
            .collect();
        assert_eq!(level0, ["S0"]);
    }

    #[test]
    fn higher_level_gives_longer_presentation() {
        let t = paper_tree();
        for q in 1..=t.highest_level() {
            assert!(t.level_value(q) >= t.level_value(q - 1));
        }
    }

    #[test]
    fn level_value_clamps_above_highest() {
        let t = paper_tree();
        assert_eq!(t.level_value(99), t.level_value(2));
    }

    #[test]
    fn detach_removes_subtree() {
        let mut t = paper_tree();
        let s1 = t.find("S1").unwrap();
        let removed = t.detach(s1).unwrap();
        assert_eq!(removed, 3); // S1 and its children S2, S4
        assert!(t.find("S2").is_none());
        assert!(t.find("S4").is_none());
        assert_eq!(t.len(), 2);
        t.validate().unwrap();
    }

    #[test]
    fn delete_only_child_splices_to_parent() {
        // S0 -> A -> B; deleting A must pull B up to level 1.
        let mut t = ContentTree::new(Segment::new("S0", 10));
        let a = t.add_at_level(1, Segment::new("A", 10)).unwrap();
        t.add_at_level(2, Segment::new("B", 10)).unwrap();
        t.delete_adopt(a).unwrap();
        let b = t.find("B").unwrap();
        assert_eq!(t.level(b).unwrap(), 1);
        assert_eq!(t.level_values(), &[10, 20]);
        t.validate().unwrap();
    }

    #[test]
    fn delete_leftmost_adopted_by_right_sibling() {
        // Children of S0: A (with child C), B. Deleting A: C goes to B,
        // played before B's own children.
        let mut t = ContentTree::new(Segment::new("S0", 10));
        let a = t.attach(t.root(), Segment::new("A", 10)).unwrap();
        t.attach(a, Segment::new("C", 10)).unwrap();
        let b = t.attach(t.root(), Segment::new("B", 10)).unwrap();
        t.attach(b, Segment::new("D", 10)).unwrap();
        t.delete_adopt(a).unwrap();
        let c = t.find("C").unwrap();
        assert_eq!(t.parent(c).unwrap(), Some(b));
        let names: Vec<&str> = t
            .presentation_at_level(2)
            .iter()
            .map(|s| s.name())
            .collect();
        assert_eq!(names, ["S0", "B", "C", "D"]);
        t.validate().unwrap();
    }

    #[test]
    fn deleted_node_id_is_rejected() {
        let mut t = paper_tree();
        let s3 = t.find("S3").unwrap();
        t.detach(s3).unwrap();
        assert_eq!(t.segment(s3).unwrap_err(), TreeError::UnknownNode(s3));
        assert!(t.delete_adopt(s3).is_err());
    }

    #[test]
    fn root_cannot_be_deleted_or_detached() {
        let mut t = paper_tree();
        let root = t.root();
        assert_eq!(t.delete_adopt(root), Err(TreeError::RootImmovable));
        assert_eq!(t.detach(root).unwrap_err(), TreeError::RootImmovable);
    }

    #[test]
    fn insert_sibling_sides() {
        let mut t = paper_tree();
        let s1 = t.find("S1").unwrap();
        t.insert_sibling(s1, Side::Left, Segment::new("L", 5))
            .unwrap();
        t.insert_sibling(s1, Side::Right, Segment::new("R", 5))
            .unwrap();
        let kids: Vec<String> = t
            .children(t.root())
            .unwrap()
            .into_iter()
            .map(|c| t.segment(c).unwrap().name().to_string())
            .collect();
        assert_eq!(kids, ["L", "S1", "R", "S3"]);
        t.validate().unwrap();
    }

    #[test]
    fn validate_passes_on_paper_tree() {
        paper_tree().validate().unwrap();
    }

    #[test]
    fn subtree_extracts_section_as_own_material() {
        let t = paper_tree();
        let s1 = t.find("S1").unwrap();
        let section = t.subtree(s1).unwrap();
        section.validate().unwrap();
        assert_eq!(section.len(), 3); // S1, S2, S4
        assert_eq!(section.segment(section.root()).unwrap().name(), "S1");
        // S1 is now level 0; its children level 1, in original order.
        let names: Vec<&str> = section
            .presentation_at_level(1)
            .iter()
            .map(|s| s.name())
            .collect();
        assert_eq!(names, ["S1", "S2", "S4"]);
        assert_eq!(section.level_values(), &[20, 60]);
        // The original tree is untouched.
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn subtree_of_leaf_is_single_node() {
        let t = paper_tree();
        let s3 = t.find("S3").unwrap();
        let leaf = t.subtree(s3).unwrap();
        assert_eq!(leaf.len(), 1);
        assert_eq!(leaf.highest_level(), 0);
    }

    #[test]
    fn subtree_of_root_clones_tree_shape() {
        let t = paper_tree();
        let copy = t.subtree(t.root()).unwrap();
        assert_eq!(copy.level_values(), t.level_values());
        let a: Vec<String> = t
            .presentation_at_level(9)
            .iter()
            .map(|s| s.name().to_string())
            .collect();
        let b: Vec<String> = copy
            .presentation_at_level(9)
            .iter()
            .map(|s| s.name().to_string())
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn subtree_rejects_dead_node() {
        let mut t = paper_tree();
        let s3 = t.find("S3").unwrap();
        t.detach(s3).unwrap();
        assert!(t.subtree(s3).is_err());
    }

    #[test]
    fn incremental_matches_recomputed_after_mixed_ops() {
        let mut t = paper_tree();
        let s2 = t.find("S2").unwrap();
        t.insert_above(s2, Segment::new("X", 7)).unwrap();
        let s1 = t.find("S1").unwrap();
        t.insert_sibling(s1, Side::Right, Segment::new("Y", 3))
            .unwrap();
        let x = t.find("X").unwrap();
        t.delete_adopt(x).unwrap();
        assert_eq!(t.level_values(), &t.recomputed_level_values()[..]);
        t.validate().unwrap();
    }
}
