//! Property-based tests for the multiple-level content tree.

use lod_content_tree::{ContentTree, Segment, Side};
use proptest::prelude::*;

/// A scripted operation against a tree. Node choices are indices into the
/// current pre-order enumeration, taken modulo its length, so every script
/// is applicable to every tree state.
#[derive(Debug, Clone)]
enum Op {
    Attach {
        target: usize,
        dur: u64,
    },
    AddAtLevel {
        level: usize,
        dur: u64,
    },
    InsertAbove {
        target: usize,
        dur: u64,
    },
    InsertSibling {
        target: usize,
        right: bool,
        dur: u64,
    },
    DeleteAdopt {
        target: usize,
    },
    Detach {
        target: usize,
    },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<usize>(), 1u64..100).prop_map(|(target, dur)| Op::Attach { target, dur }),
        (1usize..6, 1u64..100).prop_map(|(level, dur)| Op::AddAtLevel { level, dur }),
        (any::<usize>(), 1u64..100).prop_map(|(target, dur)| Op::InsertAbove { target, dur }),
        (any::<usize>(), any::<bool>(), 1u64..100)
            .prop_map(|(target, right, dur)| Op::InsertSibling { target, right, dur }),
        any::<usize>().prop_map(|target| Op::DeleteAdopt { target }),
        any::<usize>().prop_map(|target| Op::Detach { target }),
    ]
}

fn apply(tree: &mut ContentTree, op: &Op, counter: &mut u64) {
    *counter += 1;
    let nodes = tree.preorder(usize::MAX);
    let pick = |i: usize| nodes[i % nodes.len()];
    match op {
        Op::Attach { target, dur } => {
            let _ = tree.attach(pick(*target), Segment::new(format!("a{counter}"), *dur));
        }
        Op::AddAtLevel { level, dur } => {
            let _ = tree.add_at_level(*level, Segment::new(format!("l{counter}"), *dur));
        }
        Op::InsertAbove { target, dur } => {
            let _ = tree.insert_above(pick(*target), Segment::new(format!("i{counter}"), *dur));
        }
        Op::InsertSibling { target, right, dur } => {
            let side = if *right { Side::Right } else { Side::Left };
            let _ = tree.insert_sibling(
                pick(*target),
                side,
                Segment::new(format!("s{counter}"), *dur),
            );
        }
        Op::DeleteAdopt { target } => {
            let _ = tree.delete_adopt(pick(*target));
        }
        Op::Detach { target } => {
            let _ = tree.detach(pick(*target));
        }
    }
}

proptest! {
    /// After any op sequence the tree validates: links mirrored, all live
    /// nodes reachable, cached level values equal a recomputation.
    #[test]
    fn tree_stays_well_formed(ops in proptest::collection::vec(arb_op(), 0..40)) {
        let mut t = ContentTree::new(Segment::new("root", 10));
        let mut counter = 0;
        for op in &ops {
            apply(&mut t, op, &mut counter);
            prop_assert!(t.validate().is_ok(), "validate failed after {op:?}: {:?}", t.validate());
        }
    }

    /// Level values are monotonically non-decreasing in the level —
    /// "the higher level gives the longer presentation".
    #[test]
    fn level_values_monotone(ops in proptest::collection::vec(arb_op(), 0..40)) {
        let mut t = ContentTree::new(Segment::new("root", 10));
        let mut counter = 0;
        for op in &ops {
            apply(&mut t, op, &mut counter);
        }
        let values = t.level_values();
        for w in values.windows(2) {
            prop_assert!(w[1] >= w[0]);
        }
    }

    /// The presentation at the highest level contains every live node
    /// exactly once, and its duration equals the top level value.
    #[test]
    fn full_presentation_covers_tree(ops in proptest::collection::vec(arb_op(), 0..40)) {
        let mut t = ContentTree::new(Segment::new("root", 10));
        let mut counter = 0;
        for op in &ops {
            apply(&mut t, op, &mut counter);
        }
        let segs = t.presentation_at_level(t.highest_level());
        prop_assert_eq!(segs.len(), t.len());
        let total: u64 = segs.iter().map(|s| s.duration()).sum();
        prop_assert_eq!(total, t.level_value(t.highest_level()));
    }

    /// delete_adopt removes exactly one node and never loses descendants.
    #[test]
    fn delete_adopt_preserves_descendants(
        ops in proptest::collection::vec(arb_op(), 0..25),
        victim in any::<usize>(),
    ) {
        let mut t = ContentTree::new(Segment::new("root", 10));
        let mut counter = 0;
        for op in &ops {
            apply(&mut t, op, &mut counter);
        }
        let before = t.len();
        let nodes = t.preorder(usize::MAX);
        let target = nodes[victim % nodes.len()];
        if t.delete_adopt(target).is_ok() {
            prop_assert_eq!(t.len(), before - 1);
            prop_assert!(t.validate().is_ok());
        } else {
            // Only the root may refuse.
            prop_assert_eq!(target, t.root());
        }
    }

    /// insert_above never changes which segments are present, only depth.
    #[test]
    fn insert_above_keeps_segments(
        ops in proptest::collection::vec(arb_op(), 0..25),
        target in any::<usize>(),
    ) {
        let mut t = ContentTree::new(Segment::new("root", 10));
        let mut counter = 0;
        for op in &ops {
            apply(&mut t, op, &mut counter);
        }
        let mut names_before: Vec<String> = t
            .presentation_at_level(usize::MAX)
            .iter()
            .map(|s| s.name().to_string())
            .collect();
        let nodes = t.preorder(usize::MAX);
        let anchor = nodes[target % nodes.len()];
        if t.insert_above(anchor, Segment::new("wedge", 1)).is_ok() {
            let mut names_after: Vec<String> = t
                .presentation_at_level(usize::MAX)
                .iter()
                .map(|s| s.name().to_string())
                .filter(|n| n != "wedge")
                .collect();
            names_before.sort();
            names_after.sort();
            prop_assert_eq!(names_before, names_after);
        }
    }
}
