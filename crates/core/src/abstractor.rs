//! The Abstractor: multiple-level content trees over lectures (Fig. 6).
//!
//! §2.2: "The Abstractor utilizes the content tree to organize the
//! information … The multiple level content tree approach may be used to
//! arrive at an efficient summarizing method … The higher level gives the
//! longer presentation. Consequently, this approach gives flexible
//! teaching material."

use lod_content_tree::{ContentTree, Segment, TreeError};
use lod_ocpn::PresentationSpec;
use serde::{Deserialize, Serialize};

use crate::presentation::OutlineEntry;

/// One row of the Fig. 6 level table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LevelRow {
    /// Tree level.
    pub level: usize,
    /// Segments played when presenting at this level.
    pub segments: usize,
    /// Total presentation seconds at this level (the paper's
    /// `LevelNodes[q]->value`).
    pub duration_secs: u64,
}

/// Builds content trees from lecture outlines and picks presentation
/// levels for time budgets.
///
/// # Example
///
/// ```
/// use lod_core::{synthetic_lecture, Abstractor};
///
/// let lecture = synthetic_lecture(1, 30, 300_000); // 30 minutes
/// let abstractor = Abstractor::new();
/// let tree = abstractor.tree_from_outline(&lecture.outline).unwrap();
/// // A 10-minute student gets a shallower level than a 30-minute one.
/// let short = abstractor.level_for_budget(&tree, 10 * 60);
/// let full = abstractor.level_for_budget(&tree, 30 * 60);
/// assert!(short <= full);
/// // The summary at that level publishes like any lecture.
/// let summary = abstractor.summarize(&lecture, short);
/// assert!(summary.video.duration <= lecture.video.duration);
/// ```
#[derive(Debug, Default)]
pub struct Abstractor;

impl Abstractor {
    /// A new abstractor.
    pub fn new() -> Self {
        Self
    }

    /// Builds the content tree from an outline.
    ///
    /// Unlike the paper's §2.3 `add_at_level` script (which attaches under
    /// the leftmost node of the parent level), an outline is a *document*:
    /// each level-q entry belongs under the most recent level-(q−1) entry,
    /// so `section-2`'s details hang under `section-2`.
    ///
    /// # Errors
    ///
    /// [`TreeError::LevelGap`] when an entry's level jumps more than one
    /// past its predecessor's, or [`TreeError::RootImmovable`] if a second
    /// level-0 entry appears.
    pub fn tree_from_outline(&self, outline: &[OutlineEntry]) -> Result<ContentTree, TreeError> {
        let Some((root, rest)) = outline.split_first() else {
            // An empty outline still yields a one-node tree.
            return Ok(ContentTree::new(Segment::new("lecture", 0)));
        };
        let mut tree = ContentTree::new(Segment::new(root.name.clone(), root.duration_secs));
        // Most recent node seen at each level (document-order parents).
        let mut last_at_level = vec![tree.root()];
        for e in rest {
            if e.level == 0 {
                return Err(TreeError::RootImmovable);
            }
            if e.level > last_at_level.len() {
                return Err(TreeError::LevelGap {
                    requested: e.level,
                    highest: last_at_level.len() - 1,
                });
            }
            let parent = last_at_level[e.level - 1];
            let id = tree.attach(parent, Segment::new(e.name.clone(), e.duration_secs))?;
            last_at_level.truncate(e.level);
            last_at_level.push(id);
        }
        Ok(tree)
    }

    /// The deepest level whose cumulative duration fits `budget_secs`
    /// (level 0 when even the summary is too long — the shortest
    /// presentation that exists).
    pub fn level_for_budget(&self, tree: &ContentTree, budget_secs: u64) -> usize {
        let mut level = 0;
        for q in 0..=tree.highest_level() {
            if tree.level_value(q) <= budget_secs {
                level = q;
            } else {
                break;
            }
        }
        level
    }

    /// The Fig. 6 table: one row per level.
    pub fn level_table(&self, tree: &ContentTree) -> Vec<LevelRow> {
        (0..=tree.highest_level())
            .map(|level| LevelRow {
                level,
                segments: tree.presentation_at_level(level).len(),
                duration_secs: tree.level_value(level),
            })
            .collect()
    }

    /// Produces the condensed lecture presented at `level`: outline
    /// segments deeper than `level` are cut from the timeline, and slides
    /// and annotations falling inside kept segments are remapped onto the
    /// condensed timeline (those inside cut segments are dropped with the
    /// material they illustrate). This is the "flexible teaching material"
    /// of §2.2, made publishable: the result feeds straight into
    /// [`crate::Wmps::publish`].
    ///
    /// The lecture's recorded timeline is taken to follow the outline's
    /// document order (which is the content tree's pre-order).
    pub fn summarize(
        &self,
        lecture: &crate::presentation::Lecture,
        level: usize,
    ) -> crate::presentation::Lecture {
        use lod_media::{TickDuration, Ticks, TICKS_PER_SECOND};
        // Walk the outline, building (orig_start, len, kept_start) spans.
        let mut spans: Vec<(u64, u64, Option<u64>)> = Vec::new();
        let mut orig = 0u64;
        let mut kept = 0u64;
        for e in &lecture.outline {
            let len = e.duration_secs * TICKS_PER_SECOND;
            if e.level <= level {
                spans.push((orig, len, Some(kept)));
                kept += len;
            } else {
                spans.push((orig, len, None));
            }
            orig += len;
        }
        let total = orig;
        let remap = move |t: Ticks| -> Option<Ticks> {
            // Clamp stragglers past the recording's end into the last
            // segment (the publisher clamps the same way).
            let t = t.0.min(total.saturating_sub(1));
            let span = spans
                .iter()
                .find(|(start, len, _)| t >= *start && t < start + len)?;
            span.2.map(|kept_start| Ticks(kept_start + (t - span.0)))
        };
        let mut video = lecture.video.clone();
        video.path = format!("{} (level {level})", video.path);
        video.duration = TickDuration(kept);
        let deck = lod_encoder::SlideDeck {
            dir: lecture.deck.dir.clone(),
            slides: lecture
                .deck
                .slides
                .iter()
                .filter_map(|s| {
                    remap(s.show_at).map(|t| lod_encoder::Slide {
                        file: s.file.clone(),
                        bytes: s.bytes,
                        show_at: t,
                    })
                })
                .collect(),
        };
        let annotations = lecture
            .annotations
            .iter()
            .filter_map(|a| {
                remap(a.at).map(|t| lod_encoder::Annotation {
                    at: t,
                    text: a.text.clone(),
                })
            })
            .collect();
        let outline = lecture
            .outline
            .iter()
            .filter(|e| e.level <= level)
            .cloned()
            .collect();
        crate::presentation::Lecture {
            title: format!("{} (level-{level} summary)", lecture.title),
            video,
            deck,
            annotations,
            outline,
        }
    }

    /// Compiles the presentation at `level` into an OCPN-style spec: the
    /// segments in playout order, sequentially composed (`meets`), with
    /// durations in `ticks_per_sec` units.
    pub fn spec_at_level(
        &self,
        tree: &ContentTree,
        level: usize,
        ticks_per_sec: u64,
    ) -> PresentationSpec {
        let segs = tree.presentation_at_level(level);
        let mut iter = segs.into_iter();
        let first = iter.next().expect("content trees always have a root");
        let mut spec = PresentationSpec::interval(first.name(), first.duration() * ticks_per_sec);
        for s in iter {
            spec = spec.then(PresentationSpec::interval(
                s.name(),
                s.duration() * ticks_per_sec,
            ));
        }
        spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presentation::synthetic_lecture;

    fn outline() -> Vec<OutlineEntry> {
        // The paper's §2.3 parameters.
        vec![
            OutlineEntry {
                name: "S0".into(),
                level: 0,
                duration_secs: 20,
            },
            OutlineEntry {
                name: "S1".into(),
                level: 1,
                duration_secs: 20,
            },
            OutlineEntry {
                name: "S2".into(),
                level: 2,
                duration_secs: 20,
            },
            OutlineEntry {
                name: "S3".into(),
                level: 1,
                duration_secs: 20,
            },
            OutlineEntry {
                name: "S4".into(),
                level: 2,
                duration_secs: 20,
            },
        ]
    }

    #[test]
    fn builds_the_paper_tree() {
        let tree = Abstractor::new().tree_from_outline(&outline()).unwrap();
        assert_eq!(tree.level_values(), &[20, 60, 100]);
    }

    #[test]
    fn budget_picks_level() {
        let a = Abstractor::new();
        let tree = a.tree_from_outline(&outline()).unwrap();
        assert_eq!(a.level_for_budget(&tree, 100), 2);
        assert_eq!(a.level_for_budget(&tree, 99), 1);
        assert_eq!(a.level_for_budget(&tree, 60), 1);
        assert_eq!(a.level_for_budget(&tree, 25), 0);
        // Even an impossible budget returns the summary.
        assert_eq!(a.level_for_budget(&tree, 5), 0);
    }

    #[test]
    fn level_table_matches_tree() {
        let a = Abstractor::new();
        let tree = a.tree_from_outline(&outline()).unwrap();
        let table = a.level_table(&tree);
        assert_eq!(table.len(), 3);
        assert_eq!(table[0].segments, 1);
        assert_eq!(table[2].duration_secs, 100);
        assert_eq!(table[1].segments, 3); // S0, S1, S3
    }

    #[test]
    fn spec_duration_equals_level_value() {
        let a = Abstractor::new();
        let tree = a.tree_from_outline(&outline()).unwrap();
        for level in 0..=2 {
            let spec = a.spec_at_level(&tree, level, 1);
            assert_eq!(spec.duration(), tree.level_value(level));
        }
    }

    #[test]
    fn synthetic_outline_builds() {
        let l = synthetic_lecture(9, 30, 300_000);
        let a = Abstractor::new();
        let tree = a.tree_from_outline(&l.outline).unwrap();
        assert_eq!(tree.level_value(tree.highest_level()), 30 * 60);
        tree.validate().unwrap();
        // Summaries get shorter as the budget shrinks.
        let full = a.level_for_budget(&tree, 30 * 60);
        let half = a.level_for_budget(&tree, 15 * 60);
        assert!(half <= full);
    }

    #[test]
    fn empty_outline_yields_stub_tree() {
        let tree = Abstractor::new().tree_from_outline(&[]).unwrap();
        assert_eq!(tree.len(), 1);
    }

    #[test]
    fn summarize_full_level_keeps_everything() {
        let l = synthetic_lecture(20, 30, 300_000);
        let a = Abstractor::new();
        let tree = a.tree_from_outline(&l.outline).unwrap();
        let full = a.summarize(&l, tree.highest_level());
        assert_eq!(full.video.duration, l.video.duration);
        assert_eq!(full.slide_count(), l.slide_count());
        assert_eq!(full.annotations.len(), l.annotations.len());
    }

    #[test]
    fn summarize_shrinks_duration_to_level_value() {
        let l = synthetic_lecture(21, 30, 300_000);
        let a = Abstractor::new();
        let tree = a.tree_from_outline(&l.outline).unwrap();
        for level in 0..=tree.highest_level() {
            let s = a.summarize(&l, level);
            assert_eq!(
                s.video.duration.as_millis() / 1000,
                tree.level_value(level),
                "level {level}"
            );
            // Remapped slide times stay inside the condensed duration.
            for slide in &s.deck.slides {
                assert!(slide.show_at.0 < s.video.duration.0 || s.deck.slides.is_empty());
            }
            // Slide order is preserved.
            let times: Vec<u64> = s.deck.slides.iter().map(|x| x.show_at.0).collect();
            let mut sorted = times.clone();
            sorted.sort_unstable();
            assert_eq!(times, sorted);
        }
    }

    #[test]
    fn summarize_drops_content_in_cut_segments() {
        let l = synthetic_lecture(22, 30, 300_000);
        let a = Abstractor::new();
        let level0 = a.summarize(&l, 0);
        // Level 0 keeps only the overview: far fewer slides.
        assert!(level0.slide_count() < l.slide_count());
        // And the summary publishes cleanly.
        let file = crate::Wmps::new().publish(&level0).unwrap();
        assert_eq!(file.props.play_duration, level0.video.duration.0);
    }
}
