//! Distributed-platform synchronization: many sites, one presentation.
//!
//! The paper's §1 faults OCPN/XOCPN for lacking "methods to describe the
//! details of synchronization across distributed platforms". This module
//! is that mechanism, run over the simulated network: every site plays the
//! same lecture (its own copy of the ETPN playout chain), and a
//! coordinator implements the ETPN's join transitions *across sites* —
//! a site that has finished block `j-1` and holds block `j`'s data
//! reports `Ready(j)`; when every site has reported, the coordinator
//! broadcasts `Release(j)` and nobody starts block `j` before it arrives.
//!
//! With the barrier on, inter-site skew is bounded by one network round
//! trip regardless of how unevenly data arrives; with it off (each site
//! free-running on its own arrivals, which is all OCPN can do), skew grows
//! with the arrival spread. Experiment Q7 measures both.

// Index loops here intentionally walk several parallel `[stream][unit]`
// tables; iterator rewrites would obscure the net construction.
#![allow(clippy::needless_range_loop)]

use lod_simnet::{LinkSpec, Network, NodeId};
use serde::{Deserialize, Serialize};

/// Barrier protocol messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Sync {
    /// A site has finished the previous block *and* holds block `j`'s
    /// data (site → coordinator) — the local half of the join.
    Ready(usize),
    /// All sites may start block `j` (coordinator → sites) — the join
    /// firing.
    Release(usize),
}

/// Configuration of a distributed classroom replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassroomConfig {
    /// Number of student sites.
    pub sites: usize,
    /// Units per site (every site plays the same lecture).
    pub units: usize,
    /// Unit length in ticks.
    pub unit_ticks: u64,
    /// Coordinator ↔ site control links.
    pub link: LinkSpec,
    /// Whether the cross-site joins (the barrier) are active.
    pub barrier: bool,
    /// Network seed.
    pub seed: u64,
    /// Per-site arrival time of each unit's media:
    /// `arrivals[site][unit]`.
    pub arrivals: Vec<Vec<u64>>,
}

impl ClassroomConfig {
    /// A classroom where site `i`'s media arrives with a per-site constant
    /// lag of `i × stagger` ticks (e.g. students on increasingly bad
    /// links).
    pub fn staggered(
        sites: usize,
        units: usize,
        unit_ticks: u64,
        stagger: u64,
        link: LinkSpec,
        barrier: bool,
        seed: u64,
    ) -> Self {
        let arrivals = (0..sites)
            .map(|i| {
                (0..units)
                    .map(|k| k as u64 * unit_ticks / 2 + i as u64 * stagger)
                    .collect()
            })
            .collect();
        Self {
            sites,
            units,
            unit_ticks,
            link,
            barrier,
            seed,
            arrivals,
        }
    }
}

/// Outcome of a distributed classroom replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassroomReport {
    /// `starts[site][unit]` wall time each site started each unit.
    pub starts: Vec<Vec<u64>>,
    /// Maximum inter-site start skew over all units.
    pub max_skew: u64,
    /// Mean inter-site start skew.
    pub mean_skew: f64,
    /// Wall time the last site finished.
    pub finish: u64,
    /// Control messages exchanged (barrier cost).
    pub control_messages: u64,
}

/// Runs the classroom.
///
/// # Panics
///
/// Panics if `arrivals` does not match `sites × units`.
pub fn run_classroom(cfg: &ClassroomConfig) -> ClassroomReport {
    assert_eq!(cfg.arrivals.len(), cfg.sites);
    assert!(cfg.arrivals.iter().all(|a| a.len() == cfg.units));

    let mut net: Network<Sync> = Network::new(cfg.seed);
    let coord = net.add_node("coordinator");
    let sites: Vec<NodeId> = (0..cfg.sites)
        .map(|i| {
            let n = net.add_node(format!("site{i}"));
            net.connect_bidirectional(coord, n, cfg.link);
            n
        })
        .collect();

    // Per-site state machine.
    #[derive(Debug, Clone, Copy, PartialEq)]
    enum SiteState {
        /// Waiting before starting `unit`: must hold the data
        /// (`announced` = Ready sent) and, with the barrier, a Release.
        Waiting {
            unit: usize,
            announced: bool,
            released: bool,
        },
        /// Playing `unit`; finishes at the stored time.
        Playing {
            unit: usize,
            until: u64,
        },
        Done,
    }
    let mut state: Vec<SiteState> = vec![
        SiteState::Waiting {
            unit: 0,
            announced: false,
            released: false,
        };
        cfg.sites
    ];
    let mut starts = vec![vec![0u64; cfg.units]; cfg.sites];
    let mut ready: Vec<usize> = vec![0; cfg.units]; // Ready(j) counts
    let mut control_messages = 0u64;

    const STEP: u64 = 100_000; // 10 ms scheduler cadence
    let mut now = 0u64;
    let deadline = (cfg.units as u64 + 4) * cfg.unit_ticks * (cfg.sites as u64 + 4) + 1_000_000_000;
    while now < deadline {
        // Deliver barrier traffic.
        for d in net.advance_to(now) {
            match d.message {
                Sync::Ready(j) => {
                    // Coordinator counts; fires the join when all ready.
                    if d.dst == coord && j < cfg.units {
                        ready[j] += 1;
                        if ready[j] == cfg.sites {
                            for &s in &sites {
                                let _ = net.send_reliable(coord, s, 32, Sync::Release(j));
                                control_messages += 1;
                            }
                        }
                    }
                }
                Sync::Release(j) => {
                    let site = sites
                        .iter()
                        .position(|&s| s == d.dst)
                        .expect("release goes to a site");
                    if let SiteState::Waiting { unit, released, .. } = &mut state[site] {
                        if *unit == j {
                            *released = true;
                        }
                    }
                }
            }
        }
        // Advance sites.
        for i in 0..cfg.sites {
            match state[i] {
                SiteState::Waiting {
                    unit,
                    announced,
                    released,
                } => {
                    let data_ok = cfg.arrivals[i][unit] <= now;
                    if data_ok && !announced && cfg.barrier {
                        let _ = net.send_reliable(sites[i], coord, 32, Sync::Ready(unit));
                        control_messages += 1;
                        state[i] = SiteState::Waiting {
                            unit,
                            announced: true,
                            released,
                        };
                    }
                    let release_ok = released || !cfg.barrier;
                    if data_ok && release_ok {
                        starts[i][unit] = now;
                        state[i] = SiteState::Playing {
                            unit,
                            until: now + cfg.unit_ticks,
                        };
                    }
                }
                SiteState::Playing { unit, until } => {
                    if until <= now {
                        if unit + 1 < cfg.units {
                            state[i] = SiteState::Waiting {
                                unit: unit + 1,
                                announced: false,
                                released: false,
                            };
                        } else {
                            state[i] = SiteState::Done;
                        }
                    }
                }
                SiteState::Done => {}
            }
        }
        if state.iter().all(|s| *s == SiteState::Done) {
            break;
        }
        now += STEP;
    }

    let mut skews = Vec::new();
    for k in 0..cfg.units {
        let s: Vec<u64> = (0..cfg.sites).map(|i| starts[i][k]).collect();
        let max = *s.iter().max().expect("non-empty");
        let min = *s.iter().min().expect("non-empty");
        skews.push(max - min);
    }
    let max_skew = skews.iter().copied().max().unwrap_or(0);
    let mean_skew = skews.iter().sum::<u64>() as f64 / skews.len().max(1) as f64;
    ClassroomReport {
        starts,
        max_skew,
        mean_skew,
        finish: now,
        control_messages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(barrier: bool, stagger: u64) -> ClassroomConfig {
        ClassroomConfig::staggered(
            4,
            10,
            10_000_000, // 1 s units
            stagger,
            LinkSpec::lan(),
            barrier,
            5,
        )
    }

    #[test]
    fn barrier_bounds_skew_to_network_scale() {
        // Sites staggered by 2 s of data lag.
        let free = run_classroom(&cfg(false, 20_000_000));
        let synced = run_classroom(&cfg(true, 20_000_000));
        // Free-running: the fast site runs ~6 s ahead (3 sites × 2 s).
        assert!(free.max_skew >= 50_000_000, "free skew {}", free.max_skew);
        // Barrier: skew bounded by RTT + cadence (well under one unit).
        assert!(
            synced.max_skew < 2_000_000,
            "synced skew {}",
            synced.max_skew
        );
        assert_eq!(free.control_messages, 0);
        assert!(synced.control_messages > 0);
    }

    #[test]
    fn barrier_cost_is_everyone_waits_for_slowest() {
        let free = run_classroom(&cfg(false, 20_000_000));
        let synced = run_classroom(&cfg(true, 20_000_000));
        // Synchronized playback cannot finish before the free-running
        // slowest site.
        assert!(synced.finish >= free.finish - 10_000_000);
    }

    #[test]
    fn no_stagger_means_no_skew_either_way() {
        let free = run_classroom(&cfg(false, 0));
        let synced = run_classroom(&cfg(true, 0));
        assert_eq!(free.max_skew, 0);
        // Barrier adds at most RTT-scale wobble.
        assert!(synced.max_skew < 2_000_000);
    }

    #[test]
    fn message_count_matches_protocol() {
        let synced = run_classroom(&cfg(true, 0));
        // Ready: sites × units; Release: sites × units.
        let expected = 4 * 10 + 4 * 10;
        assert_eq!(synced.control_messages, expected as u64);
    }

    #[test]
    fn starts_are_monotone_per_site() {
        let r = run_classroom(&cfg(true, 5_000_000));
        for site in &r.starts {
            for w in site.windows(2) {
                assert!(w[1] > w[0]);
            }
        }
    }
}
