//! The extended timed Petri net (ETPN).
//!
//! The paper keeps the ETPN informal; this module gives it a precise,
//! executable form covering exactly the four §1 extensions over
//! OCPN/XOCPN:
//!
//! 1. **Network transport**: media arrivals are tokens injected into
//!    *arrival places* by the (simulated) network. Media that has not
//!    arrived cannot play — back-pressure is a structural property of the
//!    net, not a scheduler heuristic.
//! 2. **Distributed synchronization**: streams are cut into *sync units*;
//!    every `sync_every` units a zero-time *join transition* requires all
//!    streams to have finished the block — and, with
//!    [`EtpnConfig::block_prefetch`], the *next* block to have fully
//!    arrived — before any stream may continue. Lateness then turns into
//!    a shared stall instead of inter-stream skew.
//! 3. **User interaction**: a *running place* (one token per stream)
//!    self-loops through every playout transition. Pausing withdraws the
//!    tokens, resuming re-injects them, skipping relocates the chain
//!    tokens — the net is never rebuilt, which is precisely what the
//!    paper faults OCPN for.
//! 4. **Flow control**: the arrival places double as receiver-buffer
//!    state; [`LectureNet::buffered_units`] exposes how far ahead the
//!    network has delivered, the feedback signal for the sender.
//!
//! Net structure (per stream `s`, unit `k`, block `j`):
//!
//! ```text
//! ready[s,k] ─┬▶ play[s,k] (duration = unit) ─▶ sync_wait[s,j] | ready[s,k+1]
//! running ────┘      ▲ (running returned at completion)
//! join[j]: sync_wait[0,j]…sync_wait[S-1,j] (+ arrived[·, block j+1] read arcs)
//!          ─▶ ready[0,(j+1)·E] … ready[S-1,(j+1)·E]
//! ```

// Index loops here intentionally walk several parallel `[stream][unit]`
// tables; iterator rewrites would obscure the net construction.
#![allow(clippy::needless_range_loop)]

use lod_petri::timed::TimedEventKind;
use lod_petri::{Marking, NetBuilder, PlaceId, TimedExecutor, TimedNet, TransitionId};
use serde::{Deserialize, Serialize};

/// Shape of a lecture net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EtpnConfig {
    /// Length of one sync unit in ticks.
    pub unit_ticks: u64,
    /// Number of units per stream.
    pub units: usize,
    /// Number of media streams (e.g. 2 = video + slides).
    pub streams: usize,
    /// Join all streams every this many units.
    pub sync_every: usize,
    /// When `true`, a join also waits for the entire next block to have
    /// arrived on every stream (receiver-driven block buffering): skew at
    /// unit starts becomes zero and lateness shows up as shared stalls.
    /// When `false`, each playout is gated only by its own arrival, so a
    /// late stream skews against the others until the next join.
    pub block_prefetch: bool,
}

impl EtpnConfig {
    /// A typical configuration: `units` units of `unit_ticks`, two
    /// streams, per-unit sync, block prefetch on.
    pub fn new(unit_ticks: u64, units: usize) -> Self {
        Self {
            unit_ticks,
            units,
            streams: 2,
            sync_every: 1,
            block_prefetch: true,
        }
    }

    /// Ideal playout duration with no stalls.
    pub fn ideal_duration(&self) -> u64 {
        self.unit_ticks * self.units as u64
    }
}

/// A user interaction against a running replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Interaction {
    /// Freeze playback (takes effect at the next unit boundary per stream).
    Pause,
    /// Continue after a pause.
    Resume,
    /// Jump to `unit` (forward or backward), best issued while paused.
    Skip {
        /// Target unit index.
        unit: usize,
    },
}

/// What happened during one ETPN replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EtpnReport {
    /// Start time of each `(stream, unit)` playout, if it ran.
    pub unit_starts: Vec<Vec<Option<u64>>>,
    /// Wall time the whole net quiesced.
    pub finish_time: u64,
    /// Playout duration with no network or interaction delays.
    pub ideal_finish: u64,
    /// Maximum over units of the inter-stream start skew.
    pub max_skew: u64,
    /// Mean inter-stream start skew over units where all streams ran.
    pub mean_skew: f64,
    /// Total ticks playback was frozen by Pause interactions.
    pub paused_ticks: u64,
    /// Units rendered on every stream.
    pub units_rendered: usize,
}

impl EtpnReport {
    /// Stall time attributable to the network (total overrun minus the
    /// intentional pauses).
    pub fn network_stall(&self) -> u64 {
        self.finish_time
            .saturating_sub(self.ideal_finish)
            .saturating_sub(self.paused_ticks)
    }

    /// Wall time at which the first unit rendered (startup latency).
    pub fn startup(&self) -> Option<u64> {
        self.unit_starts
            .iter()
            .filter_map(|s| s.first().copied().flatten())
            .max()
    }
}

/// The compiled extended timed Petri net for one lecture replay.
///
/// # Example
///
/// ```
/// use lod_core::etpn::{instant_arrivals, EtpnConfig, LectureNet};
///
/// // A 5-unit, 2-stream lecture with everything buffered locally.
/// let net = LectureNet::new(EtpnConfig::new(100, 5));
/// let report = net.run(&instant_arrivals(net.config()), &[]);
/// assert_eq!(report.units_rendered, 5);
/// assert_eq!(report.max_skew, 0);
/// assert_eq!(report.finish_time, 500);
/// ```
#[derive(Debug)]
pub struct LectureNet {
    cfg: EtpnConfig,
    timed: TimedNet,
    ready: Vec<Vec<PlaceId>>,
    arrived: Vec<Vec<PlaceId>>,
    sync_wait: Vec<Vec<PlaceId>>,
    play: Vec<Vec<TransitionId>>,
    running: PlaceId,
    begin: PlaceId,
    done: PlaceId,
}

impl LectureNet {
    /// Compiles the net for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` has zero units, streams, or `sync_every`.
    pub fn new(cfg: EtpnConfig) -> Self {
        assert!(cfg.units > 0 && cfg.streams > 0 && cfg.sync_every > 0);
        let mut b = NetBuilder::new();
        let running = b.place("running");
        let begin = b.place("begin");
        let done = b.place("done");
        let mut ready = vec![Vec::new(); cfg.streams];
        let mut arrived = vec![Vec::new(); cfg.streams];
        let n_joins = cfg.units.div_ceil(cfg.sync_every);
        let mut sync_wait: Vec<Vec<PlaceId>> = vec![Vec::new(); cfg.streams];
        for s in 0..cfg.streams {
            for k in 0..cfg.units {
                ready[s].push(b.place(format!("ready[{s},{k}]")));
                arrived[s].push(b.place(format!("arrived[{s},{k}]")));
            }
            for j in 0..n_joins {
                sync_wait[s].push(b.place(format!("sync[{s},{j}]")));
            }
        }

        // Block j covers units [j*E, min((j+1)*E, units)).
        let block_range = |j: usize| {
            let lo = j * cfg.sync_every;
            let hi = ((j + 1) * cfg.sync_every).min(cfg.units);
            lo..hi
        };

        // The initial release: with prefetch, wait for block 0 to arrive.
        let start_t = b.transition("start");
        b.arc_in(begin, start_t, 1).expect("fresh ids");
        if cfg.block_prefetch {
            for s in 0..cfg.streams {
                for k in block_range(0) {
                    b.arc_in(arrived[s][k], start_t, 1).expect("fresh ids");
                    b.arc_out(start_t, arrived[s][k], 1).expect("fresh ids");
                }
            }
        }
        for s in 0..cfg.streams {
            b.arc_out(start_t, ready[s][0], 1).expect("fresh ids");
        }

        // Playout transitions.
        let mut durations = Vec::new();
        let mut play = vec![Vec::new(); cfg.streams];
        for s in 0..cfg.streams {
            for k in 0..cfg.units {
                let t = b.transition(format!("play[{s},{k}]"));
                b.arc_in(ready[s][k], t, 1).expect("fresh ids");
                if !cfg.block_prefetch {
                    b.arc_in(arrived[s][k], t, 1).expect("fresh ids");
                }
                b.arc_in(running, t, 1).expect("fresh ids");
                b.arc_out(t, running, 1).expect("fresh ids");
                let boundary = (k + 1) % cfg.sync_every == 0 || k + 1 == cfg.units;
                if boundary {
                    b.arc_out(t, sync_wait[s][k / cfg.sync_every], 1)
                        .expect("fresh ids");
                } else {
                    b.arc_out(t, ready[s][k + 1], 1).expect("fresh ids");
                }
                durations.push((t, cfg.unit_ticks));
                play[s].push(t);
            }
        }

        // Join transitions.
        for j in 0..n_joins {
            let t = b.transition(format!("join[{j}]"));
            for s in 0..cfg.streams {
                b.arc_in(sync_wait[s][j], t, 1).expect("fresh ids");
            }
            let next_unit = (j + 1) * cfg.sync_every;
            if next_unit < cfg.units {
                if cfg.block_prefetch {
                    for s in 0..cfg.streams {
                        for k in block_range(j + 1) {
                            b.arc_in(arrived[s][k], t, 1).expect("fresh ids");
                            b.arc_out(t, arrived[s][k], 1).expect("fresh ids");
                        }
                    }
                }
                for s in 0..cfg.streams {
                    b.arc_out(t, ready[s][next_unit], 1).expect("fresh ids");
                }
            } else {
                b.arc_out(t, done, 1).expect("fresh ids");
            }
        }

        let mut timed = TimedNet::new(b.build());
        for (t, d) in durations {
            timed.set_duration(t, d);
        }
        Self {
            cfg,
            timed,
            ready,
            arrived,
            sync_wait,
            play,
            running,
            begin,
            done,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &EtpnConfig {
        &self.cfg
    }

    /// The underlying timed net (for structural analysis).
    pub fn timed_net(&self) -> &TimedNet {
        &self.timed
    }

    /// Play transition for `(stream, unit)` (for analysis assertions).
    pub fn play_transition(&self, stream: usize, unit: usize) -> TransitionId {
        self.play[stream][unit]
    }

    /// Initial marking: begin token armed, all streams running.
    pub fn initial_marking(&self) -> Marking {
        let mut m = Marking::new(self.timed.net().place_count());
        m.set(self.begin, 1);
        m.set(self.running, self.cfg.streams as u64);
        m
    }

    /// Place receiving arrival tokens for `(stream, unit)`.
    pub fn arrival_place(&self, stream: usize, unit: usize) -> PlaceId {
        self.arrived[stream][unit]
    }

    /// How many consecutive units starting at `from` have arrived on every
    /// stream (receiver-buffer depth, the flow-control feedback signal).
    pub fn buffered_units(&self, marking: &Marking, from: usize) -> usize {
        let mut n = 0;
        for k in from..self.cfg.units {
            if (0..self.cfg.streams).all(|s| marking.tokens(self.arrived[s][k]) > 0) {
                n += 1;
            } else {
                break;
            }
        }
        n
    }

    /// Runs the replay: `arrivals` are `(time, stream, unit)` network
    /// deliveries; `interactions` are `(time, interaction)` user events.
    pub fn run(
        &self,
        arrivals: &[(u64, usize, usize)],
        interactions: &[(u64, Interaction)],
    ) -> EtpnReport {
        #[derive(Debug)]
        enum Ev {
            Arrive(usize, usize),
            Interact(Interaction),
        }
        let mut events: Vec<(u64, usize, Ev)> = Vec::new();
        for (i, &(t, s, k)) in arrivals.iter().enumerate() {
            events.push((t, i, Ev::Arrive(s, k)));
        }
        for (i, &(t, x)) in interactions.iter().enumerate() {
            events.push((t, arrivals.len() + i, Ev::Interact(x)));
        }
        events.sort_by_key(|(t, i, _)| (*t, *i));

        let mut exec = TimedExecutor::new(&self.timed, self.initial_marking());
        let mut ev_idx = 0usize;
        let mut pause_pending: u64 = 0;
        let mut withdrawn: u64 = 0;
        let mut paused_since: Option<u64> = None;
        let mut paused_ticks = 0u64;

        loop {
            while ev_idx < events.len() && events[ev_idx].0 <= exec.now() {
                let (t, _, ev) = &events[ev_idx];
                let t = *t;
                match ev {
                    Ev::Arrive(s, k) => {
                        if *s < self.cfg.streams && *k < self.cfg.units {
                            exec.inject(self.arrived[*s][*k], 1);
                        }
                    }
                    Ev::Interact(Interaction::Pause) => {
                        if paused_since.is_none() {
                            pause_pending = self.cfg.streams as u64 - withdrawn;
                            paused_since = Some(t);
                        }
                    }
                    Ev::Interact(Interaction::Resume) => {
                        if let Some(since) = paused_since.take() {
                            paused_ticks += exec.now().max(since) - since;
                            exec.inject(self.running, withdrawn);
                            withdrawn = 0;
                            pause_pending = 0;
                        }
                    }
                    Ev::Interact(Interaction::Skip { unit }) => {
                        self.apply_skip(&mut exec, *unit);
                    }
                }
                ev_idx += 1;
            }
            if pause_pending > 0 {
                let got = exec.withdraw(self.running, pause_pending);
                pause_pending -= got;
                withdrawn += got;
            }
            exec.start_enabled();
            let next_completion = exec.next_completion();
            let next_event = events.get(ev_idx).map(|(t, _, _)| *t);
            match (next_completion, next_event) {
                (Some(c), Some(e)) if c <= e => {
                    exec.advance();
                }
                (_, Some(e)) => {
                    exec.advance_clock_to(e);
                }
                (Some(_), None) => {
                    exec.advance();
                }
                (None, None) => break,
            }
        }
        if let Some(since) = paused_since {
            paused_ticks += exec.now().max(since) - since;
        }
        self.report(&exec, paused_ticks)
    }

    fn apply_skip(&self, exec: &mut TimedExecutor<'_>, target: usize) {
        let target = target.min(self.cfg.units - 1);
        // Relocate each stream's chain token to the target unit, wherever
        // it currently rests (a ready place or a sync-wait place).
        for s in 0..self.cfg.streams {
            let mut found = 0u64;
            for k in 0..self.cfg.units {
                found = exec.withdraw(self.ready[s][k], 1);
                if found > 0 {
                    break;
                }
            }
            if found == 0 {
                for j in 0..self.sync_wait[s].len() {
                    found = exec.withdraw(self.sync_wait[s][j], 1);
                    if found > 0 {
                        break;
                    }
                }
            }
            if found > 0 {
                exec.inject(self.ready[s][target], 1);
            }
        }
        // Without prefetch, playout consumed past arrival tokens; re-arm
        // them so a backward skip can replay cached data.
        if !self.cfg.block_prefetch {
            for s in 0..self.cfg.streams {
                for k in target..self.cfg.units {
                    if exec.marking().tokens(self.arrived[s][k]) == 0 {
                        // Only re-arm what was already consumed once; the
                        // session layer owns true cache policy. Re-arming
                        // everything is safe because plays consume one
                        // token per unit exactly once per visit.
                        exec.inject(self.arrived[s][k], 1);
                    }
                }
            }
        }
    }

    fn report(&self, exec: &TimedExecutor<'_>, paused_ticks: u64) -> EtpnReport {
        let mut unit_starts = vec![vec![None; self.cfg.units]; self.cfg.streams];
        for ev in exec.log() {
            if ev.kind != TimedEventKind::Started {
                continue;
            }
            for s in 0..self.cfg.streams {
                if let Some(k) = self.play[s].iter().position(|t| *t == ev.transition) {
                    if unit_starts[s][k].is_none() {
                        unit_starts[s][k] = Some(ev.time);
                    }
                }
            }
        }
        let mut skews = Vec::new();
        let mut rendered = 0usize;
        for k in 0..self.cfg.units {
            let starts: Vec<u64> = (0..self.cfg.streams)
                .filter_map(|s| unit_starts[s][k])
                .collect();
            if starts.len() == self.cfg.streams {
                rendered += 1;
                let max = *starts.iter().max().expect("non-empty");
                let min = *starts.iter().min().expect("non-empty");
                skews.push(max - min);
            }
        }
        let max_skew = skews.iter().copied().max().unwrap_or(0);
        let mean_skew = if skews.is_empty() {
            0.0
        } else {
            skews.iter().sum::<u64>() as f64 / skews.len() as f64
        };
        EtpnReport {
            unit_starts,
            finish_time: exec.now(),
            ideal_finish: self.cfg.ideal_duration(),
            max_skew,
            mean_skew,
            paused_ticks,
            units_rendered: rendered,
        }
    }

    /// Whether the final `done` place is marked in `marking`.
    pub fn is_done(&self, marking: &Marking) -> bool {
        marking.tokens(self.done) > 0
    }
}

/// Arrivals where every unit of every stream is available at time zero
/// (local playback).
pub fn instant_arrivals(cfg: &EtpnConfig) -> Vec<(u64, usize, usize)> {
    let mut v = Vec::new();
    for s in 0..cfg.streams {
        for k in 0..cfg.units {
            v.push((0, s, k));
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use lod_petri::analysis::{ExploreLimits, ReachabilityGraph};
    use lod_petri::invariants::{is_p_invariant, p_invariants};

    fn cfg(units: usize, streams: usize, sync_every: usize, prefetch: bool) -> EtpnConfig {
        EtpnConfig {
            unit_ticks: 100,
            units,
            streams,
            sync_every,
            block_prefetch: prefetch,
        }
    }

    #[test]
    fn local_playback_finishes_on_time_with_zero_skew() {
        for prefetch in [true, false] {
            let net = LectureNet::new(cfg(10, 2, 1, prefetch));
            let r = net.run(&instant_arrivals(net.config()), &[]);
            assert_eq!(r.finish_time, 1_000);
            assert_eq!(r.max_skew, 0);
            assert_eq!(r.units_rendered, 10);
            assert_eq!(r.network_stall(), 0);
        }
    }

    fn late_unit5_arrivals(cfg: &EtpnConfig) -> Vec<(u64, usize, usize)> {
        let mut arrivals = instant_arrivals(cfg);
        arrivals.retain(|&(_, s, k)| !(s == 1 && k == 5));
        arrivals.push((2_000, 1, 5));
        arrivals
    }

    #[test]
    fn prefetch_turns_lateness_into_stall_not_skew() {
        let net = LectureNet::new(cfg(10, 2, 1, true));
        let r = net.run(&late_unit5_arrivals(net.config()), &[]);
        assert_eq!(r.max_skew, 0, "prefetch joins keep streams aligned");
        assert!(r.finish_time > 2_000);
        assert!(r.network_stall() > 0);
        assert_eq!(r.units_rendered, 10);
    }

    #[test]
    fn no_prefetch_shows_skew_until_next_join() {
        let net = LectureNet::new(cfg(10, 2, 1, false));
        let r = net.run(&late_unit5_arrivals(net.config()), &[]);
        // Stream 0 starts unit 5 at its join; stream 1 only at t=2000.
        assert!(r.max_skew >= 1_000, "skew {}", r.max_skew);
        assert_eq!(r.units_rendered, 10);
    }

    #[test]
    fn finer_sync_starts_earlier_and_finishes_earlier_on_trickle() {
        let trickle = |cfg: &EtpnConfig| {
            let mut v = Vec::new();
            for s in 0..cfg.streams {
                for k in 0..cfg.units {
                    v.push((k as u64 * 110, s, k)); // slower than real time
                }
            }
            v
        };
        let fine_net = LectureNet::new(cfg(12, 2, 1, true));
        let fine = fine_net.run(&trickle(fine_net.config()), &[]);
        let coarse_net = LectureNet::new(cfg(12, 2, 4, true));
        let coarse = coarse_net.run(&trickle(coarse_net.config()), &[]);
        assert_eq!(fine.max_skew, 0);
        assert_eq!(coarse.max_skew, 0);
        // Fine sync starts as soon as unit 0 arrives; coarse waits for the
        // whole first block.
        assert!(fine.startup().unwrap() < coarse.startup().unwrap());
        assert!(fine.finish_time <= coarse.finish_time);
        assert_eq!(fine.units_rendered, 12);
        assert_eq!(coarse.units_rendered, 12);
    }

    #[test]
    fn pause_resume_extends_wall_time_only() {
        let net = LectureNet::new(cfg(10, 2, 1, true));
        let interactions = vec![(250, Interaction::Pause), (1_250, Interaction::Resume)];
        let r = net.run(&instant_arrivals(net.config()), &interactions);
        assert_eq!(r.units_rendered, 10, "no content lost across a pause");
        assert!(r.paused_ticks >= 900, "paused {}", r.paused_ticks);
        assert!(r.finish_time >= 1_900);
        assert!(r.network_stall() <= 100);
    }

    #[test]
    fn skip_forward_drops_middle_units() {
        let net = LectureNet::new(cfg(10, 2, 1, true));
        let interactions = vec![
            (250, Interaction::Pause),
            (400, Interaction::Skip { unit: 7 }),
            (450, Interaction::Resume),
        ];
        let r = net.run(&instant_arrivals(net.config()), &interactions);
        assert!(r.unit_starts[0][8].is_some());
        assert!(r.unit_starts[0][5].is_none());
        assert!(r.units_rendered < 10);
        assert_eq!(r.max_skew, 0);
    }

    #[test]
    fn skip_backward_replays_with_cached_data() {
        for prefetch in [true, false] {
            let net = LectureNet::new(cfg(8, 2, 1, prefetch));
            let interactions = vec![
                (450, Interaction::Pause),
                (500, Interaction::Skip { unit: 1 }),
                (550, Interaction::Resume),
            ];
            let r = net.run(&instant_arrivals(net.config()), &interactions);
            // Everything from unit 1 replays; total rendered = all units.
            assert_eq!(r.units_rendered, 8, "prefetch={prefetch}");
        }
    }

    #[test]
    fn net_is_bounded_and_quasi_live() {
        let net = LectureNet::new(cfg(3, 2, 1, true));
        let mut m = net.initial_marking();
        for s in 0..2 {
            for k in 0..3 {
                m.add(net.arrival_place(s, k), 1);
            }
        }
        let g = ReachabilityGraph::explore(net.timed_net().net(), &m, ExploreLimits::default())
            .unwrap();
        assert!(g.bound() <= 2);
        assert!(!g.deadlocks().is_empty());
        for s in 0..2 {
            for k in 0..3 {
                assert!(g.is_quasi_live(net.play_transition(s, k)));
            }
        }
        let basis = p_invariants(net.timed_net().net());
        assert!(basis
            .iter()
            .all(|y| is_p_invariant(net.timed_net().net(), y)));
    }

    #[test]
    fn buffered_units_reports_prefix() {
        let net = LectureNet::new(cfg(5, 2, 1, true));
        let mut m = net.initial_marking();
        for s in 0..2 {
            m.add(net.arrival_place(s, 0), 1);
            m.add(net.arrival_place(s, 1), 1);
        }
        m.add(net.arrival_place(0, 3), 1); // gap at 2
        assert_eq!(net.buffered_units(&m, 0), 2);
    }

    #[test]
    fn missing_arrival_blocks_the_chain() {
        let net = LectureNet::new(cfg(5, 1, 1, true));
        let arrivals: Vec<(u64, usize, usize)> = (0..5)
            .filter(|&k| k != 3)
            .map(|k| (0u64, 0usize, k))
            .collect();
        let r = net.run(&arrivals, &[]);
        assert!(r.unit_starts[0][2].is_some());
        assert!(r.unit_starts[0][3].is_none());
        assert!(r.unit_starts[0][4].is_none());
    }
}
