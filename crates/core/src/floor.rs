//! Floor control with multiple users, as a prioritized Petri net.
//!
//! §1: "when considering … the floor control with multiple users,
//! OCPN/XOCPN model are not sufficient", citing the Prioritized Petri Net
//! of Guan, Yu & Yang (ref \[13\]). Here the floor is literally a token:
//! each speak request becomes a *grant transition* competing for the floor
//! place, with conflict resolution by transition priority (then FIFO).
//! Holding the floor is the grant transition's firing duration, so mutual
//! exclusion is a structural invariant of the net, not a lock in the code.

use lod_petri::timed::TimedEventKind;
use lod_petri::{Marking, NetBuilder, PlaceId, TimedExecutor, TimedNet, TransitionId};
use serde::{Deserialize, Serialize};

/// One request to take the floor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FloorRequest {
    /// Requesting user.
    pub user: usize,
    /// Request time in ticks.
    pub at: u64,
    /// How long the user holds the floor once granted.
    pub hold: u64,
    /// Priority (higher wins conflicts; e.g. the teacher outranks
    /// students).
    pub priority: i32,
}

/// A granted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FloorGrant {
    /// Index of the request in the input slice.
    pub request: usize,
    /// The user granted.
    pub user: usize,
    /// When the floor was granted.
    pub granted_at: u64,
    /// Ticks waited between request and grant.
    pub wait: u64,
}

/// Outcome of a floor-control run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FloorReport {
    /// Grants in grant order.
    pub grants: Vec<FloorGrant>,
}

impl FloorReport {
    /// Mean wait in ticks.
    pub fn mean_wait(&self) -> f64 {
        if self.grants.is_empty() {
            return 0.0;
        }
        self.grants.iter().map(|g| g.wait as f64).sum::<f64>() / self.grants.len() as f64
    }

    /// Maximum wait in ticks.
    pub fn max_wait(&self) -> u64 {
        self.grants.iter().map(|g| g.wait).max().unwrap_or(0)
    }

    /// Jain's fairness index over per-grant waits (1.0 = perfectly fair).
    /// Waits of zero are counted as one tick to keep the index defined.
    pub fn jain_index(&self) -> f64 {
        if self.grants.is_empty() {
            return 1.0;
        }
        let xs: Vec<f64> = self.grants.iter().map(|g| (g.wait.max(1)) as f64).collect();
        let sum: f64 = xs.iter().sum();
        let sumsq: f64 = xs.iter().map(|x| x * x).sum();
        (sum * sum) / (xs.len() as f64 * sumsq)
    }

    /// Users in the order they obtained the floor.
    pub fn grant_order(&self) -> Vec<usize> {
        self.grants.iter().map(|g| g.user).collect()
    }
}

/// The floor-control net for a fixed set of requests.
#[derive(Debug)]
pub struct FloorControl {
    timed: TimedNet,
    floor: PlaceId,
    req_places: Vec<PlaceId>,
    grant_transitions: Vec<TransitionId>,
}

impl FloorControl {
    /// Builds the prioritized net for `requests`.
    pub fn new(requests: &[FloorRequest]) -> Self {
        let mut b = NetBuilder::new();
        let floor = b.place("floor");
        let mut req_places = Vec::new();
        let mut grant_transitions = Vec::new();
        let mut meta = Vec::new();
        for (i, r) in requests.iter().enumerate() {
            let req = b.place(format!("req[{i}]u{}", r.user));
            let served = b.place(format!("served[{i}]"));
            let grant = b.transition(format!("grant[{i}]u{}", r.user));
            b.arc_in(req, grant, 1).expect("fresh ids");
            b.arc_in(floor, grant, 1).expect("fresh ids");
            b.arc_out(grant, floor, 1).expect("fresh ids");
            b.arc_out(grant, served, 1).expect("fresh ids");
            req_places.push(req);
            grant_transitions.push(grant);
            meta.push((grant, r.hold, r.priority));
        }
        let mut timed = TimedNet::new(b.build());
        for (t, hold, priority) in meta {
            timed.set_duration(t, hold);
            timed.set_priority(t, priority);
        }
        Self {
            timed,
            floor,
            req_places,
            grant_transitions,
        }
    }

    /// The underlying net (one floor token ⇒ structural mutual exclusion).
    pub fn timed_net(&self) -> &TimedNet {
        &self.timed
    }

    /// Runs the scenario and reports grants.
    pub fn run(&self, requests: &[FloorRequest]) -> FloorReport {
        let mut m = Marking::new(self.timed.net().place_count());
        m.set(self.floor, 1);
        let mut exec = TimedExecutor::new(&self.timed, m);
        let mut order: Vec<usize> = (0..requests.len()).collect();
        order.sort_by_key(|&i| (requests[i].at, i));
        let mut idx = 0;
        loop {
            while idx < order.len() && requests[order[idx]].at <= exec.now() {
                exec.inject(self.req_places[order[idx]], 1);
                idx += 1;
            }
            exec.start_enabled();
            let next_event = order.get(idx).map(|&i| requests[i].at);
            match (exec.next_completion(), next_event) {
                (Some(c), Some(e)) if c <= e => {
                    exec.advance();
                }
                (_, Some(e)) => exec.advance_clock_to(e),
                (Some(_), None) => {
                    exec.advance();
                }
                (None, None) => break,
            }
        }
        let mut grants = Vec::new();
        for ev in exec.log() {
            if ev.kind != TimedEventKind::Started {
                continue;
            }
            if let Some(i) = self
                .grant_transitions
                .iter()
                .position(|t| *t == ev.transition)
            {
                grants.push(FloorGrant {
                    request: i,
                    user: requests[i].user,
                    granted_at: ev.time,
                    wait: ev.time - requests[i].at,
                });
            }
        }
        FloorReport { grants }
    }
}

/// Convenience: build and run in one call.
///
/// # Example
///
/// ```
/// use lod_core::floor::{run_floor, FloorRequest};
///
/// // Two students ask together; the teacher (priority 10) asks later but
/// // speaks as soon as the current holder releases.
/// let report = run_floor(&[
///     FloorRequest { user: 1, at: 0, hold: 100, priority: 0 },
///     FloorRequest { user: 2, at: 0, hold: 100, priority: 0 },
///     FloorRequest { user: 0, at: 50, hold: 50, priority: 10 },
/// ]);
/// assert_eq!(report.grant_order(), [1, 0, 2]);
/// ```
pub fn run_floor(requests: &[FloorRequest]) -> FloorReport {
    FloorControl::new(requests).run(requests)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lod_petri::invariants::{p_invariants, weighted_sum};

    fn req(user: usize, at: u64, hold: u64, priority: i32) -> FloorRequest {
        FloorRequest {
            user,
            at,
            hold,
            priority,
        }
    }

    #[test]
    fn uncontended_grant_is_immediate() {
        let r = run_floor(&[req(0, 100, 50, 0)]);
        assert_eq!(r.grants.len(), 1);
        assert_eq!(r.grants[0].granted_at, 100);
        assert_eq!(r.grants[0].wait, 0);
    }

    #[test]
    fn floor_serializes_holders() {
        let requests = vec![req(0, 0, 100, 0), req(1, 0, 100, 0), req(2, 0, 100, 0)];
        let r = run_floor(&requests);
        assert_eq!(r.grants.len(), 3);
        let times: Vec<u64> = r.grants.iter().map(|g| g.granted_at).collect();
        assert_eq!(times, [0, 100, 200]);
    }

    #[test]
    fn higher_priority_wins_conflict() {
        // Teacher (priority 10) and student (0) ask simultaneously.
        let requests = vec![req(1, 0, 100, 0), req(0, 0, 100, 10)];
        let r = run_floor(&requests);
        assert_eq!(r.grant_order(), [0, 1]);
    }

    #[test]
    fn priority_is_non_preemptive() {
        // Student holds the floor; the teacher asks mid-hold and must wait
        // for release (real floor control does not yank the microphone).
        let requests = vec![req(1, 0, 1_000, 0), req(0, 100, 50, 10)];
        let r = run_floor(&requests);
        assert_eq!(r.grants[1].user, 0);
        assert_eq!(r.grants[1].granted_at, 1_000);
        assert_eq!(r.grants[1].wait, 900);
    }

    #[test]
    fn priority_queue_jumping() {
        // Three students queued; teacher arrives later but jumps the queue
        // (not the current holder).
        let requests = vec![
            req(1, 0, 100, 0),
            req(2, 10, 100, 0),
            req(3, 20, 100, 0),
            req(0, 50, 100, 10), // teacher
        ];
        let r = run_floor(&requests);
        assert_eq!(r.grant_order(), [1, 0, 2, 3]);
    }

    #[test]
    fn fifo_among_equal_priorities() {
        let requests = vec![req(5, 30, 10, 0), req(6, 10, 10, 0), req(7, 20, 10, 0)];
        let r = run_floor(&requests);
        assert_eq!(r.grant_order(), [6, 7, 5]);
    }

    #[test]
    fn fairness_metrics() {
        let requests = vec![req(0, 0, 100, 0), req(1, 0, 100, 0)];
        let r = run_floor(&requests);
        assert_eq!(r.max_wait(), 100);
        assert!((r.mean_wait() - 50.0).abs() < 1e-9);
        let j = r.jain_index();
        assert!(j > 0.0 && j <= 1.0);
    }

    #[test]
    fn floor_token_is_conserved() {
        let requests = vec![req(0, 0, 10, 0), req(1, 5, 10, 0)];
        let fc = FloorControl::new(&requests);
        // Some P-invariant must cover the floor place with weight > 0:
        // mutual exclusion is structural.
        let net = fc.timed_net().net();
        let basis = p_invariants(net);
        let floor_idx = fc.floor.index();
        assert!(
            basis.iter().any(|y| y[floor_idx] != 0),
            "no invariant covers the floor place"
        );
        // And the weighted sum over an initial marking is conserved by
        // construction (checked in the petri crate's property tests; here
        // we sanity-check the helper wiring).
        let mut m = Marking::new(net.place_count());
        m.set(fc.floor, 1);
        for y in &basis {
            let _ = weighted_sum(y, &m);
        }
    }

    #[test]
    fn overlapping_requests_from_same_user() {
        let requests = vec![req(0, 0, 50, 0), req(0, 10, 50, 0)];
        let r = run_floor(&requests);
        assert_eq!(r.grants.len(), 2);
        assert_eq!(r.grants[1].granted_at, 50);
    }
}
