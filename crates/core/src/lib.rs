//! WMPS core: the paper's contribution.
//!
//! §1 of the paper argues that OCPN/XOCPN "lack methods to describe the
//! details of synchronization across distributed platforms and do not deal
//! with the schedule change caused by user interactions", and that
//! "considering the network transport issue of multimedia and the floor
//! control with multiple users, OCPN/XOCPN model are not sufficient".
//! WMPS therefore uses an **extended timed Petri net** (ETPN). This crate
//! is that model plus the surrounding system:
//!
//! * [`etpn`] — the extended timed Petri net: per-stream playout chains
//!   gated by *arrival places* (network transport), periodic *sync
//!   transitions* that bound inter-stream skew across distributed
//!   platforms, and a *running place* through which user interactions
//!   (pause/resume/skip) act on the schedule without rebuilding the net.
//! * [`replay`] — the distributed replay harness comparing OCPN, XOCPN
//!   and ETPN controllers over the same jittery network (experiment Q1).
//! * [`floor`] — prioritized-Petri-net floor control for multiple users
//!   (paper ref \[13\]; experiment Q3).
//! * [`abstractor`] — the multiple-level content tree put to work:
//!   deriving a presentation of the right length for a time/bandwidth
//!   budget (Fig. 6).
//! * [`presentation`] — the lecture model and a deterministic synthetic
//!   lecture generator (the substitution for real recorded lectures).
//! * [`wmps`] — end-to-end sessions: record → publish → serve → replay,
//!   and the live classroom.

pub mod abstractor;
pub mod distributed;
pub mod etpn;
pub mod floor;
pub mod loopback;
pub mod presentation;
pub mod replay;
pub mod wmps;

pub use abstractor::Abstractor;
pub use distributed::{run_classroom, ClassroomConfig, ClassroomReport};
pub use etpn::{EtpnConfig, EtpnReport, LectureNet};
pub use floor::{FloorControl, FloorReport, FloorRequest};
pub use loopback::{serve_loopback_udp, LoopbackConfig, LoopbackReport};
pub use presentation::{synthetic_lecture, Lecture, OutlineEntry};
pub use replay::{ReplayConfig, ReplayReport, SyncModelKind};
pub use wmps::{
    ChaosSpec, FailoverReport, QnaReport, Question, RelayTierConfig, RelayTierReport, Wmps,
    WmpsReport,
};
// The overload-protection policies, re-exported so facade users (the CLI,
// the benches) need not depend on lod-streaming directly.
pub use lod_streaming::{AdmissionPolicy, BreakerPolicy, DegradePolicy, RetryPolicy};

// The loopback deployment's transport knobs (socket tuning, loss
// repair, fault injection), re-exported for the same reason.
pub use lod_transport::{FaultSpec, RepairConfig, UdpConfig};
// The failover knobs, likewise: arm `RelayTierConfig::failover` to get a
// warm standby, heartbeat detection and deterministic promotion.
pub use lod_relay::FailoverConfig;
// The observability surface, likewise: arm `RelayTierConfig::recorder`
// with `Recorder::new()`, then drain the log through these.
pub use lod_obs as obs;
pub use lod_obs::{
    check_causal, fmt_ticks, lecture_id, parse_jsonl, session_timelines, worst_by_stall,
    CausalReport, Event, EventRecord, HopStats, Recorder, SegmentTrace, SessionTimeline,
    SpanAssembler,
};
