//! Loopback deployment: the relay tier as real threads on real sockets.
//!
//! [`serve_loopback_udp`] stands up the same origin → relay → student
//! topology that [`crate::Wmps::serve_with_relays`] simulates, except
//! every node is an OS thread driving a [`UdpTransport`] over
//! `127.0.0.1` sockets. The state machines are the *same types* the
//! simulator runs — `StreamingServer`, `RelayNode`, `StreamingClient` —
//! reached through the [`Transport`] trait, so a lecture that completes
//! here demonstrates the whole protocol stack survives contact with an
//! actual kernel: datagram framing, reordering, pacing, and wall-clock
//! scheduling.
//!
//! Clocking: all threads share one epoch `Instant` and convert elapsed
//! wall time to ticks through a common acceleration factor, so a
//! minutes-long lecture plays out in seconds while every state machine
//! still sees a consistent tick timeline. The run is therefore only
//! statistically reproducible — it is gated on *outcomes* (every client
//! finishes, nobody is abandoned, sample counts reconcile with a simnet
//! run of the same file), never on byte-diffs.

use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use lod_asf::AsfFile;
use lod_obs::{EventRecord, Recorder};
use lod_relay::{RelayMetrics, RelayNode};
use lod_simnet::NodeId;
use lod_streaming::wire::Wire;
use lod_streaming::{ClientMetrics, RetryPolicy, ServerMetrics, StreamingClient, StreamingServer};
use lod_transport::{FaultSpec, ReorderStats, Transport, TransportStats, UdpConfig, UdpTransport};

/// Knobs for a [`serve_loopback_udp`] run.
#[derive(Debug, Clone)]
pub struct LoopbackConfig {
    /// Edge relays between the origin and the students.
    pub relays: usize,
    /// Student clients, split round-robin across the relays.
    pub clients: usize,
    /// Socket-level transport knobs applied to every node.
    pub udp: UdpConfig,
    /// Packets per fetched segment at the origin. Sized so a whole
    /// segment fits one UDP datagram under `udp.max_frame_bytes`
    /// (32 × 1400 B ≈ 45 KiB against the 60 KiB default cap).
    pub segment_packets: u32,
    /// Wall-to-tick acceleration: each elapsed wall second advances the
    /// shared clock by `accel` tick-seconds, so a lecture plays out
    /// `accel`× faster than real time.
    pub accel: u64,
    /// Hard wall-clock ceiling; threads that have not finished by then
    /// stop and report whatever state they reached.
    pub wall_deadline: Duration,
    /// Seeded egress fault injection applied at the origin and relay
    /// tiers — the media direction, where loss actually hurts playback.
    /// Client egress stays clean so request loss does not conflate the
    /// measurement. `None` leaves the wire untouched.
    pub fault: Option<FaultSpec>,
    /// Application-level retry policy for the clients (re-Play from the
    /// playback horizon on prolonged silence), salted per client. On a
    /// clean wire it never fires; under fault injection it is the
    /// recovery of last resort when even transport repair gives up.
    pub client_retry: Option<RetryPolicy>,
    /// When set, every node records transport repair events (NACKs,
    /// retransmits, give-ups, gap skips) and the report carries them
    /// merged in causal order: clients first, then relays, then the
    /// origin — each receiver's NACK precedes its sender's retransmit.
    pub record_events: bool,
    /// Per-mille of segments traced end-to-end across the deployment
    /// (relays mint the contexts, the UDP frames carry them, every node
    /// books its hop spans). Needs `record_events` for the spans to
    /// reach the report. 0 = tracing off.
    pub trace_permille: u16,
}

impl Default for LoopbackConfig {
    fn default() -> Self {
        Self {
            relays: 2,
            clients: 32,
            udp: UdpConfig {
                // Real pacing, high enough to never be the bottleneck
                // for a short lecture but low enough to smooth segment
                // fan-out below the kernel's socket-buffer burst size.
                pace_rate_bps: 200_000_000,
                ..UdpConfig::default()
            },
            segment_packets: 32,
            accel: 40,
            wall_deadline: Duration::from_secs(120),
            fault: None,
            client_retry: None,
            record_events: false,
            trace_permille: 0,
        }
    }
}

/// What a loopback deployment run produced.
#[derive(Debug, Clone)]
pub struct LoopbackReport {
    /// Per-client playback metrics, in client order.
    pub clients: Vec<ClientMetrics>,
    /// Origin server metrics.
    pub server: ServerMetrics,
    /// Relay metrics summed across the tier.
    pub relay: RelayMetrics,
    /// Socket traffic counters summed across every node.
    pub transport: TransportStats,
    /// Reorder-buffer counters merged across every node.
    pub reorder: ReorderStats,
    /// Clients whose playback ran to completion.
    pub completed: usize,
    /// Clients that gave up (must be 0 on a healthy loopback).
    pub abandoned: usize,
    /// Application-level re-requests: client segment retries plus relay
    /// fetch retries. The number transport repair exists to shrink —
    /// every one is a round trip the playback deadline pays for.
    pub rerequests: u64,
    /// Transport repair events from every node, merged and sorted by
    /// tick (all threads share one epoch, so cross-node timestamps are
    /// comparable and a cause always ticks before its effect). Empty
    /// unless [`LoopbackConfig::record_events`] was set. Feed to
    /// [`lod_obs::check_causal`] to prove repair causality.
    pub events: Vec<EventRecord>,
    /// Wall time the deployment ran for.
    pub wall: Duration,
}

/// Shared address book: every node's socket address, indexed like the
/// node ids (0 = origin, 1..=relays = relays, rest = clients).
type AddressBook = Arc<Vec<(NodeId, SocketAddr)>>;

fn ticks_since(epoch: Instant, accel: u64) -> u64 {
    // 1 tick = 100 ns of *simulated* time; one wall nanosecond counts
    // `accel` times over.
    let nanos = epoch.elapsed().as_nanos() as u64;
    (nanos / 100).saturating_mul(accel)
}

fn transport_for(
    node: NodeId,
    socket: UdpSocket,
    book: &AddressBook,
    udp: UdpConfig,
) -> UdpTransport<Wire> {
    let mut t = UdpTransport::from_socket(node, socket, udp).expect("socket already bound");
    for &(peer, addr) in book.iter() {
        if peer != node {
            t.register_peer(peer, addr);
        }
    }
    t
}

/// Serves `file` through an origin + relay tier + clients, each a real
/// thread on a real localhost UDP socket, until every client finishes
/// (or the wall deadline passes).
///
/// # Panics
///
/// Panics when localhost sockets cannot be bound or a node thread
/// panics — both mean the host cannot run the deployment at all.
pub fn serve_loopback_udp(file: AsfFile, cfg: &LoopbackConfig) -> LoopbackReport {
    assert!(cfg.relays > 0, "a relay tier needs at least one relay");
    assert!(cfg.accel > 0, "acceleration must be positive");
    let n_nodes = 1 + cfg.relays + cfg.clients;
    // Bind every socket up front on the main thread: `UdpTransport` is
    // not `Send` (it can carry an `Rc` recorder), but a bare
    // `UdpSocket` is, so each thread assembles its own transport from
    // a pre-bound socket and the shared address book.
    let mut sockets = Vec::with_capacity(n_nodes);
    let mut book = Vec::with_capacity(n_nodes);
    for i in 0..n_nodes {
        let node = NodeId::from_index(i);
        let socket = UdpSocket::bind("127.0.0.1:0").expect("bind loopback socket");
        book.push((node, socket.local_addr().expect("bound socket has addr")));
        sockets.push(socket);
    }
    let book: AddressBook = Arc::new(book);
    let origin = book[0].0;
    let relay_ids: Vec<NodeId> = (1..=cfg.relays).map(|i| book[i].0).collect();

    let stop = Arc::new(AtomicBool::new(false));
    let epoch = Instant::now();
    let accel = cfg.accel;
    let udp = cfg.udp;
    let deadline = cfg.wall_deadline;
    let fault = cfg.fault.clone();
    let client_retry = cfg.client_retry;
    let record_events = cfg.record_events;
    let trace_permille = cfg.trace_permille;
    let recorder_for = move || {
        if record_events {
            Recorder::with_event_capacity(1 << 16)
        } else {
            Recorder::disabled()
        }
    };

    let mut sockets = sockets.into_iter();

    // Origin thread: publish, then serve whatever the relays fetch.
    let origin_thread = {
        let socket = sockets.next().expect("origin socket");
        let book = Arc::clone(&book);
        let stop = Arc::clone(&stop);
        let segment_packets = cfg.segment_packets;
        let file = file.clone();
        let fault = fault.clone();
        thread::spawn(move || {
            let obs = recorder_for();
            let mut t = transport_for(origin, socket, &book, udp).with_recorder(obs.clone());
            if let Some(spec) = fault {
                t.set_egress_faults(spec);
            }
            let mut server = StreamingServer::new(origin)
                .with_segment_packets(segment_packets)
                .with_recorder(obs.clone());
            server.publish("lecture", file);
            while !stop.load(Ordering::Relaxed) {
                let now = ticks_since(epoch, accel);
                t.set_manual_now(now);
                for d in t.poll(now) {
                    server.on_message(&mut t, d.time, d.src, d.message);
                }
                server.poll(&mut t, now);
                thread::sleep(Duration::from_micros(200));
            }
            (
                server.metrics(),
                *t.stats(),
                t.reorder_stats(),
                obs.events(),
            )
        })
    };

    // Relay threads: pull segments from the origin, fan out locally.
    let relay_threads: Vec<_> = relay_ids
        .iter()
        .map(|&me| {
            let socket = sockets.next().expect("relay socket");
            let book = Arc::clone(&book);
            let stop = Arc::clone(&stop);
            let fault = fault.clone();
            thread::spawn(move || {
                let obs = recorder_for();
                let mut t = transport_for(me, socket, &book, udp).with_recorder(obs.clone());
                if let Some(spec) = fault {
                    t.set_egress_faults(spec);
                }
                let mut relay = RelayNode::new(me, origin, 64 << 20)
                    .with_prefetch(true)
                    .with_recorder(obs.clone())
                    .with_trace_permille(trace_permille);
                relay.serve_vod("lecture");
                while !stop.load(Ordering::Relaxed) {
                    let now = ticks_since(epoch, accel);
                    t.set_manual_now(now);
                    for d in t.poll(now) {
                        relay.on_message(&mut t, d.time, d.src, d.message);
                    }
                    relay.poll(&mut t, now);
                    thread::sleep(Duration::from_micros(200));
                }
                (relay.metrics(), *t.stats(), t.reorder_stats(), obs.events())
            })
        })
        .collect();

    // Client threads: play at an assigned relay until done.
    let client_threads: Vec<_> = (0..cfg.clients)
        .map(|i| {
            let me = book[1 + cfg.relays + i].0;
            let home = relay_ids[i % relay_ids.len()];
            let socket = sockets.next().expect("client socket");
            let book = Arc::clone(&book);
            thread::spawn(move || {
                let obs = recorder_for();
                let mut t = transport_for(me, socket, &book, udp).with_recorder(obs.clone());
                let mut c = StreamingClient::new(me, home, "lecture").with_recorder(obs.clone());
                if let Some(policy) = client_retry {
                    c = c.with_retry(policy, i as u64);
                }
                t.set_manual_now(ticks_since(epoch, accel));
                c.start(&mut t);
                loop {
                    let now = ticks_since(epoch, accel);
                    t.set_manual_now(now);
                    for d in t.poll(now) {
                        c.on_message(d.time, d.message);
                    }
                    c.tick(now);
                    c.poll_adaptive(&mut t);
                    c.poll_redirect(&mut t);
                    c.poll_busy(&mut t, now);
                    c.poll_recovery(&mut t, now);
                    if c.is_done() || c.is_abandoned() || epoch.elapsed() >= deadline {
                        break;
                    }
                    thread::sleep(Duration::from_micros(200));
                }
                (
                    *c.metrics(),
                    c.is_done(),
                    *t.stats(),
                    t.reorder_stats(),
                    obs.events(),
                )
            })
        })
        .collect();

    let mut clients = Vec::with_capacity(cfg.clients);
    let mut transport = TransportStats::default();
    let mut reorder = ReorderStats::default();
    let mut completed = 0;
    let mut abandoned = 0;
    // Every node is both sender and receiver (relays NACK the origin
    // *and* retransmit to clients), so no concatenation order is
    // causally consistent — the merged log is sorted by tick instead.
    let mut events = Vec::new();
    for h in client_threads {
        let (metrics, done, tstats, rstats, ev) = h.join().expect("client thread");
        transport.merge(&tstats);
        reorder.merge(&rstats);
        events.extend(ev);
        if done {
            completed += 1;
        }
        if metrics.abandoned {
            abandoned += 1;
        }
        clients.push(metrics);
    }
    // All clients have exited; wind down the tier.
    stop.store(true, Ordering::Relaxed);
    let mut relay = RelayMetrics::default();
    for h in relay_threads {
        let (metrics, tstats, rstats, ev) = h.join().expect("relay thread");
        relay += metrics;
        transport.merge(&tstats);
        reorder.merge(&rstats);
        events.extend(ev);
    }
    let (server, tstats, rstats, ev) = origin_thread.join().expect("origin thread");
    transport.merge(&tstats);
    reorder.merge(&rstats);
    events.extend(ev);
    // Shared epoch + stable sort: cross-node causality becomes log
    // order (a NACK's socket flight is hundreds of ticks, never zero),
    // while each node's own events keep their emit order.
    events.sort_by_key(|e| e.at);

    let rerequests = clients.iter().map(|m| m.retries).sum::<u64>() + relay.fetch_retries;

    LoopbackReport {
        clients,
        server,
        relay,
        transport,
        reorder,
        completed,
        abandoned,
        rerequests,
        events,
        wall: epoch.elapsed(),
    }
}
