//! The lecture model and the synthetic lecture generator.
//!
//! The paper's motivating scenario: "suppose a well-known teacher is
//! giving a lecture/presentation to his student … The main goal of our
//! system is to provide a feasible method to record and represent a
//! lecture/presentation in the air." No recordings exist here, so
//! [`synthetic_lecture`] generates deterministic lectures with realistic
//! shape: an outline (for the content tree), slides with change times, and
//! presenter annotations.

use lod_encoder::{Annotation, Slide, SlideDeck, VideoFileSpec};
use lod_media::{TickDuration, Ticks};
use serde::{Deserialize, Serialize};

/// One entry of a lecture outline: a presentation segment at a content-tree
/// level (§2.2's "teaching material … with some kinds of sequence fashion").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutlineEntry {
    /// Segment name.
    pub name: String,
    /// Content-tree level (0 = the root summary).
    pub level: usize,
    /// Segment duration in seconds.
    pub duration_secs: u64,
}

/// A complete lecture: the input to record/publish/serve/replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lecture {
    /// Lecture title.
    pub title: String,
    /// The camera recording (as a video-file spec for the publisher).
    pub video: VideoFileSpec,
    /// The slide deck with change times.
    pub deck: SlideDeck,
    /// Presenter annotations.
    pub annotations: Vec<Annotation>,
    /// The outline for the Abstractor's content tree.
    pub outline: Vec<OutlineEntry>,
}

impl Lecture {
    /// Total duration.
    pub fn duration(&self) -> TickDuration {
        self.video.duration
    }

    /// Number of slides.
    pub fn slide_count(&self) -> usize {
        self.deck.slides.len()
    }

    /// The lecture's typed media inventory: the camera video, the audio
    /// track (when present) and every slide image, as
    /// [`lod_media::MediaObject`] descriptors (§2.2's "collection of text,
    /// video, audio, image … etc.").
    pub fn media_objects(&self) -> Vec<lod_media::MediaObject> {
        use lod_media::{MediaId, MediaKind, MediaObject};
        let mut id = 0u64;
        let mut next = || {
            id += 1;
            MediaId(id)
        };
        let mut out = vec![MediaObject::new(
            next(),
            "camera",
            MediaKind::Video,
            self.video.duration,
            self.video.video_bitrate / 8 * self.video.duration.0 / lod_media::TICKS_PER_SECOND,
            self.video.path.clone(),
        )];
        if self.video.audio_bitrate > 0 {
            out.push(MediaObject::new(
                next(),
                "microphone",
                MediaKind::Audio,
                self.video.duration,
                self.video.audio_bitrate / 8 * self.video.duration.0 / lod_media::TICKS_PER_SECOND,
                format!("{} (audio)", self.video.path),
            ));
        }
        for (i, s) in self.deck.slides.iter().enumerate() {
            // A slide displays until the next one (or the end).
            let until = self
                .deck
                .slides
                .get(i + 1)
                .map(|n| n.show_at)
                .unwrap_or(lod_media::Ticks(self.video.duration.0));
            out.push(MediaObject::new(
                next(),
                s.file.clone(),
                MediaKind::Slide,
                until.since(s.show_at),
                s.bytes,
                self.deck.uri(s),
            ));
        }
        out
    }
}

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Generates a deterministic synthetic lecture.
///
/// `minutes` of video at `video_bitrate`, with roughly one slide per
/// 45–90 s (seeded), annotations on ~every third slide, and a three-level
/// outline (overview → sections → detail) whose total duration matches the
/// video.
pub fn synthetic_lecture(seed: u64, minutes: u64, video_bitrate: u64) -> Lecture {
    let mut rng = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let duration = TickDuration::from_secs(minutes * 60);
    let total_secs = minutes * 60;

    // Slides: change every 45–90 s.
    let mut slides = Vec::new();
    let mut t = 0u64;
    let mut i = 0usize;
    while t < total_secs {
        slides.push(Slide {
            file: format!("slide_{i:02}.png"),
            bytes: 20_000 + xorshift(&mut rng) % 60_000,
            show_at: Ticks::from_secs(t),
        });
        t += 45 + xorshift(&mut rng) % 46;
        i += 1;
    }
    let deck = SlideDeck {
        dir: format!("lectures/{seed}/slides"),
        slides,
    };

    // Annotations on roughly every third slide, a few seconds in.
    let annotations: Vec<Annotation> = deck
        .slides
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 3 == 1)
        .map(|(i, s)| Annotation {
            at: s.show_at + TickDuration::from_secs(5 + (i as u64 % 7)),
            text: format!("see equation {i}"),
        })
        .collect();

    // Outline: one overview segment, 3–5 sections, each with 1–3 details.
    // Durations partition the lecture so the content tree's full level
    // equals the video duration.
    let sections = 3 + (xorshift(&mut rng) % 3) as usize;
    let overview_secs = total_secs / 10;
    let mut outline = vec![OutlineEntry {
        name: "overview".into(),
        level: 0,
        duration_secs: overview_secs,
    }];
    let mut remaining = total_secs - overview_secs;
    for s in 0..sections {
        let is_last = s + 1 == sections;
        let body = if is_last {
            remaining
        } else {
            let share = remaining / (sections - s) as u64;
            share.max(1)
        };
        remaining -= body;
        let details = 1 + (xorshift(&mut rng) % 3) as usize;
        // A section keeps ~40% at level 1 and pushes the rest to level 2.
        let l1 = body * 2 / 5;
        outline.push(OutlineEntry {
            name: format!("section-{s}"),
            level: 1,
            duration_secs: l1,
        });
        let mut detail_left = body - l1;
        for d in 0..details {
            let is_last_d = d + 1 == details;
            let dd = if is_last_d {
                detail_left
            } else {
                (detail_left / (details - d) as u64).max(1)
            };
            detail_left -= dd;
            outline.push(OutlineEntry {
                name: format!("section-{s}-detail-{d}"),
                level: 2,
                duration_secs: dd,
            });
        }
    }

    Lecture {
        title: format!("synthetic lecture #{seed}"),
        video: VideoFileSpec {
            path: format!("lectures/{seed}/camera.m4v"),
            duration,
            video_bitrate,
            audio_bitrate: 32_000,
        },
        deck,
        annotations,
        outline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        assert_eq!(
            synthetic_lecture(7, 10, 300_000),
            synthetic_lecture(7, 10, 300_000)
        );
        assert_ne!(
            synthetic_lecture(7, 10, 300_000),
            synthetic_lecture(8, 10, 300_000)
        );
    }

    #[test]
    fn slides_cover_the_lecture() {
        let l = synthetic_lecture(3, 30, 300_000);
        assert!(l.slide_count() >= 30 * 60 / 90);
        assert!(l.slide_count() <= 30 * 60 / 45 + 1);
        // Change times strictly increase and stay inside the video.
        let times: Vec<u64> = l.deck.slides.iter().map(|s| s.show_at.0).collect();
        for w in times.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(*times.last().unwrap() < l.duration().0);
    }

    #[test]
    fn outline_partitions_duration() {
        let l = synthetic_lecture(11, 45, 300_000);
        let total: u64 = l.outline.iter().map(|e| e.duration_secs).sum();
        assert_eq!(total, 45 * 60);
        // Levels only 0..=2 and the first entry is the root.
        assert!(l.outline.iter().all(|e| e.level <= 2));
        assert_eq!(l.outline[0].level, 0);
    }

    #[test]
    fn media_objects_inventory_is_complete() {
        use lod_media::MediaKind;
        let l = synthetic_lecture(4, 10, 300_000);
        let objs = l.media_objects();
        // video + audio + one object per slide.
        assert_eq!(objs.len(), 2 + l.slide_count());
        assert_eq!(objs[0].kind(), MediaKind::Video);
        assert_eq!(objs[0].duration(), l.duration());
        assert_eq!(objs[1].kind(), MediaKind::Audio);
        // Slide display spans tile the lecture (first starts at 0).
        let slide_total: u64 = objs[2..].iter().map(|o| o.duration().0).sum();
        assert_eq!(slide_total, l.duration().0);
        // Video bitrate reconstructs from raw bytes and duration.
        let rate = objs[0].raw_bitrate();
        assert!(
            (rate as i64 - 300_000).unsigned_abs() < 2_000,
            "rate {rate}"
        );
    }

    #[test]
    fn annotations_attached_to_slides() {
        let l = synthetic_lecture(5, 20, 300_000);
        assert!(!l.annotations.is_empty());
        for a in &l.annotations {
            assert!(a.at.0 < l.duration().0 + 120 * lod_media::TICKS_PER_SECOND);
        }
    }
}
