//! The sync-model comparison harness (experiment Q1).
//!
//! §1 of the paper claims OCPN and XOCPN are "not sufficient" once network
//! transport, user interaction and distribution enter the picture. This
//! module makes that claim measurable: the same lecture is shipped over
//! the same simulated network, and three playout controllers consume the
//! identical arrival trace:
//!
//! * **OCPN** — open loop: each object plays at its precomputed schedule
//!   time, or as soon as it arrives if late. Late data becomes
//!   inter-stream skew; user interactions cannot alter the schedule.
//! * **XOCPN** — OCPN plus channel setup: the schedule is shifted by the
//!   declared transfer time of one unit (QoS reservation), absorbing
//!   nominal transport delay but not jitter tails or loss. Interactions
//!   still unsupported.
//! * **ETPN** — the paper's model ([`crate::etpn`]): arrival-gated,
//!   join-synchronized, interaction-capable.

// Index loops here intentionally walk several parallel `[stream][unit]`
// tables; iterator rewrites would obscure the net construction.
#![allow(clippy::needless_range_loop)]

use lod_simnet::{LinkSpec, Network};
use serde::{Deserialize, Serialize};

use crate::etpn::{EtpnConfig, Interaction, LectureNet};

/// Which controller replays the lecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SyncModelKind {
    /// Little & Ghafoor's OCPN (paper ref \[4\]).
    Ocpn,
    /// The extended OCPN with channel reservation (paper ref \[5\]).
    Xocpn,
    /// The paper's extended timed Petri net.
    Etpn,
}

impl std::fmt::Display for SyncModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyncModelKind::Ocpn => f.write_str("OCPN"),
            SyncModelKind::Xocpn => f.write_str("XOCPN"),
            SyncModelKind::Etpn => f.write_str("ETPN"),
        }
    }
}

/// One replay scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplayConfig {
    /// Sync-unit length in ticks.
    pub unit_ticks: u64,
    /// Units per stream.
    pub units: usize,
    /// Streams (video, slides, …).
    pub streams: usize,
    /// Media bytes per unit per stream.
    pub bytes_per_unit: u64,
    /// The network path.
    pub link: LinkSpec,
    /// RNG seed for the network.
    pub seed: u64,
    /// Optional user interaction: pause at the given unit for the given
    /// duration in ticks.
    pub pause: Option<(usize, u64)>,
}

impl ReplayConfig {
    /// A 60-unit, 2-stream lecture on the given link.
    pub fn new(link: LinkSpec, seed: u64) -> Self {
        Self {
            unit_ticks: 10_000_000, // 1 s units
            units: 60,
            streams: 2,
            bytes_per_unit: 50_000, // 400 kbit/s per stream
            link,
            seed,
            pause: None,
        }
    }
}

/// Outcome of one replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplayReport {
    /// Which model ran.
    pub model: SyncModelKind,
    /// Maximum inter-stream start skew over all units, ticks.
    pub max_skew: u64,
    /// Mean inter-stream start skew, ticks.
    pub mean_skew: f64,
    /// Stall time (playback frozen waiting for data), ticks. Open-loop
    /// models never stall — they skew instead.
    pub stall: u64,
    /// Wall time of the last rendered unit's end.
    pub finish: u64,
    /// Units the user missed because the model kept playing through a
    /// pause request (0 when pause is honoured).
    pub units_missed_during_pause: usize,
    /// Units rendered on all streams.
    pub units_rendered: usize,
}

/// Simulates the transport and returns `(arrival_time, stream, unit)` for
/// every unit, retransmitting lost packets with a fixed RTO (so arrivals
/// are eventually complete, as a streaming session with ARQ would be).
pub fn simulate_arrivals(cfg: &ReplayConfig) -> Vec<(u64, usize, usize)> {
    const PACKET: u64 = 1_400;
    let mut net: Network<(usize, usize, u32)> = Network::new(cfg.seed);
    let server = net.add_node("server");
    let client = net.add_node("client");
    net.connect(server, client, cfg.link);
    let packets_per_unit = cfg.bytes_per_unit.div_ceil(PACKET) as u32;
    // Base RTO covers propagation, jitter, and a whole unit's worth of
    // serialization backlog; it doubles per retry so duplicates cannot
    // snowball into congestion collapse.
    let rto = 4 * cfg.link.delay_ticks
        + 2 * cfg.link.jitter_ticks
        + 2 * cfg.link.serialization_ticks(PACKET)
            * u64::from(packets_per_unit)
            * cfg.streams as u64
        + 1_000_000;

    // received[s][k] counts packet arrivals; resend missing after RTO.
    let mut received = vec![vec![0u32; cfg.units]; cfg.streams];
    let mut arrival = vec![vec![None::<u64>; cfg.units]; cfg.streams];
    // Initial sends: unit k's packets go out at media time k*unit (the
    // server paces in real time, as the paper's live/stored server does).
    let mut outstanding: Vec<(u64, usize, usize, u32)> = Vec::new();
    for s in 0..cfg.streams {
        for k in 0..cfg.units {
            for p in 0..packets_per_unit {
                outstanding.push((k as u64 * cfg.unit_ticks, s, k, p));
            }
        }
    }
    outstanding.sort_by_key(|e| e.0);
    // Per-packet (deadline, retry-count) for exponential backoff.
    let mut pending: std::collections::HashMap<(usize, usize, u32), (u64, u32)> =
        std::collections::HashMap::new();

    let mut idx = 0;
    let mut now = 0u64;
    let horizon_step = 1_000_000u64;
    let deadline = cfg.units as u64 * cfg.unit_ticks * 20 + 1_000_000_000;
    while now < deadline {
        // Send everything due.
        while idx < outstanding.len() && outstanding[idx].0 <= now {
            let (_, s, k, p) = outstanding[idx];
            if arrival[s][k].is_none() {
                let _ = net.send(server, client, PACKET, (s, k, p));
                pending.insert((s, k, p), (now + rto, 0));
            }
            idx += 1;
        }
        // Retransmit timed-out packets with exponential backoff.
        let timed_out: Vec<(usize, usize, u32)> = pending
            .iter()
            .filter(|(_, &(t, _))| t <= now)
            .map(|(&key, _)| key)
            .collect();
        for key in timed_out {
            let (s, k, p) = key;
            let retries = pending.get(&key).map_or(0, |&(_, r)| r);
            if arrival[s][k].is_none() {
                let _ = net.send(server, client, PACKET, (s, k, p));
                let backoff = rto.saturating_mul(1 << retries.min(6));
                pending.insert(key, (now + backoff, retries + 1));
            } else {
                pending.remove(&key);
            }
        }
        // Deliveries.
        for d in net.advance_to(now) {
            let (s, k, p) = d.message;
            if pending.remove(&(s, k, p)).is_some() || arrival[s][k].is_none() {
                received[s][k] += 1;
                if received[s][k] >= packets_per_unit && arrival[s][k].is_none() {
                    arrival[s][k] = Some(d.time);
                }
            }
        }
        if idx >= outstanding.len() && arrival.iter().all(|row| row.iter().all(|a| a.is_some())) {
            break;
        }
        now += horizon_step;
    }

    let mut out = Vec::new();
    for s in 0..cfg.streams {
        for k in 0..cfg.units {
            // Units that never completed arrive "at infinity"; clamp to
            // deadline so reports stay finite.
            out.push((arrival[s][k].unwrap_or(deadline), s, k));
        }
    }
    out.sort_unstable();
    out
}

/// Derives an ETPN arrival trace from a *real* streaming session: serves
/// `file` to one client over `link` through the full server/client stack
/// and buckets each stream's sample completions into `unit_ticks` units.
/// A unit "arrives" when its last sample completes; units with no samples
/// on a stream (sparse slide tracks) count as arrived at time 0.
///
/// Streams are indexed by their position in `file.streams`.
pub fn arrivals_from_streaming(
    file: &lod_asf::AsfFile,
    link: LinkSpec,
    unit_ticks: u64,
    seed: u64,
) -> (Vec<(u64, usize, usize)>, usize) {
    use lod_streaming::{run_to_completion, StreamingClient, StreamingServer};
    let mut net: Network<lod_streaming::Wire> = Network::new(seed);
    let s = net.add_node("server");
    let c = net.add_node("client");
    net.connect_bidirectional(s, c, link);
    let mut server = StreamingServer::new(s);
    let duration = file.props.play_duration.max(file.last_presentation_time());
    let stream_numbers: Vec<u16> = file.streams.iter().map(|sp| sp.number).collect();
    server.publish("lecture", file.clone());
    let mut client = StreamingClient::new(c, s, "lecture");
    let horizon = duration * 20 + 600_000_000_000;
    run_to_completion(&mut net, &mut server, &mut [&mut client], horizon);

    let units = (duration.div_ceil(unit_ticks.max(1))) as usize;
    let streams = stream_numbers.len();
    let mut arrival = vec![vec![0u64; units]; streams];
    for &(wall, pres, stream) in client.arrival_log() {
        let Some(sidx) = stream_numbers.iter().position(|&n| n == stream) else {
            continue;
        };
        let k = ((pres / unit_ticks.max(1)) as usize).min(units - 1);
        arrival[sidx][k] = arrival[sidx][k].max(wall);
    }
    let mut out = Vec::new();
    for (sidx, row) in arrival.iter().enumerate() {
        for (k, &t) in row.iter().enumerate() {
            out.push((t, sidx, k));
        }
    }
    out.sort_unstable();
    (out, units)
}

/// Runs one model against an arrival trace.
pub fn replay(
    cfg: &ReplayConfig,
    model: SyncModelKind,
    arrivals: &[(u64, usize, usize)],
) -> ReplayReport {
    match model {
        SyncModelKind::Etpn => replay_etpn(cfg, arrivals),
        SyncModelKind::Ocpn => replay_open_loop(cfg, arrivals, model, 0),
        SyncModelKind::Xocpn => {
            // Channel reservation: shift the schedule by the declared
            // transfer time of one unit plus propagation.
            let reserve = cfg.link.serialization_ticks(cfg.bytes_per_unit) + cfg.link.delay_ticks;
            replay_open_loop(cfg, arrivals, model, reserve)
        }
    }
}

/// Runs all three models against the same arrivals.
pub fn compare(cfg: &ReplayConfig) -> Vec<ReplayReport> {
    let arrivals = simulate_arrivals(cfg);
    [
        SyncModelKind::Ocpn,
        SyncModelKind::Xocpn,
        SyncModelKind::Etpn,
    ]
    .into_iter()
    .map(|m| replay(cfg, m, &arrivals))
    .collect()
}

fn replay_etpn(cfg: &ReplayConfig, arrivals: &[(u64, usize, usize)]) -> ReplayReport {
    let net = LectureNet::new(EtpnConfig {
        unit_ticks: cfg.unit_ticks,
        units: cfg.units,
        streams: cfg.streams,
        sync_every: 1,
        block_prefetch: true,
    });
    let interactions: Vec<(u64, Interaction)> = match cfg.pause {
        None => Vec::new(),
        Some((unit, dur)) => {
            let t = unit as u64 * cfg.unit_ticks;
            vec![(t, Interaction::Pause), (t + dur, Interaction::Resume)]
        }
    };
    let r = net.run(arrivals, &interactions);
    ReplayReport {
        model: SyncModelKind::Etpn,
        max_skew: r.max_skew,
        mean_skew: r.mean_skew,
        stall: r.network_stall(),
        finish: r.finish_time,
        units_missed_during_pause: 0,
        units_rendered: r.units_rendered,
    }
}

fn replay_open_loop(
    cfg: &ReplayConfig,
    arrivals: &[(u64, usize, usize)],
    model: SyncModelKind,
    reserve: u64,
) -> ReplayReport {
    let mut arrival = vec![vec![u64::MAX; cfg.units]; cfg.streams];
    for &(t, s, k) in arrivals {
        arrival[s][k] = t;
    }
    // The schedule anchor: playback begins when the first unit of every
    // stream is present, plus the model's reservation shift.
    let anchor = (0..cfg.streams).map(|s| arrival[s][0]).max().unwrap_or(0) + reserve;
    let mut starts = vec![vec![0u64; cfg.units]; cfg.streams];
    for s in 0..cfg.streams {
        for k in 0..cfg.units {
            let scheduled = anchor + k as u64 * cfg.unit_ticks;
            // Open loop: play on schedule, or as soon as the data shows up.
            starts[s][k] = scheduled.max(arrival[s][k]);
        }
    }
    let mut skews = Vec::new();
    for k in 0..cfg.units {
        let mx = (0..cfg.streams).map(|s| starts[s][k]).max().unwrap_or(0);
        let mn = (0..cfg.streams).map(|s| starts[s][k]).min().unwrap_or(0);
        skews.push(mx - mn);
    }
    let max_skew = skews.iter().copied().max().unwrap_or(0);
    let mean_skew = skews.iter().sum::<u64>() as f64 / skews.len().max(1) as f64;
    let finish = starts.iter().flatten().copied().max().unwrap_or(0) + cfg.unit_ticks;
    // A pause request cannot change the schedule: the content keeps
    // playing, so the user misses everything in the pause window.
    let units_missed_during_pause = match cfg.pause {
        None => 0,
        Some((_, dur)) => (dur / cfg.unit_ticks) as usize,
    };
    ReplayReport {
        model,
        max_skew,
        mean_skew,
        stall: 0,
        finish,
        units_missed_during_pause,
        units_rendered: cfg.units,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(link: LinkSpec) -> ReplayConfig {
        ReplayConfig {
            unit_ticks: 10_000_000,
            units: 30,
            streams: 2,
            bytes_per_unit: 50_000,
            link,
            seed: 42,
            pause: None,
        }
    }

    #[test]
    fn arrivals_complete_and_ordered() {
        let c = cfg(LinkSpec::broadband());
        let arrivals = simulate_arrivals(&c);
        assert_eq!(arrivals.len(), 60);
        let times: Vec<u64> = arrivals.iter().map(|a| a.0).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn lossy_link_still_completes_via_retransmission() {
        let c = cfg(LinkSpec::broadband().with_loss(0.05));
        let arrivals = simulate_arrivals(&c);
        let deadline = c.units as u64 * c.unit_ticks * 20 + 1_000_000_000;
        assert!(arrivals.iter().all(|&(t, _, _)| t < deadline));
    }

    #[test]
    fn etpn_never_skews_others_do_under_jitter() {
        let mut c = cfg(LinkSpec::broadband().with_jitter(8_000_000).with_loss(0.02));
        c.seed = 7;
        let reports = compare(&c);
        let ocpn = &reports[0];
        let xocpn = &reports[1];
        let etpn = &reports[2];
        assert_eq!(etpn.max_skew, 0);
        assert!(ocpn.max_skew > 0, "OCPN skew {}", ocpn.max_skew);
        // XOCPN's reservation absorbs at least as much as OCPN suffers.
        assert!(
            xocpn.max_skew <= ocpn.max_skew,
            "xocpn {} vs ocpn {}",
            xocpn.max_skew,
            ocpn.max_skew
        );
        // ETPN pays with stall instead.
        assert!(etpn.stall > 0 || etpn.finish >= ocpn.finish - c.unit_ticks);
    }

    #[test]
    fn pause_is_only_honoured_by_etpn() {
        let mut c = cfg(LinkSpec::lan());
        c.pause = Some((10, 50_000_000)); // pause 5 s at unit 10
        let reports = compare(&c);
        let ocpn = &reports[0];
        let etpn = &reports[2];
        assert_eq!(ocpn.units_missed_during_pause, 5);
        assert_eq!(etpn.units_missed_during_pause, 0);
        assert_eq!(etpn.units_rendered, c.units);
        // ETPN finishes ~5 s later because playback actually froze.
        assert!(etpn.finish >= ocpn.finish + 40_000_000);
    }

    #[test]
    fn lan_replay_is_clean_for_all_models() {
        let c = cfg(LinkSpec::lan());
        for r in compare(&c) {
            assert_eq!(r.units_rendered, c.units, "{}", r.model);
            assert!(r.max_skew <= 2_000_000, "{} skew {}", r.model, r.max_skew);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(SyncModelKind::Ocpn.to_string(), "OCPN");
        assert_eq!(SyncModelKind::Etpn.to_string(), "ETPN");
    }

    #[test]
    fn real_stack_arrivals_feed_the_etpn() {
        // Publish a real lecture, stream it through the full server/client
        // stack, and replay the resulting arrival trace through all three
        // sync models: the ETPN still pins skew to zero.
        let lecture = crate::presentation::synthetic_lecture(77, 1, 200_000);
        let file = crate::Wmps::new().publish(&lecture).unwrap();
        let unit = 10_000_000; // 1 s units
        let (arrivals, units) =
            arrivals_from_streaming(&file, LinkSpec::broadband().with_jitter(5_000_000), unit, 3);
        assert_eq!(arrivals.len(), units * file.streams.len());
        let mut cfg = ReplayConfig::new(LinkSpec::broadband(), 3);
        cfg.units = units;
        cfg.streams = file.streams.len();
        cfg.unit_ticks = unit;
        let etpn = replay(&cfg, SyncModelKind::Etpn, &arrivals);
        assert_eq!(etpn.max_skew, 0);
        assert_eq!(etpn.units_rendered, units);
        let ocpn = replay(&cfg, SyncModelKind::Ocpn, &arrivals);
        assert_eq!(ocpn.units_rendered, units);
    }
}
