//! End-to-end WMPS sessions: record → publish → serve → replay.
//!
//! This is the system of Figs. 5–7 wired together: the publisher turns a
//! lecture into an ASF file; the streaming server serves it to student
//! clients over the simulated network; a live classroom runs the encoder
//! in real time and relays to everyone watching.

use lod_asf::{AsfError, AsfFile};
use lod_encoder::{BandwidthProfile, BroadcastConfig, LiveEncoder, Publisher};
use lod_media::Ticks;
use lod_obs::{Event, Recorder, TICK_BOUNDS};
use lod_player::SkewStats;
use lod_relay::{
    CacheStats, FailoverConfig, HeartbeatMonitor, RedirectManager, RelayMetrics, RelayNode,
};
use lod_simnet::{relay_tree, Fault, FaultInjector, FaultPlan, LinkSpec, Network, RelayTree};
use lod_streaming::{
    run_to_completion, AdmissionPolicy, BreakerPolicy, ClientMetrics, DegradePolicy, LiveFeed,
    RetryPolicy, ServerMetrics, StreamHeader, StreamingClient, StreamingServer, Wire,
};
use serde::{Deserialize, Serialize};

use crate::presentation::Lecture;

/// Quality outcome of one served replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WmpsReport {
    /// Per-client streaming metrics.
    pub clients: Vec<ClientMetrics>,
    /// Per-client skew of rendered items against each client's own playout
    /// anchor (how well the presentation held together).
    pub skew: Vec<SkewStats>,
    /// Spread of each slide flip across clients: for every script command
    /// rendered by at least two clients, the wall-time gap between the
    /// first and last client to show it — the "distributed platforms"
    /// synchronization the paper's ETPN is about.
    pub classroom_spread: SkewStats,
    /// Wall ticks the whole session took.
    pub session_ticks: u64,
    /// Origin server service counters.
    pub server: ServerMetrics,
    /// Bytes the origin pushed onto its uplink (all outbound links).
    pub origin_egress_bytes: u64,
    /// Relay-tier outcome when the session ran through edge relays.
    pub relay: Option<RelayTierReport>,
    /// Duration in ticks of every client outage the retry layer recovered
    /// from, across all clients in wall-time order per client. Empty when
    /// nothing went wrong (or no retry policy was armed).
    pub recoveries: Vec<u64>,
    /// Fault strikes the chaos plan actually applied to the network.
    pub faults_applied: u64,
    /// Warm-standby failover outcome (present iff
    /// [`RelayTierConfig::failover`] was armed).
    pub failover: Option<FailoverReport>,
}

/// Outcome of the warm-standby tier for one session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailoverReport {
    /// Tick the standby was promoted at (`None` = the origin never died).
    pub promoted_at: Option<u64>,
    /// Fencing epoch the cluster ended the run at.
    pub epoch: u64,
    /// Checkpointed sessions the standby restored at promotion.
    pub sessions_migrated: u64,
    /// Journal entries replicated origin → standby over the whole run.
    pub checkpoints_replicated: u64,
    /// Headers/segments delivered after promotion that still carried a
    /// pre-promotion fencing epoch. The split-brain gate: must be 0.
    pub stale_epoch_replies: u64,
    /// The standby server's own service counters (its
    /// `plays_from_zero` must stay 0: every migrated session resumes
    /// from its checkpointed horizon).
    pub standby: ServerMetrics,
}

/// Aggregate outcome of the edge-relay tier for one session.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RelayTierReport {
    /// Segment-cache accounting summed over every relay.
    pub cache: CacheStats,
    /// Service counters summed over every relay.
    pub metrics: RelayMetrics,
    /// Students re-homed by the failure drill (0 without one).
    pub reattached: usize,
}

impl WmpsReport {
    /// Worst rebuffer ratio across clients for a playback of
    /// `playback_ticks`.
    pub fn worst_rebuffer(&self, playback_ticks: u64) -> f64 {
        self.clients
            .iter()
            .map(|c| c.rebuffer_ratio(playback_ticks))
            .fold(0.0, f64::max)
    }

    /// Integer twin of [`WmpsReport::worst_rebuffer`]: the worst
    /// client's stalled ticks per thousand ticks of playback. Seeded
    /// experiment reports print this one — per-mille division is
    /// byte-stable where float formatting is not.
    pub fn worst_rebuffer_permille(&self, playback_ticks: u64) -> u64 {
        self.clients
            .iter()
            .map(|c| c.rebuffer_permille(playback_ticks))
            .max()
            .unwrap_or(0)
    }

    /// Sessions that rendered media and were never abandoned by the
    /// retry layer — the "students who actually saw the lecture" count
    /// the chaos experiments grade on.
    pub fn completed_sessions(&self) -> usize {
        self.clients
            .iter()
            .filter(|c| c.samples_rendered > 0 && !c.abandoned)
            .count()
    }

    /// Clients explicitly refused with [`Wire::Busy`] until their bounce
    /// budget ran out — turned away at the door, not dropped mid-lecture.
    pub fn shed_clients(&self) -> usize {
        self.clients.iter().filter(|c| c.shed).count()
    }

    /// Sessions that neither completed nor were explicitly shed: silent
    /// timeouts and zero-render finishes — exactly the failure mode the
    /// admit → degrade → shed ladder exists to eliminate.
    pub fn hard_failures(&self) -> usize {
        self.clients
            .iter()
            .filter(|c| !c.shed && (c.abandoned || c.samples_rendered == 0))
            .count()
    }

    /// Sessions the origin downshifted at least once (server-side count).
    pub fn degraded_sessions(&self) -> u64 {
        self.server.sessions_degraded
    }

    /// p95 of [`WmpsReport::recoveries`] in ticks (0 when none).
    pub fn p95_recovery_ticks(&self) -> u64 {
        if self.recoveries.is_empty() {
            return 0;
        }
        let mut sorted = self.recoveries.clone();
        sorted.sort_unstable();
        sorted[(sorted.len() - 1) * 95 / 100]
    }
}

/// Folds a finished run's counters into the recorder's metrics
/// registry: one integer counter per [`ServerMetrics`]/[`RelayMetrics`]/
/// [`CacheStats`] field, whole-run gauges, and startup/stall/recovery
/// histograms over [`TICK_BOUNDS`]. A disabled recorder makes every
/// call a no-op.
fn publish_run_metrics(obs: &Recorder, report: &WmpsReport) {
    if !obs.is_enabled() {
        return;
    }
    let s = &report.server;
    obs.counter_add("lod_server_sessions_served_total", s.sessions_served);
    obs.counter_add("lod_server_payload_bytes_total", s.payload_bytes_sent);
    obs.counter_add(
        "lod_server_backpressure_pauses_total",
        s.backpressure_pauses,
    );
    obs.counter_add("lod_server_segments_served_total", s.segments_served);
    obs.counter_add("lod_server_sessions_reaped_total", s.sessions_reaped);
    obs.counter_add("lod_server_sessions_shed_total", s.sessions_shed);
    obs.counter_add("lod_server_downshifts_total", s.downshifts);
    obs.counter_add("lod_server_upshifts_total", s.upshifts);
    obs.counter_add("lod_server_sessions_degraded_total", s.sessions_degraded);
    if let Some(tier) = &report.relay {
        let m = &tier.metrics;
        obs.counter_add("lod_relay_sessions_served_total", m.sessions_served);
        obs.counter_add("lod_relay_segment_fetches_total", m.segment_fetches);
        obs.counter_add("lod_relay_prefetches_total", m.prefetches);
        obs.counter_add("lod_relay_payload_bytes_total", m.payload_bytes_sent);
        obs.counter_add("lod_relay_upstream_bytes_total", m.upstream_bytes_received);
        obs.counter_add("lod_relay_fetch_retries_total", m.fetch_retries);
        obs.counter_add("lod_relay_fetch_give_ups_total", m.fetch_give_ups);
        obs.counter_add("lod_relay_sessions_shed_total", m.sessions_shed);
        obs.counter_add("lod_relay_breaker_opens_total", m.breaker_opens);
        obs.counter_add("lod_relay_fetches_suppressed_total", m.fetches_suppressed);
        let c = &tier.cache;
        obs.counter_add("lod_cache_hits_total", c.hits);
        obs.counter_add("lod_cache_misses_total", c.misses);
        obs.counter_add("lod_cache_insertions_total", c.insertions);
        obs.counter_add("lod_cache_evictions_total", c.evictions);
        obs.counter_add("lod_cache_bytes_evicted_total", c.bytes_evicted);
        obs.gauge_set("lod_students_reattached", tier.reattached as u64);
    }
    if let Some(fo) = &report.failover {
        obs.counter_add(
            "lod_standby_checkpoints_replicated_total",
            fo.checkpoints_replicated,
        );
        obs.counter_add("lod_standby_sessions_migrated_total", fo.sessions_migrated);
        obs.counter_add(
            "lod_server_checkpoints_emitted_total",
            report.server.checkpoints_emitted,
        );
        obs.gauge_set("lod_stale_epoch_replies", fo.stale_epoch_replies);
        obs.gauge_set("lod_failover_epoch", fo.epoch);
    }
    obs.gauge_set("lod_sessions_completed", report.completed_sessions() as u64);
    obs.gauge_set("lod_clients_shed", report.shed_clients() as u64);
    obs.gauge_set("lod_hard_failures", report.hard_failures() as u64);
    obs.gauge_set("lod_session_ticks", report.session_ticks);
    obs.gauge_set("lod_faults_applied", report.faults_applied);
    obs.gauge_set("lod_origin_egress_bytes", report.origin_egress_bytes);
    for m in &report.clients {
        if m.samples_rendered > 0 {
            obs.observe("lod_startup_ticks", &TICK_BOUNDS, m.startup_ticks);
        }
        obs.observe("lod_stall_ticks", &TICK_BOUNDS, m.stall_ticks);
    }
    for &dur in &report.recoveries {
        obs.observe("lod_recovery_ticks", &TICK_BOUNDS, dur);
    }
}

/// Spread of each script firing across clients (see
/// [`WmpsReport::classroom_spread`]).
fn classroom_spread(events: &[lod_streaming::RenderEvent]) -> SkewStats {
    use std::collections::HashMap;
    let mut groups: HashMap<(u64, &str), Vec<u64>> = HashMap::new();
    for e in events {
        if let Some(cmd) = &e.script {
            groups
                .entry((e.pres_time, cmd.param.as_str()))
                .or_default()
                .push(e.wall_time);
        }
    }
    let spreads: Vec<u64> = groups
        .values()
        .filter(|walls| walls.len() >= 2)
        .map(|walls| walls.iter().max().unwrap() - walls.iter().min().unwrap())
        .collect();
    SkewStats::from_skews(spreads)
}

/// Per-client skew: anchor each client at its first rendered item.
fn per_client_skew(
    clients: &[StreamingClient],
    events: &[lod_streaming::RenderEvent],
) -> Vec<SkewStats> {
    clients
        .iter()
        .map(|c| {
            let mine: Vec<_> = events.iter().filter(|e| e.client == c.node()).collect();
            let anchor = mine
                .iter()
                .map(|e| e.wall_time.saturating_sub(e.pres_time))
                .min()
                .unwrap_or(0);
            SkewStats::from_skews(
                mine.iter()
                    .map(|e| e.wall_time.abs_diff(anchor + e.pres_time))
                    .collect(),
            )
        })
        .collect()
}

/// A scripted fault storm for [`Wmps::serve_with_relays`], written in
/// terms of *roles* (student i, relay j, the uplink) rather than
/// [`lod_simnet::NodeId`]s, because the network is built inside the call.
/// Resolved against the concrete topology into a [`FaultPlan`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChaosSpec {
    /// `(at, duration, loss)` — every student's access link degrades to
    /// the given loss rate for the window (the campus wifi brownout).
    pub access_loss_bursts: Vec<(u64, u64, f64)>,
    /// `(at, duration, student)` — one student's access link goes fully
    /// dark (cable yanked); their client must ride it out and resume.
    pub access_flaps: Vec<(u64, u64, usize)>,
    /// `(at, duration, relay)` — an edge relay crashes; its students are
    /// re-homed by the redirect manager. `u64::MAX` duration = permanent.
    pub relay_crashes: Vec<(u64, u64, usize)>,
    /// `(at, duration)` — the origin↔router uplink is severed; relays
    /// must serve from cache and pace their fetch retries until it heals.
    pub uplink_partitions: Vec<(u64, u64)>,
    /// `(at, duration, extra_ticks)` — added propagation delay on the
    /// uplink (congested backbone), stretching fetch round-trips.
    pub uplink_latency_spikes: Vec<(u64, u64, u64)>,
    /// `(at, duration)` — the origin node itself crashes (volatile
    /// session state lost); the warm standby detects the silence and is
    /// promoted. Requires [`RelayTierConfig::failover`] to be armed.
    /// `u64::MAX` duration = the origin never heals.
    pub origin_down: Vec<(u64, u64)>,
}

impl ChaosSpec {
    /// True when the spec schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.access_loss_bursts.is_empty()
            && self.access_flaps.is_empty()
            && self.relay_crashes.is_empty()
            && self.uplink_partitions.is_empty()
            && self.uplink_latency_spikes.is_empty()
            && self.origin_down.is_empty()
    }

    /// Binds the symbolic storm to a concrete topology. Out-of-range
    /// student/relay indices are skipped (a storm written for 4 relays
    /// still runs on 2).
    pub fn resolve(&self, tree: &RelayTree) -> FaultPlan {
        let mut plan = FaultPlan::new();
        for &(at, dur, loss) in &self.access_loss_bursts {
            for &s in &tree.students {
                plan = plan.loss_burst(at, dur, tree.router, s, loss);
            }
        }
        for &(at, dur, idx) in &self.access_flaps {
            if let Some(&s) = tree.students.get(idx) {
                plan = plan.link_down(at, dur, tree.router, s);
            }
        }
        for &(at, dur, idx) in &self.relay_crashes {
            if let Some(&r) = tree.relays.get(idx) {
                plan = plan.node_down(at, dur, r);
            }
        }
        for &(at, dur) in &self.uplink_partitions {
            plan = plan.link_down(at, dur, tree.origin, tree.router);
        }
        for &(at, dur, extra) in &self.uplink_latency_spikes {
            plan = plan.latency_spike(at, dur, tree.origin, tree.router, extra);
        }
        for &(at, dur) in &self.origin_down {
            plan = plan.node_down(at, dur, tree.origin);
        }
        plan
    }
}

/// Configuration of the edge-relay tier for [`Wmps::serve_with_relays`].
#[derive(Debug, Clone)]
pub struct RelayTierConfig {
    /// Number of edge relays between the origin and the students.
    pub relays: usize,
    /// Link between the campus router and each relay.
    pub relay_link: LinkSpec,
    /// Per-relay segment-cache budget in bytes.
    pub cache_budget: u64,
    /// Pull the next segment ahead of need.
    pub prefetch: bool,
    /// Fail the first relay at this tick (the mid-lecture failover drill);
    /// its students are redirected to a surviving sibling or the origin.
    pub fail_first_at: Option<u64>,
    /// Scripted fault storm applied during the session (empty = calm).
    pub chaos: ChaosSpec,
    /// Arm every client with this retry policy (salted per student off
    /// the session seed, so runs stay byte-for-byte reproducible).
    pub client_retry: Option<RetryPolicy>,
    /// Origin idle-session reaping window in ticks (`None` = the
    /// server's default).
    pub idle_timeout: Option<u64>,
    /// Admission budget at the origin (relays are exempted — their
    /// shared live/fetch traffic is the tier's whole point).
    pub origin_admission: Option<AdmissionPolicy>,
    /// Admission budget at every relay; refused students bounce with
    /// [`Wire::Busy`] and the redirect manager steers them to the
    /// least-loaded sibling before they are shed.
    pub relay_admission: Option<AdmissionPolicy>,
    /// Graceful degradation at the origin: sustained backlog downshifts
    /// sessions one [`BandwidthProfile`] rung instead of stalling them.
    pub degrade: Option<DegradePolicy>,
    /// Circuit breaker on every relay's upstream fetch path.
    pub breaker: Option<BreakerPolicy>,
    /// Seats per relay the redirect manager steers into (`None` =
    /// unbounded). Size this to `relay_admission.max_sessions`.
    pub relay_capacity_sessions: Option<usize>,
    /// Flash-crowd arrivals: `(wave_size, interval)` starts students in
    /// waves of `wave_size` every `interval` ticks instead of all at 0.
    pub arrival_wave: Option<(usize, u64)>,
    /// Warm-standby origin failover: adds a standby server behind the
    /// router, replicates session checkpoints to it every driver step,
    /// and promotes it (fencing epoch bump, relays re-pointed, clients
    /// re-homed) when the heartbeat monitor declares the origin dead.
    /// Required for [`ChaosSpec::origin_down`].
    pub failover: Option<FailoverConfig>,
    /// Structured event sink shared by the origin, every relay, every
    /// client and the fault injector. Disabled by default (a free
    /// no-op); arm with [`Recorder::new`] to capture the run's event
    /// log, metrics registry and per-session timelines.
    pub recorder: Recorder,
    /// Per-mille of segments whose delivery is traced end-to-end
    /// (relays mint the contexts; 0 = tracing off, 1000 = every
    /// segment). Spans land in `recorder`, so arm it too.
    pub trace_permille: u16,
}

impl Default for RelayTierConfig {
    fn default() -> Self {
        Self {
            relays: 4,
            relay_link: LinkSpec::lan(),
            cache_budget: 64 << 20,
            prefetch: true,
            fail_first_at: None,
            chaos: ChaosSpec::default(),
            client_retry: None,
            idle_timeout: None,
            origin_admission: None,
            relay_admission: None,
            degrade: None,
            breaker: None,
            relay_capacity_sessions: None,
            arrival_wave: None,
            failover: None,
            recorder: Recorder::disabled(),
            trace_permille: 0,
        }
    }
}

/// The top-level system facade.
#[derive(Debug, Clone)]
pub struct Wmps {
    packet_size: u32,
    preroll: lod_media::TickDuration,
}

impl Wmps {
    /// A system with the default 1400-byte packets and 2 s client preroll.
    pub fn new() -> Self {
        Self {
            packet_size: 1_400,
            preroll: lod_media::TickDuration::from_secs(2),
        }
    }

    /// Overrides the packet size.
    pub fn with_packet_size(mut self, packet_size: u32) -> Self {
        self.packet_size = packet_size;
        self
    }

    /// Overrides the client preroll recorded in published files.
    pub fn with_preroll(mut self, preroll: lod_media::TickDuration) -> Self {
        self.preroll = preroll;
        self
    }

    /// Fig. 5: publish a recorded lecture into one synchronized ASF file.
    ///
    /// # Errors
    ///
    /// Propagates packetization errors for absurd packet sizes.
    pub fn publish(&self, lecture: &Lecture) -> Result<AsfFile, AsfError> {
        let mut publisher = Publisher::new(self.packet_size);
        publisher.preroll(self.preroll);
        publisher.publish(&lecture.video, &lecture.deck, &lecture.annotations)
    }

    /// Serves `file` to `n_clients` over `link` and replays to completion.
    pub fn serve_and_replay(
        &self,
        file: AsfFile,
        link: LinkSpec,
        n_clients: usize,
        seed: u64,
    ) -> WmpsReport {
        self.serve_with_topology(file, n_clients, seed, |net, s, clients| {
            for &c in clients {
                net.connect_bidirectional(s, c, link);
            }
        })
    }

    /// Serves `file` to `n_clients` sitting behind one shared `uplink`
    /// (server → campus router) with per-student `access` links — the
    /// topology a real lecture server faces.
    pub fn serve_shared_uplink(
        &self,
        file: AsfFile,
        uplink: LinkSpec,
        access: LinkSpec,
        n_clients: usize,
        seed: u64,
    ) -> WmpsReport {
        self.serve_with_topology(file, n_clients, seed, |net, s, clients| {
            let router = net.add_node("router");
            net.connect(s, router, uplink);
            net.connect(router, s, uplink);
            for &c in clients {
                net.connect(router, c, access);
                net.connect(c, router, access);
                net.set_next_hop(s, c, router);
                net.set_next_hop(c, s, router);
            }
        })
    }

    /// Serves `file` through an edge-relay tier: origin → campus router →
    /// `cfg.relays` relays, with every student behind the router on its
    /// own `access` link. Students address the origin; a
    /// [`RedirectManager`] answers each Play with the least-loaded relay,
    /// which pulls segments across the `uplink` once and fans them out
    /// locally. With `cfg.fail_first_at` set, the first relay dies
    /// mid-lecture and its students re-attach to a surviving sibling.
    pub fn serve_with_relays(
        &self,
        file: AsfFile,
        uplink: LinkSpec,
        access: LinkSpec,
        n_clients: usize,
        seed: u64,
        cfg: &RelayTierConfig,
    ) -> WmpsReport {
        // Killing the origin without a standby is not a survivable drill
        // — it is a configuration error, caught before the network is
        // built rather than surfacing as a mysterious all-clients-dead
        // run.
        assert!(
            cfg.chaos.origin_down.is_empty() || cfg.failover.is_some(),
            "ChaosSpec::origin_down requires RelayTierConfig::failover: \
             arm a FailoverConfig so a warm standby exists to take over"
        );
        let play_duration = file.props.play_duration;
        let mut net: Network<Wire> = Network::new(seed);
        let tree = relay_tree(
            &mut net,
            uplink,
            cfg.relay_link,
            access,
            cfg.relays,
            n_clients,
        );
        let obs = cfg.recorder.clone();
        obs.label_node(tree.origin.index() as u64, "origin");
        obs.label_node(tree.router.index() as u64, "router");
        for (i, r) in tree.relays.iter().enumerate() {
            obs.label_node(r.index() as u64, &format!("relay{i}"));
        }
        for (i, s) in tree.students.iter().enumerate() {
            obs.label_node(s.index() as u64, &format!("student{i}"));
        }
        let mut server = StreamingServer::new(tree.origin).with_recorder(obs.clone());
        if let Some(t) = cfg.idle_timeout {
            server = server.with_idle_timeout(t);
        }
        if let Some(adm) = cfg.origin_admission {
            server = server.with_admission(adm);
        }
        if let Some(deg) = cfg.degrade {
            server = server.with_degrade(deg);
        }
        if let Some(f) = cfg.failover {
            server = server.with_checkpointing(f.checkpoint_every);
        }
        for &r in &tree.relays {
            // A relay's one shared fetch/live subscription must never be
            // bounced: shedding it would shed a whole campus.
            server.exempt_from_admission(r);
        }
        // The warm standby: same catalog, same knobs, zero sessions. It
        // sits behind the router like the origin does, applies the
        // replicated checkpoint journal every driver step, and answers
        // nothing until promoted (Plays bounce toward the primary).
        let mut standby = cfg.failover.map(|f| {
            let sb = net.add_node("standby");
            obs.label_node(sb.index() as u64, "standby");
            net.connect_bidirectional(sb, tree.router, uplink);
            let peers: Vec<lod_simnet::NodeId> = std::iter::once(tree.origin)
                .chain(tree.relays.iter().copied())
                .chain(tree.students.iter().copied())
                .collect();
            for &p in &peers {
                net.set_next_hop(sb, p, tree.router);
                net.set_next_hop(p, sb, tree.router);
            }
            let mut sb_srv = StreamingServer::new(sb)
                .with_recorder(obs.clone())
                .with_checkpointing(f.checkpoint_every)
                .as_standby();
            if let Some(t) = cfg.idle_timeout {
                sb_srv = sb_srv.with_idle_timeout(t);
            }
            if let Some(adm) = cfg.origin_admission {
                sb_srv = sb_srv.with_admission(adm);
            }
            if let Some(deg) = cfg.degrade {
                sb_srv = sb_srv.with_degrade(deg);
            }
            for &r in &tree.relays {
                sb_srv.exempt_from_admission(r);
            }
            sb_srv.publish("lecture", file.clone());
            let monitor = HeartbeatMonitor::new(sb, tree.origin, f).with_recorder(obs.clone());
            (sb, sb_srv, monitor)
        });
        server.publish("lecture", file);
        let mut relays: Vec<RelayNode> = tree
            .relays
            .iter()
            .map(|&r| {
                let mut relay = RelayNode::new(r, tree.origin, cfg.cache_budget)
                    .with_prefetch(cfg.prefetch)
                    .with_recorder(obs.clone())
                    .with_trace_permille(cfg.trace_permille);
                if let Some(adm) = cfg.relay_admission {
                    relay = relay.with_admission(adm);
                }
                if let Some(b) = cfg.breaker {
                    relay = relay.with_breaker(b);
                }
                relay.serve_vod("lecture");
                relay
            })
            .collect();
        let mut redirect = RedirectManager::new(tree.origin, tree.relays.clone());
        if let Some(seats) = cfg.relay_capacity_sessions {
            redirect = redirect.with_relay_capacity(seats);
        }
        let mut clients: Vec<StreamingClient> = tree
            .students
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let client =
                    StreamingClient::new(c, tree.origin, "lecture").with_recorder(obs.clone());
                match cfg.client_retry {
                    // Per-student salt: distinct jitter streams, same seed
                    // → same storm of retries on every run.
                    Some(policy) => client.with_retry(
                        policy,
                        seed.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                    ),
                    None => client,
                }
            })
            .collect();
        // Arrival schedule: all at 0, or a flash crowd in waves.
        let start_at: Vec<u64> = (0..clients.len())
            .map(|i| match cfg.arrival_wave {
                Some((wave, interval)) => (i / wave.max(1)) as u64 * interval,
                None => 0,
            })
            .collect();
        let mut started = vec![false; clients.len()];
        let mut injector = FaultInjector::new(cfg.chaos.resolve(&tree)).with_recorder(obs.clone());

        const STEP: u64 = 1_000_000; // 100 ms
        let horizon = play_duration * 20 + 600_000_000_000;
        let mut now = 0u64;
        let mut events = Vec::new();
        let mut reattached = 0usize;
        let mut faults_applied = 0u64;
        let mut failed = false;
        let mut checkpoints_replicated = 0u64;
        let mut stale_epoch_replies = 0u64;
        let mut promoted_at: Option<u64> = None;
        let mut promoted_epoch: Option<u64> = None;
        while now <= horizon {
            for (i, c) in clients.iter_mut().enumerate() {
                if !started[i] && now >= start_at[i] {
                    c.start(&mut net);
                    started[i] = true;
                }
            }
            if let Some(at) = cfg.fail_first_at {
                if !failed && now >= at && !tree.relays.is_empty() {
                    // The relay drops off the network; the manager
                    // re-homes its students.
                    let victim = tree.relays[0];
                    net.disconnect(tree.router, victim);
                    net.disconnect(victim, tree.router);
                    reattached = redirect.fail_relay(&mut net, victim).len();
                    failed = true;
                }
            }
            for fault in injector.poll(&mut net, now) {
                faults_applied += 1;
                // A crashed relay strands its students until the redirect
                // manager re-homes them; the wire is already dark, so the
                // redirects ride out through the (healthy) origin links.
                if let Fault::NodeDown { node } = fault {
                    if tree.relays.contains(&node) {
                        reattached += redirect.fail_relay(&mut net, node).len();
                    } else if node == tree.origin {
                        // The crash wipes the origin's volatile session
                        // state; only the journal already replicated to
                        // the standby survives it.
                        server.crash();
                    }
                }
            }
            server.poll(&mut net, now);
            if let Some((sb, sb_srv, monitor)) = standby.as_mut() {
                // Replicate: whatever the primary journaled this step is
                // applied to the standby's replica — the replication lag
                // is bounded by one driver step on top of the journal's
                // own checkpoint cadence.
                let entries = server.journal_drain();
                checkpoints_replicated += entries.len() as u64;
                sb_srv.apply_journal(&entries);
                if monitor.poll(&mut net, now) {
                    // The origin is dead. Promote the standby one epoch
                    // past the primary's, re-point every relay uplink
                    // (deterministic Vec order), re-front the redirect
                    // manager, re-home every client, and keep fencing
                    // the old origin so a heal demotes it.
                    let epoch = server.epoch() + 1;
                    obs.emit(
                        now,
                        Event::FailoverStart {
                            from: tree.origin.index() as u64,
                            to: sb.index() as u64,
                            misses: u64::from(monitor.misses()),
                        },
                    );
                    sb_srv.promote(epoch, now);
                    for r in relays.iter_mut() {
                        r.retarget_origin(*sb, epoch, now);
                    }
                    let _ = redirect.retarget_origin(&mut net, *sb);
                    for c in clients.iter_mut() {
                        c.retarget_home(tree.origin, *sb);
                    }
                    monitor.fence(tree.origin, epoch);
                    promoted_at = Some(now);
                    promoted_epoch = Some(epoch);
                }
                sb_srv.poll(&mut net, now);
            }
            for r in relays.iter_mut() {
                r.poll(&mut net, now);
            }
            for d in net.advance_to(now) {
                // Fencing audit: after promotion, nothing carrying a
                // pre-promotion epoch may reach anyone (epoch 0 marks
                // epoch-less unit-test fixtures, never a served reply).
                if let Some(pe) = promoted_epoch {
                    match &d.message {
                        Wire::Header(h) if h.epoch > 0 && h.epoch < pe => {
                            stale_epoch_replies += 1;
                        }
                        Wire::Segment(seg) if seg.epoch > 0 && seg.epoch < pe => {
                            stale_epoch_replies += 1;
                        }
                        _ => {}
                    }
                }
                if d.dst == server.node() {
                    if !redirect.intercept(&mut net, d.src, &d.message) {
                        server.on_message(&mut net, d.time, d.src, d.message);
                    }
                } else if standby.as_ref().is_some_and(|(sb, _, _)| *sb == d.dst) {
                    let (_, sb_srv, monitor) = standby.as_mut().expect("checked above");
                    match d.message {
                        // Heartbeat answers feed the failure detector.
                        Wire::Pong { .. } => monitor.on_pong(d.time),
                        msg => {
                            // Post-promotion the standby is the front
                            // door, so the redirect manager intercepts
                            // Plays exactly as it did at the old origin.
                            if !redirect.intercept(&mut net, d.src, &msg) {
                                sb_srv.on_message(&mut net, d.time, d.src, msg);
                            }
                        }
                    }
                } else if let Some(c) = clients.iter_mut().find(|c| c.node() == d.dst) {
                    // A relay bouncing a student names no alternate (it
                    // only knows itself); the redirect manager fills one
                    // in so the bounce lands on the least-loaded sibling
                    // instead of a blind wait-and-retry.
                    let msg = match d.message {
                        Wire::Busy {
                            retry_after,
                            alternate: None,
                        } if tree.relays.contains(&d.src) => Wire::Busy {
                            retry_after,
                            alternate: redirect.reassign_busy(d.dst, d.src),
                        },
                        m => m,
                    };
                    c.on_message(d.time, msg);
                } else if let Some(r) = relays.iter_mut().find(|r| r.node() == d.dst) {
                    r.on_message(&mut net, d.time, d.src, d.message);
                }
            }
            for (i, c) in clients.iter_mut().enumerate() {
                if !started[i] {
                    continue;
                }
                events.extend(c.tick(now));
                c.poll_adaptive(&mut net);
                c.poll_redirect(&mut net);
                c.poll_busy(&mut net, now);
                c.poll_recovery(&mut net, now);
            }
            if started.iter().all(|&s| s) && clients.iter().all(|c| c.is_done()) {
                break;
            }
            now += STEP;
        }

        let session_ticks = events.iter().map(|e| e.wall_time).max().unwrap_or(0);
        let mut cache = CacheStats::default();
        let mut metrics = RelayMetrics::default();
        for r in &relays {
            cache += r.cache().stats();
            metrics += r.metrics();
        }
        let recoveries: Vec<u64> = clients
            .iter()
            .flat_map(|c| c.recovery_log().iter().map(|&(_, dur)| dur))
            .collect();
        let failover = standby.map(|(_, sb_srv, _)| {
            let standby_metrics = sb_srv.metrics();
            FailoverReport {
                promoted_at,
                epoch: sb_srv.epoch(),
                sessions_migrated: standby_metrics.sessions_migrated,
                checkpoints_replicated,
                stale_epoch_replies,
                standby: standby_metrics,
            }
        });
        let report = WmpsReport {
            clients: clients.iter().map(|c| *c.metrics()).collect(),
            skew: per_client_skew(&clients, &events),
            classroom_spread: classroom_spread(&events),
            session_ticks,
            server: server.metrics(),
            origin_egress_bytes: net.egress_bytes(tree.origin),
            relay: Some(RelayTierReport {
                cache,
                metrics,
                reattached,
            }),
            recoveries,
            faults_applied,
            failover,
        };
        publish_run_metrics(&obs, &report);
        report
    }

    fn serve_with_topology(
        &self,
        file: AsfFile,
        n_clients: usize,
        seed: u64,
        wire_up: impl FnOnce(&mut Network<Wire>, lod_simnet::NodeId, &[lod_simnet::NodeId]),
    ) -> WmpsReport {
        let play_duration = file.props.play_duration;
        let mut net: Network<Wire> = Network::new(seed);
        let s = net.add_node("server");
        let mut server = StreamingServer::new(s);
        server.publish("lecture", file);
        let nodes: Vec<lod_simnet::NodeId> = (0..n_clients)
            .map(|i| net.add_node(format!("student{i}")))
            .collect();
        wire_up(&mut net, s, &nodes);
        let mut clients: Vec<StreamingClient> = nodes
            .into_iter()
            .map(|c| StreamingClient::new(c, s, "lecture"))
            .collect();
        let mut refs: Vec<&mut StreamingClient> = clients.iter_mut().collect();
        let horizon = play_duration * 20 + 600_000_000_000;
        let events = run_to_completion(&mut net, &mut server, &mut refs, horizon);
        let session_ticks = events.iter().map(|e| e.wall_time).max().unwrap_or(0);

        WmpsReport {
            clients: clients.iter().map(|c| *c.metrics()).collect(),
            skew: per_client_skew(&clients, &events),
            classroom_spread: classroom_spread(&events),
            session_ticks,
            server: server.metrics(),
            origin_egress_bytes: net.egress_bytes(s),
            relay: None,
            recoveries: clients
                .iter()
                .flat_map(|c| c.recovery_log().iter().map(|&(_, dur)| dur))
                .collect(),
            faults_applied: 0,
            failover: None,
        }
    }

    /// The live classroom: a teacher encodes `secs` seconds of lecture in
    /// real time; `n_clients` students watch the broadcast.
    pub fn live_classroom(
        &self,
        profile: BandwidthProfile,
        secs: u64,
        n_clients: usize,
        link: LinkSpec,
        seed: u64,
    ) -> WmpsReport {
        self.live_classroom_with_slides(profile, secs, n_clients, link, seed, &[])
    }

    /// The live classroom where the teacher also flips slides mid-
    /// broadcast: `slides` are `(presentation time, slide uri)` pairs
    /// pushed into the live stream as script commands at their times
    /// ("Script commands can be added to live streams", §2.1).
    pub fn live_classroom_with_slides(
        &self,
        profile: BandwidthProfile,
        secs: u64,
        n_clients: usize,
        link: LinkSpec,
        seed: u64,
        slides: &[(u64, String)],
    ) -> WmpsReport {
        let commands: Vec<lod_asf::ScriptCommand> = slides
            .iter()
            .map(|(t, uri)| lod_asf::ScriptCommand::new(*t, "slide", uri.clone()))
            .collect();
        self.live_classroom_with_script(profile, secs, n_clients, link, seed, &commands)
    }

    /// The live classroom with an arbitrary script-command schedule pushed
    /// into the live stream at each command's time.
    pub fn live_classroom_with_script(
        &self,
        profile: BandwidthProfile,
        secs: u64,
        n_clients: usize,
        link: LinkSpec,
        seed: u64,
        commands: &[lod_asf::ScriptCommand],
    ) -> WmpsReport {
        let mut encoder = LiveEncoder::new(
            BroadcastConfig::new("http://wmps.example/live"),
            profile,
            self.packet_size,
        );
        let header = StreamHeader {
            props: encoder.file_properties(),
            streams: encoder.stream_properties(),
            script: encoder.script(),
            drm: None,
            epoch: 0,
        };
        let mut net: Network<Wire> = Network::new(seed);
        let s = net.add_node("server");
        let mut server = StreamingServer::new(s);
        server.publish_live("live", LiveFeed::new(header));
        let mut clients: Vec<StreamingClient> = (0..n_clients)
            .map(|i| {
                let c = net.add_node(format!("student{i}"));
                net.connect_bidirectional(s, c, link);
                StreamingClient::new(c, s, "live")
            })
            .collect();
        for c in clients.iter_mut() {
            c.start(&mut net);
        }

        const STEP: u64 = 1_000_000; // 100 ms
        let live_end = secs * 10_000_000;
        let horizon = live_end * 4 + 600_000_000_000;
        let mut now = 0u64;
        let mut events = Vec::new();
        let mut ended = false;
        let mut commands_sorted: Vec<lod_asf::ScriptCommand> = commands.to_vec();
        commands_sorted.sort_by_key(|c| c.time);
        let mut next_cmd = 0usize;
        while now <= horizon {
            if now <= live_end {
                for p in encoder.pump(Ticks(now)) {
                    server.live_feed("live").expect("feed published").push(p);
                }
                while next_cmd < commands_sorted.len() && commands_sorted[next_cmd].time <= now {
                    server
                        .live_feed("live")
                        .expect("feed published")
                        .push_script(commands_sorted[next_cmd].clone());
                    next_cmd += 1;
                }
            } else if !ended {
                server.live_feed("live").expect("feed published").end();
                ended = true;
            }
            server.poll(&mut net, now);
            for d in net.advance_to(now) {
                if d.dst == server.node() {
                    server.on_message(&mut net, d.time, d.src, d.message);
                } else if let Some(c) = clients.iter_mut().find(|c| c.node() == d.dst) {
                    c.on_message(d.time, d.message);
                }
            }
            for c in clients.iter_mut() {
                events.extend(c.tick(now));
            }
            if ended && clients.iter().all(|c| c.is_done()) {
                break;
            }
            now += STEP;
        }
        WmpsReport {
            clients: clients.iter().map(|c| *c.metrics()).collect(),
            skew: per_client_skew(&clients, &events),
            classroom_spread: classroom_spread(&events),
            session_ticks: now,
            server: server.metrics(),
            origin_egress_bytes: net.egress_bytes(s),
            relay: None,
            recoveries: Vec::new(),
            faults_applied: 0,
            failover: None,
        }
    }
}

/// A student question for the floor-controlled Q&A.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Question {
    /// Asking user (0 = the teacher, who outranks everyone).
    pub user: usize,
    /// When the hand goes up, in ticks.
    pub at: u64,
    /// How long the speaker holds the floor.
    pub hold: u64,
    /// The question text.
    pub text: String,
}

/// Outcome of a Q&A classroom: the streaming report plus the floor log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QnaReport {
    /// The streaming session outcome.
    pub session: WmpsReport,
    /// The floor-control outcome (who spoke when).
    pub floor: crate::floor::FloorReport,
    /// Questions actually relayed to the class, in speak order.
    pub spoken: Vec<String>,
}

impl Wmps {
    /// A live classroom with floor-controlled Q&A: raised hands contend
    /// for the floor (teacher priority 10, students 0); each speaker's
    /// question is relayed to every listener as an annotation script
    /// command at the moment the floor is granted. This is §1's "floor
    /// control with multiple users" running inside the real streaming
    /// session.
    pub fn classroom_qna(
        &self,
        profile: BandwidthProfile,
        secs: u64,
        n_clients: usize,
        link: LinkSpec,
        seed: u64,
        questions: &[Question],
    ) -> QnaReport {
        use crate::floor::{run_floor, FloorRequest};
        let requests: Vec<FloorRequest> = questions
            .iter()
            .map(|q| FloorRequest {
                user: q.user,
                at: q.at,
                hold: q.hold,
                priority: if q.user == 0 { 10 } else { 0 },
            })
            .collect();
        let floor = run_floor(&requests);
        let commands: Vec<lod_asf::ScriptCommand> = floor
            .grants
            .iter()
            .map(|g| {
                let q = &questions[g.request];
                lod_asf::ScriptCommand::new(
                    g.granted_at,
                    "annotation",
                    format!("user {}: {}", q.user, q.text),
                )
            })
            .collect();
        let session =
            self.live_classroom_with_script(profile, secs, n_clients, link, seed, &commands);
        let spoken = commands.iter().map(|c| c.param.clone()).collect();
        QnaReport {
            session,
            floor,
            spoken,
        }
    }
}

impl Default for Wmps {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presentation::synthetic_lecture;

    #[test]
    fn publish_then_serve_on_lan() {
        let lecture = synthetic_lecture(1, 1, 300_000); // 1 minute
        let wmps = Wmps::new();
        let file = wmps.publish(&lecture).unwrap();
        assert!(!file.packets.is_empty());
        assert!(!file.script.is_empty());
        let report = wmps.serve_and_replay(file, LinkSpec::lan(), 2, 3);
        assert_eq!(report.clients.len(), 2);
        for (i, m) in report.clients.iter().enumerate() {
            assert!(m.samples_rendered > 0, "client {i}: {m:?}");
            assert_eq!(m.stalls, 0, "client {i} stalled: {m:?}");
        }
        // Playout holds together within the 100 ms driver cadence plus
        // preroll jitter.
        for s in &report.skew {
            assert!(s.p95 <= 5_000_000, "p95 skew {}", s.p95);
        }
    }

    #[test]
    fn modem_link_degrades_quality() {
        let lecture = synthetic_lecture(2, 1, 300_000);
        let wmps = Wmps::new();
        let file = wmps.publish(&lecture).unwrap();
        let lan = wmps.serve_and_replay(file.clone(), LinkSpec::lan(), 1, 5);
        let modem = wmps.serve_and_replay(file, LinkSpec::modem(), 1, 5);
        let lan_m = &lan.clients[0];
        let modem_m = &modem.clients[0];
        assert!(
            modem_m.stalls > lan_m.stalls || modem_m.startup_ticks > lan_m.startup_ticks,
            "modem should be visibly worse: lan {lan_m:?} modem {modem_m:?}"
        );
    }

    #[test]
    fn qna_relays_questions_in_floor_order() {
        let second = 10_000_000u64;
        let questions = vec![
            Question {
                user: 1,
                at: 0,
                hold: 2 * second,
                text: "what is a marking?".into(),
            },
            Question {
                user: 2,
                at: second / 2,
                hold: 2 * second,
                text: "and a token?".into(),
            },
            // Teacher interjects: jumps the queue (not the current holder).
            Question {
                user: 0,
                at: second,
                hold: second,
                text: "good question".into(),
            },
        ];
        let report = Wmps::new().classroom_qna(
            BandwidthProfile::by_name("dual ISDN (128k)").unwrap(),
            12,
            3,
            LinkSpec::lan(),
            8,
            &questions,
        );
        // Floor order: user 1 (first), teacher (priority), user 2.
        assert_eq!(report.floor.grant_order(), [1, 0, 2]);
        assert_eq!(report.spoken.len(), 3);
        assert!(report.spoken[1].starts_with("user 0:"));
        // Every student finished the session.
        assert_eq!(report.session.clients.len(), 3);
        for m in &report.session.clients {
            assert!(m.samples_rendered > 0);
        }
        // All three annotations reached at least two clients together.
        assert_eq!(report.session.classroom_spread.count, 3);
    }

    #[test]
    fn relay_tier_serves_everyone_and_survives_failure() {
        let lecture = synthetic_lecture(1, 1, 300_000); // 1 minute
        let wmps = Wmps::new();
        let file = wmps.publish(&lecture).unwrap();
        let cfg = RelayTierConfig {
            relays: 2,
            fail_first_at: Some(100_000_000), // 10 s in: mid-lecture
            ..RelayTierConfig::default()
        };
        let report = wmps.serve_with_relays(file, LinkSpec::lan(), LinkSpec::lan(), 4, 3, &cfg);
        assert_eq!(report.clients.len(), 4);
        for (i, m) in report.clients.iter().enumerate() {
            assert!(m.samples_rendered > 0, "client {i}: {m:?}");
        }
        let relay = report.relay.expect("relay tier ran");
        // Two relays, four students, balanced assignment: failing the
        // first relay re-homes its two students.
        assert_eq!(relay.reattached, 2);
        assert!(relay.metrics.segment_fetches > 0);
        assert!(relay.cache.lookups() > 0);
        // Students kept playing only through relays; the origin never
        // carried a media session itself.
        assert_eq!(report.server.sessions_served, 0);
        assert!(report.server.segments_served > 0);
    }

    #[test]
    fn chaos_storm_recovers_every_session() {
        let lecture = synthetic_lecture(1, 1, 300_000); // 1 minute
        let wmps = Wmps::new();
        let file = wmps.publish(&lecture).unwrap();
        let second = 10_000_000u64;
        let cfg = RelayTierConfig {
            relays: 2,
            chaos: ChaosSpec {
                // 5 s in: relay0 dies for good; its students re-home.
                relay_crashes: vec![(5 * second, u64::MAX, 0)],
                // 15 s in: the uplink vanishes for 2 s; caches carry it.
                uplink_partitions: vec![(15 * second, 2 * second)],
                // 20 s in: one student's cable is out for 3 s.
                access_flaps: vec![(20 * second, 3 * second, 1)],
                ..ChaosSpec::default()
            },
            client_retry: Some(RetryPolicy::client()),
            ..RelayTierConfig::default()
        };
        let report = wmps.serve_with_relays(file, LinkSpec::lan(), LinkSpec::lan(), 4, 11, &cfg);
        // Everyone finished despite the storm.
        assert_eq!(report.completed_sessions(), 4, "{:?}", report.clients);
        for m in &report.clients {
            assert!(!m.abandoned, "{m:?}");
        }
        // Each scheduled fault actually struck.
        assert_eq!(report.faults_applied, 3);
        let relay = report.relay.expect("relay tier ran");
        assert_eq!(relay.reattached, 2, "relay0's two students re-homed");
        // The severed access link forced the retry layer to act.
        assert!(
            report.clients.iter().any(|m| m.retries > 0),
            "{:?}",
            report.clients
        );
    }

    #[test]
    fn same_seed_same_chaos_outcome() {
        let lecture = synthetic_lecture(1, 1, 300_000);
        let wmps = Wmps::new();
        let file = wmps.publish(&lecture).unwrap();
        let second = 10_000_000u64;
        let cfg = RelayTierConfig {
            relays: 2,
            chaos: ChaosSpec {
                access_loss_bursts: vec![(2 * second, 5 * second, 0.05)],
                relay_crashes: vec![(5 * second, u64::MAX, 0)],
                ..ChaosSpec::default()
            },
            client_retry: Some(RetryPolicy::client()),
            ..RelayTierConfig::default()
        };
        let a = wmps.serve_with_relays(file.clone(), LinkSpec::lan(), LinkSpec::lan(), 4, 7, &cfg);
        let b = wmps.serve_with_relays(file, LinkSpec::lan(), LinkSpec::lan(), 4, 7, &cfg);
        assert_eq!(a, b, "chaos runs must be byte-for-byte reproducible");
    }

    #[test]
    fn overload_ladder_sheds_explicitly_and_replays_deterministically() {
        let lecture = synthetic_lecture(1, 1, 300_000); // 1 minute
        let wmps = Wmps::new();
        let file = wmps.publish(&lecture).unwrap();
        // 8 students charge 6 seats (2 relays × 2 + origin × 2) in two
        // waves: every student must either play or be told Busy — nobody
        // may vanish into a silent timeout.
        let cfg = RelayTierConfig {
            relays: 2,
            origin_admission: Some(AdmissionPolicy::new(2, 1_000_000_000)),
            relay_admission: Some(AdmissionPolicy::new(2, 1_000_000_000)),
            relay_capacity_sessions: Some(2),
            degrade: Some(DegradePolicy::default()),
            breaker: Some(BreakerPolicy::upstream()),
            arrival_wave: Some((4, 10_000_000)),
            client_retry: Some(RetryPolicy::client()),
            ..RelayTierConfig::default()
        };
        let a = wmps.serve_with_relays(file.clone(), LinkSpec::lan(), LinkSpec::lan(), 8, 7, &cfg);
        let b = wmps.serve_with_relays(file, LinkSpec::lan(), LinkSpec::lan(), 8, 7, &cfg);
        assert_eq!(a, b, "overload runs must be byte-for-byte reproducible");
        assert_eq!(a.hard_failures(), 0, "{:?}", a.clients);
        assert_eq!(
            a.completed_sessions() + a.shed_clients(),
            8,
            "every student either watched or was explicitly refused: {:?}",
            a.clients
        );
    }

    #[test]
    fn recorder_is_disabled_by_default() {
        assert!(!RelayTierConfig::default().recorder.is_enabled());
    }

    #[test]
    fn traced_relay_tier_assembles_causal_waterfalls() {
        let lecture = synthetic_lecture(1, 1, 300_000); // 1 minute
        let wmps = Wmps::new();
        let file = wmps.publish(&lecture).unwrap();
        let cfg = RelayTierConfig {
            relays: 2,
            recorder: Recorder::new(),
            trace_permille: 1000,
            ..RelayTierConfig::default()
        };
        let report = wmps.serve_with_relays(file, LinkSpec::lan(), LinkSpec::lan(), 4, 3, &cfg);
        assert_eq!(report.completed_sessions(), 4, "{:?}", report.clients);
        let events = cfg.recorder.events();
        let causal = lod_obs::check_causal(&events);
        assert!(causal.holds(), "{causal:?}");
        assert!(causal.spans_opened > 0);
        let mut asm = lod_obs::SpanAssembler::new();
        for rec in &events {
            asm.ingest(rec);
        }
        // At 1000‰ every segment is sampled; each trace reaches playout.
        let traces = asm.traces();
        assert!(!traces.is_empty());
        assert!(traces
            .iter()
            .all(|t| t.spans.iter().any(|s| s.hop == "playout_wait")));
    }

    #[test]
    #[should_panic(expected = "requires RelayTierConfig::failover")]
    fn origin_down_without_a_standby_is_rejected() {
        let lecture = synthetic_lecture(1, 1, 300_000);
        let wmps = Wmps::new();
        let file = wmps.publish(&lecture).unwrap();
        let cfg = RelayTierConfig {
            chaos: ChaosSpec {
                origin_down: vec![(10_000_000, u64::MAX)],
                ..ChaosSpec::default()
            },
            ..RelayTierConfig::default()
        };
        let _ = wmps.serve_with_relays(file, LinkSpec::lan(), LinkSpec::lan(), 2, 3, &cfg);
    }

    #[test]
    fn origin_failover_resumes_sessions_without_restarts() {
        let lecture = synthetic_lecture(1, 1, 300_000); // 1 minute
        let wmps = Wmps::new();
        let file = wmps.publish(&lecture).unwrap();
        let second = 10_000_000u64;
        // One seat per relay: two students stream via relays, two via
        // the origin itself — exactly the sessions a failover must
        // migrate. 10 s in, the origin dies for good.
        let cfg = RelayTierConfig {
            relays: 2,
            relay_capacity_sessions: Some(1),
            client_retry: Some(RetryPolicy::client()),
            chaos: ChaosSpec {
                origin_down: vec![(10 * second, u64::MAX)],
                ..ChaosSpec::default()
            },
            failover: Some(FailoverConfig::default()),
            recorder: Recorder::new(),
            ..RelayTierConfig::default()
        };
        let report =
            wmps.serve_with_relays(file.clone(), LinkSpec::lan(), LinkSpec::lan(), 4, 3, &cfg);
        assert_eq!(report.completed_sessions(), 4, "{:?}", report.clients);
        let fo = report.failover.expect("failover tier ran");
        assert!(fo.promoted_at.is_some(), "the standby must be promoted");
        assert_eq!(fo.epoch, 2, "one promotion past the primary's epoch 1");
        assert!(
            fo.sessions_migrated >= 2,
            "the origin-homed sessions must migrate: {fo:?}"
        );
        assert!(fo.checkpoints_replicated > 0);
        assert_eq!(fo.stale_epoch_replies, 0, "fencing must hold: {fo:?}");
        assert_eq!(
            fo.standby.plays_from_zero, 0,
            "every migrated session resumes from its horizon, never from 0: {fo:?}"
        );
        // The event log proves the causal story: misses herald the
        // promotion, and every migrated session had a prior checkpoint.
        let causal = lod_obs::check_causal(&cfg.recorder.events());
        assert!(causal.holds(), "{causal:?}");
        assert_eq!(causal.promotions, 1);
        // Same seed, same storm → byte-for-byte identical outcome.
        let cfg_b = RelayTierConfig {
            recorder: Recorder::new(),
            ..cfg.clone()
        };
        let b = wmps.serve_with_relays(file, LinkSpec::lan(), LinkSpec::lan(), 4, 3, &cfg_b);
        assert_eq!(report, b, "failover runs must be reproducible");
        assert_eq!(cfg.recorder.to_jsonl(), cfg_b.recorder.to_jsonl());
    }

    #[test]
    fn armed_recorder_logs_deterministically_and_causally() {
        let lecture = synthetic_lecture(1, 1, 300_000); // 1 minute
        let wmps = Wmps::new();
        let file = wmps.publish(&lecture).unwrap();
        let second = 10_000_000u64;
        // The full overload + chaos gauntlet: admission, degrade,
        // breaker, flash-crowd arrivals, a yanked cable — every emitter
        // in the system gets exercised.
        let run = |file: AsfFile| {
            let cfg = RelayTierConfig {
                relays: 2,
                origin_admission: Some(AdmissionPolicy::new(2, 1_000_000_000)),
                relay_admission: Some(AdmissionPolicy::new(2, 1_000_000_000)),
                relay_capacity_sessions: Some(2),
                degrade: Some(DegradePolicy::default()),
                breaker: Some(BreakerPolicy::upstream()),
                arrival_wave: Some((4, second)),
                client_retry: Some(RetryPolicy::client()),
                chaos: ChaosSpec {
                    access_flaps: vec![(2 * second, 3 * second, 1)],
                    ..ChaosSpec::default()
                },
                recorder: Recorder::new(),
                ..RelayTierConfig::default()
            };
            let report = wmps.serve_with_relays(file, LinkSpec::lan(), LinkSpec::lan(), 8, 7, &cfg);
            (report, cfg.recorder)
        };
        let (report_a, rec_a) = run(file.clone());
        let (report_b, rec_b) = run(file);

        // Same seed → byte-identical log and exposition.
        assert!(!rec_a.to_jsonl().is_empty());
        assert_eq!(rec_a.to_jsonl(), rec_b.to_jsonl());
        assert_eq!(rec_a.prometheus(), rec_b.prometheus());

        // The log survives a JSONL round trip.
        let events = rec_a.events();
        assert_eq!(
            lod_obs::parse_jsonl(&rec_a.to_jsonl()).unwrap(),
            events,
            "JSONL round trip"
        );

        // Causal invariants: no downshift without its backlog-high
        // herald, no recovery without its outage-start.
        let causal = lod_obs::check_causal(&events);
        assert!(causal.holds(), "{causal:?}");

        // The event log agrees with the aggregate counters: sheds per
        // refusing node sum to the server's and relays' own counts.
        let origin = rec_a.node_by_label("origin").expect("origin labelled");
        assert_eq!(causal.sheds_at(origin), report_a.server.sessions_shed);
        let relay_sheds = report_a.relay.as_ref().unwrap().metrics.sessions_shed;
        assert_eq!(
            causal.total_sheds(),
            report_a.server.sessions_shed + relay_sheds
        );

        // Every student left a timeline, and the registry carries the
        // run's aggregates.
        assert_eq!(lod_obs::session_timelines(&events).len(), 8);
        let registry = rec_a.registry();
        assert_eq!(
            registry.counter("lod_server_sessions_shed_total"),
            report_a.server.sessions_shed
        );
        assert_eq!(
            registry.counter("lod_relay_sessions_shed_total"),
            relay_sheds
        );
        assert_eq!(report_a.clients.len(), report_b.clients.len());
    }

    #[test]
    fn live_classroom_reaches_students() {
        let wmps = Wmps::new();
        let report = wmps.live_classroom(
            BandwidthProfile::by_name("dual ISDN (128k)").unwrap(),
            5,
            3,
            LinkSpec::lan(),
            9,
        );
        assert_eq!(report.clients.len(), 3);
        for m in &report.clients {
            assert!(m.samples_rendered > 0, "{m:?}");
        }
    }
}
