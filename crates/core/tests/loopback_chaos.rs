//! The lossy-chaos drill: the loopback deployment (origin + 2 relays +
//! 32 clients on real localhost UDP sockets) under seeded fault
//! injection — ~10% steady datagram loss on the media direction plus a
//! burst-loss window on the origin → relay trunks — run twice, with
//! transport repair off and on.
//!
//! What it proves:
//!
//! * With repair **off**, loss surfaces to the application as segment
//!   re-requests (client retries + relay fetch retries) — the expensive
//!   round trips the NACK/retransmit sublayer exists to remove.
//! * With repair **on**, every one of the 32 sessions still completes,
//!   application-level re-requests shrink at least 5×, and the merged
//!   event log satisfies the repair causality invariants: every
//!   retransmit answers a prior NACK, give-ups stay within the retry
//!   budget, and gaps are skipped only after the budget is exhausted.
//!
//! Ignored by default (it binds 70 sockets across two deployments and
//! runs for wall seconds); `scripts/ci.sh` runs it explicitly under a
//! hard timeout.

use lod_core::{serve_loopback_udp, synthetic_lecture, LoopbackConfig, Wmps};
use lod_obs::check_causal;
use lod_simnet::{FaultPlan, NodeId};
use lod_streaming::RetryPolicy;
use lod_transport::{FaultSpec, RepairConfig};

/// Ticks per simulated second (1 tick = 100 ns).
const SECOND: u64 = 10_000_000;

/// The chaos profile both runs share: 10% steady loss on every egress
/// datagram of the origin and relay tiers, with a 35% burst on the
/// origin ↔ relay trunks between simulated seconds 5 and 15.
fn chaos() -> FaultSpec {
    let origin = NodeId::from_index(0);
    let relays = [NodeId::from_index(1), NodeId::from_index(2)];
    let mut plan = FaultPlan::new();
    for relay in relays {
        plan = plan.loss_burst(5 * SECOND, 10 * SECOND, origin, relay, 0.35);
    }
    FaultSpec {
        seed: 16,
        loss_permille: 120,
        plan,
        ..FaultSpec::default()
    }
}

/// Wall-to-tick acceleration for the drill. Deliberately slower than
/// the loopback default (40): this test runs 70 threads, possibly on a
/// single core, and at 40× a tens-of-milliseconds scheduler stall eats
/// multiple simulated seconds — enough to fire application retry timers
/// that have nothing to do with packet loss. At 10× those timers are
/// hundreds of wall milliseconds wide and only genuine unrepaired
/// stalls can trip them.
const ACCEL: u64 = 10;

/// Application-level recovery, active in both runs: it is the layer
/// whose workload (re-requests) the comparison measures. The timeout is
/// a deliberate 3 simulated seconds — 300 wall ms at [`ACCEL`] — so a
/// retry means a genuine unrepaired stall, not an OS scheduling hiccup.
/// (The stock [`RetryPolicy::client`] 1 s timeout would be inside
/// scheduler noise and make the on/off ratio non-deterministic.)
fn app_retry() -> RetryPolicy {
    RetryPolicy {
        request_timeout: 3 * SECOND,
        base_backoff: SECOND / 2,
        max_backoff: 4 * SECOND,
        max_retries: 30,
    }
}

#[test]
#[ignore = "real sockets + wall clock; run explicitly (ci.sh does)"]
fn repair_cuts_app_rerequests_five_fold_under_chaos() {
    let wmps = Wmps::new();
    let lecture = synthetic_lecture(1, 1, 300_000);
    let file = wmps.publish(&lecture).expect("publish");

    // Repair off: loss reaches the reorder buffer, times out, and is
    // skipped up to the application, which re-requests at segment
    // granularity.
    let mut off = LoopbackConfig {
        fault: Some(chaos()),
        client_retry: Some(app_retry()),
        record_events: true,
        accel: ACCEL,
        // Without repair a badly wedged session can burn through long
        // app-level backoffs — don't wait the full default for a run
        // whose completion is not under test.
        wall_deadline: std::time::Duration::from_secs(60),
        ..LoopbackConfig::default()
    };
    off.udp.repair = None;
    let off_report = serve_loopback_udp(file.clone(), &off);
    assert!(
        off_report.transport.faults_dropped > 0,
        "the chaos stage must actually drop datagrams: {:?}",
        off_report.transport
    );
    assert!(
        off_report.rerequests >= 20,
        "without repair, ~10% datagram loss must surface as application \
         re-requests (got {}): {:?}",
        off_report.rerequests,
        off_report.transport
    );
    // Repair-off gap skips are unconditional flushes (nacks = 0 against
    // a budget of 0) and must still be lawful to the checker.
    let off_causal = check_causal(&off_report.events);
    assert!(off_causal.holds(), "{off_causal:?}");
    assert_eq!(off_report.transport.retransmits_sent, 0);

    // Repair on: the same seeded chaos, now with the NACK/retransmit
    // sublayer between the wire and the application.
    let mut on = LoopbackConfig {
        fault: Some(chaos()),
        client_retry: Some(app_retry()),
        record_events: true,
        accel: ACCEL,
        ..LoopbackConfig::default()
    };
    // Production-shaped tuning for a lossy trunk: enough retransmit
    // buffer that a NACK round trip cannot outrun eviction at segment
    // fan-out rates, and enough budget to ride out the 35% burst.
    on.udp = on.udp.with_repair(RepairConfig {
        buffer_bytes: 4 << 20,
        retry_budget: 6,
        ..RepairConfig::default()
    });
    let on_report = serve_loopback_udp(file, &on);

    assert_eq!(
        on_report.abandoned, 0,
        "no session may be abandoned with repair on: {:?}",
        on_report.transport
    );
    assert_eq!(
        on_report.completed, on.clients,
        "every client must complete with repair on: {:?}",
        on_report.transport
    );
    assert!(
        on_report.transport.faults_dropped > 0,
        "{:?}",
        on_report.transport
    );
    assert!(
        on_report.transport.nacks_sent > 0 && on_report.transport.retransmits_sent > 0,
        "repair must have actually run: {:?}",
        on_report.transport
    );
    assert!(
        on_report.rerequests * 5 <= off_report.rerequests,
        "repair must cut application re-requests at least 5x: \
         {} with repair vs {} without",
        on_report.rerequests,
        off_report.rerequests
    );

    // Causality: every retransmit answers a NACK some receiver sent
    // earlier, give-ups respect the retry budget, and any skipped gap
    // exhausted its budget first.
    let on_causal = check_causal(&on_report.events);
    assert!(on_causal.holds(), "{on_causal:?}");
    assert!(on_causal.retransmits > 0, "{on_causal:?}");
}
