//! The loopback deployment drill: origin + 2 relays + 32 clients as
//! real threads on localhost UDP sockets, completing a published
//! lecture, with sample counts reconciling against a simnet run of the
//! same file and tier shape.
//!
//! Ignored by default (it binds 35 sockets and runs for wall seconds);
//! `scripts/ci.sh` runs it explicitly under a hard timeout.

use lod_core::{serve_loopback_udp, synthetic_lecture, LoopbackConfig, RelayTierConfig, Wmps};
use lod_simnet::LinkSpec;

#[test]
#[ignore = "real sockets + wall clock; run explicitly (ci.sh does)"]
fn loopback_udp_lecture_completes_and_reconciles_with_simnet() {
    let wmps = Wmps::new();
    let lecture = synthetic_lecture(1, 1, 300_000);
    let file = wmps.publish(&lecture).expect("publish");

    let cfg = LoopbackConfig::default();
    assert_eq!(cfg.relays, 2);
    assert_eq!(cfg.clients, 32);
    let report = serve_loopback_udp(file.clone(), &cfg);

    // Outcome gates: everyone finishes, nobody gives up or is shed.
    assert_eq!(
        report.abandoned, 0,
        "no session may be abandoned on loopback: {report:?}"
    );
    assert_eq!(
        report.completed, cfg.clients,
        "every client must complete: {report:?}"
    );
    assert!(report.clients.iter().all(|c| !c.shed));

    // The tier actually did tier work: relays fetched from the origin
    // and the sockets moved real traffic.
    assert!(report.relay.segment_fetches > 0, "{:?}", report.relay);
    assert!(report.server.segments_served > 0, "{:?}", report.server);
    assert!(report.transport.frames_sent > 0);
    assert!(report.transport.frames_received > 0);
    assert_eq!(report.transport.decode_errors, 0, "{:?}", report.transport);
    assert_eq!(report.transport.oversize_drops, 0, "{:?}", report.transport);

    // Reconcile with the simulator: the same file through the same tier
    // shape must render the same number of samples per student — the
    // transport must not change *what* plays, only *how* it travels.
    let sim = wmps.serve_with_relays(
        file,
        LinkSpec::lan(),
        LinkSpec::lan(),
        cfg.clients,
        7,
        &RelayTierConfig {
            relays: cfg.relays,
            ..RelayTierConfig::default()
        },
    );
    let sim_samples = sim.clients[0].samples_rendered;
    assert!(sim_samples > 0);
    assert!(
        sim.clients
            .iter()
            .all(|c| c.samples_rendered == sim_samples),
        "simnet baseline must be uniform"
    );
    for (i, c) in report.clients.iter().enumerate() {
        assert_eq!(
            c.samples_rendered, sim_samples,
            "client {i} rendered {} samples, simnet rendered {sim_samples}",
            c.samples_rendered
        );
        assert_eq!(c.samples_lost, 0, "client {i}: {c:?}");
    }
}
