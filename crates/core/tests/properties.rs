//! Property-based tests for the ETPN and floor control.

use lod_core::etpn::{EtpnConfig, Interaction, LectureNet};
use lod_core::floor::{run_floor, FloorRequest};
use proptest::prelude::*;

fn arb_cfg() -> impl Strategy<Value = EtpnConfig> {
    (1usize..12, 1usize..4, 1usize..5, any::<bool>()).prop_map(
        |(units, streams, sync_every, prefetch)| EtpnConfig {
            unit_ticks: 100,
            units,
            streams,
            sync_every,
            block_prefetch: prefetch,
        },
    )
}

proptest! {
    /// If every unit eventually arrives, every unit eventually renders —
    /// no arrival pattern can wedge the net.
    #[test]
    fn complete_arrivals_render_everything(
        cfg in arb_cfg(),
        delays in proptest::collection::vec(0u64..2_000, 0..48),
    ) {
        let net = LectureNet::new(cfg);
        let mut arrivals = Vec::new();
        let mut i = 0;
        for s in 0..cfg.streams {
            for k in 0..cfg.units {
                let d = delays.get(i % delays.len().max(1)).copied().unwrap_or(0);
                arrivals.push((d, s, k));
                i += 1;
            }
        }
        let r = net.run(&arrivals, &[]);
        prop_assert_eq!(r.units_rendered, cfg.units);
    }

    /// With block prefetch and per-unit sync, inter-stream start skew is
    /// exactly zero regardless of arrival order.
    #[test]
    fn prefetch_unit_sync_pins_skew_to_zero(
        units in 1usize..10,
        streams in 2usize..4,
        delays in proptest::collection::vec(0u64..3_000, 1..40),
    ) {
        let cfg = EtpnConfig {
            unit_ticks: 100,
            units,
            streams,
            sync_every: 1,
            block_prefetch: true,
        };
        let net = LectureNet::new(cfg);
        let mut arrivals = Vec::new();
        let mut i = 0;
        for s in 0..streams {
            for k in 0..units {
                arrivals.push((delays[i % delays.len()], s, k));
                i += 1;
            }
        }
        let r = net.run(&arrivals, &[]);
        prop_assert_eq!(r.max_skew, 0);
        prop_assert_eq!(r.units_rendered, units);
    }

    /// A pause/resume pair never loses content and extends wall time by at
    /// least (resume - pause) minus one unit of drain slack.
    #[test]
    fn pause_never_loses_units(
        units in 2usize..10,
        pause_at in 0u64..500,
        pause_len in 100u64..2_000,
    ) {
        let cfg = EtpnConfig {
            unit_ticks: 100,
            units,
            streams: 2,
            sync_every: 1,
            block_prefetch: true,
        };
        let net = LectureNet::new(cfg);
        let mut arrivals = Vec::new();
        for s in 0..2 {
            for k in 0..units {
                arrivals.push((0, s, k));
            }
        }
        let interactions = vec![
            (pause_at, Interaction::Pause),
            (pause_at + pause_len, Interaction::Resume),
        ];
        let r = net.run(&arrivals, &interactions);
        prop_assert_eq!(r.units_rendered, units);
        prop_assert!(r.finish_time >= cfg.ideal_duration());
    }

    /// Floor control: every request is granted exactly once, grants never
    /// overlap, and the floor is never granted before it was requested.
    #[test]
    fn floor_grants_are_exclusive_and_complete(
        reqs in proptest::collection::vec(
            (0u64..1_000, 1u64..300, 0i32..5, 0usize..6),
            1..12,
        ),
    ) {
        let requests: Vec<FloorRequest> = reqs
            .iter()
            .map(|&(at, hold, priority, user)| FloorRequest {
                user,
                at,
                hold,
                priority,
            })
            .collect();
        let report = run_floor(&requests);
        prop_assert_eq!(report.grants.len(), requests.len());
        // Each request index appears exactly once.
        let mut seen: Vec<usize> = report.grants.iter().map(|g| g.request).collect();
        seen.sort_unstable();
        let expected: Vec<usize> = (0..requests.len()).collect();
        prop_assert_eq!(seen, expected);
        // No overlap: sort by grant time and check hold windows.
        let mut windows: Vec<(u64, u64)> = report
            .grants
            .iter()
            .map(|g| (g.granted_at, g.granted_at + requests[g.request].hold))
            .collect();
        windows.sort_unstable();
        for w in windows.windows(2) {
            prop_assert!(w[1].0 >= w[0].1, "floor overlap: {w:?}");
        }
        // Causality.
        for g in &report.grants {
            prop_assert!(g.granted_at >= requests[g.request].at);
            prop_assert_eq!(g.wait, g.granted_at - requests[g.request].at);
        }
    }

    /// Higher-priority requests waiting at the same moment are always
    /// granted first.
    #[test]
    fn floor_priority_order_at_conflicts(
        holds in proptest::collection::vec(10u64..100, 2..6),
    ) {
        // All requests at t=0 with distinct priorities equal to index.
        let requests: Vec<FloorRequest> = holds
            .iter()
            .enumerate()
            .map(|(i, &hold)| FloorRequest {
                user: i,
                at: 0,
                hold,
                priority: i as i32,
            })
            .collect();
        let report = run_floor(&requests);
        // Grant order must be strictly decreasing priority.
        let order = report.grant_order();
        let mut expected: Vec<usize> = (0..requests.len()).collect();
        expected.reverse();
        prop_assert_eq!(order, expected);
    }
}
