//! Live broadcast sessions.
//!
//! §2.5: "user can select either broadcast their encoded content in real
//! time after finished configuring the server HTTP port and the URL for
//! Internet/LAN connections."

use lod_asf::{
    DataPacket, FileProperties, Packetizer, ScriptCommandList, StreamKind, StreamProperties,
};
use lod_media::Ticks;
use serde::{Deserialize, Serialize};

use crate::encode::{Encoder, AUDIO_STREAM, VIDEO_STREAM};
use crate::profile::BandwidthProfile;
use crate::source::{AudioCaptureDevice, CaptureSource, VideoCaptureDevice};

/// The broadcast half of the configuration module.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BroadcastConfig {
    /// HTTP port the media server exposes.
    pub http_port: u16,
    /// Public URL students connect to.
    pub url: String,
}

impl BroadcastConfig {
    /// A config with the era-typical defaults (port 8080).
    pub fn new(url: impl Into<String>) -> Self {
        Self {
            http_port: 8080,
            url: url.into(),
        }
    }
}

/// A running live-encoding session: camera + microphone → encoder →
/// packetizer, pulled in wall-clock steps.
#[derive(Debug)]
pub struct LiveEncoder {
    config: BroadcastConfig,
    encoder: Encoder,
    camera: Option<VideoCaptureDevice>,
    microphone: AudioCaptureDevice,
    packetizer: Packetizer,
    packet_size: u32,
}

impl LiveEncoder {
    /// Starts a live session with devices matched to `profile`.
    ///
    /// # Panics
    ///
    /// Panics if `packet_size` is smaller than the ASF minimum (a
    /// configuration bug, not a runtime condition).
    pub fn new(config: BroadcastConfig, profile: BandwidthProfile, packet_size: u32) -> Self {
        let camera = if profile.has_video() {
            let (w, h) = profile.resolution();
            // Cameras of the era: capture at 30 fps, the encoder drops to
            // the profile's rate.
            Some(VideoCaptureDevice::new(w, h, 30))
        } else {
            None
        };
        Self {
            config,
            encoder: Encoder::new(profile),
            camera,
            microphone: AudioCaptureDevice::new(16_000, 100),
            packetizer: Packetizer::new(packet_size).expect("packet size checked by caller"),
            packet_size,
        }
    }

    /// The broadcast configuration.
    pub fn config(&self) -> &BroadcastConfig {
        &self.config
    }

    /// The encoder (for stats and quality queries).
    pub fn encoder(&self) -> &Encoder {
        &self.encoder
    }

    /// Header metadata for clients joining this broadcast.
    pub fn file_properties(&self) -> FileProperties {
        FileProperties {
            file_id: u64::from(self.config.http_port) << 32,
            created: 0,
            packet_size: self.packet_size,
            play_duration: 0, // unknown while live
            preroll: 20_000_000,
            broadcast: true,
            max_bitrate: self.encoder.profile().total_bitrate() as u32,
        }
    }

    /// Stream declarations for this broadcast.
    pub fn stream_properties(&self) -> Vec<StreamProperties> {
        let p = self.encoder.profile();
        let mut v = Vec::new();
        if p.has_video() {
            v.push(StreamProperties {
                number: VIDEO_STREAM,
                kind: StreamKind::Video,
                codec: 4,
                bitrate: p.video_bitrate() as u32,
                name: format!("{} (camera)", self.config.url),
            });
        }
        v.push(StreamProperties {
            number: AUDIO_STREAM,
            kind: StreamKind::Audio,
            codec: 1,
            bitrate: p.audio_bitrate() as u32,
            name: format!("{} (microphone)", self.config.url),
        });
        v
    }

    /// Script command list for the live session (starts empty; the teacher
    /// side appends slide flips via the floor-control path in `lod-core`).
    pub fn script(&self) -> ScriptCommandList {
        ScriptCommandList::new()
    }

    /// Encodes everything captured up to wall time `until` and returns the
    /// finished packets.
    pub fn pump(&mut self, until: Ticks) -> Vec<DataPacket> {
        loop {
            let mut produced = false;
            if let Some(cam) = &mut self.camera {
                if let Some(f) = cam.next_frame(until) {
                    produced = true;
                    if let Some(s) = self.encoder.encode(&f) {
                        self.packetizer.push(&s);
                    }
                }
            }
            if let Some(f) = self.microphone.next_frame(until) {
                produced = true;
                if let Some(s) = self.encoder.encode(&f) {
                    self.packetizer.push(&s);
                }
            }
            if !produced {
                break;
            }
        }
        self.packetizer.take_completed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn live() -> LiveEncoder {
        LiveEncoder::new(
            BroadcastConfig::new("http://lod.example/lecture"),
            BandwidthProfile::by_name("DSL/cable (256k)").unwrap(),
            1_400,
        )
    }

    #[test]
    fn pump_produces_packets_in_real_time() {
        let mut enc = live();
        let first = enc.pump(Ticks::from_secs(2));
        assert!(!first.is_empty());
        let more = enc.pump(Ticks::from_secs(4));
        assert!(!more.is_empty());
        // Send times progress.
        let last_first = first.last().unwrap().send_time;
        let first_more = more.first().unwrap().send_time;
        assert!(first_more >= last_first);
    }

    #[test]
    fn pump_is_idempotent_at_same_instant() {
        let mut enc = live();
        let _ = enc.pump(Ticks::from_secs(1));
        assert!(enc.pump(Ticks::from_secs(1)).is_empty());
    }

    #[test]
    fn broadcast_header_is_live() {
        let enc = live();
        let props = enc.file_properties();
        assert!(props.broadcast);
        assert_eq!(props.play_duration, 0);
        assert_eq!(enc.stream_properties().len(), 2);
    }

    #[test]
    fn audio_only_profile_has_single_stream() {
        let enc = LiveEncoder::new(
            BroadcastConfig::new("u"),
            BandwidthProfile::by_name("28.8k modem (audio only)").unwrap(),
            512,
        );
        assert_eq!(enc.stream_properties().len(), 1);
        assert_eq!(enc.stream_properties()[0].number, AUDIO_STREAM);
    }

    #[test]
    fn live_rate_tracks_profile() {
        let mut enc = live();
        let packets = enc.pump(Ticks::from_secs(10));
        let bytes: u64 = packets.iter().map(|p| p.media_bytes() as u64).sum();
        let rate = bytes as f64 * 8.0 / 10.0;
        let target = enc.encoder().profile().total_bitrate() as f64;
        assert!(
            (rate - target).abs() / target < 0.15,
            "rate {rate} vs {target}"
        );
    }
}
