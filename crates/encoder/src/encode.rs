//! The encoder: raw frames in, rate-controlled encoded samples out.

use lod_asf::MediaSample;
use lod_media::{CodecRegistry, MediaKind, Ticks};
use serde::{Deserialize, Serialize};

use crate::profile::BandwidthProfile;
use crate::source::{synth_bytes, RawFrame};

/// Stream number conventions used across the system.
pub const VIDEO_STREAM: u16 = 1;
/// Audio stream number.
pub const AUDIO_STREAM: u16 = 2;
/// Slide-image stream number.
pub const SLIDE_STREAM: u16 = 3;

/// Counters the encoder accumulates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncoderStats {
    /// Raw frames offered.
    pub frames_in: u64,
    /// Frames actually encoded.
    pub frames_encoded: u64,
    /// Frames dropped to honour the profile's frame rate.
    pub frames_dropped: u64,
    /// Encoded payload bytes produced.
    pub bytes_out: u64,
}

/// A profile-driven encoder for one audio + one video elementary stream.
#[derive(Debug)]
pub struct Encoder {
    profile: BandwidthProfile,
    registry: CodecRegistry,
    video_pattern: Vec<u32>,
    video_index: usize,
    /// Next video capture time that will be accepted (frame-rate governor).
    next_video_accept: Ticks,
    seed: u64,
    stats: EncoderStats,
}

impl Encoder {
    /// An encoder configured by `profile`.
    pub fn new(profile: BandwidthProfile) -> Self {
        let registry = CodecRegistry::builtin();
        let video_pattern = if profile.has_video() {
            let codec = registry
                .get(profile.codec_for(MediaKind::Video))
                .expect("profile codecs exist in the registry");
            // One keyframe period of sizes, scaled to the profile's own
            // frame rate rather than the codec default.
            let period = codec.keyframe_interval().max(1);
            let spec_sizes = codec.frame_sizes(period, profile.video_bitrate());
            let scale = f64::from(codec.frame_rate()) / f64::from(profile.frame_rate().max(1));
            spec_sizes
                .iter()
                .map(|&s| ((f64::from(s) * scale).round() as u32).max(1))
                .collect()
        } else {
            Vec::new()
        };
        Self {
            profile,
            registry,
            video_pattern,
            video_index: 0,
            next_video_accept: Ticks::ZERO,
            seed: 0,
            stats: EncoderStats::default(),
        }
    }

    /// The configured profile.
    pub fn profile(&self) -> &BandwidthProfile {
        &self.profile
    }

    /// Encoder statistics so far.
    pub fn stats(&self) -> EncoderStats {
        self.stats
    }

    /// Video quality score in \[0, 1\] delivered by this configuration.
    pub fn video_quality(&self) -> f64 {
        if !self.profile.has_video() {
            return 0.0;
        }
        self.registry
            .get(self.profile.codec_for(MediaKind::Video))
            .map(|c| c.quality_at(self.profile.video_bitrate()))
            .unwrap_or(0.0)
    }

    /// Audio quality score in \[0, 1\].
    pub fn audio_quality(&self) -> f64 {
        self.registry
            .get(self.profile.codec_for(MediaKind::Audio))
            .map(|c| c.quality_at(self.profile.audio_bitrate()))
            .unwrap_or(0.0)
    }

    /// Encodes one raw frame. Returns `None` when the frame was dropped
    /// (video frame-rate governor, or video offered to an audio-only
    /// profile).
    pub fn encode(&mut self, frame: &RawFrame) -> Option<MediaSample> {
        self.stats.frames_in += 1;
        match frame.kind {
            MediaKind::Video => {
                if !self.profile.has_video() || frame.time < self.next_video_accept {
                    self.stats.frames_dropped += 1;
                    return None;
                }
                self.next_video_accept = frame.time
                    + lod_media::TickDuration(
                        lod_media::TICKS_PER_SECOND / u64::from(self.profile.frame_rate()),
                    );
                let size = self.video_pattern[self.video_index % self.video_pattern.len()];
                self.video_index += 1;
                self.seed += 1;
                self.stats.frames_encoded += 1;
                self.stats.bytes_out += u64::from(size);
                Some(MediaSample::new(
                    VIDEO_STREAM,
                    frame.time.0,
                    synth_bytes(self.seed, size as usize),
                ))
            }
            MediaKind::Audio => {
                let bytes =
                    (self.profile.audio_bitrate() / 8) as f64 * frame.duration.as_secs_f64();
                let size = (bytes.round() as usize).max(1);
                self.seed += 1;
                self.stats.frames_encoded += 1;
                self.stats.bytes_out += size as u64;
                Some(MediaSample::new(
                    AUDIO_STREAM,
                    frame.time.0,
                    synth_bytes(self.seed, size),
                ))
            }
            _ => {
                self.stats.frames_dropped += 1;
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{AudioCaptureDevice, CaptureSource, VideoCaptureDevice};

    fn encode_seconds(profile: &str, secs: u64) -> (Encoder, Vec<MediaSample>) {
        let profile = BandwidthProfile::by_name(profile).unwrap();
        let mut enc = Encoder::new(profile);
        let mut cam = VideoCaptureDevice::new(640, 480, 30);
        let mut mic = AudioCaptureDevice::new(16_000, 100);
        let until = Ticks::from_secs(secs);
        let mut out = Vec::new();
        loop {
            let mut any = false;
            if let Some(f) = cam.next_frame(until) {
                any = true;
                out.extend(enc.encode(&f));
            }
            if let Some(f) = mic.next_frame(until) {
                any = true;
                out.extend(enc.encode(&f));
            }
            if !any {
                break;
            }
        }
        (enc, out)
    }

    #[test]
    fn output_rate_matches_profile() {
        let (enc, out) = encode_seconds("DSL/cable (256k)", 10);
        let bytes: u64 = out.iter().map(|s| s.data.len() as u64).sum();
        let rate = bytes as f64 * 8.0 / 10.0;
        let target = enc.profile().total_bitrate() as f64;
        let err = (rate - target).abs() / target;
        assert!(err < 0.10, "rate {rate} vs target {target}");
    }

    #[test]
    fn frame_rate_governor_drops_frames() {
        // Camera at 30 fps, 56k profile wants 7 fps.
        let (enc, _) = encode_seconds("56k modem", 5);
        let s = enc.stats();
        assert!(s.frames_dropped > s.frames_encoded);
    }

    #[test]
    fn audio_only_profile_rejects_video() {
        let (_, out) = encode_seconds("28.8k modem (audio only)", 2);
        assert!(out.iter().all(|s| s.stream == AUDIO_STREAM));
    }

    #[test]
    fn quality_increases_with_profile() {
        let q: Vec<f64> = BandwidthProfile::all()
            .into_iter()
            .filter(|p| p.has_video())
            .map(|p| Encoder::new(p).video_quality())
            .collect();
        for w in q.windows(2) {
            assert!(w[1] >= w[0], "quality not monotone: {q:?}");
        }
    }

    #[test]
    fn keyframes_visible_in_sizes() {
        let (_, out) = encode_seconds("LAN/T1 (1.5M)", 2);
        let video: Vec<usize> = out
            .iter()
            .filter(|s| s.stream == VIDEO_STREAM)
            .map(|s| s.data.len())
            .collect();
        let max = *video.iter().max().unwrap();
        let min = *video.iter().min().unwrap();
        assert!(max > min * 3, "keyframe structure missing: {max} vs {min}");
    }

    #[test]
    fn samples_timestamped_monotonically_per_stream() {
        let (_, out) = encode_seconds("dual ISDN (128k)", 3);
        for stream in [VIDEO_STREAM, AUDIO_STREAM] {
            let times: Vec<u64> = out
                .iter()
                .filter(|s| s.stream == stream)
                .map(|s| s.pres_time)
                .collect();
            let mut sorted = times.clone();
            sorted.sort_unstable();
            assert_eq!(times, sorted);
        }
    }
}
