//! The "ASF Indexer" utility.
//!
//! §2.1: "Script commands can be added to live streams through Windows
//! Media Encoder and added to stored files through either Windows Media
//! ASF Indexer or the command-line utilities." This module is that
//! post-production tool: add or strip script commands on a stored file and
//! rebuild its seek index.

use lod_asf::{AsfFile, ScriptCommand};

/// Post-production editing of stored ASF files.
#[derive(Debug, Default)]
pub struct Indexer;

impl Indexer {
    /// A new indexer.
    pub fn new() -> Self {
        Self
    }

    /// Adds script commands to a stored file (clamping times into the
    /// content duration) and rebuilds the index.
    pub fn add_script_commands(
        &self,
        file: &mut AsfFile,
        commands: impl IntoIterator<Item = ScriptCommand>,
    ) {
        let end = file.last_presentation_time();
        for mut c in commands {
            c.time = c.time.min(end);
            file.script.push(c);
        }
        self.reindex(file, lod_media::TICKS_PER_SECOND);
    }

    /// Removes every script command of the given kind. Returns how many
    /// were removed.
    pub fn strip_kind(&self, file: &mut AsfFile, kind: &str) -> usize {
        let before = file.script.len();
        let kept: Vec<ScriptCommand> = file
            .script
            .commands()
            .iter()
            .filter(|c| c.kind != kind)
            .cloned()
            .collect();
        file.script = kept.into_iter().collect();
        before - file.script.len()
    }

    /// Rebuilds the seek index with roughly one entry per `interval` ticks.
    pub fn reindex(&self, file: &mut AsfFile, interval: u64) {
        file.build_index(interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::publish::{evenly_spaced_deck, Publisher, VideoFileSpec};
    use lod_media::TickDuration;

    fn stored() -> AsfFile {
        let video = VideoFileSpec {
            path: "v.m4v".into(),
            duration: TickDuration::from_secs(30),
            video_bitrate: 200_000,
            audio_bitrate: 0,
        };
        let deck = evenly_spaced_deck("d", 3, 1_000, video.duration);
        Publisher::new(512).publish(&video, &deck, &[]).unwrap()
    }

    #[test]
    fn adds_commands_and_reindexes() {
        let mut f = stored();
        let before = f.script.len();
        Indexer::new().add_script_commands(
            &mut f,
            [
                ScriptCommand::new(50_000_000, "caption", "welcome"),
                ScriptCommand::new(u64::MAX, "caption", "clamped to end"),
            ],
        );
        assert_eq!(f.script.len(), before + 2);
        let last = f
            .script
            .commands()
            .iter()
            .filter(|c| c.kind == "caption")
            .map(|c| c.time)
            .max()
            .unwrap();
        assert!(last <= f.last_presentation_time());
        assert!(f.index.is_some());
    }

    #[test]
    fn strip_kind_removes_only_that_kind() {
        let mut f = stored();
        Indexer::new().add_script_commands(&mut f, [ScriptCommand::new(0, "caption", "x")]);
        let slides = f
            .script
            .commands()
            .iter()
            .filter(|c| c.kind == "slide")
            .count();
        let removed = Indexer::new().strip_kind(&mut f, "caption");
        assert_eq!(removed, 1);
        assert_eq!(
            f.script
                .commands()
                .iter()
                .filter(|c| c.kind == "slide")
                .count(),
            slides
        );
    }

    #[test]
    fn round_trips_after_editing() {
        let mut f = stored();
        Indexer::new().add_script_commands(&mut f, [ScriptCommand::new(1, "url", "http://x")]);
        let bytes = lod_asf::write_asf(&f).unwrap();
        assert_eq!(lod_asf::read_asf(&bytes).unwrap(), f);
    }
}
