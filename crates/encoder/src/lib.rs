//! The encoder and web publishing manager (§2.5, Fig. 5).
//!
//! "The configuration module provides the user with the facilities to
//! select the sources/devices … and to select how you want to output your
//! encoded content. User can either encode a media file (video/audio) or
//! use attached devices (video camera or microphone) … User can select the
//! profile that best describes the content you are encoding. This profile
//! means the different bandwidth will be configured."
//!
//! * [`profile`] — the bandwidth profiles ("the more high bit rate means
//!   the content will be encoded to a more high-resolution content").
//! * [`source`] — media file sources and synthetic capture devices.
//! * [`encode`] — the encoder: raw frames → rate-controlled encoded
//!   samples via the parametric codec models.
//! * [`publish`] — the Fig. 5 publisher: "User must fill the path of video
//!   file (MPEG4) and the directory of the presented slides. Our system
//!   could make the video and presented slides synchronized with the
//!   temporal script commands as an advanced stream format (ASF) file
//!   automatically."
//! * [`broadcast`] — live encoding sessions for real-time broadcast
//!   (HTTP port / URL configuration).
//! * [`indexer`] — the "ASF Indexer" utility: add script commands to a
//!   stored file and rebuild its seek index.

pub mod broadcast;
pub mod encode;
pub mod indexer;
pub mod profile;
pub mod publish;
pub mod source;

pub use broadcast::{BroadcastConfig, LiveEncoder};
pub use encode::{Encoder, EncoderStats, AUDIO_STREAM, SLIDE_STREAM, VIDEO_STREAM};
pub use indexer::Indexer;
pub use profile::BandwidthProfile;
pub use publish::{evenly_spaced_deck, Annotation, Publisher, Slide, SlideDeck, VideoFileSpec};
pub use source::{synth_bytes, AudioCaptureDevice, CaptureSource, RawFrame, VideoCaptureDevice};
