//! Bandwidth profiles.
//!
//! §2.5: "User can select the profile that best describes the content you
//! are encoding. This profile means the different bandwidth will be
//! configured. The more high bit rate means the content will be encoded to
//! a more high-resolution content." The table mirrors the stock Windows
//! Media Encoder profiles of the era (modem to broadband).

use lod_media::{CodecId, MediaKind};
use serde::{Deserialize, Serialize};

/// One encoder bandwidth profile.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BandwidthProfile {
    name: &'static str,
    total_bps: u64,
    audio_bps: u64,
    width: u32,
    height: u32,
    frame_rate: u32,
}

impl BandwidthProfile {
    /// All built-in profiles, slowest first.
    pub fn all() -> Vec<BandwidthProfile> {
        vec![
            BandwidthProfile {
                name: "28.8k modem (audio only)",
                total_bps: 22_000,
                audio_bps: 22_000,
                width: 0,
                height: 0,
                frame_rate: 0,
            },
            BandwidthProfile {
                name: "56k modem",
                total_bps: 37_000,
                audio_bps: 8_000,
                width: 160,
                height: 120,
                frame_rate: 7,
            },
            BandwidthProfile {
                name: "dual ISDN (128k)",
                total_bps: 100_000,
                audio_bps: 16_000,
                width: 240,
                height: 180,
                frame_rate: 15,
            },
            BandwidthProfile {
                name: "DSL/cable (256k)",
                total_bps: 225_000,
                audio_bps: 32_000,
                width: 320,
                height: 240,
                frame_rate: 15,
            },
            BandwidthProfile {
                name: "DSL/cable (768k)",
                total_bps: 700_000,
                audio_bps: 64_000,
                width: 320,
                height: 240,
                frame_rate: 30,
            },
            BandwidthProfile {
                name: "LAN/T1 (1.5M)",
                total_bps: 1_400_000,
                audio_bps: 96_000,
                width: 640,
                height: 480,
                frame_rate: 30,
            },
        ]
    }

    /// The fastest profile whose total bitrate fits `available_bps`
    /// (falls back to the slowest profile when nothing fits).
    pub fn for_bandwidth(available_bps: u64) -> BandwidthProfile {
        Self::all()
            .into_iter()
            .rev()
            .find(|p| p.total_bps <= available_bps)
            .unwrap_or_else(|| Self::all().remove(0))
    }

    /// Profile by (exact) name.
    pub fn by_name(name: &str) -> Option<BandwidthProfile> {
        Self::all().into_iter().find(|p| p.name == name)
    }

    /// The next rung *down* the ladder: the fastest profile strictly
    /// slower than `total_bps`, or `None` when already at (or below) the
    /// slowest rung. This is the degradation step: a congested server
    /// re-paces a session at `next_below` of its current rate.
    pub fn next_below(total_bps: u64) -> Option<BandwidthProfile> {
        Self::all()
            .into_iter()
            .rev()
            .find(|p| p.total_bps < total_bps)
    }

    /// The next rung *up* the ladder: the slowest profile strictly
    /// faster than `total_bps`, or `None` when already at (or above) the
    /// fastest rung. The recovery step after a hold-down.
    pub fn next_above(total_bps: u64) -> Option<BandwidthProfile> {
        Self::all().into_iter().find(|p| p.total_bps > total_bps)
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Total target bitrate (audio + video), bit/s.
    pub fn total_bitrate(&self) -> u64 {
        self.total_bps
    }

    /// Audio share of the bitrate, bit/s.
    pub fn audio_bitrate(&self) -> u64 {
        self.audio_bps
    }

    /// Video share of the bitrate, bit/s (0 for audio-only profiles).
    pub fn video_bitrate(&self) -> u64 {
        self.total_bps - self.audio_bps
    }

    /// Encoded frame size `(width, height)`; `(0, 0)` when audio-only.
    pub fn resolution(&self) -> (u32, u32) {
        (self.width, self.height)
    }

    /// Video frame rate in frames/second (0 when audio-only).
    pub fn frame_rate(&self) -> u32 {
        self.frame_rate
    }

    /// Whether the profile carries video at all.
    pub fn has_video(&self) -> bool {
        self.width > 0 && self.frame_rate > 0
    }

    /// The codec this profile uses for `kind`, chosen from the built-in
    /// registry by quality at the profile's per-kind bitrate.
    pub fn codec_for(&self, kind: MediaKind) -> CodecId {
        let registry = lod_media::CodecRegistry::builtin();
        let rate = match kind {
            MediaKind::Audio => self.audio_bitrate(),
            _ => self.video_bitrate(),
        };
        registry
            .best_for(kind, rate)
            .map(|s| s.id())
            .unwrap_or(CodecId::Uncompressed)
    }

    /// Raw (uncompressed) bytes of one video frame at this resolution
    /// (YUV 4:2:0: 1.5 bytes per pixel).
    pub fn raw_frame_bytes(&self) -> u64 {
        u64::from(self.width) * u64::from(self.height) * 3 / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_ordered_and_monotone() {
        let all = BandwidthProfile::all();
        for w in all.windows(2) {
            assert!(w[0].total_bitrate() < w[1].total_bitrate());
            // "more high bit rate means … more high-resolution content"
            assert!(w[0].resolution().0 <= w[1].resolution().0);
        }
    }

    #[test]
    fn selection_by_bandwidth() {
        assert_eq!(BandwidthProfile::for_bandwidth(56_000).name(), "56k modem");
        assert_eq!(
            BandwidthProfile::for_bandwidth(10_000_000).name(),
            "LAN/T1 (1.5M)"
        );
        // Below everything: fall back to slowest.
        assert_eq!(
            BandwidthProfile::for_bandwidth(1_000).name(),
            "28.8k modem (audio only)"
        );
    }

    #[test]
    fn audio_only_profile_has_no_video() {
        let p = BandwidthProfile::by_name("28.8k modem (audio only)").unwrap();
        assert!(!p.has_video());
        assert_eq!(p.video_bitrate(), 0);
    }

    #[test]
    fn codec_choice_depends_on_rate() {
        let slow = BandwidthProfile::by_name("56k modem").unwrap();
        let fast = BandwidthProfile::by_name("LAN/T1 (1.5M)").unwrap();
        // Low-rate audio prefers the speech codec; high-rate prefers WMA.
        assert_eq!(slow.codec_for(MediaKind::Audio), CodecId::SiproAcelp);
        assert_eq!(fast.codec_for(MediaKind::Audio), CodecId::WindowsMediaAudio);
    }

    #[test]
    fn raw_frame_bytes_yuv420() {
        let p = BandwidthProfile::by_name("DSL/cable (256k)").unwrap();
        assert_eq!(p.raw_frame_bytes(), 320 * 240 * 3 / 2);
    }

    #[test]
    fn ladder_walks_down_and_up() {
        let all = BandwidthProfile::all();
        // From every rung, next_below is the previous rung.
        for w in all.windows(2) {
            assert_eq!(
                BandwidthProfile::next_below(w[1].total_bitrate()).unwrap(),
                w[0]
            );
            assert_eq!(
                BandwidthProfile::next_above(w[0].total_bitrate()).unwrap(),
                w[1]
            );
        }
        // Off the ends of the ladder.
        assert_eq!(BandwidthProfile::next_below(22_000), None);
        assert_eq!(BandwidthProfile::next_above(1_400_000), None);
        // Rates between rungs snap to the neighbouring rungs.
        assert_eq!(
            BandwidthProfile::next_below(300_000).unwrap().name(),
            "DSL/cable (256k)"
        );
        assert_eq!(
            BandwidthProfile::next_above(300_000).unwrap().name(),
            "DSL/cable (768k)"
        );
    }

    #[test]
    fn budget_split_consistent() {
        for p in BandwidthProfile::all() {
            assert_eq!(p.audio_bitrate() + p.video_bitrate(), p.total_bitrate());
        }
    }
}
