//! The web publishing manager (Fig. 5).
//!
//! "User must fill the path of video file (MPEG4) and the directory of the
//! presented slides. Our system could make the video and presented slides
//! synchronized with the temporal script commands as an advanced stream
//! format (ASF) file automatically."

use lod_asf::{
    AsfFile, FileProperties, MediaSample, Packetizer, ScriptCommand, ScriptCommandList, StreamKind,
    StreamProperties,
};
use lod_media::{CodecId, CodecRegistry, TickDuration, Ticks};
use serde::{Deserialize, Serialize};

use crate::encode::{AUDIO_STREAM, SLIDE_STREAM, VIDEO_STREAM};
use crate::source::synth_bytes;

/// The "path of video file (MPEG4)" form field, plus what the file
/// contains (since no real file exists, its properties are declared).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VideoFileSpec {
    /// Pseudo-path, e.g. `lectures/petri-nets.m4v`.
    pub path: String,
    /// Content duration.
    pub duration: TickDuration,
    /// Encoded video bitrate in bit/s.
    pub video_bitrate: u64,
    /// Encoded audio bitrate in bit/s (0 = silent video).
    pub audio_bitrate: u64,
}

/// One slide image in the deck directory.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Slide {
    /// File name within the deck directory, e.g. `slide_03.png`.
    pub file: String,
    /// Image size in bytes.
    pub bytes: u64,
    /// When the presenter showed this slide.
    pub show_at: Ticks,
}

/// The "directory of the presented slides" form field.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlideDeck {
    /// Pseudo-directory, e.g. `lectures/petri-nets-slides/`.
    pub dir: String,
    /// The slides with their change times.
    pub slides: Vec<Slide>,
}

impl SlideDeck {
    /// Full URI of a slide.
    pub fn uri(&self, slide: &Slide) -> String {
        format!("{}/{}", self.dir.trim_end_matches('/'), slide.file)
    }
}

/// A presenter annotation to overlay at a point in time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Annotation {
    /// When the annotation appears.
    pub at: Ticks,
    /// The annotation text.
    pub text: String,
}

/// The publisher: merges video, slides and annotations into one ASF file.
#[derive(Debug)]
pub struct Publisher {
    packet_size: u32,
    preroll: TickDuration,
}

impl Publisher {
    /// A publisher emitting packets of `packet_size` bytes.
    pub fn new(packet_size: u32) -> Self {
        Self {
            packet_size,
            preroll: TickDuration::from_secs(2),
        }
    }

    /// Overrides the client preroll recorded in the file.
    pub fn preroll(&mut self, preroll: TickDuration) -> &mut Self {
        self.preroll = preroll;
        self
    }

    /// Produces the orchestrated ASF file (Fig. 5's "publish" button).
    ///
    /// # Errors
    ///
    /// [`lod_asf::AsfError::PacketSizeTooSmall`] for absurd packet sizes.
    pub fn publish(
        &self,
        video: &VideoFileSpec,
        deck: &SlideDeck,
        annotations: &[Annotation],
    ) -> Result<AsfFile, lod_asf::AsfError> {
        let registry = CodecRegistry::builtin();
        let mpeg4 = registry
            .get(CodecId::Mpeg4Video)
            .expect("registry has MPEG-4");
        let mut pk = Packetizer::new(self.packet_size)?;
        let mut samples: Vec<MediaSample> = Vec::new();
        let mut seed = video.duration.0 ^ 0x5EED;

        // Video track: MPEG-4 frames for the whole duration.
        let frame_count =
            (video.duration.as_secs_f64() * f64::from(mpeg4.frame_rate())).floor() as u32;
        let frame_gap = lod_media::TICKS_PER_SECOND / u64::from(mpeg4.frame_rate());
        for (i, size) in mpeg4
            .frame_sizes(frame_count, video.video_bitrate)
            .into_iter()
            .enumerate()
        {
            seed += 1;
            samples.push(MediaSample::new(
                VIDEO_STREAM,
                i as u64 * frame_gap,
                synth_bytes(seed, size as usize),
            ));
        }

        // Audio track: 100 ms blocks at the declared rate.
        if video.audio_bitrate > 0 {
            let block = TickDuration::from_millis(100);
            let blocks = video.duration.0 / block.0;
            let bytes = (video.audio_bitrate / 8 / 10).max(1) as usize;
            for i in 0..blocks {
                seed += 1;
                samples.push(MediaSample::new(
                    AUDIO_STREAM,
                    i * block.0,
                    synth_bytes(seed, bytes),
                ));
            }
        }

        // Slide track + script commands.
        let mut script = ScriptCommandList::new();
        let mut slides = deck.slides.clone();
        slides.sort_by_key(|s| s.show_at);
        for s in &slides {
            seed += 1;
            let t = s.show_at.0.min(video.duration.0);
            samples.push(MediaSample::new(
                SLIDE_STREAM,
                t,
                synth_bytes(seed, s.bytes as usize),
            ));
            script.push(ScriptCommand::new(t, "slide", deck.uri(s)));
        }
        for a in annotations {
            script.push(ScriptCommand::new(
                a.at.0.min(video.duration.0),
                "annotation",
                a.text.clone(),
            ));
        }

        // Interleave by presentation time so packets come out in order.
        samples.sort_by_key(|s| (s.pres_time, s.stream));
        for s in &samples {
            pk.push(s);
        }

        let slide_bitrate: u64 = {
            let total: u64 = slides.iter().map(|s| s.bytes * 8).sum();
            let secs = video.duration.as_secs_f64().max(1.0);
            (total as f64 / secs) as u64
        };
        let mut file = AsfFile {
            props: FileProperties {
                file_id: seed,
                created: 0,
                packet_size: self.packet_size,
                play_duration: video.duration.0,
                preroll: self.preroll.0,
                broadcast: false,
                max_bitrate: (video.video_bitrate + video.audio_bitrate + slide_bitrate) as u32,
            },
            streams: Self::streams(video, slide_bitrate),
            script,
            drm: None,
            packets: pk.finish(),
            index: None,
        };
        file.build_index(lod_media::TICKS_PER_SECOND);
        Ok(file)
    }

    fn streams(video: &VideoFileSpec, slide_bitrate: u64) -> Vec<StreamProperties> {
        let mut streams = vec![StreamProperties {
            number: VIDEO_STREAM,
            kind: StreamKind::Video,
            codec: 4, // MPEG-4
            bitrate: video.video_bitrate as u32,
            name: video.path.clone(),
        }];
        if video.audio_bitrate > 0 {
            streams.push(StreamProperties {
                number: AUDIO_STREAM,
                kind: StreamKind::Audio,
                codec: 1,
                bitrate: video.audio_bitrate as u32,
                name: format!("{} (audio)", video.path),
            });
        }
        streams.push(StreamProperties {
            number: SLIDE_STREAM,
            kind: StreamKind::Image,
            codec: 0,
            bitrate: slide_bitrate as u32,
            name: "slides".into(),
        });
        streams
    }
}

/// Convenience: a deck of `n` equally-spaced slides of `bytes` each over
/// `duration` (what a real lecture roughly looks like).
pub fn evenly_spaced_deck(dir: &str, n: usize, bytes: u64, duration: TickDuration) -> SlideDeck {
    let gap = if n > 0 { duration.0 / n as u64 } else { 0 };
    SlideDeck {
        dir: dir.to_string(),
        slides: (0..n)
            .map(|i| Slide {
                file: format!("slide_{i:02}.png"),
                bytes,
                show_at: Ticks(i as u64 * gap),
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lecture() -> (VideoFileSpec, SlideDeck, Vec<Annotation>) {
        let video = VideoFileSpec {
            path: "lectures/petri.m4v".into(),
            duration: TickDuration::from_secs(60),
            video_bitrate: 300_000,
            audio_bitrate: 32_000,
        };
        let deck = evenly_spaced_deck("lectures/petri-slides", 6, 40_000, video.duration);
        let ann = vec![
            Annotation {
                at: Ticks::from_secs(15),
                text: "note the marking".into(),
            },
            Annotation {
                at: Ticks::from_secs(45),
                text: "homework 3".into(),
            },
        ];
        (video, deck, ann)
    }

    #[test]
    fn publishes_synchronized_asf() {
        let (video, deck, ann) = lecture();
        let file = Publisher::new(1_400).publish(&video, &deck, &ann).unwrap();
        // Three streams declared.
        assert_eq!(file.streams.len(), 3);
        // One script command per slide + per annotation.
        assert_eq!(file.script.len(), 6 + 2);
        // Slide commands carry the full URI.
        let first = file
            .script
            .commands()
            .iter()
            .find(|c| c.kind == "slide")
            .unwrap();
        assert!(first.param.starts_with("lectures/petri-slides/"));
        // Index exists and spans the duration.
        assert!(file.index.as_ref().unwrap().len() >= 59);
        assert_eq!(file.props.play_duration, 600_000_000);
    }

    #[test]
    fn wire_round_trip_of_published_file() {
        let (video, deck, ann) = lecture();
        let file = Publisher::new(1_400).publish(&video, &deck, &ann).unwrap();
        let bytes = lod_asf::write_asf(&file).unwrap();
        let back = lod_asf::read_asf(&bytes).unwrap();
        assert_eq!(back, file);
    }

    #[test]
    fn published_bitrate_close_to_declared() {
        let (video, deck, _) = lecture();
        let file = Publisher::new(1_400).publish(&video, &deck, &[]).unwrap();
        let media_bytes: u64 = file.packets.iter().map(|p| p.media_bytes() as u64).sum();
        let rate = media_bytes as f64 * 8.0 / 60.0;
        let declared = (video.video_bitrate + video.audio_bitrate) as f64;
        // Slides add a little on top of A/V.
        assert!(rate > declared * 0.95, "rate {rate}");
        assert!(rate < declared * 1.30, "rate {rate}");
    }

    #[test]
    fn slide_commands_sorted_even_if_deck_is_not() {
        let video = VideoFileSpec {
            path: "v.m4v".into(),
            duration: TickDuration::from_secs(10),
            video_bitrate: 100_000,
            audio_bitrate: 0,
        };
        let deck = SlideDeck {
            dir: "d".into(),
            slides: vec![
                Slide {
                    file: "b.png".into(),
                    bytes: 10,
                    show_at: Ticks::from_secs(5),
                },
                Slide {
                    file: "a.png".into(),
                    bytes: 10,
                    show_at: Ticks::from_secs(1),
                },
            ],
        };
        let file = Publisher::new(256).publish(&video, &deck, &[]).unwrap();
        let times: Vec<u64> = file.script.commands().iter().map(|c| c.time).collect();
        assert_eq!(times, [10_000_000, 50_000_000]);
    }

    #[test]
    fn slide_after_video_end_clamped() {
        let video = VideoFileSpec {
            path: "v.m4v".into(),
            duration: TickDuration::from_secs(5),
            video_bitrate: 100_000,
            audio_bitrate: 0,
        };
        let deck = SlideDeck {
            dir: "d".into(),
            slides: vec![Slide {
                file: "late.png".into(),
                bytes: 10,
                show_at: Ticks::from_secs(99),
            }],
        };
        let file = Publisher::new(256).publish(&video, &deck, &[]).unwrap();
        assert_eq!(file.script.commands()[0].time, 50_000_000);
    }

    #[test]
    fn silent_video_has_two_streams() {
        let video = VideoFileSpec {
            path: "v.m4v".into(),
            duration: TickDuration::from_secs(5),
            video_bitrate: 100_000,
            audio_bitrate: 0,
        };
        let deck = evenly_spaced_deck("d", 2, 10, video.duration);
        let file = Publisher::new(256).publish(&video, &deck, &[]).unwrap();
        assert_eq!(file.streams.len(), 2);
        assert!(file.stream(AUDIO_STREAM).is_none());
    }
}
