//! Media sources: synthetic capture devices.
//!
//! §2.5: "User can either encode a media file (video/audio) or use attached
//! devices (video camera or microphone) to produce the orchestrated media
//! contents." No camera exists here, so devices synthesize deterministic
//! frame descriptors: correct timing, correct raw sizes, reproducible
//! pseudo-content bytes (seeded xorshift), which is everything the encoder
//! and packetizer downstream actually consume.

use lod_media::{MediaKind, TickDuration, Ticks, TICKS_PER_SECOND};

/// One raw (uncompressed) frame or audio block from a source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawFrame {
    /// Capture timestamp.
    pub time: Ticks,
    /// Time this frame covers (the source's frame/block interval).
    pub duration: TickDuration,
    /// Audio or video.
    pub kind: MediaKind,
    /// Uncompressed size in bytes.
    pub raw_bytes: u64,
}

/// A source of raw frames.
///
/// Implementors produce frames in non-decreasing time order; `None` means
/// the source is exhausted (capture devices never exhaust on their own —
/// stop pulling to stop them).
pub trait CaptureSource {
    /// Media kind this source produces.
    fn kind(&self) -> MediaKind;

    /// Produces the next frame at or after `until` is reached; returns
    /// `None` if the next frame would be *after* `until`.
    fn next_frame(&mut self, until: Ticks) -> Option<RawFrame>;
}

/// A synthetic video camera.
#[derive(Debug, Clone)]
pub struct VideoCaptureDevice {
    frame_interval: TickDuration,
    raw_frame_bytes: u64,
    next_time: Ticks,
}

impl VideoCaptureDevice {
    /// A camera producing `frame_rate` frames/s of `width`×`height` YUV
    /// 4:2:0 video.
    ///
    /// # Panics
    ///
    /// Panics if `frame_rate` is zero.
    pub fn new(width: u32, height: u32, frame_rate: u32) -> Self {
        assert!(frame_rate > 0, "frame rate must be positive");
        Self {
            frame_interval: TickDuration(TICKS_PER_SECOND / u64::from(frame_rate)),
            raw_frame_bytes: u64::from(width) * u64::from(height) * 3 / 2,
            next_time: Ticks::ZERO,
        }
    }
}

impl CaptureSource for VideoCaptureDevice {
    fn kind(&self) -> MediaKind {
        MediaKind::Video
    }

    fn next_frame(&mut self, until: Ticks) -> Option<RawFrame> {
        if self.next_time > until {
            return None;
        }
        let f = RawFrame {
            time: self.next_time,
            duration: self.frame_interval,
            kind: MediaKind::Video,
            raw_bytes: self.raw_frame_bytes,
        };
        self.next_time += self.frame_interval;
        Some(f)
    }
}

/// A synthetic microphone.
#[derive(Debug, Clone)]
pub struct AudioCaptureDevice {
    block_interval: TickDuration,
    block_bytes: u64,
    next_time: Ticks,
}

impl AudioCaptureDevice {
    /// A microphone producing PCM blocks of `block_ms` milliseconds at
    /// `sample_rate` Hz, 16-bit mono.
    ///
    /// # Panics
    ///
    /// Panics if `block_ms` is zero.
    pub fn new(sample_rate: u32, block_ms: u64) -> Self {
        assert!(block_ms > 0, "block length must be positive");
        Self {
            block_interval: TickDuration::from_millis(block_ms),
            block_bytes: u64::from(sample_rate) * 2 * block_ms / 1000,
            next_time: Ticks::ZERO,
        }
    }
}

impl CaptureSource for AudioCaptureDevice {
    fn kind(&self) -> MediaKind {
        MediaKind::Audio
    }

    fn next_frame(&mut self, until: Ticks) -> Option<RawFrame> {
        if self.next_time > until {
            return None;
        }
        let f = RawFrame {
            time: self.next_time,
            duration: self.block_interval,
            kind: MediaKind::Audio,
            raw_bytes: self.block_bytes,
        };
        self.next_time += self.block_interval;
        Some(f)
    }
}

/// Deterministic pseudo-content: `len` bytes derived from `seed` (used to
/// fill encoded samples so DRM and packetization operate on real data).
pub fn synth_bytes(seed: u64, len: usize) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 24) as u8
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn camera_produces_at_frame_rate() {
        let mut cam = VideoCaptureDevice::new(320, 240, 25);
        let mut frames = Vec::new();
        while let Some(f) = cam.next_frame(Ticks::from_secs(1)) {
            frames.push(f);
        }
        // 25 fps over [0, 1s] inclusive of t=1s boundary frame.
        assert_eq!(frames.len(), 26);
        assert_eq!(frames[0].time, Ticks::ZERO);
        assert_eq!(frames[1].time.0 - frames[0].time.0, 400_000);
        assert_eq!(frames[0].raw_bytes, 320 * 240 * 3 / 2);
    }

    #[test]
    fn microphone_blocks() {
        let mut mic = AudioCaptureDevice::new(16_000, 100);
        let f = mic.next_frame(Ticks::from_secs(1)).unwrap();
        // 100 ms at 16 kHz 16-bit mono = 3200 bytes.
        assert_eq!(f.raw_bytes, 3_200);
        assert_eq!(mic.kind(), MediaKind::Audio);
    }

    #[test]
    fn until_gates_production() {
        let mut cam = VideoCaptureDevice::new(160, 120, 10);
        assert!(cam.next_frame(Ticks::ZERO).is_some());
        // Next frame is at 100 ms; not yet due at 50 ms.
        assert!(cam.next_frame(Ticks::from_millis(50)).is_none());
        assert!(cam.next_frame(Ticks::from_millis(100)).is_some());
    }

    #[test]
    fn synth_bytes_deterministic() {
        assert_eq!(synth_bytes(1, 32), synth_bytes(1, 32));
        assert_ne!(synth_bytes(1, 32), synth_bytes(2, 32));
        assert_eq!(synth_bytes(7, 0).len(), 0);
    }
}
