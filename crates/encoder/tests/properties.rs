//! Property-based tests for the encoder and publisher.

use lod_encoder::{
    Annotation, AudioCaptureDevice, BandwidthProfile, CaptureSource, Encoder, Publisher, Slide,
    SlideDeck, VideoCaptureDevice, VideoFileSpec,
};
use lod_media::{TickDuration, Ticks};
use proptest::prelude::*;

fn arb_profile() -> impl Strategy<Value = BandwidthProfile> {
    (0..BandwidthProfile::all().len()).prop_map(|i| BandwidthProfile::all().swap_remove(i))
}

proptest! {
    // The capture loop is expensive; a handful of cases per profile is
    // plenty (the profile space itself has only six members).
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every profile's encoder holds its total bitrate within 12% over a
    /// 10-second live capture.
    #[test]
    fn encoder_rate_control_holds(profile in arb_profile()) {
        let mut enc = Encoder::new(profile.clone());
        let mut cam = VideoCaptureDevice::new(640, 480, 30);
        let mut mic = AudioCaptureDevice::new(16_000, 100);
        let until = Ticks::from_secs(10);
        let mut bytes = 0u64;
        loop {
            let mut any = false;
            if let Some(f) = cam.next_frame(until) {
                any = true;
                if let Some(s) = enc.encode(&f) {
                    bytes += s.data.len() as u64;
                }
            }
            if let Some(f) = mic.next_frame(until) {
                any = true;
                if let Some(s) = enc.encode(&f) {
                    bytes += s.data.len() as u64;
                }
            }
            if !any {
                break;
            }
        }
        let rate = bytes as f64 * 8.0 / 10.0;
        let target = profile.total_bitrate() as f64;
        prop_assert!(
            (rate - target).abs() / target < 0.12,
            "profile {} rate {rate} vs {target}",
            profile.name()
        );
    }
}

proptest! {
    /// The publisher emits exactly one slide command per slide and one
    /// annotation command per annotation, in time order, for arbitrary
    /// decks.
    #[test]
    fn publisher_script_is_complete_and_sorted(
        slide_times in proptest::collection::vec(0u64..300, 0..12),
        ann_times in proptest::collection::vec(0u64..300, 0..6),
        duration_secs in 10u64..300,
    ) {
        let video = VideoFileSpec {
            path: "v.m4v".into(),
            duration: TickDuration::from_secs(duration_secs),
            video_bitrate: 100_000,
            audio_bitrate: 0,
        };
        let deck = SlideDeck {
            dir: "d".into(),
            slides: slide_times
                .iter()
                .enumerate()
                .map(|(i, &t)| Slide {
                    file: format!("s{i}.png"),
                    bytes: 100,
                    show_at: Ticks::from_secs(t),
                })
                .collect(),
        };
        let annotations: Vec<Annotation> = ann_times
            .iter()
            .map(|&t| Annotation {
                at: Ticks::from_secs(t),
                text: format!("a{t}"),
            })
            .collect();
        let file = Publisher::new(512).publish(&video, &deck, &annotations).unwrap();
        let slides = file.script.commands().iter().filter(|c| c.kind == "slide").count();
        let anns = file.script.commands().iter().filter(|c| c.kind == "annotation").count();
        prop_assert_eq!(slides, deck.slides.len());
        prop_assert_eq!(anns, annotations.len());
        let times: Vec<u64> = file.script.commands().iter().map(|c| c.time).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        prop_assert_eq!(times, sorted);
        // Everything clamps inside the content.
        prop_assert!(file
            .script
            .commands()
            .iter()
            .all(|c| c.time <= video.duration.0));
    }

    /// Published files always round-trip the wire exactly.
    #[test]
    fn published_files_round_trip(
        duration_secs in 5u64..20,
        video_bitrate in 50_000u64..200_000,
        packet_size in 128u32..4_096,
    ) {
        let video = VideoFileSpec {
            path: "v.m4v".into(),
            duration: TickDuration::from_secs(duration_secs),
            video_bitrate,
            audio_bitrate: 16_000,
        };
        let deck = lod_encoder::evenly_spaced_deck("d", 3, 1_000, video.duration);
        let file = Publisher::new(packet_size).publish(&video, &deck, &[]).unwrap();
        let bytes = lod_asf::write_asf(&file).unwrap();
        prop_assert_eq!(lod_asf::read_asf(&bytes).unwrap(), file);
    }
}
