//! A pausable, seekable media clock.
//!
//! Maps *wall* time (the simulation clock) to *presentation* time. The
//! player and the interaction transitions of the extended timed Petri net
//! both manipulate this mapping: pause freezes presentation time, resume
//! re-anchors it, seek jumps it.

use serde::{Deserialize, Serialize};

use crate::time::{TickDuration, Ticks};

/// State of a [`MediaClock`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClockState {
    /// Presentation time advances 1:1 with wall time.
    Running,
    /// Presentation time is frozen.
    Paused,
}

/// A clock translating wall instants into presentation instants.
///
/// # Example
///
/// ```
/// use lod_media::{MediaClock, Ticks, TickDuration};
///
/// let mut clock = MediaClock::start_at(Ticks::from_secs(100));
/// // 5 wall-seconds later, 5 presentation-seconds have elapsed.
/// assert_eq!(clock.media_time(Ticks::from_secs(105)), Ticks::from_secs(5));
/// clock.pause(Ticks::from_secs(105));
/// clock.resume(Ticks::from_secs(110));
/// // The 5-second pause does not advance presentation time.
/// assert_eq!(clock.media_time(Ticks::from_secs(112)), Ticks::from_secs(7));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MediaClock {
    state: ClockState,
    /// Wall instant at which the current running segment started.
    anchor_wall: Ticks,
    /// Presentation time at `anchor_wall` (or the frozen time when paused).
    anchor_media: Ticks,
}

impl MediaClock {
    /// A running clock whose presentation time is zero at `wall_now`.
    pub fn start_at(wall_now: Ticks) -> Self {
        Self {
            state: ClockState::Running,
            anchor_wall: wall_now,
            anchor_media: Ticks::ZERO,
        }
    }

    /// Current state.
    pub fn state(&self) -> ClockState {
        self.state
    }

    /// Whether the clock is running.
    pub fn is_running(&self) -> bool {
        self.state == ClockState::Running
    }

    /// Presentation time corresponding to the wall instant `wall_now`.
    ///
    /// Wall instants before the last anchor clamp to the anchor (the clock
    /// never runs backwards).
    pub fn media_time(&self, wall_now: Ticks) -> Ticks {
        match self.state {
            ClockState::Paused => self.anchor_media,
            ClockState::Running => self.anchor_media + wall_now.since(self.anchor_wall),
        }
    }

    /// Freezes presentation time as of `wall_now`. Idempotent.
    pub fn pause(&mut self, wall_now: Ticks) {
        if self.state == ClockState::Running {
            self.anchor_media = self.media_time(wall_now);
            self.state = ClockState::Paused;
        }
    }

    /// Resumes from a pause as of `wall_now`. Idempotent.
    pub fn resume(&mut self, wall_now: Ticks) {
        if self.state == ClockState::Paused {
            self.anchor_wall = wall_now;
            self.state = ClockState::Running;
        }
    }

    /// Jumps presentation time to `target` as of `wall_now`, preserving the
    /// running/paused state.
    pub fn seek(&mut self, wall_now: Ticks, target: Ticks) {
        self.anchor_wall = wall_now;
        self.anchor_media = target;
    }

    /// Skips forward by `amount` as of `wall_now`.
    pub fn skip(&mut self, wall_now: Ticks, amount: TickDuration) {
        let target = self.media_time(wall_now) + amount;
        self.seek(wall_now, target);
    }

    /// Jumps backward by `amount` (saturating at zero) as of `wall_now` —
    /// the "replay the last bit" interaction.
    pub fn rewind(&mut self, wall_now: Ticks, amount: TickDuration) {
        let target = self.media_time(wall_now) - amount;
        self.seek(wall_now, target);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: u64) -> Ticks {
        Ticks::from_secs(v)
    }

    #[test]
    fn runs_one_to_one() {
        let c = MediaClock::start_at(s(10));
        assert_eq!(c.media_time(s(10)), Ticks::ZERO);
        assert_eq!(c.media_time(s(25)), s(15));
    }

    #[test]
    fn pause_freezes() {
        let mut c = MediaClock::start_at(s(0));
        c.pause(s(4));
        assert_eq!(c.media_time(s(100)), s(4));
        assert!(!c.is_running());
    }

    #[test]
    fn pause_resume_excludes_gap() {
        let mut c = MediaClock::start_at(s(0));
        c.pause(s(4));
        c.resume(s(10));
        assert_eq!(c.media_time(s(11)), s(5));
    }

    #[test]
    fn double_pause_is_idempotent() {
        let mut c = MediaClock::start_at(s(0));
        c.pause(s(3));
        c.pause(s(9));
        c.resume(s(10));
        assert_eq!(c.media_time(s(10)), s(3));
    }

    #[test]
    fn double_resume_is_idempotent() {
        let mut c = MediaClock::start_at(s(0));
        c.pause(s(3));
        c.resume(s(5));
        c.resume(s(7));
        assert_eq!(c.media_time(s(8)), s(6));
    }

    #[test]
    fn seek_while_running() {
        let mut c = MediaClock::start_at(s(0));
        c.seek(s(10), s(100));
        assert_eq!(c.media_time(s(12)), s(102));
        assert!(c.is_running());
    }

    #[test]
    fn seek_while_paused_stays_paused() {
        let mut c = MediaClock::start_at(s(0));
        c.pause(s(5));
        c.seek(s(6), s(60));
        assert_eq!(c.media_time(s(100)), s(60));
        assert!(!c.is_running());
    }

    #[test]
    fn skip_and_rewind() {
        let mut c = MediaClock::start_at(s(0));
        c.skip(s(10), TickDuration::from_secs(30));
        assert_eq!(c.media_time(s(10)), s(40));
        c.rewind(s(10), TickDuration::from_secs(100));
        assert_eq!(c.media_time(s(10)), Ticks::ZERO);
    }

    #[test]
    fn clock_never_runs_backwards_before_anchor() {
        let c = MediaClock::start_at(s(10));
        // Asking for a wall time before the anchor clamps.
        assert_eq!(c.media_time(s(5)), Ticks::ZERO);
    }
}
