//! Parametric codec models for the codecs the paper names (§2.1).
//!
//! ASF "uses compression/decompression algorithms (codecs) to compress
//! audio and/or video media … to fit on a network's available bandwidth".
//! For this reproduction a codec is a deterministic function from
//! (raw media, target bitrate) to (encoded size, quality score): enough to
//! drive packetization, profiles and the bandwidth experiments, with no
//! signal processing.
//!
//! Quality follows a saturating rate–quality curve
//! `q(r) = 1 - exp(-r / r_half)` scaled by a codec efficiency factor, a
//! standard shape for rate–distortion behaviour.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::object::MediaKind;

/// The codecs named in §2.1 of the paper, plus uncompressed passthrough.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum CodecId {
    /// Windows Media Audio.
    WindowsMediaAudio,
    /// Sipro Labs ACELP speech codec.
    SiproAcelp,
    /// MPEG layer-3 audio.
    Mp3,
    /// MPEG-4 video (what the publisher in Fig. 5 ingests).
    Mpeg4Video,
    /// Duck TrueMotion RT video.
    TrueMotionRt,
    /// Iterated Systems ClearVideo.
    ClearVideo,
    /// No compression (mandatory-supported by ASF authoring).
    Uncompressed,
}

impl CodecId {
    /// All built-in codec ids.
    pub fn all() -> [CodecId; 7] {
        [
            CodecId::WindowsMediaAudio,
            CodecId::SiproAcelp,
            CodecId::Mp3,
            CodecId::Mpeg4Video,
            CodecId::TrueMotionRt,
            CodecId::ClearVideo,
            CodecId::Uncompressed,
        ]
    }
}

impl fmt::Display for CodecId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CodecId::WindowsMediaAudio => "Windows Media Audio",
            CodecId::SiproAcelp => "Sipro Labs ACELP",
            CodecId::Mp3 => "MPEG-3 Audio",
            CodecId::Mpeg4Video => "MPEG-4 Video",
            CodecId::TrueMotionRt => "TrueMotion RT",
            CodecId::ClearVideo => "ClearVideo",
            CodecId::Uncompressed => "Uncompressed",
        };
        f.write_str(s)
    }
}

/// Parametric description of one codec.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CodecSpec {
    id: CodecId,
    /// Which continuous media kind this codec encodes.
    kind: MediaKind,
    /// Bitrate (bit/s) at which quality reaches ~63% of this codec's ceiling.
    half_rate_bps: u64,
    /// Quality ceiling in (0, 1]; newer codecs are closer to 1.
    efficiency: f64,
    /// Minimum usable bitrate in bit/s.
    min_bitrate_bps: u64,
    /// Frames (or audio blocks) per second the codec emits.
    frame_rate: u32,
    /// Every `keyframe_interval`-th frame is a keyframe costing
    /// `keyframe_weight`× a delta frame.
    keyframe_interval: u32,
    keyframe_weight: f64,
}

impl CodecSpec {
    /// Codec identifier.
    pub fn id(&self) -> CodecId {
        self.id
    }

    /// Media kind the codec accepts.
    pub fn kind(&self) -> MediaKind {
        self.kind
    }

    /// Minimum usable bitrate in bit/s.
    pub fn min_bitrate_bps(&self) -> u64 {
        self.min_bitrate_bps
    }

    /// Frame (or block) rate in Hz.
    pub fn frame_rate(&self) -> u32 {
        self.frame_rate
    }

    /// Keyframe period in frames (1 = every frame is a keyframe).
    pub fn keyframe_interval(&self) -> u32 {
        self.keyframe_interval
    }

    /// Perceptual quality in \[0, 1\] when encoding at `bitrate_bps`.
    ///
    /// Zero below the codec's minimum bitrate; otherwise a saturating curve
    /// approaching the codec's efficiency ceiling.
    pub fn quality_at(&self, bitrate_bps: u64) -> f64 {
        if bitrate_bps < self.min_bitrate_bps {
            return 0.0;
        }
        if self.id == CodecId::Uncompressed {
            return 1.0;
        }
        self.efficiency * (1.0 - (-(bitrate_bps as f64) / self.half_rate_bps as f64).exp())
    }

    /// Encoded size in bytes of media lasting `duration_secs` at
    /// `bitrate_bps` (rate-controlled codecs hold their target rate).
    pub fn encoded_bytes(&self, duration_secs: f64, bitrate_bps: u64) -> u64 {
        (duration_secs * bitrate_bps as f64 / 8.0).round() as u64
    }

    /// Per-frame sizes in bytes for `frames` frames at `bitrate_bps`,
    /// honouring the keyframe structure (keyframes are
    /// `keyframe_weight`× larger than delta frames, same mean rate).
    pub fn frame_sizes(&self, frames: u32, bitrate_bps: u64) -> Vec<u32> {
        if frames == 0 {
            return Vec::new();
        }
        let bytes_per_frame = bitrate_bps as f64 / 8.0 / self.frame_rate as f64;
        let k = self.keyframe_interval.max(1) as f64;
        let w = self.keyframe_weight;
        // Solve d so that (w*d + (k-1)*d)/k == bytes_per_frame.
        let delta = bytes_per_frame * k / (w + k - 1.0);
        let key = w * delta;
        (0..frames)
            .map(|i| {
                if i % self.keyframe_interval.max(1) == 0 {
                    key.round() as u32
                } else {
                    delta.round() as u32
                }
            })
            .collect()
    }
}

/// The registry of built-in codec models.
#[derive(Debug, Clone)]
pub struct CodecRegistry {
    specs: Vec<CodecSpec>,
}

impl CodecRegistry {
    /// Registry containing all the codecs named in §2.1.
    pub fn builtin() -> Self {
        let specs = vec![
            CodecSpec {
                id: CodecId::WindowsMediaAudio,
                kind: MediaKind::Audio,
                half_rate_bps: 48_000,
                efficiency: 0.92,
                min_bitrate_bps: 8_000,
                frame_rate: 50,
                keyframe_interval: 1,
                keyframe_weight: 1.0,
            },
            CodecSpec {
                id: CodecId::SiproAcelp,
                kind: MediaKind::Audio,
                half_rate_bps: 12_000,
                efficiency: 0.72, // speech codec: low ceiling, great at low rates
                min_bitrate_bps: 4_800,
                frame_rate: 33,
                keyframe_interval: 1,
                keyframe_weight: 1.0,
            },
            CodecSpec {
                id: CodecId::Mp3,
                kind: MediaKind::Audio,
                half_rate_bps: 64_000,
                efficiency: 0.88,
                min_bitrate_bps: 32_000,
                frame_rate: 38,
                keyframe_interval: 1,
                keyframe_weight: 1.0,
            },
            CodecSpec {
                id: CodecId::Mpeg4Video,
                kind: MediaKind::Video,
                half_rate_bps: 300_000,
                efficiency: 0.95,
                min_bitrate_bps: 28_800,
                frame_rate: 25,
                keyframe_interval: 25,
                keyframe_weight: 8.0,
            },
            CodecSpec {
                id: CodecId::TrueMotionRt,
                kind: MediaKind::Video,
                half_rate_bps: 600_000,
                efficiency: 0.85, // real-time codec trades efficiency for speed
                min_bitrate_bps: 100_000,
                frame_rate: 30,
                keyframe_interval: 15,
                keyframe_weight: 4.0,
            },
            CodecSpec {
                id: CodecId::ClearVideo,
                kind: MediaKind::Video,
                half_rate_bps: 400_000,
                efficiency: 0.88,
                min_bitrate_bps: 56_000,
                frame_rate: 15,
                keyframe_interval: 30,
                keyframe_weight: 6.0,
            },
            CodecSpec {
                id: CodecId::Uncompressed,
                kind: MediaKind::Video,
                half_rate_bps: 1,
                efficiency: 1.0,
                min_bitrate_bps: 0,
                frame_rate: 25,
                keyframe_interval: 1,
                keyframe_weight: 1.0,
            },
        ];
        Self { specs }
    }

    /// Looks up a codec by id.
    pub fn get(&self, id: CodecId) -> Option<&CodecSpec> {
        self.specs.iter().find(|s| s.id() == id)
    }

    /// All specs for a given media kind.
    pub fn for_kind(&self, kind: MediaKind) -> Vec<&CodecSpec> {
        self.specs.iter().filter(|s| s.kind() == kind).collect()
    }

    /// The codec of `kind` with the best quality at `bitrate_bps`.
    pub fn best_for(&self, kind: MediaKind, bitrate_bps: u64) -> Option<&CodecSpec> {
        self.for_kind(kind)
            .into_iter()
            .filter(|s| s.id() != CodecId::Uncompressed)
            .max_by(|a, b| {
                a.quality_at(bitrate_bps)
                    .partial_cmp(&b.quality_at(bitrate_bps))
                    .expect("quality is finite")
            })
    }

    /// Iterator over every spec.
    pub fn iter(&self) -> impl Iterator<Item = &CodecSpec> {
        self.specs.iter()
    }
}

impl Default for CodecRegistry {
    fn default() -> Self {
        Self::builtin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_all_paper_codecs() {
        let r = CodecRegistry::builtin();
        for id in CodecId::all() {
            assert!(r.get(id).is_some(), "{id} missing");
        }
    }

    #[test]
    fn quality_monotone_in_bitrate() {
        let r = CodecRegistry::builtin();
        let c = r.get(CodecId::Mpeg4Video).unwrap();
        let mut last = 0.0;
        for rate in [50_000u64, 100_000, 300_000, 1_000_000, 5_000_000] {
            let q = c.quality_at(rate);
            assert!(q >= last, "quality dropped at {rate}");
            last = q;
        }
        assert!(last <= 0.95);
    }

    #[test]
    fn quality_zero_below_min_bitrate() {
        let r = CodecRegistry::builtin();
        let c = r.get(CodecId::Mpeg4Video).unwrap();
        assert_eq!(c.quality_at(1_000), 0.0);
    }

    #[test]
    fn acelp_beats_wma_for_low_rate_speech() {
        // The reason the paper lists a dedicated speech codec: at modem
        // rates ACELP's curve is steeper.
        let r = CodecRegistry::builtin();
        let acelp = r.get(CodecId::SiproAcelp).unwrap();
        let wma = r.get(CodecId::WindowsMediaAudio).unwrap();
        assert!(acelp.quality_at(6_000) > wma.quality_at(6_000));
        // And at high rates the general-purpose codec wins.
        assert!(wma.quality_at(128_000) > acelp.quality_at(128_000));
    }

    #[test]
    fn best_for_switches_with_bitrate() {
        let r = CodecRegistry::builtin();
        assert_eq!(
            r.best_for(MediaKind::Audio, 6_000).unwrap().id(),
            CodecId::SiproAcelp
        );
        assert_eq!(
            r.best_for(MediaKind::Audio, 128_000).unwrap().id(),
            CodecId::WindowsMediaAudio
        );
    }

    #[test]
    fn encoded_bytes_match_rate() {
        let r = CodecRegistry::builtin();
        let c = r.get(CodecId::Mpeg4Video).unwrap();
        // 10 s at 800 kbit/s = 1 MB.
        assert_eq!(c.encoded_bytes(10.0, 800_000), 1_000_000);
    }

    #[test]
    fn frame_sizes_sum_close_to_target() {
        let r = CodecRegistry::builtin();
        let c = r.get(CodecId::Mpeg4Video).unwrap();
        let frames = c.frame_sizes(250, 500_000); // 10 s of video
        let total: u64 = frames.iter().map(|&f| u64::from(f)).sum();
        let target = c.encoded_bytes(10.0, 500_000);
        let err = (total as f64 - target as f64).abs() / target as f64;
        assert!(err < 0.01, "rate error {err}");
    }

    #[test]
    fn keyframes_are_larger() {
        let r = CodecRegistry::builtin();
        let c = r.get(CodecId::Mpeg4Video).unwrap();
        let frames = c.frame_sizes(50, 500_000);
        assert!(frames[0] > frames[1]);
        assert_eq!(frames[0], frames[25]); // next keyframe
    }

    #[test]
    fn uncompressed_quality_is_one() {
        let r = CodecRegistry::builtin();
        let c = r.get(CodecId::Uncompressed).unwrap();
        assert_eq!(c.quality_at(1), 1.0);
    }

    #[test]
    fn frame_sizes_empty_for_zero_frames() {
        let r = CodecRegistry::builtin();
        let c = r.get(CodecId::Mp3).unwrap();
        assert!(c.frame_sizes(0, 64_000).is_empty());
    }
}
