//! Media object model for the WMPS Lecture-on-Demand reproduction.
//!
//! The paper's substrate is the Windows Media stack (§2.1): codecs compress
//! "audio and/or video media, either from live sources or other media
//! formats, to fit on a network's available bandwidth". This crate models
//! those pieces without any real signal processing:
//!
//! * [`time`] — the 100-nanosecond tick timebase ASF uses, with typed
//!   [`time::Ticks`] / [`time::TickDuration`].
//! * [`object`] — media objects (video, audio, slide images, text,
//!   annotations) as typed descriptors.
//! * [`codec`] — a registry of parametric codec models for the codecs the
//!   paper names (Windows Media Audio, Sipro ACELP, MP3, MPEG-4, TrueMotion
//!   RT, ClearVideo): each maps raw media + target bitrate to encoded sizes
//!   and a quality score, which is all the streaming layer needs.
//! * [`clock`] — a pausable, seekable media clock mapping wall time to
//!   presentation time.

pub mod clock;
pub mod codec;
pub mod object;
pub mod time;

pub use clock::MediaClock;
pub use codec::{CodecId, CodecRegistry, CodecSpec};
pub use object::{MediaId, MediaKind, MediaObject};
pub use time::{TickDuration, Ticks, TICKS_PER_MILLISECOND, TICKS_PER_SECOND};
