//! Media objects: the typed descriptors the presentation system moves around.
//!
//! The paper treats a teaching material as "a multimedia presentation (e.g.
//! collection of text, video, audio, image …etc.) with some kinds of
//! sequence fashion" (§2.2). A [`MediaObject`] is one such element; no pixel
//! or sample data is carried, only identity, kind, timing and size.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::time::TickDuration;

/// Opaque identifier for a media object within one presentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MediaId(pub u64);

impl fmt::Display for MediaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// The kinds of media the paper's presentations contain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MediaKind {
    /// Moving pictures (MPEG-4 etc.).
    Video,
    /// Sound (speech or music).
    Audio,
    /// A still image.
    Image,
    /// Plain text.
    Text,
    /// A presentation slide (image rendered from the slide deck).
    Slide,
    /// A presenter annotation/comment overlaid on a slide.
    Annotation,
}

impl MediaKind {
    /// Whether this kind is continuous (has intrinsic duration) rather than
    /// discrete (shown until replaced).
    pub fn is_continuous(self) -> bool {
        matches!(self, MediaKind::Video | MediaKind::Audio)
    }

    /// All kinds, in a fixed order.
    pub fn all() -> [MediaKind; 6] {
        [
            MediaKind::Video,
            MediaKind::Audio,
            MediaKind::Image,
            MediaKind::Text,
            MediaKind::Slide,
            MediaKind::Annotation,
        ]
    }
}

impl fmt::Display for MediaKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MediaKind::Video => "video",
            MediaKind::Audio => "audio",
            MediaKind::Image => "image",
            MediaKind::Text => "text",
            MediaKind::Slide => "slide",
            MediaKind::Annotation => "annotation",
        };
        f.write_str(s)
    }
}

/// A described media element: identity, kind, playout duration, raw size.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MediaObject {
    id: MediaId,
    name: String,
    kind: MediaKind,
    duration: TickDuration,
    /// Uncompressed size in bytes (what a codec would be fed).
    raw_bytes: u64,
    /// Source locator, e.g. a pseudo-path like `lecture/slides/slide_03.png`.
    uri: String,
}

impl MediaObject {
    /// Creates a media object descriptor.
    pub fn new(
        id: MediaId,
        name: impl Into<String>,
        kind: MediaKind,
        duration: TickDuration,
        raw_bytes: u64,
        uri: impl Into<String>,
    ) -> Self {
        Self {
            id,
            name: name.into(),
            kind,
            duration,
            raw_bytes,
            uri: uri.into(),
        }
    }

    /// Identifier.
    pub fn id(&self) -> MediaId {
        self.id
    }

    /// Human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Media kind.
    pub fn kind(&self) -> MediaKind {
        self.kind
    }

    /// Playout duration. For discrete media (slides, text) this is the
    /// intended display span, which a publisher may override.
    pub fn duration(&self) -> TickDuration {
        self.duration
    }

    /// Uncompressed size in bytes.
    pub fn raw_bytes(&self) -> u64 {
        self.raw_bytes
    }

    /// Source locator.
    pub fn uri(&self) -> &str {
        &self.uri
    }

    /// Mean uncompressed bitrate in bits/second (0 for zero-duration media).
    pub fn raw_bitrate(&self) -> u64 {
        let secs = self.duration.as_secs_f64();
        if secs <= 0.0 {
            0
        } else {
            (self.raw_bytes as f64 * 8.0 / secs) as u64
        }
    }
}

impl fmt::Display for MediaObject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} \"{}\" ({}, {})",
            self.id, self.name, self.kind, self.duration
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj() -> MediaObject {
        MediaObject::new(
            MediaId(1),
            "intro",
            MediaKind::Video,
            TickDuration::from_secs(10),
            10_000_000,
            "lecture/intro.m4v",
        )
    }

    #[test]
    fn accessors() {
        let o = obj();
        assert_eq!(o.id(), MediaId(1));
        assert_eq!(o.name(), "intro");
        assert_eq!(o.kind(), MediaKind::Video);
        assert_eq!(o.duration(), TickDuration::from_secs(10));
        assert_eq!(o.raw_bytes(), 10_000_000);
        assert_eq!(o.uri(), "lecture/intro.m4v");
    }

    #[test]
    fn raw_bitrate_computed() {
        // 10 MB over 10 s = 8 Mbit/s.
        assert_eq!(obj().raw_bitrate(), 8_000_000);
    }

    #[test]
    fn raw_bitrate_zero_duration() {
        let o = MediaObject::new(
            MediaId(2),
            "slide",
            MediaKind::Slide,
            TickDuration::ZERO,
            50_000,
            "s.png",
        );
        assert_eq!(o.raw_bitrate(), 0);
    }

    #[test]
    fn continuous_vs_discrete() {
        assert!(MediaKind::Video.is_continuous());
        assert!(MediaKind::Audio.is_continuous());
        assert!(!MediaKind::Slide.is_continuous());
        assert!(!MediaKind::Annotation.is_continuous());
    }

    #[test]
    fn display_mentions_name_and_kind() {
        let s = obj().to_string();
        assert!(s.contains("intro") && s.contains("video"));
    }

    #[test]
    fn all_kinds_distinct() {
        let kinds = MediaKind::all();
        for (i, a) in kinds.iter().enumerate() {
            for b in &kinds[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
