//! The 100-nanosecond tick timebase used throughout the system.
//!
//! ASF expresses all presentation times in 100 ns units; keeping the same
//! unit end-to-end avoids rounding when script-command times are compared
//! against packet send times.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Ticks per millisecond (one tick = 100 ns).
pub const TICKS_PER_MILLISECOND: u64 = 10_000;

/// Ticks per second.
pub const TICKS_PER_SECOND: u64 = 10_000_000;

/// An absolute instant on some timeline, in 100 ns ticks.
///
/// Two timelines appear in the system — *wall* (simulation) time and
/// *presentation* time — and both use this type; the owning API documents
/// which timeline a value belongs to.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Ticks(pub u64);

/// A span of time in 100 ns ticks.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TickDuration(pub u64);

impl Ticks {
    /// The zero instant.
    pub const ZERO: Ticks = Ticks(0);

    /// Instant at `ms` milliseconds from the timeline origin.
    pub fn from_millis(ms: u64) -> Self {
        Ticks(ms * TICKS_PER_MILLISECOND)
    }

    /// Instant at `s` seconds from the timeline origin.
    pub fn from_secs(s: u64) -> Self {
        Ticks(s * TICKS_PER_SECOND)
    }

    /// Whole milliseconds since the origin (truncating).
    pub fn as_millis(self) -> u64 {
        self.0 / TICKS_PER_MILLISECOND
    }

    /// Seconds since the origin as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_SECOND as f64
    }

    /// Duration since `earlier`, saturating to zero if `earlier` is later.
    pub fn since(self, earlier: Ticks) -> TickDuration {
        TickDuration(self.0.saturating_sub(earlier.0))
    }

    /// Absolute difference between two instants.
    pub fn abs_diff(self, other: Ticks) -> TickDuration {
        TickDuration(self.0.abs_diff(other.0))
    }
}

impl TickDuration {
    /// The empty duration.
    pub const ZERO: TickDuration = TickDuration(0);

    /// Duration of `ms` milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        TickDuration(ms * TICKS_PER_MILLISECOND)
    }

    /// Duration of `s` seconds.
    pub fn from_secs(s: u64) -> Self {
        TickDuration(s * TICKS_PER_SECOND)
    }

    /// Whole milliseconds (truncating).
    pub fn as_millis(self) -> u64 {
        self.0 / TICKS_PER_MILLISECOND
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / TICKS_PER_SECOND as f64
    }

    /// Whether the duration is zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the duration by an integer factor.
    pub fn saturating_mul(self, factor: u64) -> Self {
        TickDuration(self.0.saturating_mul(factor))
    }
}

impl std::ops::Div<u64> for TickDuration {
    type Output = TickDuration;

    /// Divides the duration by `divisor`, truncating.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    fn div(self, divisor: u64) -> TickDuration {
        TickDuration(self.0 / divisor)
    }
}

impl Add<TickDuration> for Ticks {
    type Output = Ticks;
    fn add(self, rhs: TickDuration) -> Ticks {
        Ticks(self.0 + rhs.0)
    }
}

impl AddAssign<TickDuration> for Ticks {
    fn add_assign(&mut self, rhs: TickDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<TickDuration> for Ticks {
    type Output = Ticks;
    fn sub(self, rhs: TickDuration) -> Ticks {
        Ticks(self.0.saturating_sub(rhs.0))
    }
}

impl Add for TickDuration {
    type Output = TickDuration;
    fn add(self, rhs: TickDuration) -> TickDuration {
        TickDuration(self.0 + rhs.0)
    }
}

impl AddAssign for TickDuration {
    fn add_assign(&mut self, rhs: TickDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for TickDuration {
    type Output = TickDuration;
    fn sub(self, rhs: TickDuration) -> TickDuration {
        TickDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for TickDuration {
    fn sub_assign(&mut self, rhs: TickDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl fmt::Display for Ticks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for TickDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl From<TickDuration> for u64 {
    fn from(d: TickDuration) -> u64 {
        d.0
    }
}

impl From<Ticks> for u64 {
    fn from(t: Ticks) -> u64 {
        t.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn millis_round_trip() {
        assert_eq!(Ticks::from_millis(1500).as_millis(), 1500);
        assert_eq!(TickDuration::from_secs(2).as_millis(), 2000);
    }

    #[test]
    fn arithmetic() {
        let t = Ticks::from_secs(10) + TickDuration::from_secs(5);
        assert_eq!(t, Ticks::from_secs(15));
        assert_eq!(t - TickDuration::from_secs(20), Ticks::ZERO);
    }

    #[test]
    fn since_saturates() {
        let a = Ticks::from_secs(1);
        let b = Ticks::from_secs(3);
        assert_eq!(b.since(a), TickDuration::from_secs(2));
        assert_eq!(a.since(b), TickDuration::ZERO);
    }

    #[test]
    fn abs_diff_is_symmetric() {
        let a = Ticks::from_millis(100);
        let b = Ticks::from_millis(350);
        assert_eq!(a.abs_diff(b), b.abs_diff(a));
        assert_eq!(a.abs_diff(b), TickDuration::from_millis(250));
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(Ticks::from_millis(1500).to_string(), "1.500s");
        assert_eq!(TickDuration::from_millis(33).to_string(), "0.033s");
    }

    #[test]
    fn duration_scaling() {
        let d = TickDuration::from_millis(40);
        assert_eq!(d.saturating_mul(25), TickDuration::from_secs(1));
        assert_eq!(TickDuration::from_secs(1) / 25, d);
    }

    #[test]
    fn ordering() {
        assert!(Ticks::from_millis(1) < Ticks::from_millis(2));
        assert!(TickDuration::ZERO.is_zero());
    }
}
