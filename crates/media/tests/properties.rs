//! Property-based tests for the media clock and codec models.

use lod_media::{CodecRegistry, MediaClock, MediaKind, TickDuration, Ticks};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum ClockOp {
    Advance(u64),
    Pause,
    Resume,
    Skip(u64),
    Rewind(u64),
}

fn arb_op() -> impl Strategy<Value = ClockOp> {
    prop_oneof![
        (1u64..1_000_000).prop_map(ClockOp::Advance),
        Just(ClockOp::Pause),
        Just(ClockOp::Resume),
        (0u64..500_000).prop_map(ClockOp::Skip),
        (0u64..500_000).prop_map(ClockOp::Rewind),
    ]
}

proptest! {
    /// Media time never decreases under advancing wall time without seeks,
    /// and never advances while paused.
    #[test]
    fn clock_monotone_between_interactions(ops in proptest::collection::vec(arb_op(), 0..40)) {
        let mut clock = MediaClock::start_at(Ticks::ZERO);
        let mut wall = 0u64;
        let mut last_media = clock.media_time(Ticks(wall)).0;
        let mut last_was_seek = false;
        for op in ops {
            match op {
                ClockOp::Advance(d) => {
                    let was_running = clock.is_running();
                    let before = clock.media_time(Ticks(wall)).0;
                    wall += d;
                    let after = clock.media_time(Ticks(wall)).0;
                    if was_running {
                        prop_assert_eq!(after - before, d);
                    } else {
                        prop_assert_eq!(after, before);
                    }
                    last_was_seek = false;
                }
                ClockOp::Pause => clock.pause(Ticks(wall)),
                ClockOp::Resume => clock.resume(Ticks(wall)),
                ClockOp::Skip(d) => {
                    clock.skip(Ticks(wall), TickDuration(d));
                    last_was_seek = true;
                }
                ClockOp::Rewind(d) => {
                    clock.rewind(Ticks(wall), TickDuration(d));
                    last_was_seek = true;
                }
            }
            let media = clock.media_time(Ticks(wall)).0;
            if !last_was_seek {
                prop_assert!(media >= last_media, "clock ran backwards without a seek");
            }
            last_media = media;
        }
    }

    /// Pause/resume pairs exclude exactly the paused wall time.
    #[test]
    fn pause_windows_subtract_exactly(
        run1 in 1u64..1_000_000,
        paused in 1u64..1_000_000,
        run2 in 1u64..1_000_000,
    ) {
        let mut clock = MediaClock::start_at(Ticks::ZERO);
        clock.pause(Ticks(run1));
        clock.resume(Ticks(run1 + paused));
        let media = clock.media_time(Ticks(run1 + paused + run2)).0;
        prop_assert_eq!(media, run1 + run2);
    }

    /// Codec quality is monotone non-decreasing in bitrate for every codec.
    #[test]
    fn codec_quality_monotone(
        lo in 1_000u64..1_000_000,
        step in 1_000u64..1_000_000,
    ) {
        let registry = CodecRegistry::builtin();
        for spec in registry.iter() {
            let q_lo = spec.quality_at(lo);
            let q_hi = spec.quality_at(lo + step);
            prop_assert!(q_hi >= q_lo, "{} dropped quality", spec.id());
        }
    }

    /// Frame sizes sum to the requested rate over whole keyframe periods
    /// (the rate-control contract; partial periods may deviate by up to
    /// one keyframe's excess).
    #[test]
    fn frame_sizes_hit_rate(
        bitrate in 100_000u64..5_000_000,
        periods in 1u32..20,
    ) {
        let registry = CodecRegistry::builtin();
        for spec in registry.for_kind(MediaKind::Video) {
            let frames = spec.keyframe_interval().max(1) * periods;
            let sizes = spec.frame_sizes(frames, bitrate);
            let total: u64 = sizes.iter().map(|&s| u64::from(s)).sum();
            let seconds = f64::from(frames) / f64::from(spec.frame_rate());
            let target = spec.encoded_bytes(seconds, bitrate);
            let err = (total as f64 - target as f64).abs() / target as f64;
            prop_assert!(err < 0.02, "{}: err {err}", spec.id());
        }
    }
}
