//! Typed, tick-stamped observability events and their JSONL codec.
//!
//! Every event is a plain record of integers (raw node indices, ticks,
//! byte/bit counts) plus the occasional fixed vocabulary string, so a
//! seeded run serializes to a byte-identical JSONL log on every machine.
//! Node identity is carried as the raw `usize` index of a
//! `lod_simnet::NodeId` — this crate sits below the simulator in the
//! dependency order and must not know its types.

use serde::{Deserialize, Serialize};

/// One observability event. Variants mirror the lifecycle the paper's
/// delivery chain actually goes through: admission, startup, stalls,
/// degradation, outages/recoveries, relay cache traffic, breaker
/// transitions and injected faults.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Event {
    /// A human-readable role for a node (`origin`, `relay0`, `student3`),
    /// emitted once at the head of the log by the driver that built the
    /// topology.
    NodeLabel {
        /// Raw node index.
        node: u64,
        /// Role label.
        label: String,
    },
    /// The server created (or re-created) a session for `client`.
    SessionStart {
        /// Raw node index of the client.
        client: u64,
    },
    /// The client left Buffering for Playing for the first time.
    PlaybackStart {
        /// Raw node index of the client.
        client: u64,
        /// Ticks from Play to first render.
        startup_ticks: u64,
    },
    /// Playback underran and the client paused to rebuffer.
    StallStart {
        /// Raw node index of the client.
        client: u64,
    },
    /// The stall ended; playback resumed.
    StallEnd {
        /// Raw node index of the client.
        client: u64,
        /// Length of the stall in ticks.
        stall_ticks: u64,
    },
    /// The first-hop backlog for this session crossed above the degrade
    /// policy's high watermark (the sample every later downshift is
    /// causally rooted in).
    BacklogHigh {
        /// Raw node index of the client.
        client: u64,
        /// Backlog observed, in bytes.
        backlog: u64,
    },
    /// The backlog dropped below the low watermark.
    BacklogLow {
        /// Raw node index of the client.
        client: u64,
        /// Backlog observed, in bytes.
        backlog: u64,
    },
    /// The server downshifted the session one profile rung.
    Downshift {
        /// Raw node index of the client.
        client: u64,
        /// Effective bitrate before the shift.
        from_bps: u64,
        /// Effective bitrate after the shift.
        to_bps: u64,
    },
    /// The server stepped the session back up a rung.
    Upshift {
        /// Raw node index of the client.
        client: u64,
        /// Effective bitrate before the shift.
        from_bps: u64,
        /// Effective bitrate after the shift.
        to_bps: u64,
    },
    /// Admission control refused a Play with `Wire::Busy`.
    AdmissionShed {
        /// Raw node index of the refusing server or relay.
        node: u64,
        /// Raw node index of the refused client.
        client: u64,
    },
    /// The client received a `Wire::Busy` bounce.
    BusyBounce {
        /// Raw node index of the client.
        client: u64,
    },
    /// The client exhausted its bounce budget and gave up as shed.
    ClientShed {
        /// Raw node index of the client.
        client: u64,
    },
    /// The retry layer re-issued Play after a silence timeout.
    Retry {
        /// Raw node index of the client.
        client: u64,
        /// 1-based consecutive attempt number.
        attempt: u64,
    },
    /// The retry layer declared an outage (first unanswered deadline).
    OutageStart {
        /// Raw node index of the client.
        client: u64,
    },
    /// Server traffic resumed after an outage.
    Recovery {
        /// Raw node index of the client.
        client: u64,
        /// Ticks from last progress to the recovery.
        outage_ticks: u64,
    },
    /// The retry budget ran out; the session was abandoned.
    Abandon {
        /// Raw node index of the client.
        client: u64,
    },
    /// The client finished playback cleanly.
    SessionEnd {
        /// Raw node index of the client.
        client: u64,
    },
    /// The server reaped an idle session.
    SessionReaped {
        /// Raw node index of the reaping server.
        node: u64,
        /// Raw node index of the idle client.
        client: u64,
    },
    /// A circuit breaker tripped open.
    BreakerOpen {
        /// Raw node index of the breaker's owner (the relay).
        node: u64,
    },
    /// An open breaker admitted its half-open probe.
    BreakerProbe {
        /// Raw node index of the breaker's owner.
        node: u64,
    },
    /// A breaker closed again (probe answered, upstream alive).
    BreakerClose {
        /// Raw node index of the breaker's owner.
        node: u64,
    },
    /// Segment-cache lookup answered locally.
    CacheHit {
        /// Raw node index of the relay.
        node: u64,
        /// Segment index (or synthetic time-fetch key).
        segment: u64,
    },
    /// Lookup joined an already-inflight upstream fetch.
    CacheCoalesced {
        /// Raw node index of the relay.
        node: u64,
        /// Segment index.
        segment: u64,
    },
    /// Lookup missed and triggered an upstream pull.
    CacheMiss {
        /// Raw node index of the relay.
        node: u64,
        /// Segment index.
        segment: u64,
    },
    /// The byte budget forced a segment out of the cache.
    CacheEvict {
        /// Raw node index of the relay.
        node: u64,
        /// Segment index evicted.
        segment: u64,
        /// Bytes reclaimed.
        bytes: u64,
    },
    /// An upstream fetch was re-issued after its patience window.
    FetchRetry {
        /// Raw node index of the relay.
        node: u64,
        /// Segment index (or synthetic time-fetch key).
        segment: u64,
    },
    /// An upstream fetch exhausted its retry budget.
    FetchGiveUp {
        /// Raw node index of the relay.
        node: u64,
        /// Segment index.
        segment: u64,
    },
    /// The fault injector applied a fault.
    FaultStrike {
        /// Fault vocabulary: `link_down`, `node_down`, `loss_burst`,
        /// `latency_spike`.
        fault: String,
        /// First endpoint (or the node itself).
        a: u64,
        /// Second endpoint (== `a` for node faults).
        b: u64,
        /// Fault-specific magnitude: loss per-mille for bursts, extra
        /// ticks for latency spikes, 0 otherwise.
        detail: u64,
    },
    /// The fault injector healed a fault.
    FaultHeal {
        /// Fault vocabulary (same as [`Event::FaultStrike`]).
        fault: String,
        /// First endpoint.
        a: u64,
        /// Second endpoint.
        b: u64,
    },
    /// The failure detector's heartbeat went unanswered past its
    /// deadline (the sample every later promotion is causally rooted in).
    HeartbeatMiss {
        /// Raw node index of the silent origin.
        node: u64,
        /// Consecutive misses so far, 1-based.
        misses: u64,
    },
    /// The detector crossed its miss threshold and began failover.
    FailoverStart {
        /// Raw node index of the origin declared dead.
        from: u64,
        /// Raw node index of the standby about to be promoted.
        to: u64,
        /// The miss threshold that was crossed.
        misses: u64,
    },
    /// The standby took over as primary at a new fencing epoch.
    Promoted {
        /// Raw node index of the promoted standby.
        node: u64,
        /// The fencing epoch it now serves at (strictly above every
        /// earlier primary's).
        epoch: u64,
    },
    /// A deposed primary observed a higher fencing epoch and stepped
    /// down to standby instead of serving split-brain.
    Demoted {
        /// Raw node index of the demoted node.
        node: u64,
        /// The higher epoch it observed.
        epoch: u64,
    },
    /// The origin journaled a session checkpoint for replication.
    Checkpoint {
        /// Raw node index of the checkpointed session's client.
        client: u64,
        /// Playback horizon captured (next packet index).
        horizon: u64,
    },
    /// A promoted standby restored a replicated session, ready to resume
    /// it from its checkpointed horizon.
    SessionMigrated {
        /// Raw node index of the session's client.
        client: u64,
        /// The horizon the session will resume from.
        horizon: u64,
    },
    /// A transport receiver NACKed a sequence gap toward its peer.
    NackSent {
        /// Raw node index of the receiver that noticed the gap.
        node: u64,
        /// Raw node index of the sender being asked to repair.
        peer: u64,
        /// First missing sequence named by the NACK.
        base_seq: u64,
        /// Width of the sequence range the NACK covers (`[base_seq,
        /// base_seq + span)` — 1 for a single-seq NACK).
        span: u64,
    },
    /// A transport sender answered a NACK by resending a buffered frame.
    Retransmit {
        /// Raw node index of the resending sender.
        node: u64,
        /// Raw node index of the receiver that NACKed.
        peer: u64,
        /// Sequence being resent.
        seq: u64,
        /// Which retransmission this is, 1-based.
        attempt: u64,
    },
    /// A transport sender stopped repairing a sequence (retry budget
    /// spent or the frame already evicted from the retransmit buffer).
    RepairGiveUp {
        /// Raw node index of the sender giving up.
        node: u64,
        /// Raw node index of the receiver that asked.
        peer: u64,
        /// The abandoned sequence.
        seq: u64,
        /// Retransmissions actually performed for it.
        retries: u64,
        /// The configured per-seq retry budget.
        budget: u64,
    },
    /// A transport receiver abandoned a gap and released the frames
    /// waiting behind it. With repair enabled this is only lawful after
    /// the NACK budget was exhausted (`nacks == budget`); without repair
    /// both counts are 0 (a plain reorder-timeout skip).
    GapSkipped {
        /// Raw node index of the receiver skipping.
        node: u64,
        /// Raw node index of the peer whose frame was lost.
        peer: u64,
        /// The skipped sequence.
        seq: u64,
        /// NACKs that were sent for it before the skip.
        nacks: u64,
        /// The configured NACK budget (0 = repair disabled).
        budget: u64,
    },
    /// A traced segment entered a delivery hop (see `span.rs` for the
    /// hop vocabulary: `packetize`, `relay_fetch`, `fan_out`, `pace`,
    /// `wire`, `reorder`, `repair_stall`, `reassemble`, `playout_wait`).
    SpanOpen {
        /// Raw node index emitting the span (where the hop runs).
        node: u64,
        /// Raw node index of the other endpoint (== `node` for local
        /// hops such as `packetize` or `playout_wait`).
        peer: u64,
        /// Hop name from the fixed vocabulary.
        hop: String,
        /// Lecture id (splitmix64 hash of the content name).
        lecture: u64,
        /// Segment index within the lecture.
        segment: u64,
    },
    /// The matching hop completed. Pairs with the [`Event::SpanOpen`]
    /// carrying the same `(node, peer, hop, lecture, segment)` key.
    SpanClose {
        /// Raw node index emitting the span.
        node: u64,
        /// Raw node index of the other endpoint.
        peer: u64,
        /// Hop name from the fixed vocabulary.
        hop: String,
        /// Lecture id.
        lecture: u64,
        /// Segment index within the lecture.
        segment: u64,
    },
}

impl Event {
    /// The event's kind tag — the `kind` field of its JSONL form and the
    /// label of its `lod_events_total` counter.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::NodeLabel { .. } => "node_label",
            Event::SessionStart { .. } => "session_start",
            Event::PlaybackStart { .. } => "playback_start",
            Event::StallStart { .. } => "stall_start",
            Event::StallEnd { .. } => "stall_end",
            Event::BacklogHigh { .. } => "backlog_high",
            Event::BacklogLow { .. } => "backlog_low",
            Event::Downshift { .. } => "downshift",
            Event::Upshift { .. } => "upshift",
            Event::AdmissionShed { .. } => "admission_shed",
            Event::BusyBounce { .. } => "busy_bounce",
            Event::ClientShed { .. } => "client_shed",
            Event::Retry { .. } => "retry",
            Event::OutageStart { .. } => "outage_start",
            Event::Recovery { .. } => "recovery",
            Event::Abandon { .. } => "abandon",
            Event::SessionEnd { .. } => "session_end",
            Event::SessionReaped { .. } => "session_reaped",
            Event::BreakerOpen { .. } => "breaker_open",
            Event::BreakerProbe { .. } => "breaker_probe",
            Event::BreakerClose { .. } => "breaker_close",
            Event::CacheHit { .. } => "cache_hit",
            Event::CacheCoalesced { .. } => "cache_coalesced",
            Event::CacheMiss { .. } => "cache_miss",
            Event::CacheEvict { .. } => "cache_evict",
            Event::FetchRetry { .. } => "fetch_retry",
            Event::FetchGiveUp { .. } => "fetch_give_up",
            Event::FaultStrike { .. } => "fault_strike",
            Event::FaultHeal { .. } => "fault_heal",
            Event::HeartbeatMiss { .. } => "heartbeat_miss",
            Event::FailoverStart { .. } => "failover_start",
            Event::Promoted { .. } => "promoted",
            Event::Demoted { .. } => "demoted",
            Event::Checkpoint { .. } => "checkpoint",
            Event::SessionMigrated { .. } => "session_migrated",
            Event::NackSent { .. } => "nack_sent",
            Event::Retransmit { .. } => "retransmit",
            Event::RepairGiveUp { .. } => "repair_give_up",
            Event::GapSkipped { .. } => "gap_skipped",
            Event::SpanOpen { .. } => "span_open",
            Event::SpanClose { .. } => "span_close",
        }
    }
}

/// An [`Event`] stamped with the simulation tick it happened at. Records
/// are kept (and serialized) strictly in emission order, which under the
/// single-threaded deterministic drivers is also causal order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Simulation tick (100 ns units).
    pub at: u64,
    /// What happened.
    pub event: Event,
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c => out.push(c),
        }
    }
}

fn push_str_field(out: &mut String, key: &str, value: &str) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":\"");
    escape_into(out, value);
    out.push('"');
}

fn push_num_field(out: &mut String, key: &str, value: u64) {
    use std::fmt::Write;
    let _ = write!(out, ",\"{key}\":{value}");
}

impl EventRecord {
    /// Serializes the record as one flat JSON object (no trailing
    /// newline). Field order is fixed per kind, so equal records always
    /// produce equal bytes.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(64);
        let _ = write!(
            out,
            "{{\"t\":{},\"kind\":\"{}\"",
            self.at,
            self.event.kind()
        );
        match &self.event {
            Event::NodeLabel { node, label } => {
                push_num_field(&mut out, "node", *node);
                push_str_field(&mut out, "label", label);
            }
            Event::SessionStart { client }
            | Event::StallStart { client }
            | Event::BusyBounce { client }
            | Event::ClientShed { client }
            | Event::OutageStart { client }
            | Event::Abandon { client }
            | Event::SessionEnd { client } => {
                push_num_field(&mut out, "client", *client);
            }
            Event::PlaybackStart {
                client,
                startup_ticks,
            } => {
                push_num_field(&mut out, "client", *client);
                push_num_field(&mut out, "startup_ticks", *startup_ticks);
            }
            Event::StallEnd {
                client,
                stall_ticks,
            } => {
                push_num_field(&mut out, "client", *client);
                push_num_field(&mut out, "stall_ticks", *stall_ticks);
            }
            Event::BacklogHigh { client, backlog } | Event::BacklogLow { client, backlog } => {
                push_num_field(&mut out, "client", *client);
                push_num_field(&mut out, "backlog", *backlog);
            }
            Event::Downshift {
                client,
                from_bps,
                to_bps,
            }
            | Event::Upshift {
                client,
                from_bps,
                to_bps,
            } => {
                push_num_field(&mut out, "client", *client);
                push_num_field(&mut out, "from_bps", *from_bps);
                push_num_field(&mut out, "to_bps", *to_bps);
            }
            Event::AdmissionShed { node, client } | Event::SessionReaped { node, client } => {
                push_num_field(&mut out, "node", *node);
                push_num_field(&mut out, "client", *client);
            }
            Event::Retry { client, attempt } => {
                push_num_field(&mut out, "client", *client);
                push_num_field(&mut out, "attempt", *attempt);
            }
            Event::Recovery {
                client,
                outage_ticks,
            } => {
                push_num_field(&mut out, "client", *client);
                push_num_field(&mut out, "outage_ticks", *outage_ticks);
            }
            Event::BreakerOpen { node }
            | Event::BreakerProbe { node }
            | Event::BreakerClose { node } => {
                push_num_field(&mut out, "node", *node);
            }
            Event::CacheHit { node, segment }
            | Event::CacheCoalesced { node, segment }
            | Event::CacheMiss { node, segment }
            | Event::FetchRetry { node, segment }
            | Event::FetchGiveUp { node, segment } => {
                push_num_field(&mut out, "node", *node);
                push_num_field(&mut out, "segment", *segment);
            }
            Event::CacheEvict {
                node,
                segment,
                bytes,
            } => {
                push_num_field(&mut out, "node", *node);
                push_num_field(&mut out, "segment", *segment);
                push_num_field(&mut out, "bytes", *bytes);
            }
            Event::FaultStrike {
                fault,
                a,
                b,
                detail,
            } => {
                push_str_field(&mut out, "fault", fault);
                push_num_field(&mut out, "a", *a);
                push_num_field(&mut out, "b", *b);
                push_num_field(&mut out, "detail", *detail);
            }
            Event::FaultHeal { fault, a, b } => {
                push_str_field(&mut out, "fault", fault);
                push_num_field(&mut out, "a", *a);
                push_num_field(&mut out, "b", *b);
            }
            Event::HeartbeatMiss { node, misses } => {
                push_num_field(&mut out, "node", *node);
                push_num_field(&mut out, "misses", *misses);
            }
            Event::FailoverStart { from, to, misses } => {
                push_num_field(&mut out, "from", *from);
                push_num_field(&mut out, "to", *to);
                push_num_field(&mut out, "misses", *misses);
            }
            Event::Promoted { node, epoch } | Event::Demoted { node, epoch } => {
                push_num_field(&mut out, "node", *node);
                push_num_field(&mut out, "epoch", *epoch);
            }
            Event::Checkpoint { client, horizon } | Event::SessionMigrated { client, horizon } => {
                push_num_field(&mut out, "client", *client);
                push_num_field(&mut out, "horizon", *horizon);
            }
            Event::NackSent {
                node,
                peer,
                base_seq,
                span,
            } => {
                push_num_field(&mut out, "node", *node);
                push_num_field(&mut out, "peer", *peer);
                push_num_field(&mut out, "base_seq", *base_seq);
                push_num_field(&mut out, "span", *span);
            }
            Event::Retransmit {
                node,
                peer,
                seq,
                attempt,
            } => {
                push_num_field(&mut out, "node", *node);
                push_num_field(&mut out, "peer", *peer);
                push_num_field(&mut out, "seq", *seq);
                push_num_field(&mut out, "attempt", *attempt);
            }
            Event::RepairGiveUp {
                node,
                peer,
                seq,
                retries,
                budget,
            } => {
                push_num_field(&mut out, "node", *node);
                push_num_field(&mut out, "peer", *peer);
                push_num_field(&mut out, "seq", *seq);
                push_num_field(&mut out, "retries", *retries);
                push_num_field(&mut out, "budget", *budget);
            }
            Event::GapSkipped {
                node,
                peer,
                seq,
                nacks,
                budget,
            } => {
                push_num_field(&mut out, "node", *node);
                push_num_field(&mut out, "peer", *peer);
                push_num_field(&mut out, "seq", *seq);
                push_num_field(&mut out, "nacks", *nacks);
                push_num_field(&mut out, "budget", *budget);
            }
            Event::SpanOpen {
                node,
                peer,
                hop,
                lecture,
                segment,
            }
            | Event::SpanClose {
                node,
                peer,
                hop,
                lecture,
                segment,
            } => {
                push_num_field(&mut out, "node", *node);
                push_num_field(&mut out, "peer", *peer);
                push_str_field(&mut out, "hop", hop);
                push_num_field(&mut out, "lecture", *lecture);
                push_num_field(&mut out, "segment", *segment);
            }
        }
        out.push('}');
        out
    }
}

/// A parsed flat-JSON value: every field of every event is one of these.
enum Val {
    Num(u64),
    Str(String),
}

/// Splits one flat JSON object (`{"k":v,...}`) into key/value pairs.
/// Only the subset this crate emits is accepted: string keys, u64 or
/// string values, no nesting.
fn parse_flat(line: &str) -> Result<Vec<(String, Val)>, String> {
    let inner = line
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| format!("not a JSON object: {line}"))?;
    let mut pairs = Vec::new();
    let mut chars = inner.chars().peekable();
    loop {
        while matches!(chars.peek(), Some(',') | Some(' ')) {
            chars.next();
        }
        if chars.peek().is_none() {
            break;
        }
        if chars.next() != Some('"') {
            return Err(format!("expected key quote in: {line}"));
        }
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '"' {
                break;
            }
            key.push(c);
        }
        if chars.next() != Some(':') {
            return Err(format!("expected ':' after key {key} in: {line}"));
        }
        match chars.peek() {
            Some('"') => {
                chars.next();
                let mut s = String::new();
                let mut escaped = false;
                for c in chars.by_ref() {
                    if escaped {
                        s.push(c);
                        escaped = false;
                    } else if c == '\\' {
                        escaped = true;
                    } else if c == '"' {
                        break;
                    } else {
                        s.push(c);
                    }
                }
                pairs.push((key, Val::Str(s)));
            }
            Some(c) if c.is_ascii_digit() => {
                let mut n = String::new();
                while matches!(chars.peek(), Some(c) if c.is_ascii_digit()) {
                    n.push(chars.next().expect("peeked"));
                }
                let v = n
                    .parse::<u64>()
                    .map_err(|e| format!("bad number {n}: {e}"))?;
                pairs.push((key, Val::Num(v)));
            }
            other => return Err(format!("unsupported value start {other:?} in: {line}")),
        }
    }
    Ok(pairs)
}

struct Fields(Vec<(String, Val)>);

impl Fields {
    fn num(&self, key: &str) -> Result<u64, String> {
        match self.0.iter().find(|(k, _)| k == key) {
            Some((_, Val::Num(v))) => Ok(*v),
            Some((_, Val::Str(_))) => Err(format!("field {key} is a string, expected number")),
            None => Err(format!("missing field {key}")),
        }
    }

    fn str(&self, key: &str) -> Result<String, String> {
        match self.0.iter().find(|(k, _)| k == key) {
            Some((_, Val::Str(s))) => Ok(s.clone()),
            Some((_, Val::Num(_))) => Err(format!("field {key} is a number, expected string")),
            None => Err(format!("missing field {key}")),
        }
    }
}

/// Parses one JSONL line back into an [`EventRecord`]. The inverse of
/// [`EventRecord::to_json`]; unknown kinds are an error.
pub fn parse_event(line: &str) -> Result<EventRecord, String> {
    let f = Fields(parse_flat(line)?);
    let at = f.num("t")?;
    let kind = f.str("kind")?;
    let event = match kind.as_str() {
        "node_label" => Event::NodeLabel {
            node: f.num("node")?,
            label: f.str("label")?,
        },
        "session_start" => Event::SessionStart {
            client: f.num("client")?,
        },
        "playback_start" => Event::PlaybackStart {
            client: f.num("client")?,
            startup_ticks: f.num("startup_ticks")?,
        },
        "stall_start" => Event::StallStart {
            client: f.num("client")?,
        },
        "stall_end" => Event::StallEnd {
            client: f.num("client")?,
            stall_ticks: f.num("stall_ticks")?,
        },
        "backlog_high" => Event::BacklogHigh {
            client: f.num("client")?,
            backlog: f.num("backlog")?,
        },
        "backlog_low" => Event::BacklogLow {
            client: f.num("client")?,
            backlog: f.num("backlog")?,
        },
        "downshift" => Event::Downshift {
            client: f.num("client")?,
            from_bps: f.num("from_bps")?,
            to_bps: f.num("to_bps")?,
        },
        "upshift" => Event::Upshift {
            client: f.num("client")?,
            from_bps: f.num("from_bps")?,
            to_bps: f.num("to_bps")?,
        },
        "admission_shed" => Event::AdmissionShed {
            node: f.num("node")?,
            client: f.num("client")?,
        },
        "busy_bounce" => Event::BusyBounce {
            client: f.num("client")?,
        },
        "client_shed" => Event::ClientShed {
            client: f.num("client")?,
        },
        "retry" => Event::Retry {
            client: f.num("client")?,
            attempt: f.num("attempt")?,
        },
        "outage_start" => Event::OutageStart {
            client: f.num("client")?,
        },
        "recovery" => Event::Recovery {
            client: f.num("client")?,
            outage_ticks: f.num("outage_ticks")?,
        },
        "abandon" => Event::Abandon {
            client: f.num("client")?,
        },
        "session_end" => Event::SessionEnd {
            client: f.num("client")?,
        },
        "session_reaped" => Event::SessionReaped {
            node: f.num("node")?,
            client: f.num("client")?,
        },
        "breaker_open" => Event::BreakerOpen {
            node: f.num("node")?,
        },
        "breaker_probe" => Event::BreakerProbe {
            node: f.num("node")?,
        },
        "breaker_close" => Event::BreakerClose {
            node: f.num("node")?,
        },
        "cache_hit" => Event::CacheHit {
            node: f.num("node")?,
            segment: f.num("segment")?,
        },
        "cache_coalesced" => Event::CacheCoalesced {
            node: f.num("node")?,
            segment: f.num("segment")?,
        },
        "cache_miss" => Event::CacheMiss {
            node: f.num("node")?,
            segment: f.num("segment")?,
        },
        "cache_evict" => Event::CacheEvict {
            node: f.num("node")?,
            segment: f.num("segment")?,
            bytes: f.num("bytes")?,
        },
        "fetch_retry" => Event::FetchRetry {
            node: f.num("node")?,
            segment: f.num("segment")?,
        },
        "fetch_give_up" => Event::FetchGiveUp {
            node: f.num("node")?,
            segment: f.num("segment")?,
        },
        "fault_strike" => Event::FaultStrike {
            fault: f.str("fault")?,
            a: f.num("a")?,
            b: f.num("b")?,
            detail: f.num("detail")?,
        },
        "fault_heal" => Event::FaultHeal {
            fault: f.str("fault")?,
            a: f.num("a")?,
            b: f.num("b")?,
        },
        "heartbeat_miss" => Event::HeartbeatMiss {
            node: f.num("node")?,
            misses: f.num("misses")?,
        },
        "failover_start" => Event::FailoverStart {
            from: f.num("from")?,
            to: f.num("to")?,
            misses: f.num("misses")?,
        },
        "promoted" => Event::Promoted {
            node: f.num("node")?,
            epoch: f.num("epoch")?,
        },
        "demoted" => Event::Demoted {
            node: f.num("node")?,
            epoch: f.num("epoch")?,
        },
        "checkpoint" => Event::Checkpoint {
            client: f.num("client")?,
            horizon: f.num("horizon")?,
        },
        "session_migrated" => Event::SessionMigrated {
            client: f.num("client")?,
            horizon: f.num("horizon")?,
        },
        "nack_sent" => Event::NackSent {
            node: f.num("node")?,
            peer: f.num("peer")?,
            base_seq: f.num("base_seq")?,
            span: f.num("span")?,
        },
        "retransmit" => Event::Retransmit {
            node: f.num("node")?,
            peer: f.num("peer")?,
            seq: f.num("seq")?,
            attempt: f.num("attempt")?,
        },
        "repair_give_up" => Event::RepairGiveUp {
            node: f.num("node")?,
            peer: f.num("peer")?,
            seq: f.num("seq")?,
            retries: f.num("retries")?,
            budget: f.num("budget")?,
        },
        "gap_skipped" => Event::GapSkipped {
            node: f.num("node")?,
            peer: f.num("peer")?,
            seq: f.num("seq")?,
            nacks: f.num("nacks")?,
            budget: f.num("budget")?,
        },
        "span_open" => Event::SpanOpen {
            node: f.num("node")?,
            peer: f.num("peer")?,
            hop: f.str("hop")?,
            lecture: f.num("lecture")?,
            segment: f.num("segment")?,
        },
        "span_close" => Event::SpanClose {
            node: f.num("node")?,
            peer: f.num("peer")?,
            hop: f.str("hop")?,
            lecture: f.num("lecture")?,
            segment: f.num("segment")?,
        },
        other => return Err(format!("unknown event kind {other}")),
    };
    Ok(EventRecord { at, event })
}

/// Parses a whole JSONL log (blank lines skipped) back into records.
pub fn parse_jsonl(text: &str) -> Result<Vec<EventRecord>, String> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(parse_event)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_round_trips() {
        let all = vec![
            Event::NodeLabel {
                node: 0,
                label: "origin".into(),
            },
            Event::SessionStart { client: 3 },
            Event::PlaybackStart {
                client: 3,
                startup_ticks: 12_000_000,
            },
            Event::StallStart { client: 3 },
            Event::StallEnd {
                client: 3,
                stall_ticks: 7,
            },
            Event::BacklogHigh {
                client: 3,
                backlog: 900_000,
            },
            Event::BacklogLow {
                client: 3,
                backlog: 10,
            },
            Event::Downshift {
                client: 3,
                from_bps: 300_000,
                to_bps: 150_000,
            },
            Event::Upshift {
                client: 3,
                from_bps: 150_000,
                to_bps: 300_000,
            },
            Event::AdmissionShed { node: 0, client: 9 },
            Event::BusyBounce { client: 9 },
            Event::ClientShed { client: 9 },
            Event::Retry {
                client: 4,
                attempt: 2,
            },
            Event::OutageStart { client: 4 },
            Event::Recovery {
                client: 4,
                outage_ticks: 55,
            },
            Event::Abandon { client: 4 },
            Event::SessionEnd { client: 3 },
            Event::SessionReaped { node: 0, client: 5 },
            Event::BreakerOpen { node: 2 },
            Event::BreakerProbe { node: 2 },
            Event::BreakerClose { node: 2 },
            Event::CacheHit {
                node: 2,
                segment: 11,
            },
            Event::CacheCoalesced {
                node: 2,
                segment: 11,
            },
            Event::CacheMiss {
                node: 2,
                segment: 12,
            },
            Event::CacheEvict {
                node: 2,
                segment: 1,
                bytes: 64_000,
            },
            Event::FetchRetry {
                node: 2,
                segment: 12,
            },
            Event::FetchGiveUp {
                node: 2,
                segment: 12,
            },
            Event::FaultStrike {
                fault: "loss_burst".into(),
                a: 1,
                b: 7,
                detail: 250,
            },
            Event::FaultHeal {
                fault: "loss_burst".into(),
                a: 1,
                b: 7,
            },
            Event::HeartbeatMiss { node: 0, misses: 2 },
            Event::FailoverStart {
                from: 0,
                to: 9,
                misses: 3,
            },
            Event::Promoted { node: 9, epoch: 2 },
            Event::Demoted { node: 0, epoch: 2 },
            Event::Checkpoint {
                client: 3,
                horizon: 4_096,
            },
            Event::SessionMigrated {
                client: 3,
                horizon: 4_096,
            },
            Event::NackSent {
                node: 5,
                peer: 1,
                base_seq: 42,
                span: 3,
            },
            Event::Retransmit {
                node: 1,
                peer: 5,
                seq: 42,
                attempt: 1,
            },
            Event::RepairGiveUp {
                node: 1,
                peer: 5,
                seq: 44,
                retries: 3,
                budget: 3,
            },
            Event::GapSkipped {
                node: 5,
                peer: 1,
                seq: 44,
                nacks: 3,
                budget: 3,
            },
            Event::SpanOpen {
                node: 2,
                peer: 0,
                hop: "relay_fetch".into(),
                lecture: 0xfeed_beef,
                segment: 17,
            },
            Event::SpanClose {
                node: 2,
                peer: 0,
                hop: "relay_fetch".into(),
                lecture: 0xfeed_beef,
                segment: 17,
            },
        ];
        for (i, event) in all.into_iter().enumerate() {
            let rec = EventRecord {
                at: i as u64 * 100,
                event,
            };
            let line = rec.to_json();
            let back = parse_event(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(back, rec, "{line}");
        }
    }

    #[test]
    fn labels_with_quotes_and_backslashes_survive() {
        let rec = EventRecord {
            at: 1,
            event: Event::NodeLabel {
                node: 1,
                label: "we\"ird\\label".into(),
            },
        };
        assert_eq!(parse_event(&rec.to_json()).unwrap(), rec);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_event("not json").is_err());
        assert!(parse_event("{\"t\":1,\"kind\":\"no_such_kind\"}").is_err());
        assert!(parse_event("{\"t\":1,\"kind\":\"retry\",\"client\":2}").is_err());
    }

    #[test]
    fn jsonl_round_trips_in_order() {
        let recs = vec![
            EventRecord {
                at: 0,
                event: Event::SessionStart { client: 1 },
            },
            EventRecord {
                at: 5,
                event: Event::StallStart { client: 1 },
            },
        ];
        let text: String = recs.iter().map(|r| r.to_json() + "\n").collect();
        assert_eq!(parse_jsonl(&text).unwrap(), recs);
    }
}
