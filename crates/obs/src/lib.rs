//! **lod-obs** — deterministic tracing and metrics for the WMPS
//! reproduction.
//!
//! The paper's delivery chain (origin server, edge relays, players) is
//! reproduced as a seeded discrete-event simulation; this crate gives
//! every layer one shared, deterministic observability surface:
//!
//! * [`Recorder`] — a tick-stamped structured event bus. Components emit
//!   typed [`Event`]s (session lifecycle, stalls, downshifts, sheds,
//!   retries, breaker and cache traffic, fault strikes) in driver call
//!   order, so a seeded run logs byte-identical JSONL every time.
//! * [`Registry`] — integer-only counters, gauges and fixed-bucket
//!   [`Histogram`]s with exact merge, rendered as a Prometheus-style
//!   text exposition.
//! * [`SessionTimeline`] — folds the flat log back into each session's
//!   story (startup → stall spans → downshift → recovery), and
//!   [`check_causal`] cross-checks the log against the causal claims
//!   the aggregate counters cannot make.
//! * [`TraceCtx`] / [`SpanAssembler`] — a sampled cross-node tracing
//!   plane: a compact context rides the wire with each traced segment,
//!   every hop emits paired span events, and the assembler folds merged
//!   logs back into per-segment hop-latency waterfalls.
//!
//! Node identity is carried as raw `u64` indices: this crate sits below
//! the simulator in the dependency order (the fault injector emits into
//! it), so it cannot name `lod_simnet::NodeId`.

#![warn(missing_docs)]

mod event;
mod metrics;
mod recorder;
mod span;
mod timeline;

pub use event::{parse_event, parse_jsonl, Event, EventRecord};
pub use metrics::{parse_prometheus, Histogram, Registry, TICK_BOUNDS};
pub use recorder::Recorder;
pub use span::{
    fmt_ticks, lecture_id, sampled, HopStats, SegmentTrace, SpanAssembler, SpanRow, TraceCtx,
};
pub use timeline::{
    check_causal, session_timelines, worst_by_stall, CausalReport, EndKind, SessionTimeline,
    StallSpan,
};
