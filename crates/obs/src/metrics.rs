//! Integer-only metrics registry: counters, gauges and fixed-bucket
//! histograms with exact merge, rendered as a Prometheus-style text
//! exposition.
//!
//! Everything is `u64` and every container is a `BTreeMap`, so the
//! exposition of a seeded run is byte-identical across processes and
//! machines — the same discipline the experiment JSON reports follow.

use std::collections::BTreeMap;
use std::fmt::Write;

use serde::{Deserialize, Serialize};

/// Upper bucket bounds (in ticks, 100 ns units) for duration-flavored
/// histograms: 1 ms, 10 ms, 100 ms, 1 s, 5 s, 10 s, 60 s, 600 s.
pub const TICK_BOUNDS: [u64; 8] = [
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    50_000_000,
    100_000_000,
    600_000_000,
    6_000_000_000,
];

/// A fixed-bucket histogram over `u64` samples.
///
/// `counts[i]` holds samples `v <= bounds[i]` that fit no earlier
/// bucket; one extra overflow bucket (`+Inf`) catches the rest, so
/// every recorded sample lands in exactly one bucket and
/// `count == counts.sum()` always holds. Two histograms over the same
/// bounds merge by element-wise addition, which is exact, associative
/// and commutative — integer math only.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    sum: u64,
    count: u64,
}

impl Histogram {
    /// An empty histogram over `bounds`, which must be strictly
    /// increasing (they are *upper* bucket bounds).
    ///
    /// # Panics
    /// When `bounds` is not strictly increasing.
    pub fn new(bounds: &[u64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0,
            count: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum = self.sum.saturating_add(value);
        self.count += 1;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The configured upper bounds (without the implicit `+Inf`).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts; the final entry is the `+Inf` overflow bucket.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Cumulative counts per bucket (Prometheus `le` semantics); the
    /// final entry equals [`Histogram::count`].
    pub fn cumulative(&self) -> Vec<u64> {
        let mut acc = 0u64;
        self.counts
            .iter()
            .map(|&c| {
                acc += c;
                acc
            })
            .collect()
    }

    /// Adds `other` into `self` bucket by bucket. Exact: merging is
    /// associative and commutative and conserves `count` and `sum`
    /// (saturating on the sum like [`Histogram::record`]).
    ///
    /// # Panics
    /// When the two histograms have different bounds.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bounds"
        );
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.sum = self.sum.saturating_add(other.sum);
        self.count += other.count;
    }
}

/// A named collection of counters, gauges and histograms.
///
/// Counter and gauge names may carry a Prometheus label suffix
/// (`lod_events_total{kind="stall_start"}`); the part before `{` is the
/// metric family used for `# TYPE` grouping in the exposition.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

/// The metric family of a sample name: everything before the label set.
fn family(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `v` to the counter `name` (created at zero on first use).
    /// Allocation-free after a counter's first touch: the owned key is
    /// only created when the counter does not exist yet.
    pub fn counter_add(&mut self, name: &str, v: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += v;
        } else {
            self.counters.insert(name.to_string(), v);
        }
    }

    /// Current value of counter `name` (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets gauge `name` to `v` (allocation-free after first touch).
    pub fn gauge_set(&mut self, name: &str, v: u64) {
        if let Some(g) = self.gauges.get_mut(name) {
            *g = v;
        } else {
            self.gauges.insert(name.to_string(), v);
        }
    }

    /// Current value of gauge `name` (0 when never set).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Records `value` into histogram `name`, creating it over `bounds`
    /// on first use.
    ///
    /// # Panics
    /// When the histogram exists with different bounds.
    pub fn observe(&mut self, name: &str, bounds: &[u64], value: u64) {
        let h = self
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds));
        assert_eq!(
            h.bounds(),
            bounds,
            "histogram {name} re-used with different bounds"
        );
        h.record(value);
    }

    /// The histogram `name`, when it exists.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Merges `other` into `self`: counters add, gauges take `other`'s
    /// value, histograms merge exactly.
    pub fn merge(&mut self, other: &Registry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(k.clone(), h.clone());
                }
            }
        }
    }

    /// Renders the registry as a Prometheus-style text exposition.
    /// Deterministic: families and samples appear in lexicographic
    /// order, values are integers.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut last_family = "";
        for (name, v) in &self.counters {
            let fam = family(name);
            if fam != last_family {
                let _ = writeln!(out, "# TYPE {fam} counter");
                last_family = fam;
            }
            let _ = writeln!(out, "{name} {v}");
        }
        last_family = "";
        for (name, v) in &self.gauges {
            let fam = family(name);
            if fam != last_family {
                let _ = writeln!(out, "# TYPE {fam} gauge");
                last_family = fam;
            }
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "# TYPE {name} histogram");
            let cumulative = h.cumulative();
            for (i, c) in cumulative.iter().enumerate() {
                match h.bounds().get(i) {
                    Some(b) => {
                        let _ = writeln!(out, "{name}_bucket{{le=\"{b}\"}} {c}");
                    }
                    None => {
                        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {c}");
                    }
                }
            }
            let _ = writeln!(out, "{name}_sum {}", h.sum());
            let _ = writeln!(out, "{name}_count {}", h.count());
        }
        out
    }
}

/// Parser state for one histogram exposition block.
struct HistBlock {
    name: String,
    bounds: Vec<u64>,
    cumulative: Vec<u64>,
    sum: Option<u64>,
    count: Option<u64>,
    saw_inf: bool,
}

impl HistBlock {
    /// Validates the finished block and installs it into `reg`,
    /// de-cumulating the `le` bucket counts back to per-bucket counts.
    fn finish(self, reg: &mut Registry) -> Result<(), String> {
        let name = self.name;
        if !self.saw_inf {
            return Err(format!("histogram {name} missing +Inf bucket"));
        }
        let sum = self
            .sum
            .ok_or_else(|| format!("histogram {name} missing _sum"))?;
        let count = self
            .count
            .ok_or_else(|| format!("histogram {name} missing _count"))?;
        if self.cumulative.last() != Some(&count) {
            return Err(format!(
                "histogram {name} +Inf bucket disagrees with _count"
            ));
        }
        if !self.bounds.windows(2).all(|w| w[0] < w[1]) {
            return Err(format!("histogram {name} bounds not strictly increasing"));
        }
        let mut counts = Vec::with_capacity(self.cumulative.len());
        let mut prev = 0u64;
        for &c in &self.cumulative {
            if c < prev {
                return Err(format!("histogram {name} cumulative counts decrease"));
            }
            counts.push(c - prev);
            prev = c;
        }
        reg.histograms.insert(
            name,
            Histogram {
                bounds: self.bounds,
                counts,
                sum,
                count,
            },
        );
        Ok(())
    }
}

enum Section {
    Counter,
    Gauge,
    Hist(HistBlock),
}

/// Parses a text exposition produced by [`Registry::render`] back into a
/// [`Registry`]. The exact inverse on well-formed input —
/// `parse_prometheus(&r.render()) == Ok(r)` — and an error (never a
/// panic) on anything malformed: samples before a `# TYPE` header,
/// non-integer values, histograms missing their `+Inf` bucket, `_sum` or
/// `_count`, or cumulative bucket counts that decrease.
pub fn parse_prometheus(text: &str) -> Result<Registry, String> {
    let mut reg = Registry::new();
    let mut section: Option<Section> = None;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            if let Some(Section::Hist(block)) = section.take() {
                block.finish(&mut reg)?;
            }
            let (name, kind) = rest
                .rsplit_once(' ')
                .ok_or_else(|| format!("malformed TYPE header: {line}"))?;
            section = Some(match kind {
                "counter" => Section::Counter,
                "gauge" => Section::Gauge,
                "histogram" => Section::Hist(HistBlock {
                    name: name.to_string(),
                    bounds: Vec::new(),
                    cumulative: Vec::new(),
                    sum: None,
                    count: None,
                    saw_inf: false,
                }),
                other => return Err(format!("unknown metric type {other}: {line}")),
            });
            continue;
        }
        let (name, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("malformed sample line: {line}"))?;
        let value: u64 = value
            .parse()
            .map_err(|e| format!("non-integer value in {line}: {e}"))?;
        match &mut section {
            None => return Err(format!("sample before any # TYPE header: {line}")),
            Some(Section::Counter) => {
                reg.counters.insert(name.to_string(), value);
            }
            Some(Section::Gauge) => {
                reg.gauges.insert(name.to_string(), value);
            }
            Some(Section::Hist(block)) => {
                let suffix = name.strip_prefix(block.name.as_str()).ok_or_else(|| {
                    format!("sample {name} inside histogram block {}", block.name)
                })?;
                if let Some(le) = suffix
                    .strip_prefix("_bucket{le=\"")
                    .and_then(|s| s.strip_suffix("\"}"))
                {
                    if block.saw_inf {
                        return Err(format!("bucket after +Inf in histogram {}", block.name));
                    }
                    if le == "+Inf" {
                        block.saw_inf = true;
                    } else {
                        block
                            .bounds
                            .push(le.parse().map_err(|e| format!("bad le bound {le}: {e}"))?);
                    }
                    block.cumulative.push(value);
                } else if suffix == "_sum" {
                    block.sum = Some(value);
                } else if suffix == "_count" {
                    block.count = Some(value);
                } else {
                    return Err(format!("unexpected histogram sample: {line}"));
                }
            }
        }
    }
    if let Some(Section::Hist(block)) = section.take() {
        block.finish(&mut reg)?;
    }
    Ok(reg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(&[10, 100]);
        h.record(0);
        h.record(10);
        h.record(11);
        h.record(1000);
        assert_eq!(h.bucket_counts(), &[2, 1, 1]);
        assert_eq!(h.cumulative(), vec![2, 3, 4]);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1021);
    }

    #[test]
    fn histogram_merge_is_exact() {
        let mut a = Histogram::new(&[10, 100]);
        let mut b = Histogram::new(&[10, 100]);
        a.record(5);
        a.record(500);
        b.record(50);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 3);
        assert_eq!(merged.sum(), 555);
        assert_eq!(merged.bucket_counts(), &[1, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "different bounds")]
    fn histogram_merge_rejects_mismatched_bounds() {
        let mut a = Histogram::new(&[10]);
        a.merge(&Histogram::new(&[20]));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        Histogram::new(&[10, 10]);
    }

    #[test]
    fn histogram_sum_saturates() {
        let mut h = Histogram::new(&[10]);
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn registry_render_is_sorted_and_integer() {
        let mut r = Registry::new();
        r.counter_add("lod_events_total{kind=\"stall_start\"}", 2);
        r.counter_add("lod_events_total{kind=\"downshift\"}", 1);
        r.counter_add("lod_bytes_total", 99);
        r.gauge_set("lod_session_ticks", 1234);
        r.observe("lod_startup_ticks", &[10, 100], 7);
        let text = r.render();
        let expected = "\
# TYPE lod_bytes_total counter
lod_bytes_total 99
# TYPE lod_events_total counter
lod_events_total{kind=\"downshift\"} 1
lod_events_total{kind=\"stall_start\"} 2
# TYPE lod_session_ticks gauge
lod_session_ticks 1234
# TYPE lod_startup_ticks histogram
lod_startup_ticks_bucket{le=\"10\"} 1
lod_startup_ticks_bucket{le=\"100\"} 1
lod_startup_ticks_bucket{le=\"+Inf\"} 1
lod_startup_ticks_sum 7
lod_startup_ticks_count 1
";
        assert_eq!(text, expected);
    }

    #[test]
    fn exposition_round_trips_exactly() {
        let mut r = Registry::new();
        r.counter_add("lod_events_total{kind=\"stall_start\"}", 2);
        r.counter_add("lod_bytes_total", 99);
        r.gauge_set("lod_session_ticks", 1234);
        r.gauge_set("lod_events_dropped", 7);
        r.observe("lod_startup_ticks", &TICK_BOUNDS, 7);
        r.observe("lod_startup_ticks", &TICK_BOUNDS, 123_456_789);
        r.observe("lod_trace_hop_ticks{hop=\"wire\"}", &[10, 100], 55);
        let text = r.render();
        let back = parse_prometheus(&text).expect("parse");
        assert_eq!(back, r);
        assert_eq!(back.render(), text);
    }

    #[test]
    fn parse_prometheus_rejects_malformed_expositions() {
        assert!(parse_prometheus("lod_x 1").is_err(), "sample before TYPE");
        assert!(parse_prometheus("# TYPE lod_x counter\nlod_x one").is_err());
        assert!(parse_prometheus("# TYPE lod_x widget\n").is_err());
        // Histogram with no +Inf bucket.
        let no_inf = "# TYPE h histogram\nh_bucket{le=\"10\"} 1\nh_sum 5\nh_count 1\n";
        assert!(parse_prometheus(no_inf).is_err());
        // Cumulative counts that decrease.
        let decreasing = "# TYPE h histogram\nh_bucket{le=\"10\"} 2\n\
                          h_bucket{le=\"+Inf\"} 1\nh_sum 5\nh_count 1\n";
        assert!(parse_prometheus(decreasing).is_err());
        // +Inf bucket disagreeing with _count.
        let off_count = "# TYPE h histogram\nh_bucket{le=\"10\"} 1\n\
                         h_bucket{le=\"+Inf\"} 1\nh_sum 5\nh_count 2\n";
        assert!(parse_prometheus(off_count).is_err());
    }

    #[test]
    fn registry_merge_adds_counters_and_histograms() {
        let mut a = Registry::new();
        let mut b = Registry::new();
        a.counter_add("c", 1);
        b.counter_add("c", 2);
        a.observe("h", &[10], 3);
        b.observe("h", &[10], 30);
        b.gauge_set("g", 9);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.gauge("g"), 9);
        assert_eq!(a.histogram("h").unwrap().count(), 2);
    }
}
