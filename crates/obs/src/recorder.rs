//! The shared event bus every subsystem emits into.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use crate::event::{Event, EventRecord};
use crate::metrics::Registry;

#[derive(Debug, Default)]
struct Inner {
    events: Vec<EventRecord>,
    registry: Registry,
    labels: BTreeMap<u64, String>,
}

/// A cheap-to-clone handle on one run's event log and metrics registry.
///
/// The server, relays, clients and fault injector of one simulation all
/// hold clones of the same recorder; emission order is the
/// single-threaded driver's call order, so a seeded run produces an
/// identical log every time. A disabled recorder (the default) makes
/// every call a no-op, so instrumented components cost nothing when
/// nobody is listening.
///
/// Everything is process-local (`Rc<RefCell>`): the simulation is
/// single-threaded by design, and determinism depends on that.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Rc<RefCell<Inner>>>,
}

impl Recorder {
    /// An armed recorder that collects events and metrics.
    pub fn new() -> Self {
        Self {
            inner: Some(Rc::new(RefCell::new(Inner::default()))),
        }
    }

    /// A recorder that drops everything (the default for components
    /// nobody instrumented).
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Whether this handle actually records.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Appends `event` at tick `at` and bumps its
    /// `lod_events_total{kind="..."}` counter.
    pub fn emit(&self, at: u64, event: Event) {
        let Some(inner) = &self.inner else {
            return;
        };
        let mut inner = inner.borrow_mut();
        inner
            .registry
            .counter_add(&format!("lod_events_total{{kind=\"{}\"}}", event.kind()), 1);
        inner.events.push(EventRecord { at, event });
    }

    /// Names a node's role (`origin`, `relay0`, `student17`). Emits a
    /// [`Event::NodeLabel`] at tick 0 and remembers the mapping for
    /// [`Recorder::node_by_label`].
    pub fn label_node(&self, node: u64, label: &str) {
        let Some(inner) = &self.inner else {
            return;
        };
        inner.borrow_mut().labels.insert(node, label.to_string());
        self.emit(
            0,
            Event::NodeLabel {
                node,
                label: label.to_string(),
            },
        );
    }

    /// The node carrying `label`, when one was registered.
    pub fn node_by_label(&self, label: &str) -> Option<u64> {
        let inner = self.inner.as_ref()?;
        let inner = inner.borrow();
        inner
            .labels
            .iter()
            .find(|(_, l)| l.as_str() == label)
            .map(|(&n, _)| n)
    }

    /// Adds `v` to counter `name`.
    pub fn counter_add(&self, name: &str, v: u64) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().registry.counter_add(name, v);
        }
    }

    /// Sets gauge `name` to `v`.
    pub fn gauge_set(&self, name: &str, v: u64) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().registry.gauge_set(name, v);
        }
    }

    /// Records `value` into histogram `name` (created over `bounds` on
    /// first use).
    pub fn observe(&self, name: &str, bounds: &[u64], value: u64) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().registry.observe(name, bounds, value);
        }
    }

    /// Number of events recorded so far.
    pub fn event_count(&self) -> usize {
        self.inner
            .as_ref()
            .map_or(0, |inner| inner.borrow().events.len())
    }

    /// A copy of the event log in emission order.
    pub fn events(&self) -> Vec<EventRecord> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |inner| inner.borrow().events.clone())
    }

    /// A copy of the metrics registry.
    pub fn registry(&self) -> Registry {
        self.inner
            .as_ref()
            .map_or_else(Registry::new, |inner| inner.borrow().registry.clone())
    }

    /// Serializes the event log as JSONL, one event per line, in
    /// emission order. Byte-identical across seeded replays.
    pub fn to_jsonl(&self) -> String {
        let Some(inner) = &self.inner else {
            return String::new();
        };
        let inner = inner.borrow();
        let mut out = String::with_capacity(inner.events.len() * 64);
        for rec in &inner.events {
            out.push_str(&rec.to_json());
            out.push('\n');
        }
        out
    }

    /// Renders the metrics registry as a Prometheus-style exposition.
    pub fn prometheus(&self) -> String {
        self.inner
            .as_ref()
            .map_or_else(String::new, |inner| inner.borrow().registry.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_a_no_op() {
        let r = Recorder::disabled();
        r.emit(1, Event::SessionStart { client: 1 });
        r.counter_add("c", 1);
        assert!(!r.is_enabled());
        assert_eq!(r.event_count(), 0);
        assert_eq!(r.to_jsonl(), "");
        assert_eq!(r.prometheus(), "");
    }

    #[test]
    fn clones_share_one_log() {
        let r = Recorder::new();
        let r2 = r.clone();
        r.emit(1, Event::SessionStart { client: 1 });
        r2.emit(2, Event::StallStart { client: 1 });
        assert_eq!(r.event_count(), 2);
        assert_eq!(
            r.registry()
                .counter("lod_events_total{kind=\"session_start\"}"),
            1
        );
    }

    #[test]
    fn labels_resolve_and_serialize() {
        let r = Recorder::new();
        r.label_node(0, "origin");
        assert_eq!(r.node_by_label("origin"), Some(0));
        assert_eq!(r.node_by_label("router"), None);
        assert!(r.to_jsonl().contains("\"kind\":\"node_label\""));
    }

    #[test]
    fn jsonl_round_trips_through_the_parser() {
        let r = Recorder::new();
        r.label_node(0, "origin");
        r.emit(10, Event::SessionStart { client: 3 });
        r.emit(
            20,
            Event::Downshift {
                client: 3,
                from_bps: 2,
                to_bps: 1,
            },
        );
        let parsed = crate::event::parse_jsonl(&r.to_jsonl()).unwrap();
        assert_eq!(parsed, r.events());
    }
}
