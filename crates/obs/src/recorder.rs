//! The shared event bus every subsystem emits into.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use crate::event::{Event, EventRecord};
use crate::metrics::Registry;

/// Event storage: unbounded by default (determinism artifacts need the
/// full log), or a preallocated fixed-capacity ring that keeps the most
/// recent events and counts what it dropped — the hot-path choice for
/// long perf runs, where emission must not allocate or grow.
#[derive(Debug, Default)]
struct EventLog {
    slots: Vec<EventRecord>,
    /// `Some(cap)` for ring mode; `None` grows without bound.
    capacity: Option<usize>,
    /// Ring mode: index of the oldest retained record once wrapped.
    head: usize,
    /// Events overwritten because the ring was full.
    dropped: u64,
}

impl EventLog {
    fn push(&mut self, rec: EventRecord) {
        match self.capacity {
            Some(cap) if self.slots.len() == cap => {
                // Full ring: overwrite the oldest slot in place. No
                // allocation, no shift — O(1) per event forever.
                self.slots[self.head] = rec;
                self.head = (self.head + 1) % cap;
                self.dropped += 1;
            }
            _ => self.slots.push(rec),
        }
    }

    /// Retained records, oldest first.
    fn to_vec(&self) -> Vec<EventRecord> {
        let mut out = Vec::with_capacity(self.slots.len());
        out.extend_from_slice(&self.slots[self.head..]);
        out.extend_from_slice(&self.slots[..self.head]);
        out
    }
}

#[derive(Debug, Default)]
struct Inner {
    events: EventLog,
    registry: Registry,
    labels: BTreeMap<u64, String>,
    /// Interned `lod_events_total{kind="…"}` counter names, built once
    /// per event kind so emission never formats on the hot path.
    kind_counter_names: BTreeMap<&'static str, String>,
}

/// A cheap-to-clone handle on one run's event log and metrics registry.
///
/// The server, relays, clients and fault injector of one simulation all
/// hold clones of the same recorder; emission order is the
/// single-threaded driver's call order, so a seeded run produces an
/// identical log every time. A disabled recorder (the default) makes
/// every call a no-op, so instrumented components cost nothing when
/// nobody is listening.
///
/// Everything is process-local (`Rc<RefCell>`): the simulation is
/// single-threaded by design, and determinism depends on that.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Rc<RefCell<Inner>>>,
}

impl Recorder {
    /// An armed recorder that collects events and metrics.
    pub fn new() -> Self {
        Self {
            inner: Some(Rc::new(RefCell::new(Inner::default()))),
        }
    }

    /// An armed recorder whose event log is a preallocated ring keeping
    /// only the most recent `capacity` events ([`Recorder::events_dropped`]
    /// counts the overwritten ones). Metrics are unaffected. Use this for
    /// long or perf-sensitive runs: once the ring is warm, emission never
    /// allocates. Determinism gates keep using [`Recorder::new`], which
    /// retains everything.
    pub fn with_event_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        let inner = Inner {
            events: EventLog {
                slots: Vec::with_capacity(capacity),
                capacity: Some(capacity),
                head: 0,
                dropped: 0,
            },
            ..Inner::default()
        };
        Self {
            inner: Some(Rc::new(RefCell::new(inner))),
        }
    }

    /// A recorder that drops everything (the default for components
    /// nobody instrumented).
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Whether this handle actually records.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Appends `event` at tick `at` and bumps its
    /// `lod_events_total{kind="..."}` counter.
    pub fn emit(&self, at: u64, event: Event) {
        let Some(inner) = &self.inner else {
            return;
        };
        let inner = &mut *inner.borrow_mut();
        // The counter name is formatted once per kind, then reused: a
        // warm emit performs no allocation beyond what the record holds.
        let name = inner
            .kind_counter_names
            .entry(event.kind())
            .or_insert_with(|| format!("lod_events_total{{kind=\"{}\"}}", event.kind()));
        inner.registry.counter_add(name, 1);
        inner.events.push(EventRecord { at, event });
        // Surface ring-mode loss in the registry so a metrics-only
        // scrape (no event log) still shows the log was truncated.
        if inner.events.dropped > 0 {
            inner
                .registry
                .gauge_set("lod_events_dropped", inner.events.dropped);
        }
    }

    /// Names a node's role (`origin`, `relay0`, `student17`). Emits a
    /// [`Event::NodeLabel`] at tick 0 and remembers the mapping for
    /// [`Recorder::node_by_label`].
    pub fn label_node(&self, node: u64, label: &str) {
        let Some(inner) = &self.inner else {
            return;
        };
        inner.borrow_mut().labels.insert(node, label.to_string());
        self.emit(
            0,
            Event::NodeLabel {
                node,
                label: label.to_string(),
            },
        );
    }

    /// The node carrying `label`, when one was registered.
    pub fn node_by_label(&self, label: &str) -> Option<u64> {
        let inner = self.inner.as_ref()?;
        let inner = inner.borrow();
        inner
            .labels
            .iter()
            .find(|(_, l)| l.as_str() == label)
            .map(|(&n, _)| n)
    }

    /// Adds `v` to counter `name`.
    pub fn counter_add(&self, name: &str, v: u64) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().registry.counter_add(name, v);
        }
    }

    /// Sets gauge `name` to `v`.
    pub fn gauge_set(&self, name: &str, v: u64) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().registry.gauge_set(name, v);
        }
    }

    /// Records `value` into histogram `name` (created over `bounds` on
    /// first use).
    pub fn observe(&self, name: &str, bounds: &[u64], value: u64) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().registry.observe(name, bounds, value);
        }
    }

    /// Number of events currently retained (in ring mode, at most the
    /// configured capacity).
    pub fn event_count(&self) -> usize {
        self.inner
            .as_ref()
            .map_or(0, |inner| inner.borrow().events.slots.len())
    }

    /// Events overwritten by a full ring (always 0 for [`Recorder::new`]).
    pub fn events_dropped(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |inner| inner.borrow().events.dropped)
    }

    /// A copy of the retained event log in emission order.
    pub fn events(&self) -> Vec<EventRecord> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |inner| inner.borrow().events.to_vec())
    }

    /// A copy of the metrics registry.
    pub fn registry(&self) -> Registry {
        self.inner
            .as_ref()
            .map_or_else(Registry::new, |inner| inner.borrow().registry.clone())
    }

    /// Serializes the event log as JSONL, one event per line, in
    /// emission order. Byte-identical across seeded replays.
    pub fn to_jsonl(&self) -> String {
        let Some(inner) = &self.inner else {
            return String::new();
        };
        let inner = inner.borrow();
        let mut out = String::with_capacity(inner.events.slots.len() * 64);
        for rec in inner.events.to_vec() {
            out.push_str(&rec.to_json());
            out.push('\n');
        }
        out
    }

    /// Renders the metrics registry as a Prometheus-style exposition.
    pub fn prometheus(&self) -> String {
        self.inner
            .as_ref()
            .map_or_else(String::new, |inner| inner.borrow().registry.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_a_no_op() {
        let r = Recorder::disabled();
        r.emit(1, Event::SessionStart { client: 1 });
        r.counter_add("c", 1);
        assert!(!r.is_enabled());
        assert_eq!(r.event_count(), 0);
        assert_eq!(r.to_jsonl(), "");
        assert_eq!(r.prometheus(), "");
    }

    #[test]
    fn clones_share_one_log() {
        let r = Recorder::new();
        let r2 = r.clone();
        r.emit(1, Event::SessionStart { client: 1 });
        r2.emit(2, Event::StallStart { client: 1 });
        assert_eq!(r.event_count(), 2);
        assert_eq!(
            r.registry()
                .counter("lod_events_total{kind=\"session_start\"}"),
            1
        );
    }

    #[test]
    fn labels_resolve_and_serialize() {
        let r = Recorder::new();
        r.label_node(0, "origin");
        assert_eq!(r.node_by_label("origin"), Some(0));
        assert_eq!(r.node_by_label("router"), None);
        assert!(r.to_jsonl().contains("\"kind\":\"node_label\""));
    }

    #[test]
    fn ring_mode_keeps_most_recent_events_in_order() {
        let r = Recorder::with_event_capacity(3);
        for t in 0..5 {
            r.emit(t, Event::SessionStart { client: t });
        }
        assert_eq!(r.event_count(), 3);
        assert_eq!(r.events_dropped(), 2);
        assert_eq!(r.registry().gauge("lod_events_dropped"), 2);
        let ticks: Vec<u64> = r.events().iter().map(|rec| rec.at).collect();
        assert_eq!(ticks, vec![2, 3, 4]);
        // JSONL matches events(): oldest retained first.
        let parsed = crate::event::parse_jsonl(&r.to_jsonl()).unwrap();
        assert_eq!(parsed, r.events());
    }

    #[test]
    fn ring_mode_counts_every_emission_in_metrics() {
        let r = Recorder::with_event_capacity(2);
        for t in 0..10 {
            r.emit(t, Event::SessionStart { client: 1 });
        }
        // Metrics see all 10 emissions even though only 2 are retained.
        assert_eq!(
            r.registry()
                .counter("lod_events_total{kind=\"session_start\"}"),
            10
        );
        assert_eq!(r.events_dropped(), 8);
        assert_eq!(r.registry().gauge("lod_events_dropped"), 8);
        assert!(r.prometheus().contains("lod_events_dropped 8"));
    }

    #[test]
    fn unbounded_recorder_never_drops() {
        let r = Recorder::new();
        for t in 0..100 {
            r.emit(t, Event::SessionStart { client: 1 });
        }
        assert_eq!(r.event_count(), 100);
        assert_eq!(r.events_dropped(), 0);
        // No loss means no gauge: the sample only appears once real.
        assert_eq!(r.registry().gauge("lod_events_dropped"), 0);
        assert!(!r.prometheus().contains("lod_events_dropped"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_ring_is_rejected() {
        Recorder::with_event_capacity(0);
    }

    #[test]
    fn jsonl_round_trips_through_the_parser() {
        let r = Recorder::new();
        r.label_node(0, "origin");
        r.emit(10, Event::SessionStart { client: 3 });
        r.emit(
            20,
            Event::Downshift {
                client: 3,
                from_bps: 2,
                to_bps: 1,
            },
        );
        let parsed = crate::event::parse_jsonl(&r.to_jsonl()).unwrap();
        assert_eq!(parsed, r.events());
    }
}
