//! Cross-node trace contexts, deterministic head-sampling, and the
//! span assembler that folds merged JSONL logs back into per-segment
//! hop-latency waterfalls.
//!
//! A [`TraceCtx`] names one sampled segment delivery: the lecture (a
//! splitmix64 hash of the content name), the segment index, a per-node
//! mint sequence and the origin tick it was minted at. The ctx rides the
//! streaming wire (`FetchSegment`/`SegmentData`/`Mark`) and the UDP
//! frame header, and every hop that sees it emits a paired
//! [`Event::SpanOpen`]/[`Event::SpanClose`] into its local [`Recorder`].
//! Because the sampling decision is a pure function of `(lecture,
//! segment)`, every node reaches the same verdict without coordination —
//! ctx presence on the wire *is* the propagated decision.
//!
//! The hop vocabulary, in delivery order:
//!
//! | hop            | opens at                    | closes at                  |
//! |----------------|-----------------------------|----------------------------|
//! | `relay_fetch`  | relay issues `FetchSegment` | relay receives the segment |
//! | `packetize`    | origin starts serving       | origin hands bytes to wire |
//! | `fan_out`      | relay starts a segment      | relay finishes the segment |
//! | `pace`         | sender enqueues a frame     | frame reaches the socket   |
//! | `wire`         | frame's `sent_at` stamp     | receiver drains it         |
//! | `reorder`      | frame arrives out of order  | frame is released in order |
//! | `repair_stall` | lost frame's `sent_at`      | repair (or skip) releases  |
//! | `reassemble`   | client sees the `Mark`      | first sample completes     |
//! | `playout_wait` | sample enters the buffer    | sample is rendered         |
//!
//! [`Recorder`]: crate::Recorder

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write;

use crate::event::{Event, EventRecord};
use crate::metrics::{Registry, TICK_BOUNDS};

/// Compact trace context for one sampled segment delivery. 32 bytes on
/// the wire (four little-endian u64s), cheap enough to stamp into every
/// traced frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TraceCtx {
    /// Lecture id: [`lecture_id`] of the content name.
    pub lecture: u64,
    /// Segment index within the lecture.
    pub segment: u64,
    /// Mint sequence on the minting node (disambiguates re-fetches of
    /// the same segment).
    pub seq: u64,
    /// Tick the ctx was minted at (the trace's time origin).
    pub origin: u64,
}

/// The splitmix64 mixing function — the repo-wide deterministic hash.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes a content name to its lecture id. Deterministic across nodes
/// and runs; every participant derives the same id from the same name.
pub fn lecture_id(content: &str) -> u64 {
    let mut h = 0xA076_1D64_78BD_642Fu64;
    for chunk in content.as_bytes().chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        h = splitmix64(h ^ u64::from_le_bytes(word));
    }
    h
}

/// Deterministic head-sampling verdict for `(lecture, segment)` at
/// `permille` parts-per-thousand. Pure and coordination-free: any node
/// can recompute the decision, but in practice only the minting relay
/// does — everyone downstream trusts ctx presence on the wire.
pub fn sampled(lecture: u64, segment: u64, permille: u16) -> bool {
    if permille == 0 {
        return false;
    }
    if permille >= 1000 {
        return true;
    }
    splitmix64(lecture ^ splitmix64(segment)) % 1000 < u64::from(permille)
}

/// One assembled hop span within a segment trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanRow {
    /// Hop name from the fixed vocabulary.
    pub hop: String,
    /// Node the hop ran on.
    pub node: u64,
    /// The hop's other endpoint (== `node` for local hops).
    pub peer: u64,
    /// Tick of the first `SpanOpen` for this key.
    pub open: u64,
    /// Tick of the last `SpanClose`, when one arrived.
    pub close: Option<u64>,
}

impl SpanRow {
    /// Span duration in ticks; zero while unclosed or when the close
    /// landed before the open (clock-skewed logs).
    pub fn duration(&self) -> u64 {
        self.close.map_or(0, |c| c.saturating_sub(self.open))
    }
}

/// The reconstructed waterfall for one `(lecture, segment)` delivery.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentTrace {
    /// Lecture id.
    pub lecture: u64,
    /// Segment index.
    pub segment: u64,
    /// Hop spans sorted by open tick (ties by hop name, then node).
    pub spans: Vec<SpanRow>,
}

impl SegmentTrace {
    /// End-to-end latency: last close (or open, if nothing closed)
    /// minus first open, in ticks.
    pub fn end_to_end(&self) -> u64 {
        let first = self.spans.iter().map(|s| s.open).min().unwrap_or(0);
        let last = self
            .spans
            .iter()
            .map(|s| s.close.unwrap_or(s.open))
            .max()
            .unwrap_or(0);
        last.saturating_sub(first)
    }

    /// Renders the trace as an ASCII waterfall, one row per hop span,
    /// bars scaled to `width` columns of wall time.
    pub fn waterfall(&self, width: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "segment {} (lecture {:016x}) — {} end-to-end",
            self.segment,
            self.lecture,
            fmt_ticks(self.end_to_end())
        );
        if self.spans.is_empty() {
            out.push_str("  (no spans)\n");
            return out;
        }
        let t0 = self.spans.iter().map(|s| s.open).min().unwrap_or(0);
        let t1 = self
            .spans
            .iter()
            .map(|s| s.close.unwrap_or(s.open))
            .max()
            .unwrap_or(t0);
        let total = (t1 - t0).max(1);
        let width = width.max(10);
        let scale =
            |t: u64| (t.saturating_sub(t0) as u128 * width as u128 / total as u128) as usize;
        for s in &self.spans {
            let start = scale(s.open); // 0..=width
            let end = scale(s.close.unwrap_or(s.open)).max(start + 1); // start+1..=width+1
            let _ = writeln!(
                out,
                "  {:<13} {:>3}→{:<3} |{}{}{}| {}{}",
                s.hop,
                s.node,
                s.peer,
                " ".repeat(start),
                "█".repeat(end - start),
                " ".repeat(width + 1 - end),
                fmt_ticks(s.duration()),
                if s.close.is_none() { " (unclosed)" } else { "" },
            );
        }
        out
    }
}

/// Formats a tick count (100 ns units) as human-readable milliseconds.
pub fn fmt_ticks(ticks: u64) -> String {
    // One tick is 100 ns; 10_000 ticks is a millisecond.
    let tenths_of_ms = ticks / 1_000;
    format!("{}.{}ms", tenths_of_ms / 10, tenths_of_ms % 10)
}

/// Per-hop latency summary across every trace the assembler has seen.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HopStats {
    /// Hop name.
    pub hop: String,
    /// Closed spans observed.
    pub count: u64,
    /// Median duration in ticks (nearest-rank).
    pub p50: u64,
    /// 99th-percentile duration in ticks (nearest-rank).
    pub p99: u64,
}

/// Reconstructs per-segment waterfalls from span events in a merged
/// JSONL log. Feed it every record (non-span events are ignored), then
/// ask for individual [`SegmentTrace`]s, aggregate [`HopStats`], or
/// per-hop latency [`Histogram`]s via [`SpanAssembler::feed_histograms`].
///
/// Duplicate opens keep the earliest tick and duplicate closes the
/// latest (fault-injected duplicate frames legitimately double-close a
/// `pace` span); closes without a matching open are counted in
/// [`SpanAssembler::stray_closes`] but otherwise ignored.
///
/// [`Histogram`]: crate::Histogram
#[derive(Debug, Default)]
pub struct SpanAssembler {
    // (lecture, segment) -> (node, peer, hop) -> (open, close)
    segments: BTreeMap<(u64, u64), SegmentSpans>,
    stray_closes: u64,
}

/// One segment's accumulated spans: (node, peer, hop) → (open, close).
type SegmentSpans = BTreeMap<(u64, u64, String), (Option<u64>, Option<u64>)>;

impl SpanAssembler {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingests one record; non-span events are ignored.
    pub fn ingest(&mut self, rec: &EventRecord) {
        match &rec.event {
            Event::SpanOpen {
                node,
                peer,
                hop,
                lecture,
                segment,
            } => {
                let slot = self
                    .segments
                    .entry((*lecture, *segment))
                    .or_default()
                    .entry((*node, *peer, hop.clone()))
                    .or_insert((None, None));
                // First open wins: a duplicate open never moves the start.
                if slot.0.is_none_or(|t| rec.at < t) {
                    slot.0 = Some(rec.at);
                }
            }
            Event::SpanClose {
                node,
                peer,
                hop,
                lecture,
                segment,
            } => {
                match self
                    .segments
                    .get_mut(&(*lecture, *segment))
                    .and_then(|m| m.get_mut(&(*node, *peer, hop.clone())))
                {
                    Some(slot) if slot.0.is_some() => {
                        if slot.1.is_none_or(|t| rec.at > t) {
                            slot.1 = Some(rec.at);
                        }
                    }
                    _ => self.stray_closes += 1,
                }
            }
            _ => {}
        }
    }

    /// Ingests a whole record slice.
    pub fn ingest_all(&mut self, recs: &[EventRecord]) {
        for r in recs {
            self.ingest(r);
        }
    }

    /// Closes seen without a matching open (tolerated, but reported).
    pub fn stray_closes(&self) -> u64 {
        self.stray_closes
    }

    /// Every `(lecture, segment)` key with at least one span, sorted.
    pub fn segments(&self) -> Vec<(u64, u64)> {
        self.segments.keys().copied().collect()
    }

    /// The assembled trace for one segment, or `None` if unseen. Pass
    /// `lecture = None` to match any lecture carrying that segment index
    /// (the common single-lecture CLI case).
    pub fn trace(&self, lecture: Option<u64>, segment: u64) -> Option<SegmentTrace> {
        let ((lec, seg), spans) = self
            .segments
            .iter()
            .find(|((l, s), _)| *s == segment && lecture.is_none_or(|want| *l == want))?;
        let mut rows: Vec<SpanRow> = spans
            .iter()
            .filter_map(|((node, peer, hop), (open, close))| {
                open.map(|open| SpanRow {
                    hop: hop.clone(),
                    node: *node,
                    peer: *peer,
                    open,
                    close: *close,
                })
            })
            .collect();
        rows.sort_by(|a, b| {
            (a.open, &a.hop, a.node, a.peer).cmp(&(b.open, &b.hop, b.node, b.peer))
        });
        Some(SegmentTrace {
            lecture: *lec,
            segment: *seg,
            spans: rows,
        })
    }

    /// All assembled traces, in `(lecture, segment)` order.
    pub fn traces(&self) -> Vec<SegmentTrace> {
        self.segments
            .keys()
            .filter_map(|(l, s)| self.trace(Some(*l), *s))
            .collect()
    }

    /// The worst `n` segments by end-to-end latency, descending. Ties
    /// break toward the lower `(lecture, segment)` key.
    pub fn worst_by_end_to_end(&self, n: usize) -> Vec<SegmentTrace> {
        let mut all = self.traces();
        all.sort_by(|a, b| {
            b.end_to_end()
                .cmp(&a.end_to_end())
                .then((a.lecture, a.segment).cmp(&(b.lecture, b.segment)))
        });
        all.truncate(n);
        all
    }

    /// Per-hop duration percentiles across every closed span, sorted by
    /// hop name.
    pub fn hop_stats(&self) -> Vec<HopStats> {
        let mut per_hop: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
        for spans in self.segments.values() {
            for ((_, _, hop), (open, close)) in spans {
                if let (Some(o), Some(c)) = (open, close) {
                    per_hop.entry(hop).or_default().push(c.saturating_sub(*o));
                }
            }
        }
        per_hop
            .into_iter()
            .map(|(hop, mut durs)| {
                durs.sort_unstable();
                HopStats {
                    hop: hop.to_string(),
                    count: durs.len() as u64,
                    p50: nearest_rank(&durs, 500),
                    p99: nearest_rank(&durs, 990),
                }
            })
            .collect()
    }

    /// Feeds every closed span's duration into per-hop tick histograms
    /// named `lod_trace_hop_ticks{hop="…"}` over [`TICK_BOUNDS`].
    pub fn feed_histograms(&self, reg: &mut Registry) {
        for spans in self.segments.values() {
            for ((_, _, hop), (open, close)) in spans {
                if let (Some(o), Some(c)) = (open, close) {
                    reg.observe(
                        &format!("lod_trace_hop_ticks{{hop=\"{hop}\"}}"),
                        &TICK_BOUNDS,
                        c.saturating_sub(*o),
                    );
                }
            }
        }
    }
}

/// Nearest-rank percentile over a sorted slice, `permille` in [0, 1000].
fn nearest_rank(sorted: &[u64], permille: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (permille * sorted.len() as u64).div_ceil(1000).max(1) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(at: u64, open: bool, node: u64, peer: u64, hop: &str, seg: u64) -> EventRecord {
        let (lecture, segment) = (7, seg);
        EventRecord {
            at,
            event: if open {
                Event::SpanOpen {
                    node,
                    peer,
                    hop: hop.into(),
                    lecture,
                    segment,
                }
            } else {
                Event::SpanClose {
                    node,
                    peer,
                    hop: hop.into(),
                    lecture,
                    segment,
                }
            },
        }
    }

    #[test]
    fn sampling_is_deterministic_and_respects_permille_edges() {
        assert!(!sampled(1, 2, 0));
        assert!(sampled(1, 2, 1000));
        assert!(sampled(1, 2, 1500));
        for seg in 0..64 {
            assert_eq!(sampled(9, seg, 250), sampled(9, seg, 250));
        }
        // At 250‰ roughly a quarter of segments should be picked —
        // loosely banded so the test pins behavior, not the hash.
        let picked = (0..1000).filter(|s| sampled(42, *s, 250)).count();
        assert!((150..350).contains(&picked), "picked {picked}");
    }

    #[test]
    fn lecture_ids_differ_across_names_and_agree_across_calls() {
        assert_eq!(lecture_id("lecture-9"), lecture_id("lecture-9"));
        assert_ne!(lecture_id("lecture-9"), lecture_id("lecture-8"));
        assert_ne!(lecture_id(""), lecture_id("\0"));
    }

    #[test]
    fn assembler_reconstructs_a_waterfall_in_open_order() {
        let mut asm = SpanAssembler::new();
        asm.ingest_all(&[
            span(100, true, 2, 0, "relay_fetch", 4),
            span(120, true, 0, 2, "packetize", 4),
            span(180, false, 0, 2, "packetize", 4),
            span(300, false, 2, 0, "relay_fetch", 4),
            span(320, true, 2, 5, "fan_out", 4),
            span(900, false, 2, 5, "fan_out", 4),
        ]);
        let t = asm.trace(Some(7), 4).expect("trace");
        assert_eq!(
            t.spans.iter().map(|s| s.hop.as_str()).collect::<Vec<_>>(),
            ["relay_fetch", "packetize", "fan_out"]
        );
        assert_eq!(t.end_to_end(), 800);
        let art = t.waterfall(40);
        assert!(art.contains("relay_fetch"), "{art}");
        assert!(art.contains("fan_out"), "{art}");
        assert!(!art.contains("unclosed"), "{art}");
    }

    #[test]
    fn duplicate_opens_and_closes_collapse_to_widest_span() {
        let mut asm = SpanAssembler::new();
        asm.ingest_all(&[
            span(50, true, 1, 2, "pace", 0),
            span(60, true, 1, 2, "pace", 0),
            span(70, false, 1, 2, "pace", 0),
            span(90, false, 1, 2, "pace", 0),
        ]);
        let t = asm.trace(None, 0).expect("trace");
        assert_eq!(t.spans.len(), 1);
        assert_eq!(t.spans[0].open, 50);
        assert_eq!(t.spans[0].close, Some(90));
    }

    #[test]
    fn stray_closes_are_counted_not_fatal() {
        let mut asm = SpanAssembler::new();
        asm.ingest(&span(10, false, 1, 2, "wire", 3));
        assert_eq!(asm.stray_closes(), 1);
        assert!(asm.trace(None, 3).is_none_or(|t| t.spans.is_empty()));
    }

    #[test]
    fn hop_stats_and_histograms_cover_closed_spans() {
        let mut asm = SpanAssembler::new();
        for seg in 0..10u64 {
            asm.ingest(&span(0, true, 1, 2, "wire", seg));
            asm.ingest(&span((seg + 1) * 1000, false, 1, 2, "wire", seg));
        }
        let stats = asm.hop_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].hop, "wire");
        assert_eq!(stats[0].count, 10);
        assert_eq!(stats[0].p50, 5000);
        assert_eq!(stats[0].p99, 10_000);
        let mut reg = Registry::new();
        asm.feed_histograms(&mut reg);
        let text = reg.render();
        assert!(
            text.contains("lod_trace_hop_ticks{hop=\"wire\"}_count 10"),
            "{text}"
        );
    }

    #[test]
    fn worst_by_end_to_end_orders_descending() {
        let mut asm = SpanAssembler::new();
        asm.ingest_all(&[
            span(0, true, 1, 2, "wire", 0),
            span(100, false, 1, 2, "wire", 0),
            span(0, true, 1, 2, "wire", 1),
            span(900, false, 1, 2, "wire", 1),
        ]);
        let worst = asm.worst_by_end_to_end(2);
        assert_eq!(worst[0].segment, 1);
        assert_eq!(worst[1].segment, 0);
    }

    #[test]
    fn fmt_ticks_prints_tenths_of_milliseconds() {
        assert_eq!(fmt_ticks(0), "0.0ms");
        assert_eq!(fmt_ticks(10_000), "1.0ms");
        assert_eq!(fmt_ticks(25_000), "2.5ms");
    }
}
