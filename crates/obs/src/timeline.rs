//! Per-session timeline reconstruction and causal trace invariants.
//!
//! The event log is a flat stream; this module folds it back into the
//! story of each session (startup → stall spans → downshifts → outages →
//! end) and cross-checks the causal claims the counters alone cannot
//! make: a downshift without a preceding backlog-high sample, or a
//! recovery without a matching outage-start, means an emitter lied.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::event::{Event, EventRecord};

/// How a session's story ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EndKind {
    /// Finished playback cleanly.
    Completed,
    /// Explicitly refused until the bounce budget ran out.
    Shed,
    /// Gave up on a silent server after exhausting retries.
    Abandoned,
}

impl EndKind {
    fn label(self) -> &'static str {
        match self {
            EndKind::Completed => "completed",
            EndKind::Shed => "shed",
            EndKind::Abandoned => "abandoned",
        }
    }
}

/// One rebuffering pause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StallSpan {
    /// Tick the stall began.
    pub start: u64,
    /// Length in ticks (0 for a stall still open at end of log).
    pub ticks: u64,
}

/// The reconstructed story of one client's session.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionTimeline {
    /// Raw node index of the client.
    pub client: u64,
    /// Role label when the log carries one (`student3`), else `node<i>`.
    pub label: String,
    /// Tick of the first `session_start` for this client.
    pub requested_at: Option<u64>,
    /// Tick playback first started.
    pub playback_at: Option<u64>,
    /// Startup latency reported at playback start.
    pub startup_ticks: u64,
    /// Every stall span, in time order.
    pub stalls: Vec<StallSpan>,
    /// Total ticks spent stalled (closed spans only).
    pub stall_ticks: u64,
    /// Every downshift `(at, from_bps, to_bps)`.
    pub downshifts: Vec<(u64, u64, u64)>,
    /// Upshifts applied.
    pub upshifts: u64,
    /// Every recovered outage `(recovered_at, outage_ticks)`.
    pub outages: Vec<(u64, u64)>,
    /// Play re-requests issued by the retry layer.
    pub retries: u64,
    /// `Busy` bounces received.
    pub busy_bounces: u64,
    /// `(at, kind)` of the session's end, when it ended.
    pub ended: Option<(u64, EndKind)>,
}

impl SessionTimeline {
    fn new(client: u64) -> Self {
        Self {
            client,
            label: format!("node{client}"),
            requested_at: None,
            playback_at: None,
            startup_ticks: 0,
            stalls: Vec::new(),
            stall_ticks: 0,
            downshifts: Vec::new(),
            upshifts: 0,
            outages: Vec::new(),
            retries: 0,
            busy_bounces: 0,
            ended: None,
        }
    }

    /// Renders the timeline as indented plain text, one span per line,
    /// ticks shown as milliseconds (integer division — deterministic).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let ms = |t: u64| t / 10_000;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "session {} (client {}): {} stall ms over {} stall(s), {} downshift(s), {} outage(s)",
            self.label,
            self.client,
            ms(self.stall_ticks),
            self.stalls.len(),
            self.downshifts.len(),
            self.outages.len(),
        );
        if let Some(at) = self.requested_at {
            let _ = writeln!(out, "  t={:>8}ms  play requested", ms(at));
        }
        if let Some(at) = self.playback_at {
            let _ = writeln!(
                out,
                "  t={:>8}ms  playback started (startup {} ms)",
                ms(at),
                ms(self.startup_ticks)
            );
        }
        for s in &self.stalls {
            let _ = writeln!(
                out,
                "  t={:>8}ms  stalled for {} ms",
                ms(s.start),
                ms(s.ticks)
            );
        }
        for &(at, from, to) in &self.downshifts {
            let _ = writeln!(
                out,
                "  t={:>8}ms  downshift {} -> {} bit/s",
                ms(at),
                from,
                to
            );
        }
        for &(at, dur) in &self.outages {
            let _ = writeln!(
                out,
                "  t={:>8}ms  recovered from a {} ms outage",
                ms(at),
                ms(dur)
            );
        }
        if let Some((at, kind)) = self.ended {
            let _ = writeln!(out, "  t={:>8}ms  {}", ms(at), kind.label());
        }
        out
    }
}

/// Folds an event log into one timeline per client, ordered by client
/// node index. Only client-facing events contribute; relay/fault events
/// are ignored here.
pub fn session_timelines(events: &[EventRecord]) -> Vec<SessionTimeline> {
    let mut map: BTreeMap<u64, SessionTimeline> = BTreeMap::new();
    let mut labels: BTreeMap<u64, String> = BTreeMap::new();
    let mut open_stall: BTreeMap<u64, u64> = BTreeMap::new();
    for rec in events {
        let at = rec.at;
        match &rec.event {
            Event::NodeLabel { node, label } => {
                labels.insert(*node, label.clone());
            }
            Event::SessionStart { client } => {
                let t = map
                    .entry(*client)
                    .or_insert_with(|| SessionTimeline::new(*client));
                if t.requested_at.is_none() {
                    t.requested_at = Some(at);
                }
            }
            Event::PlaybackStart {
                client,
                startup_ticks,
            } => {
                let t = map
                    .entry(*client)
                    .or_insert_with(|| SessionTimeline::new(*client));
                if t.playback_at.is_none() {
                    t.playback_at = Some(at);
                    t.startup_ticks = *startup_ticks;
                }
            }
            Event::StallStart { client } => {
                open_stall.insert(*client, at);
            }
            Event::StallEnd {
                client,
                stall_ticks,
            } => {
                let t = map
                    .entry(*client)
                    .or_insert_with(|| SessionTimeline::new(*client));
                let start = open_stall
                    .remove(client)
                    .unwrap_or_else(|| at.saturating_sub(*stall_ticks));
                t.stalls.push(StallSpan {
                    start,
                    ticks: *stall_ticks,
                });
                t.stall_ticks += *stall_ticks;
            }
            Event::Downshift {
                client,
                from_bps,
                to_bps,
            } => {
                map.entry(*client)
                    .or_insert_with(|| SessionTimeline::new(*client))
                    .downshifts
                    .push((at, *from_bps, *to_bps));
            }
            Event::Upshift { client, .. } => {
                map.entry(*client)
                    .or_insert_with(|| SessionTimeline::new(*client))
                    .upshifts += 1;
            }
            Event::Recovery {
                client,
                outage_ticks,
            } => {
                map.entry(*client)
                    .or_insert_with(|| SessionTimeline::new(*client))
                    .outages
                    .push((at, *outage_ticks));
            }
            Event::Retry { client, .. } => {
                map.entry(*client)
                    .or_insert_with(|| SessionTimeline::new(*client))
                    .retries += 1;
            }
            Event::BusyBounce { client } => {
                map.entry(*client)
                    .or_insert_with(|| SessionTimeline::new(*client))
                    .busy_bounces += 1;
            }
            Event::SessionEnd { client } => {
                map.entry(*client)
                    .or_insert_with(|| SessionTimeline::new(*client))
                    .ended
                    .get_or_insert((at, EndKind::Completed));
            }
            Event::ClientShed { client } => {
                map.entry(*client)
                    .or_insert_with(|| SessionTimeline::new(*client))
                    .ended
                    .get_or_insert((at, EndKind::Shed));
            }
            Event::Abandon { client } => {
                map.entry(*client)
                    .or_insert_with(|| SessionTimeline::new(*client))
                    .ended
                    .get_or_insert((at, EndKind::Abandoned));
            }
            _ => {}
        }
    }
    // A stall still open when the log ends becomes a zero-length span
    // (visible, but not counted as stalled time).
    for (client, start) in open_stall {
        if let Some(t) = map.get_mut(&client) {
            t.stalls.push(StallSpan { start, ticks: 0 });
        }
    }
    let mut timelines: Vec<SessionTimeline> = map.into_values().collect();
    for t in &mut timelines {
        if let Some(l) = labels.get(&t.client) {
            t.label = l.clone();
        }
    }
    timelines
}

/// The `n` sessions with the most stalled time, worst first; ties break
/// toward the lower client index so the ranking is deterministic.
pub fn worst_by_stall(timelines: &[SessionTimeline], n: usize) -> Vec<&SessionTimeline> {
    let mut refs: Vec<&SessionTimeline> = timelines.iter().collect();
    refs.sort_by(|a, b| {
        b.stall_ticks
            .cmp(&a.stall_ticks)
            .then(a.client.cmp(&b.client))
    });
    refs.truncate(n);
    refs
}

/// What [`check_causal`] found in an event log.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CausalReport {
    /// Downshift events seen.
    pub downshifts: u64,
    /// Downshifts with no earlier `backlog_high` sample for the same
    /// client — a causality violation.
    pub unheralded_downshifts: u64,
    /// Recovery events seen.
    pub recoveries: u64,
    /// Recoveries with no open `outage_start` for the same client — a
    /// causality violation.
    pub unmatched_recoveries: u64,
    /// `admission_shed` events per refusing node.
    pub sheds_by_node: BTreeMap<u64, u64>,
    /// `heartbeat_miss` events seen (all nodes).
    pub heartbeat_misses: u64,
    /// `promoted` events seen.
    pub promotions: u64,
    /// Promotions not heralded by a `failover_start` whose origin had
    /// accumulated at least the declared miss threshold of
    /// `heartbeat_miss` events — a causality violation.
    pub unheralded_promotions: u64,
    /// `session_migrated` events seen.
    pub migrations: u64,
    /// Migrations with no earlier `checkpoint` for the same client — a
    /// causality violation (the standby invented state).
    pub unmatched_migrations: u64,
    /// Fencing-epoch violations: a `promoted` event whose epoch does not
    /// strictly exceed every epoch promoted (or demoted-to) before it —
    /// two nodes would be serving the same epoch.
    pub epoch_conflicts: u64,
    /// `retransmit` events seen.
    #[serde(default)]
    pub retransmits: u64,
    /// Retransmits with no earlier `nack_sent` from the receiving peer
    /// covering the resent sequence — the sender resent unasked, a
    /// causality violation.
    #[serde(default)]
    pub unmatched_retransmits: u64,
    /// `repair_give_up` events seen.
    #[serde(default)]
    pub repair_give_ups: u64,
    /// Give-ups whose declared retry count exceeds the declared budget —
    /// the sender kept repairing past its own limit.
    #[serde(default)]
    pub over_budget_give_ups: u64,
    /// `gap_skipped` events seen.
    #[serde(default)]
    pub gap_skips: u64,
    /// Gap-skips that happened before the NACK budget was exhausted
    /// (`nacks < budget`) — with repair enabled, a skip is only lawful
    /// after budget exhaustion.
    #[serde(default)]
    pub premature_gap_skips: u64,
    /// Distinct trace spans opened (`span_open` events, deduplicated by
    /// `(lecture, segment, node, peer, hop)`).
    #[serde(default)]
    pub spans_opened: u64,
    /// Spans opened but never closed — every traced hop must complete.
    #[serde(default)]
    pub spans_unclosed: u64,
    /// Span closes with no earlier matching open, plus delivery-chain
    /// hops whose first opens are not monotone in ticks (`relay_fetch →
    /// packetize → fan_out → reassemble → playout_wait`).
    #[serde(default)]
    pub span_order_violations: u64,
    /// Traces where the client's `reassemble` hop closed before the
    /// origin's `packetize` hop opened — receipt preceding emission.
    #[serde(default)]
    pub span_receipt_violations: u64,
}

impl CausalReport {
    /// Total admission refusals across all nodes.
    pub fn total_sheds(&self) -> u64 {
        self.sheds_by_node.values().sum()
    }

    /// Admission refusals issued by `node`.
    pub fn sheds_at(&self, node: u64) -> u64 {
        self.sheds_by_node.get(&node).copied().unwrap_or(0)
    }

    /// Whether every causal invariant holds (overload, failover,
    /// transport repair and trace spans).
    pub fn holds(&self) -> bool {
        self.unheralded_downshifts == 0
            && self.unmatched_recoveries == 0
            && self.unheralded_promotions == 0
            && self.unmatched_migrations == 0
            && self.epoch_conflicts == 0
            && self.unmatched_retransmits == 0
            && self.over_budget_give_ups == 0
            && self.premature_gap_skips == 0
            && self.spans_unclosed == 0
            && self.span_order_violations == 0
            && self.span_receipt_violations == 0
    }
}

/// Checks the causal trace invariants over `events` (which must be in
/// emission order, as [`crate::Recorder`] keeps them):
///
/// 1. every `downshift` is preceded by a `backlog_high` sample for the
///    same client (the watermark crossing that justified it),
/// 2. every `recovery` closes an `outage_start` opened earlier for the
///    same client, with no recovery in between,
/// 3. every `promoted` is heralded by a `failover_start` whose dead
///    origin accumulated at least the declared threshold of
///    `heartbeat_miss` events,
/// 4. every `session_migrated` is matched by an earlier `checkpoint` for
///    the same client, and
/// 5. fencing epochs are strictly monotonic: no two promotions (nor a
///    promotion and the demotion it fenced) share an epoch, so no two
///    nodes ever serve the same epoch,
/// 6. every `retransmit` answers an earlier `nack_sent` from the
///    receiving peer whose `[base_seq, base_seq + span)` range covers the
///    resent sequence (a sender never resends unasked),
/// 7. every `repair_give_up` declares `retries <= budget` (the sender
///    never repaired past its own limit), and
/// 8. every `gap_skipped` declares `nacks >= budget` (with repair on, a
///    receiver only abandons a gap after exhausting its NACK budget;
///    plain reorder-timeout skips carry `nacks == budget == 0` and are
///    lawful),
/// 9. every `span_open` is eventually matched by a `span_close` for the
///    same `(lecture, segment, node, peer, hop)` key,
/// 10. delivery-chain hops open in causal order within a trace —
///     `relay_fetch → packetize → fan_out → reassemble → playout_wait`
///     first-opens are monotone in ticks (the frame-level hops `pace`,
///     `wire`, `reorder`, `repair_stall` recur on every leg and are
///     exempt), and a close never precedes its open, and
/// 11. the client's `reassemble` hop never closes before the origin's
///     `packetize` hop opened for the same segment (receipt ≥ emission;
///     meaningful because loopback nodes share one tick epoch).
///
/// Span checks assume the full log: a capacity-ringed recorder that
/// overwrote early opens will truthfully report order violations.
pub fn check_causal(events: &[EventRecord]) -> CausalReport {
    let mut report = CausalReport::default();
    let mut backlog_high_seen: BTreeMap<u64, bool> = BTreeMap::new();
    let mut outage_open: BTreeMap<u64, bool> = BTreeMap::new();
    // Failover bookkeeping: misses accumulated per origin, promotions
    // armed per standby, checkpoints seen per client, highest epoch
    // promoted so far.
    let mut misses_by_node: BTreeMap<u64, u64> = BTreeMap::new();
    let mut promotion_armed: BTreeMap<u64, bool> = BTreeMap::new();
    let mut checkpointed: BTreeMap<u64, bool> = BTreeMap::new();
    let mut max_epoch_promoted: Option<u64> = None;
    // Repair bookkeeping: NACK ranges per (nacker, peer) direction.
    let mut nack_ranges: BTreeMap<(u64, u64), Vec<(u64, u64)>> = BTreeMap::new();
    // Span bookkeeping: (lecture, segment, node, peer, hop) →
    // (first open tick, last close tick).
    type SpanKey<'a> = (u64, u64, u64, u64, &'a str);
    let mut span_state: BTreeMap<SpanKey, (u64, Option<u64>)> = BTreeMap::new();
    for rec in events {
        match &rec.event {
            Event::BacklogHigh { client, .. } => {
                backlog_high_seen.insert(*client, true);
            }
            Event::Downshift { client, .. } => {
                report.downshifts += 1;
                if !backlog_high_seen.get(client).copied().unwrap_or(false) {
                    report.unheralded_downshifts += 1;
                }
            }
            Event::OutageStart { client } => {
                outage_open.insert(*client, true);
            }
            Event::Recovery { client, .. } => {
                report.recoveries += 1;
                if outage_open.insert(*client, false) != Some(true) {
                    report.unmatched_recoveries += 1;
                }
            }
            Event::AdmissionShed { node, .. } => {
                *report.sheds_by_node.entry(*node).or_insert(0) += 1;
            }
            Event::HeartbeatMiss { node, .. } => {
                report.heartbeat_misses += 1;
                *misses_by_node.entry(*node).or_insert(0) += 1;
            }
            Event::FailoverStart { from, to, misses } => {
                // The declared threshold must actually have been
                // accumulated against the dead origin.
                let earned = misses_by_node.get(from).copied().unwrap_or(0) >= *misses;
                promotion_armed.insert(*to, earned);
            }
            Event::Promoted { node, epoch } => {
                report.promotions += 1;
                if promotion_armed.insert(*node, false) != Some(true) {
                    report.unheralded_promotions += 1;
                }
                if max_epoch_promoted.is_some_and(|m| *epoch <= m) {
                    report.epoch_conflicts += 1;
                }
                max_epoch_promoted = max_epoch_promoted.max(Some(*epoch));
            }
            Event::Demoted { node, epoch } => {
                // A demotion at an epoch *above* the highest promotion
                // would mean the rejoiner fenced itself against a primary
                // the log never promoted.
                if max_epoch_promoted.is_none_or(|m| *epoch > m) {
                    report.epoch_conflicts += 1;
                }
                let _ = node;
            }
            Event::Checkpoint { client, .. } => {
                checkpointed.insert(*client, true);
            }
            Event::SessionMigrated { client, .. } => {
                report.migrations += 1;
                if !checkpointed.get(client).copied().unwrap_or(false) {
                    report.unmatched_migrations += 1;
                }
            }
            Event::NackSent {
                node,
                peer,
                base_seq,
                span,
            } => {
                nack_ranges
                    .entry((*node, *peer))
                    .or_default()
                    .push((*base_seq, *span));
            }
            Event::Retransmit {
                node, peer, seq, ..
            } => {
                report.retransmits += 1;
                // The matching NACK was sent *by* the peer *to* this
                // sender, so the key direction flips.
                let asked = nack_ranges.get(&(*peer, *node)).is_some_and(|ranges| {
                    ranges
                        .iter()
                        .any(|&(base, span)| *seq >= base && *seq < base + span)
                });
                if !asked {
                    report.unmatched_retransmits += 1;
                }
            }
            Event::RepairGiveUp {
                retries, budget, ..
            } => {
                report.repair_give_ups += 1;
                if retries > budget {
                    report.over_budget_give_ups += 1;
                }
            }
            Event::GapSkipped { nacks, budget, .. } => {
                report.gap_skips += 1;
                if nacks < budget {
                    report.premature_gap_skips += 1;
                }
            }
            Event::SpanOpen {
                node,
                peer,
                hop,
                lecture,
                segment,
            } => {
                let key = (*lecture, *segment, *node, *peer, hop.as_str());
                if let std::collections::btree_map::Entry::Vacant(e) = span_state.entry(key) {
                    e.insert((rec.at, None));
                    report.spans_opened += 1;
                }
            }
            Event::SpanClose {
                node,
                peer,
                hop,
                lecture,
                segment,
            } => {
                let key = (*lecture, *segment, *node, *peer, hop.as_str());
                match span_state.get_mut(&key) {
                    // Duplicate closes are lawful (fault-duplicated
                    // frames double-close `pace`); the widest span wins.
                    Some(slot) => slot.1 = Some(slot.1.map_or(rec.at, |c| c.max(rec.at))),
                    // A close before (or without) its open: in a
                    // tick-sorted merged log this is an order violation.
                    None => report.span_order_violations += 1,
                }
            }
            _ => {}
        }
    }
    // Unclosed spans, delivery-chain open monotonicity, and
    // receipt-after-emission per trace.
    const CHAIN: [&str; 5] = [
        "relay_fetch",
        "packetize",
        "fan_out",
        "reassemble",
        "playout_wait",
    ];
    let mut chain_opens: BTreeMap<(u64, u64), [Option<u64>; 5]> = BTreeMap::new();
    let mut first_packetize_open: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    let mut first_reassemble_close: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    for (&(lecture, segment, _, _, hop), &(open, close)) in &span_state {
        if close.is_none() {
            report.spans_unclosed += 1;
        }
        if let Some(i) = CHAIN.iter().position(|&h| h == hop) {
            let slot = &mut chain_opens.entry((lecture, segment)).or_insert([None; 5])[i];
            if slot.is_none_or(|t| open < t) {
                *slot = Some(open);
            }
        }
        if hop == "packetize" {
            let e = first_packetize_open
                .entry((lecture, segment))
                .or_insert(open);
            *e = (*e).min(open);
        }
        if hop == "reassemble" {
            if let Some(close) = close {
                let e = first_reassemble_close
                    .entry((lecture, segment))
                    .or_insert(close);
                *e = (*e).min(close);
            }
        }
    }
    for opens in chain_opens.values() {
        let mut prev = None;
        for &open in opens.iter().flatten() {
            if prev.is_some_and(|p| open < p) {
                report.span_order_violations += 1;
            }
            prev = Some(open);
        }
    }
    for (key, &close) in &first_reassemble_close {
        if first_packetize_open
            .get(key)
            .is_some_and(|&open| close < open)
        {
            report.span_receipt_violations += 1;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(at: u64, event: Event) -> EventRecord {
        EventRecord { at, event }
    }

    #[test]
    fn timeline_folds_one_session() {
        let events = vec![
            rec(
                0,
                Event::NodeLabel {
                    node: 5,
                    label: "student2".into(),
                },
            ),
            rec(10, Event::SessionStart { client: 5 }),
            rec(
                30,
                Event::PlaybackStart {
                    client: 5,
                    startup_ticks: 20,
                },
            ),
            rec(40, Event::StallStart { client: 5 }),
            rec(
                70,
                Event::StallEnd {
                    client: 5,
                    stall_ticks: 30,
                },
            ),
            rec(
                80,
                Event::Downshift {
                    client: 5,
                    from_bps: 10,
                    to_bps: 5,
                },
            ),
            rec(90, Event::SessionEnd { client: 5 }),
        ];
        let tl = session_timelines(&events);
        assert_eq!(tl.len(), 1);
        let t = &tl[0];
        assert_eq!(t.label, "student2");
        assert_eq!(t.requested_at, Some(10));
        assert_eq!(t.playback_at, Some(30));
        assert_eq!(t.stall_ticks, 30);
        assert_eq!(
            t.stalls,
            vec![StallSpan {
                start: 40,
                ticks: 30
            }]
        );
        assert_eq!(t.downshifts, vec![(80, 10, 5)]);
        assert_eq!(t.ended, Some((90, EndKind::Completed)));
        let text = t.render();
        assert!(text.contains("student2"), "{text}");
        assert!(text.contains("downshift 10 -> 5"), "{text}");
    }

    #[test]
    fn worst_by_stall_ranks_deterministically() {
        let mut a = SessionTimeline::new(1);
        a.stall_ticks = 50;
        let mut b = SessionTimeline::new(2);
        b.stall_ticks = 100;
        let mut c = SessionTimeline::new(3);
        c.stall_ticks = 50;
        let tls = vec![a, b, c];
        let worst: Vec<u64> = worst_by_stall(&tls, 2).iter().map(|t| t.client).collect();
        assert_eq!(worst, vec![2, 1]);
    }

    #[test]
    fn causal_invariants_hold_on_a_lawful_trace() {
        let events = vec![
            rec(
                10,
                Event::BacklogHigh {
                    client: 1,
                    backlog: 999,
                },
            ),
            rec(
                20,
                Event::Downshift {
                    client: 1,
                    from_bps: 10,
                    to_bps: 5,
                },
            ),
            rec(30, Event::OutageStart { client: 2 }),
            rec(
                40,
                Event::Recovery {
                    client: 2,
                    outage_ticks: 10,
                },
            ),
            rec(50, Event::AdmissionShed { node: 0, client: 3 }),
            rec(60, Event::AdmissionShed { node: 0, client: 4 }),
        ];
        let r = check_causal(&events);
        assert!(r.holds(), "{r:?}");
        assert_eq!(r.downshifts, 1);
        assert_eq!(r.recoveries, 1);
        assert_eq!(r.sheds_at(0), 2);
        assert_eq!(r.total_sheds(), 2);
    }

    #[test]
    fn causal_violations_are_counted() {
        let events = vec![
            // Downshift with no backlog-high sample anywhere.
            rec(
                20,
                Event::Downshift {
                    client: 1,
                    from_bps: 10,
                    to_bps: 5,
                },
            ),
            // Recovery with no outage open.
            rec(
                40,
                Event::Recovery {
                    client: 2,
                    outage_ticks: 10,
                },
            ),
            rec(50, Event::OutageStart { client: 3 }),
            rec(
                60,
                Event::Recovery {
                    client: 3,
                    outage_ticks: 5,
                },
            ),
            // Second recovery against the same (now closed) outage.
            rec(
                70,
                Event::Recovery {
                    client: 3,
                    outage_ticks: 5,
                },
            ),
        ];
        let r = check_causal(&events);
        assert_eq!(r.unheralded_downshifts, 1);
        assert_eq!(r.unmatched_recoveries, 2);
        assert!(!r.holds());
    }

    #[test]
    fn failover_invariants_hold_on_a_lawful_trace() {
        let events = vec![
            rec(
                10,
                Event::Checkpoint {
                    client: 7,
                    horizon: 100,
                },
            ),
            rec(20, Event::HeartbeatMiss { node: 0, misses: 1 }),
            rec(30, Event::HeartbeatMiss { node: 0, misses: 2 }),
            rec(40, Event::HeartbeatMiss { node: 0, misses: 3 }),
            rec(
                40,
                Event::FailoverStart {
                    from: 0,
                    to: 9,
                    misses: 3,
                },
            ),
            rec(40, Event::Promoted { node: 9, epoch: 2 }),
            rec(
                40,
                Event::SessionMigrated {
                    client: 7,
                    horizon: 100,
                },
            ),
            // The healed old origin fences itself against epoch 2.
            rec(90, Event::Demoted { node: 0, epoch: 2 }),
        ];
        let r = check_causal(&events);
        assert!(r.holds(), "{r:?}");
        assert_eq!(r.promotions, 1);
        assert_eq!(r.migrations, 1);
        assert_eq!(r.epoch_conflicts, 0);
    }

    #[test]
    fn failover_violations_are_counted() {
        let events = vec![
            // Promotion with only 1 accumulated miss against a declared
            // threshold of 3.
            rec(10, Event::HeartbeatMiss { node: 0, misses: 1 }),
            rec(
                20,
                Event::FailoverStart {
                    from: 0,
                    to: 9,
                    misses: 3,
                },
            ),
            rec(20, Event::Promoted { node: 9, epoch: 2 }),
            // Migration of a client never checkpointed.
            rec(
                30,
                Event::SessionMigrated {
                    client: 5,
                    horizon: 10,
                },
            ),
            // A second promotion re-using epoch 2: split-brain.
            rec(
                40,
                Event::FailoverStart {
                    from: 9,
                    to: 0,
                    misses: 0,
                },
            ),
            rec(40, Event::Promoted { node: 0, epoch: 2 }),
        ];
        let r = check_causal(&events);
        assert_eq!(r.unheralded_promotions, 1);
        assert_eq!(r.unmatched_migrations, 1);
        assert_eq!(r.epoch_conflicts, 1);
        assert!(!r.holds());
    }

    #[test]
    fn promotion_herald_is_single_use() {
        // One lawful failover does not bless a second promotion of the
        // same standby.
        let mut events = vec![
            rec(10, Event::HeartbeatMiss { node: 0, misses: 1 }),
            rec(20, Event::HeartbeatMiss { node: 0, misses: 2 }),
            rec(
                20,
                Event::FailoverStart {
                    from: 0,
                    to: 9,
                    misses: 2,
                },
            ),
            rec(20, Event::Promoted { node: 9, epoch: 2 }),
        ];
        events.push(rec(50, Event::Promoted { node: 9, epoch: 3 }));
        let r = check_causal(&events);
        assert_eq!(r.promotions, 2);
        assert_eq!(r.unheralded_promotions, 1);
        assert_eq!(r.epoch_conflicts, 0, "epoch 3 is still monotonic");
    }

    #[test]
    fn repair_invariants_hold_on_a_lawful_trace() {
        // Node 5 (receiver) NACKs a 3-wide range at node 1 (sender); the
        // sender retransmits inside the range, gives up on one seq at
        // budget, and the receiver skips it after exhausting its NACKs.
        let events = vec![
            rec(
                10,
                Event::NackSent {
                    node: 5,
                    peer: 1,
                    base_seq: 42,
                    span: 3,
                },
            ),
            rec(
                20,
                Event::Retransmit {
                    node: 1,
                    peer: 5,
                    seq: 42,
                    attempt: 1,
                },
            ),
            rec(
                20,
                Event::Retransmit {
                    node: 1,
                    peer: 5,
                    seq: 44,
                    attempt: 1,
                },
            ),
            rec(
                30,
                Event::RepairGiveUp {
                    node: 1,
                    peer: 5,
                    seq: 44,
                    retries: 3,
                    budget: 3,
                },
            ),
            rec(
                40,
                Event::GapSkipped {
                    node: 5,
                    peer: 1,
                    seq: 44,
                    nacks: 3,
                    budget: 3,
                },
            ),
            // A repair-off reorder-timeout skip is lawful too.
            rec(
                50,
                Event::GapSkipped {
                    node: 6,
                    peer: 1,
                    seq: 7,
                    nacks: 0,
                    budget: 0,
                },
            ),
        ];
        let r = check_causal(&events);
        assert!(r.holds(), "{r:?}");
        assert_eq!(r.retransmits, 2);
        assert_eq!(r.repair_give_ups, 1);
        assert_eq!(r.gap_skips, 2);
    }

    #[test]
    fn repair_violations_are_counted() {
        let events = vec![
            // Retransmit with no NACK anywhere.
            rec(
                10,
                Event::Retransmit {
                    node: 1,
                    peer: 5,
                    seq: 42,
                    attempt: 1,
                },
            ),
            rec(
                20,
                Event::NackSent {
                    node: 5,
                    peer: 1,
                    base_seq: 50,
                    span: 2,
                },
            ),
            // Retransmit outside the NACKed range [50, 52).
            rec(
                30,
                Event::Retransmit {
                    node: 1,
                    peer: 5,
                    seq: 52,
                    attempt: 1,
                },
            ),
            // NACK in the wrong direction does not bless a retransmit:
            // node 7 nacked node 8, not the other way around.
            rec(
                40,
                Event::NackSent {
                    node: 8,
                    peer: 7,
                    base_seq: 9,
                    span: 1,
                },
            ),
            rec(
                50,
                Event::Retransmit {
                    node: 8,
                    peer: 7,
                    seq: 9,
                    attempt: 1,
                },
            ),
            // Give-up past its own budget.
            rec(
                60,
                Event::RepairGiveUp {
                    node: 1,
                    peer: 5,
                    seq: 50,
                    retries: 4,
                    budget: 3,
                },
            ),
            // Skip before the NACK budget was spent.
            rec(
                70,
                Event::GapSkipped {
                    node: 5,
                    peer: 1,
                    seq: 50,
                    nacks: 1,
                    budget: 3,
                },
            ),
        ];
        let r = check_causal(&events);
        assert_eq!(r.retransmits, 3);
        assert_eq!(r.unmatched_retransmits, 3);
        assert_eq!(r.over_budget_give_ups, 1);
        assert_eq!(r.premature_gap_skips, 1);
        assert!(!r.holds());
    }

    fn span_rec(at: u64, open: bool, node: u64, peer: u64, hop: &str) -> EventRecord {
        let (lecture, segment) = (11, 4);
        rec(
            at,
            if open {
                Event::SpanOpen {
                    node,
                    peer,
                    hop: hop.into(),
                    lecture,
                    segment,
                }
            } else {
                Event::SpanClose {
                    node,
                    peer,
                    hop: hop.into(),
                    lecture,
                    segment,
                }
            },
        )
    }

    #[test]
    fn span_invariants_hold_on_a_lawful_trace() {
        let events = vec![
            span_rec(100, true, 2, 0, "relay_fetch"),
            span_rec(110, true, 0, 0, "packetize"),
            span_rec(150, false, 0, 0, "packetize"),
            span_rec(200, false, 2, 0, "relay_fetch"),
            span_rec(210, true, 2, 5, "fan_out"),
            span_rec(230, true, 5, 2, "reassemble"),
            span_rec(300, false, 5, 2, "reassemble"),
            span_rec(300, true, 5, 5, "playout_wait"),
            span_rec(400, false, 5, 5, "playout_wait"),
            span_rec(500, false, 2, 5, "fan_out"),
        ];
        let r = check_causal(&events);
        assert!(r.holds(), "{r:?}");
        assert_eq!(r.spans_opened, 5);
        assert_eq!(r.spans_unclosed, 0);
    }

    #[test]
    fn span_violations_are_counted() {
        let events = vec![
            // Close with no open anywhere: an order violation.
            span_rec(50, false, 9, 9, "wire"),
            // Opened but never closed.
            span_rec(100, true, 2, 0, "relay_fetch"),
            // Chain out of order: packetize first-opens before the
            // relay_fetch that should precede it.
            span_rec(90, true, 0, 0, "packetize"),
            span_rec(95, false, 0, 0, "packetize"),
            // Receipt before emission: reassemble closes at 80, before
            // packetize opened at 90.
            span_rec(70, true, 5, 2, "reassemble"),
            span_rec(80, false, 5, 2, "reassemble"),
        ];
        let r = check_causal(&events);
        assert_eq!(r.spans_opened, 3);
        assert_eq!(r.spans_unclosed, 1);
        // One stray close + two chain inversions (packetize@90 after
        // relay_fetch@100, reassemble@70 after packetize@90).
        assert_eq!(r.span_order_violations, 3, "{r:?}");
        assert_eq!(r.span_receipt_violations, 1);
        assert!(!r.holds());
    }

    /// Satellite: `session_timelines` over a multi-node merged log —
    /// interleaved per-node JSONL folds correctly, and a log whose final
    /// line was truncated mid-write errors instead of silently dropping
    /// the tail.
    #[test]
    fn interleaved_multi_node_jsonl_folds_and_truncation_errors() {
        use crate::event::parse_jsonl;
        // Two nodes' logs, interleaved by tick as the loopback driver
        // merges them.
        let node_a = [
            rec(10, Event::SessionStart { client: 1 }),
            rec(
                30,
                Event::PlaybackStart {
                    client: 1,
                    startup_ticks: 20,
                },
            ),
            rec(90, Event::SessionEnd { client: 1 }),
        ];
        let node_b = [
            rec(20, Event::SessionStart { client: 2 }),
            rec(40, Event::StallStart { client: 2 }),
            rec(
                60,
                Event::StallEnd {
                    client: 2,
                    stall_ticks: 20,
                },
            ),
        ];
        let mut merged: Vec<EventRecord> = node_a.iter().chain(&node_b).cloned().collect();
        merged.sort_by_key(|r| r.at);
        let text: String = merged.iter().map(|r| r.to_json() + "\n").collect();
        let parsed = parse_jsonl(&text).expect("well-formed log");
        let tls = session_timelines(&parsed);
        assert_eq!(tls.len(), 2);
        assert_eq!(tls[0].client, 1);
        assert_eq!(tls[0].ended, Some((90, EndKind::Completed)));
        assert_eq!(tls[1].client, 2);
        assert_eq!(tls[1].stall_ticks, 20);

        // Mid-line truncation anywhere in the final record must error —
        // at every cut point, including mid-number and mid-kind.
        let full_len = text.len();
        let last_line_start = text[..full_len - 1].rfind('\n').unwrap() + 1;
        for cut in last_line_start + 1..full_len - 1 {
            let truncated = &text[..cut];
            assert!(
                parse_jsonl(truncated).is_err(),
                "cut at {cut} silently accepted: {:?}",
                &truncated[last_line_start..]
            );
        }
    }
}
