//! Property-based tests for histogram correctness: bucket bookkeeping
//! and exact merge under arbitrary u64 sample streams.

use lod_obs::Histogram;
use proptest::prelude::*;

/// A small strictly-increasing bound set derived from arbitrary gaps.
fn arb_bounds() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(1u64..1_000_000, 1..8).prop_map(|gaps| {
        let mut acc = 0u64;
        gaps.iter()
            .map(|g| {
                acc = acc.saturating_add(*g);
                acc
            })
            .collect()
    })
}

fn fill(bounds: &[u64], samples: &[u64]) -> Histogram {
    let mut h = Histogram::new(bounds);
    for &s in samples {
        h.record(s);
    }
    h
}

proptest! {
    /// Conservation: every recorded sample lands in exactly one bucket,
    /// so the bucket counts sum to `count` and the final cumulative
    /// entry equals `count`.
    #[test]
    fn record_conserves_count(
        bounds in arb_bounds(),
        samples in proptest::collection::vec(any::<u64>(), 0..200),
    ) {
        let h = fill(&bounds, &samples);
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.bucket_counts().iter().sum::<u64>(), h.count());
        let cumulative = h.cumulative();
        prop_assert_eq!(*cumulative.last().unwrap(), h.count());
    }

    /// Bucket monotonicity: cumulative counts never decrease from one
    /// `le` bound to the next.
    #[test]
    fn cumulative_is_monotone(
        bounds in arb_bounds(),
        samples in proptest::collection::vec(any::<u64>(), 0..200),
    ) {
        let h = fill(&bounds, &samples);
        let c = h.cumulative();
        prop_assert!(c.windows(2).all(|w| w[0] <= w[1]), "{:?}", c);
    }

    /// Merging two histograms equals recording both streams into one:
    /// merge is exact, not an approximation.
    #[test]
    fn merge_equals_concatenated_recording(
        bounds in arb_bounds(),
        xs in proptest::collection::vec(any::<u64>(), 0..100),
        ys in proptest::collection::vec(any::<u64>(), 0..100),
    ) {
        let mut merged = fill(&bounds, &xs);
        merged.merge(&fill(&bounds, &ys));
        let both: Vec<u64> = xs.iter().chain(ys.iter()).copied().collect();
        prop_assert_eq!(merged, fill(&bounds, &both));
    }

    /// Merge is commutative: a+b == b+a.
    #[test]
    fn merge_is_commutative(
        bounds in arb_bounds(),
        xs in proptest::collection::vec(any::<u64>(), 0..100),
        ys in proptest::collection::vec(any::<u64>(), 0..100),
    ) {
        let a = fill(&bounds, &xs);
        let b = fill(&bounds, &ys);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    /// Merge is associative: (a+b)+c == a+(b+c).
    #[test]
    fn merge_is_associative(
        bounds in arb_bounds(),
        xs in proptest::collection::vec(any::<u64>(), 0..60),
        ys in proptest::collection::vec(any::<u64>(), 0..60),
        zs in proptest::collection::vec(any::<u64>(), 0..60),
    ) {
        let a = fill(&bounds, &xs);
        let b = fill(&bounds, &ys);
        let c = fill(&bounds, &zs);
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// Every sample lands in the bucket its bound dictates: counts in
    /// bucket `i` are exactly the samples in `(bounds[i-1], bounds[i]]`.
    #[test]
    fn buckets_partition_the_domain(
        bounds in arb_bounds(),
        samples in proptest::collection::vec(any::<u64>(), 0..200),
    ) {
        let h = fill(&bounds, &samples);
        for (i, &c) in h.bucket_counts().iter().enumerate() {
            let lo = if i == 0 { None } else { Some(bounds[i - 1]) };
            let hi = bounds.get(i).copied();
            let expected = samples
                .iter()
                .filter(|&&s| lo.is_none_or(|l| s > l) && hi.is_none_or(|u| s <= u))
                .count() as u64;
            prop_assert_eq!(c, expected, "bucket {} ({:?}, {:?}]", i, lo, hi);
        }
    }
}
