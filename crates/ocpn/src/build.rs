//! Compilation of a [`PresentationSpec`] into an executable OCPN.

use std::collections::HashMap;

use lod_petri::{Marking, NetBuilder, PlaceId, TimedExecutor, TimedNet, TransitionId};

use crate::schedule::{PlayoutSchedule, ScheduleEntry};
use crate::spec::{PresentationSpec, TemporalRelation};

/// A compiled Object Composition Petri Net.
///
/// Media intervals become timed transitions; temporal relations become
/// fork/join/delay structure. Executing the net deterministically yields
/// the playout schedule.
///
/// # Example
///
/// ```
/// use lod_ocpn::{Ocpn, PresentationSpec, TemporalRelation};
///
/// let spec = PresentationSpec::interval("video", 60)
///     .compose(TemporalRelation::Equals, PresentationSpec::interval("audio", 60));
/// let ocpn = Ocpn::compile(&spec);
/// let schedule = ocpn.schedule();
/// assert_eq!(schedule.start_of("video"), Some(0));
/// assert_eq!(schedule.start_of("audio"), Some(0));
/// assert_eq!(schedule.makespan(), 60);
/// ```
#[derive(Debug)]
pub struct Ocpn {
    timed: TimedNet,
    media: HashMap<String, (TransitionId, u64)>,
    entry: PlaceId,
    exit: PlaceId,
}

impl Ocpn {
    /// Compiles `spec` into a timed Petri net.
    pub fn compile(spec: &PresentationSpec) -> Self {
        let mut b = NetBuilder::new();
        let mut durations: Vec<(TransitionId, u64)> = Vec::new();
        let mut media = HashMap::new();
        let entry = b.place("entry");
        let (first_in, exit) = compile_rec(spec, &mut b, &mut durations, &mut media);
        // Connect the global entry to the spec's entry with a 0-tick start.
        let start = b.transition("start");
        b.arc_in(entry, start, 1).expect("fresh ids");
        b.arc_out(start, first_in, 1).expect("fresh ids");
        let mut timed = TimedNet::new(b.build());
        for (t, d) in durations {
            timed.set_duration(t, d);
        }
        Self {
            timed,
            media,
            entry,
            exit,
        }
    }

    /// The underlying timed net (for analysis, e.g. invariants).
    pub fn timed_net(&self) -> &TimedNet {
        &self.timed
    }

    /// Executes the net and extracts the playout schedule.
    ///
    /// # Panics
    ///
    /// Panics if the compiled net livelocks, which would be a bug in the
    /// compiler: compiled nets are acyclic.
    pub fn schedule(&self) -> PlayoutSchedule {
        let mut m = Marking::new(self.timed.net().place_count());
        m.set(self.entry, 1);
        let mut exec = TimedExecutor::new(&self.timed, m);
        exec.run_to_quiescence(100_000)
            .expect("compiled OCPNs are acyclic");
        debug_assert_eq!(exec.marking().tokens(self.exit), 1);
        let mut entries = Vec::new();
        for ev in exec.log() {
            if ev.kind != lod_petri::timed::TimedEventKind::Started {
                continue;
            }
            if let Some((name, dur)) = self
                .media
                .iter()
                .find(|(_, (t, _))| *t == ev.transition)
                .map(|(n, (_, d))| (n.clone(), *d))
            {
                entries.push(ScheduleEntry {
                    name,
                    start: ev.time,
                    end: ev.time + dur,
                });
            }
        }
        PlayoutSchedule::new(entries)
    }
}

/// Recursively compiles a spec node, returning its (entry, exit) places.
fn compile_rec(
    spec: &PresentationSpec,
    b: &mut NetBuilder,
    durations: &mut Vec<(TransitionId, u64)>,
    media: &mut HashMap<String, (TransitionId, u64)>,
) -> (PlaceId, PlaceId) {
    match spec {
        PresentationSpec::Interval { name, duration } => {
            let p_in = b.place(format!("{name}.in"));
            let p_out = b.place(format!("{name}.out"));
            let t = b.transition(format!("play.{name}"));
            b.arc_in(p_in, t, 1).expect("fresh ids");
            b.arc_out(t, p_out, 1).expect("fresh ids");
            durations.push((t, *duration));
            media.insert(name.clone(), (t, *duration));
            (p_in, p_out)
        }
        PresentationSpec::Compose {
            relation,
            first,
            second,
        } => {
            let (a_in, a_out) = compile_rec(first, b, durations, media);
            let (b_in, b_out) = compile_rec(second, b, durations, media);
            match relation {
                TemporalRelation::Before(delay) => {
                    // A.out --delay--> B.in, sequential.
                    let t = b.transition(format!("gap({delay})"));
                    b.arc_in(a_out, t, 1).expect("fresh ids");
                    b.arc_out(t, b_in, 1).expect("fresh ids");
                    durations.push((t, *delay));
                    (a_in, b_out)
                }
                TemporalRelation::Meets => {
                    let t = b.transition("meet");
                    b.arc_in(a_out, t, 1).expect("fresh ids");
                    b.arc_out(t, b_in, 1).expect("fresh ids");
                    (a_in, b_out)
                }
                rel => {
                    // Parallel shapes: fork, optional lead delay on B, join.
                    let lead = match rel {
                        TemporalRelation::Overlaps(d) | TemporalRelation::During(d) => *d,
                        TemporalRelation::Starts | TemporalRelation::Equals => 0,
                        TemporalRelation::Finishes => {
                            first.duration().saturating_sub(second.duration())
                        }
                        _ => unreachable!("sequential relations handled above"),
                    };
                    let entry = b.place("par.in");
                    let exit = b.place("par.out");
                    let fork = b.transition("fork");
                    let join = b.transition("join");
                    b.arc_in(entry, fork, 1).expect("fresh ids");
                    b.arc_out(fork, a_in, 1).expect("fresh ids");
                    if lead > 0 {
                        let wait = b.place("lead.wait");
                        let t = b.transition(format!("lead({lead})"));
                        b.arc_out(fork, wait, 1).expect("fresh ids");
                        b.arc_in(wait, t, 1).expect("fresh ids");
                        b.arc_out(t, b_in, 1).expect("fresh ids");
                        durations.push((t, lead));
                    } else {
                        b.arc_out(fork, b_in, 1).expect("fresh ids");
                    }
                    b.arc_in(a_out, join, 1).expect("fresh ids");
                    b.arc_in(b_out, join, 1).expect("fresh ids");
                    b.arc_out(join, exit, 1).expect("fresh ids");
                    (entry, exit)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lod_petri::analysis::{ExploreLimits, ReachabilityGraph};

    fn sched(spec: &PresentationSpec) -> PlayoutSchedule {
        Ocpn::compile(spec).schedule()
    }

    #[test]
    fn equals_starts_together() {
        let spec = PresentationSpec::interval("v", 60).compose(
            TemporalRelation::Equals,
            PresentationSpec::interval("a", 60),
        );
        let s = sched(&spec);
        assert_eq!(s.start_of("v"), Some(0));
        assert_eq!(s.start_of("a"), Some(0));
        assert_eq!(s.makespan(), 60);
    }

    #[test]
    fn before_inserts_gap() {
        let spec = PresentationSpec::interval("a", 30).compose(
            TemporalRelation::Before(15),
            PresentationSpec::interval("b", 10),
        );
        let s = sched(&spec);
        assert_eq!(s.start_of("b"), Some(45));
        assert_eq!(s.makespan(), 55);
    }

    #[test]
    fn meets_is_back_to_back() {
        let spec = PresentationSpec::interval("a", 30).then(PresentationSpec::interval("b", 10));
        let s = sched(&spec);
        assert_eq!(s.end_of("a"), Some(30));
        assert_eq!(s.start_of("b"), Some(30));
    }

    #[test]
    fn overlaps_shifts_second() {
        let spec = PresentationSpec::interval("a", 50).compose(
            TemporalRelation::Overlaps(30),
            PresentationSpec::interval("b", 40),
        );
        let s = sched(&spec);
        assert_eq!(s.start_of("a"), Some(0));
        assert_eq!(s.start_of("b"), Some(30));
        assert_eq!(s.makespan(), 70);
    }

    #[test]
    fn during_contains_second() {
        let spec = PresentationSpec::interval("a", 100).compose(
            TemporalRelation::During(20),
            PresentationSpec::interval("b", 30),
        );
        let s = sched(&spec);
        assert_eq!(s.start_of("b"), Some(20));
        assert_eq!(s.end_of("b"), Some(50));
        assert_eq!(s.makespan(), 100);
    }

    #[test]
    fn finishes_aligns_ends() {
        let spec = PresentationSpec::interval("a", 100).compose(
            TemporalRelation::Finishes,
            PresentationSpec::interval("b", 30),
        );
        let s = sched(&spec);
        assert_eq!(s.start_of("b"), Some(70));
        assert_eq!(s.end_of("b"), Some(100));
        assert_eq!(s.end_of("a"), Some(100));
    }

    #[test]
    fn nested_composition_schedules() {
        // (v equals a) before(10) (slide1 meets slide2)
        let spec = PresentationSpec::interval("v", 60)
            .compose(
                TemporalRelation::Equals,
                PresentationSpec::interval("a", 60),
            )
            .compose(
                TemporalRelation::Before(10),
                PresentationSpec::interval("s1", 20).then(PresentationSpec::interval("s2", 20)),
            );
        let s = sched(&spec);
        assert_eq!(s.start_of("s1"), Some(70));
        assert_eq!(s.start_of("s2"), Some(90));
        assert_eq!(s.makespan(), 110);
        assert_eq!(s.makespan(), spec.duration());
    }

    #[test]
    fn schedule_matches_spec_duration_for_all_relations() {
        let relations = [
            TemporalRelation::Before(7),
            TemporalRelation::Meets,
            TemporalRelation::Overlaps(13),
            TemporalRelation::During(5),
            TemporalRelation::Starts,
            TemporalRelation::Finishes,
            TemporalRelation::Equals,
        ];
        for rel in relations {
            let spec = PresentationSpec::interval("a", 40)
                .compose(rel, PresentationSpec::interval("b", 25));
            let s = sched(&spec);
            assert_eq!(s.makespan(), spec.duration(), "relation {rel}");
        }
    }

    #[test]
    fn compiled_net_is_safe() {
        let spec = PresentationSpec::interval("v", 60)
            .compose(
                TemporalRelation::Equals,
                PresentationSpec::interval("a", 60),
            )
            .compose(
                TemporalRelation::Overlaps(30),
                PresentationSpec::interval("b", 80),
            );
        let ocpn = Ocpn::compile(&spec);
        let net = ocpn.timed_net().net();
        let mut m = Marking::new(net.place_count());
        m.set(ocpn.entry, 1);
        let g = ReachabilityGraph::explore(net, &m, ExploreLimits::default()).unwrap();
        assert!(g.is_safe(), "OCPN structure must be 1-bounded");
        // Exactly one deadlock: the final marking with the exit token.
        assert_eq!(g.deadlocks().len(), 1);
    }
}
