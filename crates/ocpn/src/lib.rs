//! OCPN and XOCPN: the synchronization baselines the paper extends.
//!
//! Little & Ghafoor's *Object Composition Petri Net* (paper ref \[4\]) is "a
//! comprehensive model for specifying timing relations among multimedia
//! data": presentations are composed from pairwise temporal relations
//! (Allen's interval algebra) and compiled into a timed Petri net whose
//! execution yields the playout schedule.
//!
//! The *Extended* OCPN (XOCPN, ref \[5\]) adds communication: each media
//! object is transmitted over a channel with a declared QoS before it can
//! play, so the compiled net contains transmit transitions and the schedule
//! shows when channels must be set up.
//!
//! Both models are compiled onto [`lod_petri::TimedNet`] and executed with
//! the deterministic [`lod_petri::TimedExecutor`]; the WMPS core crate then
//! compares them against its extended timed Petri net under network jitter
//! and user interaction — the two situations §1 of the paper says these
//! baselines cannot handle.

pub mod build;
pub mod schedule;
pub mod spec;
pub mod xocpn;

pub use build::Ocpn;
pub use schedule::{PlayoutSchedule, ScheduleEntry};
pub use spec::{PresentationSpec, TemporalRelation};
pub use xocpn::{ChannelQos, Xocpn};
