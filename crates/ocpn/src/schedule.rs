//! Playout schedules extracted from executing a compiled net.

use std::fmt;

use serde::{Deserialize, Serialize};

/// One scheduled media interval.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleEntry {
    /// Media object name.
    pub name: String,
    /// Playout start, in ticks from presentation start.
    pub start: u64,
    /// Playout end.
    pub end: u64,
}

/// The playout schedule of a presentation: one entry per media interval,
/// sorted by start time (ties by name).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PlayoutSchedule {
    entries: Vec<ScheduleEntry>,
}

impl PlayoutSchedule {
    /// Builds a schedule, sorting the entries.
    pub fn new(mut entries: Vec<ScheduleEntry>) -> Self {
        entries.sort_by(|a, b| a.start.cmp(&b.start).then_with(|| a.name.cmp(&b.name)));
        Self { entries }
    }

    /// The entries in start order.
    pub fn entries(&self) -> &[ScheduleEntry] {
        &self.entries
    }

    /// Number of scheduled intervals.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Start time of the named interval.
    pub fn start_of(&self, name: &str) -> Option<u64> {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .map(|e| e.start)
    }

    /// End time of the named interval.
    pub fn end_of(&self, name: &str) -> Option<u64> {
        self.entries.iter().find(|e| e.name == name).map(|e| e.end)
    }

    /// Latest end time (0 for an empty schedule).
    pub fn makespan(&self) -> u64 {
        self.entries.iter().map(|e| e.end).max().unwrap_or(0)
    }

    /// Absolute difference between the start times of two intervals —
    /// the inter-media *skew* of a sync point.
    pub fn start_skew(&self, a: &str, b: &str) -> Option<u64> {
        Some(self.start_of(a)?.abs_diff(self.start_of(b)?))
    }

    /// Entries active at time `t` (start ≤ t < end).
    pub fn active_at(&self, t: u64) -> Vec<&ScheduleEntry> {
        self.entries
            .iter()
            .filter(|e| e.start <= t && t < e.end)
            .collect()
    }

    /// Shifts every entry later by `delta` ticks (used when embedding a
    /// schedule into a larger timeline).
    pub fn shifted(&self, delta: u64) -> PlayoutSchedule {
        PlayoutSchedule {
            entries: self
                .entries
                .iter()
                .map(|e| ScheduleEntry {
                    name: e.name.clone(),
                    start: e.start + delta,
                    end: e.end + delta,
                })
                .collect(),
        }
    }
}

impl fmt::Display for PlayoutSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.entries {
            writeln!(f, "{:>8} ..{:>8}  {}", e.start, e.end, e.name)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched() -> PlayoutSchedule {
        PlayoutSchedule::new(vec![
            ScheduleEntry {
                name: "b".into(),
                start: 30,
                end: 70,
            },
            ScheduleEntry {
                name: "a".into(),
                start: 0,
                end: 50,
            },
        ])
    }

    #[test]
    fn sorted_by_start() {
        let s = sched();
        assert_eq!(s.entries()[0].name, "a");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn queries() {
        let s = sched();
        assert_eq!(s.start_of("b"), Some(30));
        assert_eq!(s.end_of("a"), Some(50));
        assert_eq!(s.makespan(), 70);
        assert_eq!(s.start_skew("a", "b"), Some(30));
        assert_eq!(s.start_of("zzz"), None);
    }

    #[test]
    fn active_at_window() {
        let s = sched();
        assert_eq!(s.active_at(40).len(), 2);
        assert_eq!(s.active_at(60).len(), 1);
        assert!(s.active_at(80).is_empty());
    }

    #[test]
    fn shifted_moves_everything() {
        let s = sched().shifted(100);
        assert_eq!(s.start_of("a"), Some(100));
        assert_eq!(s.makespan(), 170);
    }

    #[test]
    fn display_lists_entries() {
        let text = sched().to_string();
        assert!(text.contains('a') && text.contains('b'));
    }
}
