//! Presentation specifications: media intervals composed with Allen's
//! temporal relations.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The temporal relations of Allen's interval algebra used by OCPN
/// (the seven canonical ones; inverses are expressed by swapping operands).
///
/// Offsets/delays are in the same abstract ticks as interval durations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TemporalRelation {
    /// `A before(δ) B`: B starts δ ticks after A ends.
    Before(u64),
    /// `A meets B`: B starts exactly when A ends.
    Meets,
    /// `A overlaps(δ) B`: B starts δ ticks after A starts, while A is
    /// still playing.
    Overlaps(u64),
    /// `A during(δ) B` — note the OCPN convention: **A contains B**; B
    /// starts δ ticks after A starts and ends before A does.
    During(u64),
    /// `A starts B`: both start together (ends may differ).
    Starts,
    /// `A finishes B`: both end together (B starts late).
    Finishes,
    /// `A equals B`: same start and end.
    Equals,
}

impl fmt::Display for TemporalRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemporalRelation::Before(d) => write!(f, "before({d})"),
            TemporalRelation::Meets => write!(f, "meets"),
            TemporalRelation::Overlaps(d) => write!(f, "overlaps({d})"),
            TemporalRelation::During(d) => write!(f, "during({d})"),
            TemporalRelation::Starts => write!(f, "starts"),
            TemporalRelation::Finishes => write!(f, "finishes"),
            TemporalRelation::Equals => write!(f, "equals"),
        }
    }
}

/// A composable presentation: a single timed media interval, or two
/// sub-presentations glued by a temporal relation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PresentationSpec {
    /// One media interval with a name and duration in ticks.
    Interval {
        /// Media object name (unique within the presentation).
        name: String,
        /// Playout duration in ticks.
        duration: u64,
    },
    /// Two sub-presentations related in time.
    Compose {
        /// The relation between `first` and `second`.
        relation: TemporalRelation,
        /// Left operand (the "A" of the relation).
        first: Box<PresentationSpec>,
        /// Right operand (the "B" of the relation).
        second: Box<PresentationSpec>,
    },
}

impl PresentationSpec {
    /// A leaf interval.
    pub fn interval(name: impl Into<String>, duration: u64) -> Self {
        PresentationSpec::Interval {
            name: name.into(),
            duration,
        }
    }

    /// Composes `self` with `other` under `relation`.
    pub fn compose(self, relation: TemporalRelation, other: PresentationSpec) -> Self {
        PresentationSpec::Compose {
            relation,
            first: Box::new(self),
            second: Box::new(other),
        }
    }

    /// Convenience: sequential composition (`meets`).
    pub fn then(self, other: PresentationSpec) -> Self {
        self.compose(TemporalRelation::Meets, other)
    }

    /// Convenience: parallel composition with common start (`starts`).
    pub fn alongside(self, other: PresentationSpec) -> Self {
        self.compose(TemporalRelation::Starts, other)
    }

    /// Inverse-relation convenience: `self after(δ) other` ≡
    /// `other before(δ) self` (Allen's inverses are expressed by swapping
    /// operands).
    pub fn after(self, delay: u64, other: PresentationSpec) -> Self {
        other.compose(TemporalRelation::Before(delay), self)
    }

    /// N-ary sequential composition (`meets` folded left to right).
    /// Returns `None` for an empty iterator.
    pub fn sequence(items: impl IntoIterator<Item = PresentationSpec>) -> Option<Self> {
        items.into_iter().reduce(|a, b| a.then(b))
    }

    /// N-ary parallel composition with a common start (`starts` folded).
    /// Returns `None` for an empty iterator.
    pub fn simultaneous(items: impl IntoIterator<Item = PresentationSpec>) -> Option<Self> {
        items.into_iter().reduce(|a, b| a.alongside(b))
    }

    /// Total duration of the presentation in ticks (the makespan implied by
    /// the relations, ignoring any resource contention).
    pub fn duration(&self) -> u64 {
        match self {
            PresentationSpec::Interval { duration, .. } => *duration,
            PresentationSpec::Compose {
                relation,
                first,
                second,
            } => {
                let a = first.duration();
                let b = second.duration();
                match relation {
                    TemporalRelation::Before(d) => a + d + b,
                    TemporalRelation::Meets => a + b,
                    TemporalRelation::Overlaps(d) | TemporalRelation::During(d) => a.max(d + b),
                    TemporalRelation::Starts | TemporalRelation::Equals => a.max(b),
                    TemporalRelation::Finishes => a.max(b),
                }
            }
        }
    }

    /// Names of every interval, left to right.
    pub fn interval_names(&self) -> Vec<&str> {
        match self {
            PresentationSpec::Interval { name, .. } => vec![name.as_str()],
            PresentationSpec::Compose { first, second, .. } => {
                let mut v = first.interval_names();
                v.extend(second.interval_names());
                v
            }
        }
    }

    /// Number of leaf intervals.
    pub fn interval_count(&self) -> usize {
        self.interval_names().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn av() -> PresentationSpec {
        // 60-tick video with 60-tick audio in lip sync, then a 20-tick image.
        PresentationSpec::interval("video", 60)
            .compose(
                TemporalRelation::Equals,
                PresentationSpec::interval("audio", 60),
            )
            .compose(
                TemporalRelation::Before(10),
                PresentationSpec::interval("image", 20),
            )
    }

    #[test]
    fn duration_of_composition() {
        assert_eq!(av().duration(), 90);
    }

    #[test]
    fn duration_overlaps() {
        let s = PresentationSpec::interval("a", 50).compose(
            TemporalRelation::Overlaps(30),
            PresentationSpec::interval("b", 40),
        );
        assert_eq!(s.duration(), 70);
    }

    #[test]
    fn duration_during_contained() {
        let s = PresentationSpec::interval("a", 100).compose(
            TemporalRelation::During(20),
            PresentationSpec::interval("b", 30),
        );
        assert_eq!(s.duration(), 100);
    }

    #[test]
    fn duration_finishes() {
        let s = PresentationSpec::interval("a", 100).compose(
            TemporalRelation::Finishes,
            PresentationSpec::interval("b", 30),
        );
        assert_eq!(s.duration(), 100);
    }

    #[test]
    fn names_left_to_right() {
        assert_eq!(av().interval_names(), ["video", "audio", "image"]);
        assert_eq!(av().interval_count(), 3);
    }

    #[test]
    fn sequence_folds_meets() {
        let s = PresentationSpec::sequence(
            (0..4).map(|i| PresentationSpec::interval(format!("s{i}"), 10)),
        )
        .unwrap();
        assert_eq!(s.duration(), 40);
        assert_eq!(s.interval_count(), 4);
        assert!(PresentationSpec::sequence(std::iter::empty()).is_none());
    }

    #[test]
    fn simultaneous_folds_starts() {
        let s = PresentationSpec::simultaneous(
            [30u64, 50, 20]
                .iter()
                .enumerate()
                .map(|(i, &d)| PresentationSpec::interval(format!("p{i}"), d)),
        )
        .unwrap();
        assert_eq!(s.duration(), 50);
    }

    #[test]
    fn after_is_swapped_before() {
        let a = PresentationSpec::interval("a", 10);
        let b = PresentationSpec::interval("b", 20);
        let s = a.after(5, b);
        // b plays first, then a 5 ticks later: total 20 + 5 + 10.
        assert_eq!(s.duration(), 35);
        assert_eq!(s.interval_names(), ["b", "a"]);
    }

    #[test]
    fn relation_display() {
        assert_eq!(TemporalRelation::Before(10).to_string(), "before(10)");
        assert_eq!(TemporalRelation::Equals.to_string(), "equals");
    }
}
