//! XOCPN: the Extended Object Composition Petri Net (paper ref \[5\]).
//!
//! XOCPN "can specify temporal relationships for the presentation of
//! pre-orchestrated multimedia data, and … set up channels according to the
//! required QoS of the data". The compiled net augments the OCPN with one
//! *transmit* transition per media object, started eagerly at presentation
//! start (channel prefetch) and drawing from a bounded channel pool. A
//! playout transition needs both its *control* token (the temporal
//! structure) and its *data* token (transmission complete), so inadequate
//! bandwidth shows up as delayed playout — which is exactly the effect the
//! WMPS comparison experiments measure.

use std::collections::HashMap;

use lod_petri::{Marking, NetBuilder, PlaceId, TimedExecutor, TimedNet, TransitionId};
use serde::{Deserialize, Serialize};

use crate::schedule::{PlayoutSchedule, ScheduleEntry};
use crate::spec::{PresentationSpec, TemporalRelation};

/// Channel quality-of-service declaration for one media object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelQos {
    /// Total transmission time in ticks (setup + transfer).
    pub transmit_ticks: u64,
}

impl ChannelQos {
    /// QoS from object size and channel bandwidth.
    ///
    /// `ticks_per_second` fixes the tick unit (use 1 for second-granular
    /// specs, `lod_media::TICKS_PER_SECOND` for 100 ns ticks).
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bps` is zero.
    pub fn from_rate(
        bytes: u64,
        bandwidth_bps: u64,
        setup_ticks: u64,
        ticks_per_second: u64,
    ) -> Self {
        assert!(bandwidth_bps > 0, "bandwidth must be positive");
        let transfer = bytes.saturating_mul(8).saturating_mul(ticks_per_second) / bandwidth_bps;
        Self {
            transmit_ticks: setup_ticks + transfer,
        }
    }

    /// QoS with an explicit transmission time.
    pub fn from_ticks(transmit_ticks: u64) -> Self {
        Self { transmit_ticks }
    }
}

/// A compiled XOCPN: OCPN temporal structure plus prefetching transmit
/// transitions over a bounded channel pool.
#[derive(Debug)]
pub struct Xocpn {
    timed: TimedNet,
    media: HashMap<String, (TransitionId, u64)>,
    transmits: HashMap<String, (TransitionId, u64)>,
    entry: PlaceId,
    pool_place: PlaceId,
    pool_size: usize,
}

impl Xocpn {
    /// Compiles `spec` with per-object `qos`. Objects missing from `qos`
    /// get zero transmission time (local media). `channels` bounds how many
    /// transmissions may run concurrently (the channel pool).
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    pub fn compile(
        spec: &PresentationSpec,
        qos: &HashMap<String, ChannelQos>,
        channels: usize,
    ) -> Self {
        assert!(channels > 0, "at least one channel is required");
        let mut b = NetBuilder::new();
        let entry = b.place("entry");
        let pool = b.place("channel.pool");
        let mut durations: Vec<(TransitionId, u64)> = Vec::new();
        let mut media = HashMap::new();
        let mut transmits = HashMap::new();
        let mut ready_places: HashMap<String, PlaceId> = HashMap::new();

        // Transmission pipelines, forked eagerly from `entry` via `start`.
        let start = b.transition("start");
        b.arc_in(entry, start, 1).expect("fresh ids");
        for name in spec.interval_names() {
            let ticks = qos.get(name).map_or(0, |q| q.transmit_ticks);
            let trigger = b.place(format!("tx.{name}.trigger"));
            let ready = b.place(format!("tx.{name}.ready"));
            let t = b.transition(format!("tx.{name}"));
            b.arc_out(start, trigger, 1).expect("fresh ids");
            b.arc_in(trigger, t, 1).expect("fresh ids");
            // Occupy one channel for the duration of the transmission.
            b.arc_in(pool, t, 1).expect("fresh ids");
            b.arc_out(t, pool, 1).expect("fresh ids");
            b.arc_out(t, ready, 1).expect("fresh ids");
            durations.push((t, ticks));
            transmits.insert(format!("tx.{name}"), (t, ticks));
            ready_places.insert(name.to_string(), ready);
        }

        // Temporal structure; playout also consumes the data-ready token.
        let (first_in, _exit) =
            compile_structure(spec, &mut b, &mut durations, &mut media, &ready_places);
        b.arc_out(start, first_in, 1).expect("fresh ids");

        let mut timed = TimedNet::new(b.build());
        for (t, d) in durations {
            timed.set_duration(t, d);
        }
        Self {
            timed,
            media,
            transmits,
            entry,
            pool_place: pool,
            pool_size: channels,
        }
    }

    /// Executes the net and returns the playout schedule of the media
    /// objects (transmissions excluded; see
    /// [`Xocpn::transmission_schedule`]).
    pub fn schedule(&self) -> PlayoutSchedule {
        self.run(|name| self.media.get(name).copied())
    }

    /// Schedule of the transmissions themselves (channel occupancy).
    pub fn transmission_schedule(&self) -> PlayoutSchedule {
        self.run(|name| self.transmits.get(name).copied())
    }

    /// The underlying timed net.
    pub fn timed_net(&self) -> &TimedNet {
        &self.timed
    }

    fn run(&self, select: impl Fn(&str) -> Option<(TransitionId, u64)>) -> PlayoutSchedule {
        let mut m = Marking::new(self.timed.net().place_count());
        m.set(self.entry, 1);
        m.set(self.pool_place, self.pool_size as u64);
        let mut exec = TimedExecutor::new(&self.timed, m);
        exec.run_to_quiescence(1_000_000)
            .expect("compiled XOCPNs terminate");
        let mut entries = Vec::new();
        let by_transition: HashMap<TransitionId, (String, u64)> = self
            .media
            .keys()
            .chain(self.transmits.keys())
            .filter_map(|n| select(n).map(|(t, d)| (t, (n.clone(), d))))
            .collect();
        for ev in exec.log() {
            if ev.kind != lod_petri::timed::TimedEventKind::Started {
                continue;
            }
            if let Some((name, dur)) = by_transition.get(&ev.transition) {
                entries.push(ScheduleEntry {
                    name: name.clone(),
                    start: ev.time,
                    end: ev.time + dur,
                });
            }
        }
        PlayoutSchedule::new(entries)
    }
}

/// Like the OCPN compiler, but playout transitions additionally consume the
/// per-object data-ready token.
fn compile_structure(
    spec: &PresentationSpec,
    b: &mut NetBuilder,
    durations: &mut Vec<(TransitionId, u64)>,
    media: &mut HashMap<String, (TransitionId, u64)>,
    ready: &HashMap<String, PlaceId>,
) -> (PlaceId, PlaceId) {
    match spec {
        PresentationSpec::Interval { name, duration } => {
            let p_in = b.place(format!("{name}.in"));
            let p_out = b.place(format!("{name}.out"));
            let t = b.transition(format!("play.{name}"));
            b.arc_in(p_in, t, 1).expect("fresh ids");
            if let Some(r) = ready.get(name) {
                b.arc_in(*r, t, 1).expect("fresh ids");
            }
            b.arc_out(t, p_out, 1).expect("fresh ids");
            durations.push((t, *duration));
            media.insert(name.clone(), (t, *duration));
            (p_in, p_out)
        }
        PresentationSpec::Compose {
            relation,
            first,
            second,
        } => {
            let (a_in, a_out) = compile_structure(first, b, durations, media, ready);
            let (b_in, b_out) = compile_structure(second, b, durations, media, ready);
            match relation {
                TemporalRelation::Before(delay) => {
                    let t = b.transition(format!("gap({delay})"));
                    b.arc_in(a_out, t, 1).expect("fresh ids");
                    b.arc_out(t, b_in, 1).expect("fresh ids");
                    durations.push((t, *delay));
                    (a_in, b_out)
                }
                TemporalRelation::Meets => {
                    let t = b.transition("meet");
                    b.arc_in(a_out, t, 1).expect("fresh ids");
                    b.arc_out(t, b_in, 1).expect("fresh ids");
                    (a_in, b_out)
                }
                rel => {
                    let lead = match rel {
                        TemporalRelation::Overlaps(d) | TemporalRelation::During(d) => *d,
                        TemporalRelation::Starts | TemporalRelation::Equals => 0,
                        TemporalRelation::Finishes => {
                            first.duration().saturating_sub(second.duration())
                        }
                        _ => unreachable!("sequential relations handled above"),
                    };
                    let entry = b.place("par.in");
                    let exit = b.place("par.out");
                    let fork = b.transition("fork");
                    let join = b.transition("join");
                    b.arc_in(entry, fork, 1).expect("fresh ids");
                    b.arc_out(fork, a_in, 1).expect("fresh ids");
                    if lead > 0 {
                        let wait = b.place("lead.wait");
                        let t = b.transition(format!("lead({lead})"));
                        b.arc_out(fork, wait, 1).expect("fresh ids");
                        b.arc_in(wait, t, 1).expect("fresh ids");
                        b.arc_out(t, b_in, 1).expect("fresh ids");
                        durations.push((t, lead));
                    } else {
                        b.arc_out(fork, b_in, 1).expect("fresh ids");
                    }
                    b.arc_in(a_out, join, 1).expect("fresh ids");
                    b.arc_in(b_out, join, 1).expect("fresh ids");
                    b.arc_out(join, exit, 1).expect("fresh ids");
                    (entry, exit)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qos(pairs: &[(&str, u64)]) -> HashMap<String, ChannelQos> {
        pairs
            .iter()
            .map(|(n, t)| (n.to_string(), ChannelQos::from_ticks(*t)))
            .collect()
    }

    #[test]
    fn adequate_bandwidth_keeps_ocpn_schedule() {
        // b is scheduled at t=30; its transmission takes 10 and starts at 0,
        // so it is ready well before its slot.
        let spec = PresentationSpec::interval("a", 30).then(PresentationSpec::interval("b", 10));
        let x = Xocpn::compile(&spec, &qos(&[("a", 0), ("b", 10)]), 2);
        let s = x.schedule();
        assert_eq!(s.start_of("a"), Some(0));
        assert_eq!(s.start_of("b"), Some(30));
    }

    #[test]
    fn slow_transmission_delays_playout() {
        let spec = PresentationSpec::interval("a", 30).then(PresentationSpec::interval("b", 10));
        // b needs 50 ticks to arrive: playout slips from 30 to 50.
        let x = Xocpn::compile(&spec, &qos(&[("b", 50)]), 2);
        let s = x.schedule();
        assert_eq!(s.start_of("b"), Some(50));
    }

    #[test]
    fn first_object_waits_for_its_own_data() {
        let spec = PresentationSpec::interval("a", 30).then(PresentationSpec::interval("b", 10));
        let x = Xocpn::compile(&spec, &qos(&[("a", 20)]), 2);
        let s = x.schedule();
        assert_eq!(s.start_of("a"), Some(20));
        assert_eq!(s.start_of("b"), Some(50));
    }

    #[test]
    fn channel_pool_serializes_transmissions() {
        // Two parallel objects, one channel: transmissions run back to back.
        let spec = PresentationSpec::interval("a", 100).compose(
            TemporalRelation::Starts,
            PresentationSpec::interval("b", 100),
        );
        let x = Xocpn::compile(&spec, &qos(&[("a", 40), ("b", 40)]), 1);
        let tx = x.transmission_schedule();
        let starts: Vec<u64> = ["tx.a", "tx.b"]
            .iter()
            .filter_map(|n| tx.start_of(n))
            .collect();
        assert_eq!(starts.len(), 2);
        assert!(starts.contains(&0) && starts.contains(&40), "{starts:?}");
    }

    #[test]
    fn two_channels_transmit_in_parallel() {
        let spec = PresentationSpec::interval("a", 100).compose(
            TemporalRelation::Starts,
            PresentationSpec::interval("b", 100),
        );
        let x = Xocpn::compile(&spec, &qos(&[("a", 40), ("b", 40)]), 2);
        let tx = x.transmission_schedule();
        assert_eq!(tx.start_of("tx.a"), Some(0));
        assert_eq!(tx.start_of("tx.b"), Some(0));
    }

    #[test]
    fn qos_from_rate_computes_transfer() {
        // 1 MB over 1 Mbit/s = 8 s; with 1 tick per second and 2 setup.
        let q = ChannelQos::from_rate(1_000_000, 1_000_000, 2, 1);
        assert_eq!(q.transmit_ticks, 10);
    }

    #[test]
    fn missing_qos_means_local_media() {
        let spec = PresentationSpec::interval("a", 30);
        let x = Xocpn::compile(&spec, &HashMap::new(), 1);
        let s = x.schedule();
        assert_eq!(s.start_of("a"), Some(0));
    }
}
