//! Property-based tests for OCPN/XOCPN compilation and scheduling.

use std::collections::HashMap;

use lod_ocpn::{ChannelQos, Ocpn, PresentationSpec, TemporalRelation, Xocpn};
use proptest::prelude::*;

fn arb_relation() -> impl Strategy<Value = TemporalRelation> {
    prop_oneof![
        (0u64..50).prop_map(TemporalRelation::Before),
        Just(TemporalRelation::Meets),
        (1u64..40).prop_map(TemporalRelation::Overlaps),
        (0u64..30).prop_map(TemporalRelation::During),
        Just(TemporalRelation::Starts),
        Just(TemporalRelation::Finishes),
        Just(TemporalRelation::Equals),
    ]
}

/// A random spec tree with unique interval names.
fn arb_spec() -> impl Strategy<Value = PresentationSpec> {
    let leaf = (1u64..100).prop_map(|d| (d, ()));
    // Build a random shape, then rename leaves uniquely.
    let shape = leaf
        .prop_map(|(d, ())| PresentationSpec::interval("x", d))
        .prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), arb_relation(), inner).prop_map(|(a, rel, b)| a.compose(rel, b))
        });
    shape.prop_map(|spec| {
        let mut counter = 0;
        rename(&spec, &mut counter)
    })
}

fn rename(spec: &PresentationSpec, counter: &mut usize) -> PresentationSpec {
    match spec {
        PresentationSpec::Interval { duration, .. } => {
            let name = format!("i{counter}");
            *counter += 1;
            PresentationSpec::interval(name, *duration)
        }
        PresentationSpec::Compose {
            relation,
            first,
            second,
        } => rename(first, counter).compose(*relation, rename(second, counter)),
    }
}

proptest! {
    /// The executed schedule's makespan equals the spec's analytic
    /// duration for every composition of relations.
    #[test]
    fn schedule_makespan_equals_spec_duration(spec in arb_spec()) {
        let schedule = Ocpn::compile(&spec).schedule();
        prop_assert_eq!(schedule.makespan(), spec.duration());
    }

    /// Every interval is scheduled exactly once and runs its full length.
    #[test]
    fn every_interval_scheduled_once(spec in arb_spec()) {
        let schedule = Ocpn::compile(&spec).schedule();
        let names = spec.interval_names();
        prop_assert_eq!(schedule.len(), names.len());
        for name in names {
            let start = schedule.start_of(name).expect("scheduled");
            let end = schedule.end_of(name).expect("scheduled");
            prop_assert!(end >= start);
        }
    }

    /// XOCPN with no QoS declarations and ample channels reproduces the
    /// plain OCPN schedule exactly.
    #[test]
    fn xocpn_with_free_channels_matches_ocpn(spec in arb_spec()) {
        let ocpn = Ocpn::compile(&spec).schedule();
        let xocpn = Xocpn::compile(&spec, &HashMap::new(), 64).schedule();
        prop_assert_eq!(ocpn, xocpn);
    }

    /// Adding transmission time never makes any playout start earlier.
    #[test]
    fn qos_delays_are_monotone(spec in arb_spec(), ticks in 1u64..200) {
        let base = Ocpn::compile(&spec).schedule();
        let qos: HashMap<String, ChannelQos> = spec
            .interval_names()
            .iter()
            .map(|n| (n.to_string(), ChannelQos::from_ticks(ticks)))
            .collect();
        let loaded = Xocpn::compile(&spec, &qos, 4).schedule();
        for name in spec.interval_names() {
            prop_assert!(
                loaded.start_of(name).unwrap() >= base.start_of(name).unwrap(),
                "{name} started earlier under load"
            );
        }
    }
}
