//! Reachability-based analysis: boundedness, safeness, deadlock, liveness.
//!
//! Exhaustive exploration is exponential in general (Mayr, paper ref \[7\]);
//! the explorer therefore takes an explicit state budget and reports
//! [`PetriError::ExplorationLimit`] instead of running away.

use std::collections::{HashMap, VecDeque};

use crate::error::PetriError;
use crate::marking::Marking;
use crate::net::{PetriNet, TransitionId};

/// Exploration budget for [`ReachabilityGraph::explore`].
#[derive(Debug, Clone, Copy)]
pub struct ExploreLimits {
    /// Maximum number of distinct markings to visit.
    pub max_states: usize,
    /// Markings whose total token count exceeds this are treated as
    /// evidence of unboundedness and abort exploration.
    pub max_tokens: u64,
}

impl Default for ExploreLimits {
    fn default() -> Self {
        Self {
            max_states: 100_000,
            max_tokens: 10_000,
        }
    }
}

/// The explicit reachability graph of a bounded net.
#[derive(Debug, Clone)]
pub struct ReachabilityGraph {
    markings: Vec<Marking>,
    /// `edges[i]` = `(transition, successor-state-index)` pairs from state `i`.
    edges: Vec<Vec<(TransitionId, usize)>>,
}

impl ReachabilityGraph {
    /// Explores all markings reachable from `initial`, breadth-first.
    ///
    /// # Errors
    ///
    /// [`PetriError::ExplorationLimit`] when `limits` are exceeded — in
    /// particular, a marking whose token total exceeds `max_tokens` is taken
    /// as a sign of unboundedness.
    pub fn explore(
        net: &PetriNet,
        initial: &Marking,
        limits: ExploreLimits,
    ) -> Result<Self, PetriError> {
        let mut index: HashMap<Marking, usize> = HashMap::new();
        let mut markings = Vec::new();
        let mut edges: Vec<Vec<(TransitionId, usize)>> = Vec::new();
        let mut queue = VecDeque::new();

        index.insert(initial.clone(), 0);
        markings.push(initial.clone());
        edges.push(Vec::new());
        queue.push_back(0usize);

        while let Some(state) = queue.pop_front() {
            let m = markings[state].clone();
            for t in net.enabled(&m) {
                let next = net.successor(&m, t).expect("enabled transition fires");
                if next.total() > limits.max_tokens {
                    return Err(PetriError::ExplorationLimit {
                        states_seen: markings.len(),
                    });
                }
                let next_idx = match index.get(&next) {
                    Some(&i) => i,
                    None => {
                        if markings.len() >= limits.max_states {
                            return Err(PetriError::ExplorationLimit {
                                states_seen: markings.len(),
                            });
                        }
                        let i = markings.len();
                        index.insert(next.clone(), i);
                        markings.push(next);
                        edges.push(Vec::new());
                        queue.push_back(i);
                        i
                    }
                };
                edges[state].push((t, next_idx));
            }
        }
        Ok(Self { markings, edges })
    }

    /// Number of reachable markings.
    pub fn state_count(&self) -> usize {
        self.markings.len()
    }

    /// All reachable markings, index 0 being the initial one.
    pub fn markings(&self) -> &[Marking] {
        &self.markings
    }

    /// Outgoing edges of state `i` as `(transition, successor)` pairs.
    pub fn edges(&self, i: usize) -> &[(TransitionId, usize)] {
        &self.edges[i]
    }

    /// The smallest bound `k` such that every reachable marking puts at most
    /// `k` tokens in any single place.
    pub fn bound(&self) -> u64 {
        self.markings
            .iter()
            .flat_map(|m| m.as_slice().iter().copied())
            .max()
            .unwrap_or(0)
    }

    /// Whether every reachable marking is safe (1-bounded).
    pub fn is_safe(&self) -> bool {
        self.bound() <= 1
    }

    /// Reachable markings with no enabled transition.
    pub fn deadlocks(&self) -> Vec<&Marking> {
        self.markings
            .iter()
            .zip(&self.edges)
            .filter(|(_, e)| e.is_empty())
            .map(|(m, _)| m)
            .collect()
    }

    /// Whether `transition` fires on at least one reachable edge
    /// (quasi-liveness, liveness level L1).
    pub fn is_quasi_live(&self, transition: TransitionId) -> bool {
        self.edges.iter().flatten().any(|(t, _)| *t == transition)
    }

    /// Transitions that never fire anywhere in the graph (dead transitions).
    pub fn dead_transitions(&self, net: &PetriNet) -> Vec<TransitionId> {
        net.transitions()
            .filter(|t| !self.is_quasi_live(*t))
            .collect()
    }

    /// Whether `target` is reachable from the initial marking.
    pub fn contains(&self, target: &Marking) -> bool {
        self.markings.iter().any(|m| m == target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetBuilder;

    /// Classic mutual-exclusion net: two processes, one shared resource.
    fn mutex() -> (PetriNet, Marking) {
        let mut b = NetBuilder::new();
        let idle1 = b.place("idle1");
        let crit1 = b.place("crit1");
        let idle2 = b.place("idle2");
        let crit2 = b.place("crit2");
        let res = b.place("res");
        let enter1 = b.transition("enter1");
        let exit1 = b.transition("exit1");
        let enter2 = b.transition("enter2");
        let exit2 = b.transition("exit2");
        b.arc_in(idle1, enter1, 1).unwrap();
        b.arc_in(res, enter1, 1).unwrap();
        b.arc_out(enter1, crit1, 1).unwrap();
        b.arc_in(crit1, exit1, 1).unwrap();
        b.arc_out(exit1, idle1, 1).unwrap();
        b.arc_out(exit1, res, 1).unwrap();
        b.arc_in(idle2, enter2, 1).unwrap();
        b.arc_in(res, enter2, 1).unwrap();
        b.arc_out(enter2, crit2, 1).unwrap();
        b.arc_in(crit2, exit2, 1).unwrap();
        b.arc_out(exit2, idle2, 1).unwrap();
        b.arc_out(exit2, res, 1).unwrap();
        let net = b.build();
        let mut m = Marking::new(net.place_count());
        m.set(idle1, 1);
        m.set(idle2, 1);
        m.set(res, 1);
        (net, m)
    }

    #[test]
    fn mutex_is_safe_and_deadlock_free() {
        let (net, m0) = mutex();
        let g = ReachabilityGraph::explore(&net, &m0, ExploreLimits::default()).unwrap();
        // idle/idle, crit1/idle, idle/crit2 — exactly 3 states.
        assert_eq!(g.state_count(), 3);
        assert!(g.is_safe());
        assert!(g.deadlocks().is_empty());
        for t in net.transitions() {
            assert!(g.is_quasi_live(t), "{} dead", net.transition_name(t));
        }
    }

    #[test]
    fn mutual_exclusion_holds_in_every_state() {
        let (net, m0) = mutex();
        let crit1 = net
            .places()
            .find(|p| net.place_name(*p) == "crit1")
            .unwrap();
        let crit2 = net
            .places()
            .find(|p| net.place_name(*p) == "crit2")
            .unwrap();
        let g = ReachabilityGraph::explore(&net, &m0, ExploreLimits::default()).unwrap();
        for m in g.markings() {
            assert!(m.tokens(crit1) + m.tokens(crit2) <= 1);
        }
    }

    #[test]
    fn unbounded_net_hits_token_limit() {
        // t: p -> p,p doubles tokens forever.
        let mut b = NetBuilder::new();
        let p = b.place("p");
        let t = b.transition("t");
        b.arc_in(p, t, 1).unwrap();
        b.arc_out(t, p, 2).unwrap();
        let net = b.build();
        let mut m = Marking::new(1);
        m.set(p, 1);
        let result = ReachabilityGraph::explore(
            &net,
            &m,
            ExploreLimits {
                max_states: 1_000,
                max_tokens: 64,
            },
        );
        assert!(matches!(result, Err(PetriError::ExplorationLimit { .. })));
    }

    #[test]
    fn dead_transition_detected() {
        let mut b = NetBuilder::new();
        let p = b.place("p");
        let q = b.place("q");
        let live = b.transition("live");
        let dead = b.transition("dead");
        b.arc_in(p, live, 1).unwrap();
        b.arc_in(q, dead, 1).unwrap(); // q never marked
        let net = b.build();
        let mut m = Marking::new(2);
        m.set(p, 1);
        let g = ReachabilityGraph::explore(&net, &m, ExploreLimits::default()).unwrap();
        assert_eq!(g.dead_transitions(&net), vec![dead]);
    }

    #[test]
    fn deadlock_found() {
        let mut b = NetBuilder::new();
        let p = b.place("p");
        let q = b.place("q");
        let t = b.transition("t");
        b.arc_in(p, t, 1).unwrap();
        b.arc_out(t, q, 1).unwrap();
        let net = b.build();
        let mut m = Marking::new(2);
        m.set(p, 1);
        let g = ReachabilityGraph::explore(&net, &m, ExploreLimits::default()).unwrap();
        let deadlocks = g.deadlocks();
        assert_eq!(deadlocks.len(), 1);
        assert_eq!(deadlocks[0].tokens(q), 1);
    }

    #[test]
    fn contains_finds_reachable_marking() {
        let (net, m0) = mutex();
        let g = ReachabilityGraph::explore(&net, &m0, ExploreLimits::default()).unwrap();
        assert!(g.contains(&m0));
        let unreachable = Marking::from_counts(vec![0, 1, 0, 1, 0]);
        assert!(!g.contains(&unreachable));
    }

    #[test]
    fn state_limit_respected() {
        let (net, m0) = mutex();
        let result = ReachabilityGraph::explore(
            &net,
            &m0,
            ExploreLimits {
                max_states: 2,
                max_tokens: 100,
            },
        );
        assert!(matches!(result, Err(PetriError::ExplorationLimit { .. })));
    }
}
