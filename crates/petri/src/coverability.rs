//! Coverability analysis (Karp–Miller) and structural siphon/trap checks.
//!
//! Reachability exploration ([`crate::analysis`]) only terminates on
//! bounded nets. The Karp–Miller construction abstracts unbounded growth
//! with an ω symbol, so *coverability* — "can a marking with at least
//! these tokens be reached?" — is decidable for every net, which is what
//! lets the sync-model builders assert boundedness of their control
//! structure instead of trusting it.
//!
//! The structural half: a **siphon** is a place set whose every input
//! transition is also an output transition of the set (once empty, it
//! stays empty — a deadlock seed); a **trap** is the dual (once marked,
//! it stays marked). A deadlocked net always has an empty siphon, so
//! finding an unmarked siphon is a cheap static warning.

use std::collections::VecDeque;

use crate::marking::Marking;
use crate::net::{PetriNet, PlaceId};

/// A token count that may be finite or unbounded (ω).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Count {
    /// Exactly this many tokens.
    Finite(u64),
    /// Unboundedly many tokens (ω).
    Omega,
}

impl Count {
    fn at_least(self, n: u64) -> bool {
        match self {
            Count::Finite(v) => v >= n,
            Count::Omega => true,
        }
    }

    fn sub(self, n: u64) -> Count {
        match self {
            Count::Finite(v) => Count::Finite(v - n),
            Count::Omega => Count::Omega,
        }
    }

    fn add(self, n: u64) -> Count {
        match self {
            Count::Finite(v) => Count::Finite(v + n),
            Count::Omega => Count::Omega,
        }
    }
}

/// An extended marking over `Count`s.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OmegaMarking {
    counts: Vec<Count>,
}

impl OmegaMarking {
    /// Lifts a concrete marking.
    pub fn from_marking(m: &Marking) -> Self {
        Self {
            counts: m.as_slice().iter().map(|&v| Count::Finite(v)).collect(),
        }
    }

    /// The count at a place.
    pub fn count(&self, place: PlaceId) -> Count {
        self.counts[place.index()]
    }

    /// Whether any place is ω (the net is unbounded along this branch).
    pub fn has_omega(&self) -> bool {
        self.counts.contains(&Count::Omega)
    }

    /// Componentwise ≥ against a concrete marking.
    pub fn covers(&self, m: &Marking) -> bool {
        self.counts.len() == m.len()
            && self
                .counts
                .iter()
                .zip(m.as_slice())
                .all(|(c, &v)| c.at_least(v))
    }

    /// Componentwise ≥ against another ω-marking.
    fn covers_omega(&self, other: &OmegaMarking) -> bool {
        self.counts
            .iter()
            .zip(&other.counts)
            .all(|(a, b)| match (a, b) {
                (Count::Omega, _) => true,
                (Count::Finite(_), Count::Omega) => false,
                (Count::Finite(x), Count::Finite(y)) => x >= y,
            })
    }
}

/// The Karp–Miller coverability tree (stored as its node set).
#[derive(Debug)]
pub struct CoverabilityTree {
    nodes: Vec<OmegaMarking>,
    bounded: bool,
}

impl CoverabilityTree {
    /// Builds the tree from `initial`, capping at `max_nodes` as a safety
    /// valve (the construction always terminates, but can be large).
    pub fn build(net: &PetriNet, initial: &Marking, max_nodes: usize) -> Self {
        let root = OmegaMarking::from_marking(initial);
        let mut nodes = vec![root.clone()];
        // Each queue entry carries its ancestor chain (indices into nodes).
        let mut queue: VecDeque<(usize, Vec<usize>)> = VecDeque::new();
        queue.push_back((0, vec![0]));
        let mut bounded = true;

        while let Some((idx, ancestors)) = queue.pop_front() {
            if nodes.len() >= max_nodes {
                break;
            }
            let current = nodes[idx].clone();
            for t in net.transitions() {
                // Enabled under ω semantics?
                let enabled = net
                    .inputs(t)
                    .iter()
                    .all(|(p, w)| current.count(*p).at_least(u64::from(*w)));
                if !enabled {
                    continue;
                }
                let mut next = current.clone();
                for (p, w) in net.inputs(t) {
                    next.counts[p.index()] = next.counts[p.index()].sub(u64::from(*w));
                }
                for (p, w) in net.outputs(t) {
                    next.counts[p.index()] = next.counts[p.index()].add(u64::from(*w));
                }
                // ω-acceleration: if an ancestor is strictly covered,
                // pump the growing places to ω.
                for &a in &ancestors {
                    let anc = &nodes[a];
                    if next.covers_omega(anc) && next != *anc {
                        for i in 0..next.counts.len() {
                            let grew = match (next.counts[i], anc.counts[i]) {
                                (Count::Finite(x), Count::Finite(y)) => x > y,
                                (Count::Omega, Count::Finite(_)) => true,
                                _ => false,
                            };
                            if grew {
                                next.counts[i] = Count::Omega;
                            }
                        }
                    }
                }
                if next.has_omega() {
                    bounded = false;
                }
                // Prune: skip if an existing node covers it.
                if nodes.iter().any(|n| n.covers_omega(&next)) {
                    continue;
                }
                let new_idx = nodes.len();
                nodes.push(next);
                let mut chain = ancestors.clone();
                chain.push(new_idx);
                queue.push_back((new_idx, chain));
            }
        }
        Self { nodes, bounded }
    }

    /// Whether the net is bounded from the initial marking.
    pub fn is_bounded(&self) -> bool {
        self.bounded
    }

    /// Number of tree nodes kept.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Whether some reachable marking covers `target` (has at least its
    /// tokens everywhere).
    pub fn can_cover(&self, target: &Marking) -> bool {
        self.nodes.iter().any(|n| n.covers(target))
    }

    /// Places that can grow without bound.
    pub fn unbounded_places(&self, net: &PetriNet) -> Vec<PlaceId> {
        net.places()
            .filter(|p| self.nodes.iter().any(|n| n.count(*p) == Count::Omega))
            .collect()
    }
}

/// Whether `places` forms a siphon: every transition feeding the set also
/// consumes from it (`•S ⊆ S•`).
pub fn is_siphon(net: &PetriNet, places: &[PlaceId]) -> bool {
    if places.is_empty() {
        return false;
    }
    net.transitions().all(|t| {
        let feeds = net.outputs(t).iter().any(|(p, _)| places.contains(p));
        if !feeds {
            return true;
        }
        net.inputs(t).iter().any(|(p, _)| places.contains(p))
    })
}

/// Whether `places` forms a trap: every transition consuming from the set
/// also feeds it (`S• ⊆ •S`).
pub fn is_trap(net: &PetriNet, places: &[PlaceId]) -> bool {
    if places.is_empty() {
        return false;
    }
    net.transitions().all(|t| {
        let drains = net.inputs(t).iter().any(|(p, _)| places.contains(p));
        if !drains {
            return true;
        }
        net.outputs(t).iter().any(|(p, _)| places.contains(p))
    })
}

/// Finds all *minimal* siphons of nets with at most `max_places` places by
/// exhaustive subset search (exponential — a structural tool for the small
/// control nets, not for lecture-scale ones).
///
/// # Panics
///
/// Panics if the net has more than 20 places (the subset enumeration
/// would be astronomically large).
pub fn minimal_siphons(net: &PetriNet) -> Vec<Vec<PlaceId>> {
    let n = net.place_count();
    assert!(n <= 20, "minimal_siphons is exponential; net too large");
    let places: Vec<PlaceId> = net.places().collect();
    let mut found: Vec<Vec<PlaceId>> = Vec::new();
    for mask in 1u32..(1 << n) {
        let subset: Vec<PlaceId> = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| places[i])
            .collect();
        if !is_siphon(net, &subset) {
            continue;
        }
        // Minimal: no already-found siphon is a subset.
        if found.iter().any(|s| s.iter().all(|p| subset.contains(p))) {
            continue;
        }
        found.push(subset);
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetBuilder;

    #[test]
    fn bounded_cycle_has_no_omega() {
        let mut b = NetBuilder::new();
        let p0 = b.place("p0");
        let p1 = b.place("p1");
        let t0 = b.transition("t0");
        let t1 = b.transition("t1");
        b.arc_in(p0, t0, 1).unwrap();
        b.arc_out(t0, p1, 1).unwrap();
        b.arc_in(p1, t1, 1).unwrap();
        b.arc_out(t1, p0, 1).unwrap();
        let net = b.build();
        let mut m = Marking::new(2);
        m.set(p0, 1);
        let tree = CoverabilityTree::build(&net, &m, 10_000);
        assert!(tree.is_bounded());
        assert!(tree.unbounded_places(&net).is_empty());
    }

    #[test]
    fn producer_without_consumer_is_unbounded() {
        // t: p -> p + q grows q forever.
        let mut b = NetBuilder::new();
        let p = b.place("p");
        let q = b.place("q");
        let t = b.transition("t");
        b.arc_in(p, t, 1).unwrap();
        b.arc_out(t, p, 1).unwrap();
        b.arc_out(t, q, 1).unwrap();
        let net = b.build();
        let mut m = Marking::new(2);
        m.set(p, 1);
        let tree = CoverabilityTree::build(&net, &m, 10_000);
        assert!(!tree.is_bounded());
        assert_eq!(tree.unbounded_places(&net), vec![q]);
        // Any finite amount of q is coverable.
        let mut target = Marking::new(2);
        target.set(q, 1_000);
        assert!(tree.can_cover(&target));
    }

    #[test]
    fn cover_query_on_bounded_net() {
        let mut b = NetBuilder::new();
        let p = b.place("p");
        let q = b.place("q");
        let t = b.transition("t");
        b.arc_in(p, t, 1).unwrap();
        b.arc_out(t, q, 1).unwrap();
        let net = b.build();
        let mut m = Marking::new(2);
        m.set(p, 1);
        let tree = CoverabilityTree::build(&net, &m, 1_000);
        let mut one_q = Marking::new(2);
        one_q.set(q, 1);
        assert!(tree.can_cover(&one_q));
        let mut two_q = Marking::new(2);
        two_q.set(q, 2);
        assert!(!tree.can_cover(&two_q));
    }

    #[test]
    fn siphon_and_trap_detection() {
        // Cycle p0 -> t0 -> p1 -> t1 -> p0: {p0, p1} is both siphon & trap.
        let mut b = NetBuilder::new();
        let p0 = b.place("p0");
        let p1 = b.place("p1");
        let t0 = b.transition("t0");
        let t1 = b.transition("t1");
        b.arc_in(p0, t0, 1).unwrap();
        b.arc_out(t0, p1, 1).unwrap();
        b.arc_in(p1, t1, 1).unwrap();
        b.arc_out(t1, p0, 1).unwrap();
        let net = b.build();
        assert!(is_siphon(&net, &[p0, p1]));
        assert!(is_trap(&net, &[p0, p1]));
        // {p0} alone: t1 feeds it but consumes from p1, not p0 → not a siphon.
        assert!(!is_siphon(&net, &[p0]));
        assert!(!is_trap(&net, &[p0]));
        assert!(!is_siphon(&net, &[]));
    }

    #[test]
    fn sink_place_is_a_trap_not_a_siphon() {
        let mut b = NetBuilder::new();
        let p = b.place("p");
        let q = b.place("q");
        let t = b.transition("t");
        b.arc_in(p, t, 1).unwrap();
        b.arc_out(t, q, 1).unwrap();
        let net = b.build();
        // q only gains tokens: trap. It is fed by t which doesn't consume
        // from it: not a siphon.
        assert!(is_trap(&net, &[q]));
        assert!(!is_siphon(&net, &[q]));
        // p only loses tokens: siphon, not trap.
        assert!(is_siphon(&net, &[p]));
        assert!(!is_trap(&net, &[p]));
    }

    #[test]
    fn minimal_siphons_of_mutex() {
        // The classic mutex net: the resource place forms part of the
        // invariant siphons.
        let mut b = NetBuilder::new();
        let idle = b.place("idle");
        let crit = b.place("crit");
        let res = b.place("res");
        let enter = b.transition("enter");
        let exit = b.transition("exit");
        b.arc_in(idle, enter, 1).unwrap();
        b.arc_in(res, enter, 1).unwrap();
        b.arc_out(enter, crit, 1).unwrap();
        b.arc_in(crit, exit, 1).unwrap();
        b.arc_out(exit, idle, 1).unwrap();
        b.arc_out(exit, res, 1).unwrap();
        let net = b.build();
        let siphons = minimal_siphons(&net);
        assert!(!siphons.is_empty());
        for s in &siphons {
            assert!(is_siphon(&net, s));
        }
        // {idle, crit} cycles tokens: a minimal siphon.
        assert!(siphons
            .iter()
            .any(|s| s.len() == 2 && s.contains(&idle) && s.contains(&crit)));
    }
}
