//! Graphviz DOT export.
//!
//! "Petri net is a graphical and mathematical modeling tool" (§1) — the
//! graphical half. [`to_dot`] renders any net (optionally with a marking)
//! as DOT source: places are circles with token dots, transitions are
//! boxes, arcs carry their weights. Feed the output to `dot -Tsvg` to see
//! the nets the sync models build.

use std::fmt::Write as _;

use crate::marking::Marking;
use crate::net::PetriNet;

/// Renders `net` as Graphviz DOT. When `marking` is given, each place
/// label shows its token count and marked places are filled.
pub fn to_dot(net: &PetriNet, marking: Option<&Marking>) -> String {
    let mut out = String::new();
    out.push_str("digraph petri {\n  rankdir=LR;\n");
    out.push_str("  node [fontsize=10];\n");
    for p in net.places() {
        let tokens = marking.map(|m| m.tokens(p)).unwrap_or(0);
        let label = if marking.is_some() {
            format!("{}\\n●{}", escape(net.place_name(p)), tokens)
        } else {
            escape(net.place_name(p))
        };
        let fill = if tokens > 0 {
            ", style=filled, fillcolor=\"#ffe08a\""
        } else {
            ""
        };
        let _ = writeln!(out, "  {p} [shape=circle, label=\"{label}\"{fill}];");
    }
    for t in net.transitions() {
        let _ = writeln!(
            out,
            "  {t} [shape=box, label=\"{}\", style=filled, fillcolor=\"#d0e2ff\"];",
            escape(net.transition_name(t))
        );
    }
    for t in net.transitions() {
        for (p, w) in net.inputs(t) {
            let _ = writeln!(out, "  {p} -> {t}{};", weight_attr(*w));
        }
        for (p, w) in net.outputs(t) {
            let _ = writeln!(out, "  {t} -> {p}{};", weight_attr(*w));
        }
    }
    out.push_str("}\n");
    out
}

fn weight_attr(w: u32) -> String {
    if w == 1 {
        String::new()
    } else {
        format!(" [label=\"{w}\"]")
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetBuilder;

    fn net() -> (PetriNet, Marking) {
        let mut b = NetBuilder::new();
        let p = b.place("ready");
        let q = b.place("done \"quoted\"");
        let t = b.transition("fire");
        b.arc_in(p, t, 2).unwrap();
        b.arc_out(t, q, 1).unwrap();
        let net = b.build();
        let mut m = Marking::new(2);
        m.set(p, 3);
        (net, m)
    }

    #[test]
    fn dot_contains_all_elements() {
        let (net, _) = net();
        let dot = to_dot(&net, None);
        assert!(dot.starts_with("digraph petri {"));
        assert!(dot.contains("p0 [shape=circle"));
        assert!(dot.contains("t0 [shape=box"));
        assert!(dot.contains("p0 -> t0 [label=\"2\"];"));
        assert!(dot.contains("t0 -> p1;"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn marking_shows_tokens_and_fill() {
        let (net, m) = net();
        let dot = to_dot(&net, Some(&m));
        assert!(dot.contains("●3"));
        assert!(dot.contains("fillcolor=\"#ffe08a\""));
    }

    #[test]
    fn labels_are_escaped() {
        let (net, _) = net();
        let dot = to_dot(&net, None);
        assert!(dot.contains("done \\\"quoted\\\""));
    }

    #[test]
    fn balanced_braces() {
        let (net, m) = net();
        for dot in [to_dot(&net, None), to_dot(&net, Some(&m))] {
            assert_eq!(dot.matches('{').count(), dot.matches('}').count());
        }
    }
}
