//! Error types for net construction, firing and analysis.

use std::error::Error;
use std::fmt;

use crate::net::{PlaceId, TransitionId};

/// Errors produced by net construction, firing, and analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PetriError {
    /// A [`PlaceId`] did not belong to the net it was used with.
    UnknownPlace(PlaceId),
    /// A [`TransitionId`] did not belong to the net it was used with.
    UnknownTransition(TransitionId),
    /// An arc was declared with weight zero, which is meaningless.
    ZeroWeightArc,
    /// The transition was not enabled in the given marking.
    NotEnabled(TransitionId),
    /// Firing would exceed the declared capacity of a place.
    CapacityExceeded {
        /// The place whose capacity would be violated.
        place: PlaceId,
        /// The declared capacity.
        capacity: u32,
        /// The token count the firing attempted to reach.
        attempted: u64,
    },
    /// A marking had the wrong number of places for the net.
    MarkingSizeMismatch {
        /// Places in the net.
        expected: usize,
        /// Places in the supplied marking.
        actual: usize,
    },
    /// Reachability exploration hit the configured state or token limit.
    ExplorationLimit {
        /// Number of distinct markings seen before giving up.
        states_seen: usize,
    },
    /// A timed executor was asked to run past its configured horizon.
    HorizonExceeded,
}

impl fmt::Display for PetriError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PetriError::UnknownPlace(p) => write!(f, "unknown place {p:?}"),
            PetriError::UnknownTransition(t) => write!(f, "unknown transition {t:?}"),
            PetriError::ZeroWeightArc => write!(f, "arc weight must be positive"),
            PetriError::NotEnabled(t) => write!(f, "transition {t:?} is not enabled"),
            PetriError::CapacityExceeded {
                place,
                capacity,
                attempted,
            } => write!(
                f,
                "place {place:?} capacity {capacity} exceeded (attempted {attempted})"
            ),
            PetriError::MarkingSizeMismatch { expected, actual } => {
                write!(f, "marking has {actual} places but the net has {expected}")
            }
            PetriError::ExplorationLimit { states_seen } => write!(
                f,
                "reachability exploration exceeded its limit after {states_seen} markings"
            ),
            PetriError::HorizonExceeded => write!(f, "timed execution exceeded its horizon"),
        }
    }
}

impl Error for PetriError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        let e = PetriError::ZeroWeightArc;
        let s = e.to_string();
        assert!(s.starts_with("arc"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PetriError>();
    }

    #[test]
    fn capacity_display_mentions_numbers() {
        let e = PetriError::CapacityExceeded {
            place: PlaceId(3),
            capacity: 2,
            attempted: 5,
        };
        let s = e.to_string();
        assert!(s.contains('2') && s.contains('5'));
    }
}
