//! Occurrence sequences and random firing.

use serde::{Deserialize, Serialize};

use crate::error::PetriError;
use crate::marking::Marking;
use crate::net::{PetriNet, TransitionId};

/// A recorded occurrence sequence: the transitions fired, in order.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FiringSequence {
    steps: Vec<TransitionId>,
}

impl FiringSequence {
    /// An empty sequence.
    pub fn new() -> Self {
        Self::default()
    }

    /// Transitions fired so far, in order.
    pub fn steps(&self) -> &[TransitionId] {
        &self.steps
    }

    /// Number of firings recorded.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether no transition has fired.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Records one firing.
    pub fn push(&mut self, t: TransitionId) {
        self.steps.push(t);
    }

    /// Replays this sequence from `initial` on `net`, returning the final
    /// marking.
    ///
    /// # Errors
    ///
    /// Fails with [`PetriError::NotEnabled`] at the first step that cannot
    /// fire.
    pub fn replay(&self, net: &PetriNet, initial: &Marking) -> Result<Marking, PetriError> {
        let mut m = initial.clone();
        for &t in &self.steps {
            net.fire(&mut m, t)?;
        }
        Ok(m)
    }
}

impl FromIterator<TransitionId> for FiringSequence {
    fn from_iter<I: IntoIterator<Item = TransitionId>>(iter: I) -> Self {
        Self {
            steps: iter.into_iter().collect(),
        }
    }
}

/// Fires uniformly-random enabled transitions using a caller-supplied
/// deterministic selector.
///
/// The selector receives the number of enabled transitions and returns the
/// index to fire; supplying `|n| seed % n`-style closures (or an `Rng`) keeps
/// runs reproducible without this crate depending on a specific RNG.
#[derive(Debug)]
pub struct RandomFirer<'a> {
    net: &'a PetriNet,
    marking: Marking,
    sequence: FiringSequence,
}

impl<'a> RandomFirer<'a> {
    /// Starts a run from `initial`.
    pub fn new(net: &'a PetriNet, initial: Marking) -> Self {
        Self {
            net,
            marking: initial,
            sequence: FiringSequence::new(),
        }
    }

    /// Current marking.
    pub fn marking(&self) -> &Marking {
        &self.marking
    }

    /// The occurrence sequence so far.
    pub fn sequence(&self) -> &FiringSequence {
        &self.sequence
    }

    /// Fires one transition chosen by `select` from the enabled set.
    ///
    /// Returns the fired transition, or `None` when the net is dead (no
    /// transition enabled).
    pub fn step(&mut self, mut select: impl FnMut(usize) -> usize) -> Option<TransitionId> {
        let enabled = self.net.enabled(&self.marking);
        if enabled.is_empty() {
            return None;
        }
        let idx = select(enabled.len()) % enabled.len();
        let t = enabled[idx];
        self.net
            .fire(&mut self.marking, t)
            .expect("enabled transition must fire");
        self.sequence.push(t);
        Some(t)
    }

    /// Runs up to `max_steps` firings; returns the number actually fired
    /// (fewer only if the net deadlocked).
    pub fn run(&mut self, max_steps: usize, mut select: impl FnMut(usize) -> usize) -> usize {
        for i in 0..max_steps {
            if self.step(&mut select).is_none() {
                return i;
            }
        }
        max_steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetBuilder;

    fn ring() -> (PetriNet, Marking) {
        // Three places in a cycle, one token circulating.
        let mut b = NetBuilder::new();
        let p: Vec<_> = (0..3).map(|i| b.place(format!("p{i}"))).collect();
        for i in 0..3 {
            let t = b.transition(format!("t{i}"));
            b.arc_in(p[i], t, 1).unwrap();
            b.arc_out(t, p[(i + 1) % 3], 1).unwrap();
        }
        let net = b.build();
        let mut m = Marking::new(3);
        m.set(p[0], 1);
        (net, m)
    }

    #[test]
    fn replay_reproduces_run() {
        let (net, m0) = ring();
        let mut firer = RandomFirer::new(&net, m0.clone());
        assert_eq!(firer.run(10, |_| 0), 10);
        let replayed = firer.sequence().clone().replay(&net, &m0).unwrap();
        assert_eq!(&replayed, firer.marking());
    }

    #[test]
    fn replay_detects_bad_sequence() {
        let (net, m0) = ring();
        let mut all: Vec<_> = net.transitions().collect();
        all.reverse();
        let seq: FiringSequence = all.into_iter().collect();
        // Firing t2 first is impossible: token sits in p0.
        assert!(matches!(
            seq.replay(&net, &m0),
            Err(PetriError::NotEnabled(_))
        ));
    }

    #[test]
    fn dead_net_stops_early() {
        let mut b = NetBuilder::new();
        let p = b.place("p");
        let t = b.transition("t");
        b.arc_in(p, t, 1).unwrap();
        let net = b.build();
        let mut m = Marking::new(1);
        m.set(p, 2);
        let mut firer = RandomFirer::new(&net, m);
        // Two firings drain p, then the net is dead.
        assert_eq!(firer.run(10, |_| 0), 2);
        assert_eq!(firer.sequence().len(), 2);
    }

    #[test]
    fn token_count_conserved_on_ring() {
        let (net, m0) = ring();
        let mut firer = RandomFirer::new(&net, m0);
        let mut state = 7usize;
        firer.run(100, |n| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state % n
        });
        assert_eq!(firer.marking().total(), 1);
    }
}
