//! Incidence matrix and P/T-invariants.
//!
//! A P-invariant `y` satisfies `yᵀ·C = 0` where `C` is the incidence matrix;
//! the weighted token sum `y·M` is then constant over every reachable
//! marking — the tool the sync-model crates use to prove conservation (e.g.
//! "exactly one floor token exists").
//!
//! Bases are computed by exact rational Gaussian elimination and scaled back
//! to primitive integer vectors.

use crate::marking::Marking;
use crate::net::{PetriNet, TransitionId};

/// Exact rational number used internally for elimination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Rat {
    num: i128,
    den: i128, // always > 0
}

fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

impl Rat {
    const ZERO: Rat = Rat { num: 0, den: 1 };

    fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "zero denominator");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den).max(1);
        Rat {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    fn from_int(v: i128) -> Self {
        Rat { num: v, den: 1 }
    }

    fn is_zero(self) -> bool {
        self.num == 0
    }

    fn sub(self, other: Rat) -> Rat {
        Rat::new(
            self.num * other.den - other.num * self.den,
            self.den * other.den,
        )
    }

    fn mul(self, other: Rat) -> Rat {
        Rat::new(self.num * other.num, self.den * other.den)
    }

    fn div(self, other: Rat) -> Rat {
        Rat::new(self.num * other.den, self.den * other.num)
    }
}

/// The incidence matrix `C[p][t] = W(t,p) - W(p,t)` of a net.
#[derive(Debug, Clone)]
pub struct IncidenceMatrix {
    /// Rows indexed by place, columns by transition.
    entries: Vec<Vec<i64>>,
}

impl IncidenceMatrix {
    /// Builds the incidence matrix of `net`.
    pub fn of(net: &PetriNet) -> Self {
        let mut entries = vec![vec![0i64; net.transition_count()]; net.place_count()];
        for t in net.transitions() {
            for (p, w) in net.inputs(t) {
                entries[p.index()][t.index()] -= i64::from(*w);
            }
            for (p, w) in net.outputs(t) {
                entries[p.index()][t.index()] += i64::from(*w);
            }
        }
        Self { entries }
    }

    /// Entry for `(place_index, transition_index)`.
    pub fn get(&self, place: usize, transition: usize) -> i64 {
        self.entries[place][transition]
    }

    /// Number of place rows.
    pub fn rows(&self) -> usize {
        self.entries.len()
    }

    /// Number of transition columns.
    pub fn cols(&self) -> usize {
        self.entries.first().map_or(0, Vec::len)
    }

    /// Applies a firing-count vector: `M' = M + C·x` (the state equation).
    ///
    /// Returns `None` if any intermediate count would go negative, which
    /// means `x` is not realizable from `m` in that aggregate sense.
    pub fn apply(&self, m: &Marking, firings: &[u64]) -> Option<Vec<i64>> {
        let mut out: Vec<i64> = m.as_slice().iter().map(|&v| v as i64).collect();
        for (p, row) in self.entries.iter().enumerate() {
            let delta: i64 = row.iter().zip(firings).map(|(c, x)| c * (*x as i64)).sum();
            out[p] += delta;
            if out[p] < 0 {
                return None;
            }
        }
        Some(out)
    }
}

/// Computes a basis of the null space of `a` (rows × cols), as primitive
/// integer vectors of length `cols`.
fn integer_null_space(a: &[Vec<i64>], cols: usize) -> Vec<Vec<i64>> {
    // Rational row-reduce a copy.
    let mut m: Vec<Vec<Rat>> = a
        .iter()
        .map(|row| row.iter().map(|&v| Rat::from_int(v as i128)).collect())
        .collect();
    let rows = m.len();
    let mut pivot_cols = Vec::new();
    let mut r = 0;
    for c in 0..cols {
        // Find pivot.
        let Some(pr) = (r..rows).find(|&i| !m[i][c].is_zero()) else {
            continue;
        };
        m.swap(r, pr);
        let pivot = m[r][c];
        for x in m[r].iter_mut() {
            *x = x.div(pivot);
        }
        for i in 0..rows {
            if i != r && !m[i][c].is_zero() {
                let factor = m[i][c];
                let row_r = m[r].clone();
                for (cell, rv) in m[i].iter_mut().zip(row_r) {
                    *cell = cell.sub(rv.mul(factor));
                }
            }
        }
        pivot_cols.push(c);
        r += 1;
        if r == rows {
            break;
        }
    }
    let free_cols: Vec<usize> = (0..cols).filter(|c| !pivot_cols.contains(c)).collect();
    let mut basis = Vec::new();
    for &fc in &free_cols {
        // Solution with free var fc = 1, other free vars 0.
        let mut sol = vec![Rat::ZERO; cols];
        sol[fc] = Rat::from_int(1);
        for (ri, &pc) in pivot_cols.iter().enumerate() {
            // row ri: x[pc] + sum over free cols of coeff * x[free] = 0
            sol[pc] = Rat::ZERO.sub(m[ri][fc]);
        }
        // Scale to primitive integers.
        let lcm = sol
            .iter()
            .fold(1i128, |acc, v| acc / gcd(acc, v.den).max(1) * v.den);
        let ints: Vec<i128> = sol.iter().map(|v| v.num * (lcm / v.den)).collect();
        let g = ints.iter().fold(0i128, |acc, &v| gcd(acc, v)).max(1);
        basis.push(ints.iter().map(|&v| (v / g) as i64).collect());
    }
    basis
}

/// A basis of P-invariants (vectors over places) of `net`.
///
/// Each vector `y` satisfies `yᵀ·C = 0`; signs are normalized so the first
/// nonzero entry is positive. The basis spans all invariants but individual
/// members are not guaranteed nonnegative (semi-positive support extraction
/// is NP-hard in general).
pub fn p_invariants(net: &PetriNet) -> Vec<Vec<i64>> {
    let c = IncidenceMatrix::of(net);
    // Solve yᵀ C = 0  ⇔  Cᵀ y = 0. Build Cᵀ (transitions × places).
    let a: Vec<Vec<i64>> = (0..c.cols())
        .map(|t| (0..c.rows()).map(|p| c.get(p, t)).collect())
        .collect();
    let mut basis = integer_null_space(&a, c.rows());
    for v in &mut basis {
        if let Some(first) = v.iter().find(|&&x| x != 0) {
            if *first < 0 {
                for x in v.iter_mut() {
                    *x = -*x;
                }
            }
        }
    }
    basis
}

/// A basis of T-invariants (vectors over transitions) of `net`.
///
/// Each vector `x` satisfies `C·x = 0`: firing every transition `x[t]` times
/// returns the net to its starting marking (if realizable).
pub fn t_invariants(net: &PetriNet) -> Vec<Vec<i64>> {
    let c = IncidenceMatrix::of(net);
    let a: Vec<Vec<i64>> = (0..c.rows())
        .map(|p| (0..c.cols()).map(|t| c.get(p, t)).collect())
        .collect();
    let mut basis = integer_null_space(&a, c.cols());
    for v in &mut basis {
        if let Some(first) = v.iter().find(|&&x| x != 0) {
            if *first < 0 {
                for x in v.iter_mut() {
                    *x = -*x;
                }
            }
        }
    }
    basis
}

/// Checks that `y` is a P-invariant of `net` (that `yᵀ·C = 0`).
pub fn is_p_invariant(net: &PetriNet, y: &[i64]) -> bool {
    if y.len() != net.place_count() {
        return false;
    }
    let c = IncidenceMatrix::of(net);
    (0..c.cols()).all(|t| (0..c.rows()).map(|p| y[p] * c.get(p, t)).sum::<i64>() == 0)
}

/// The weighted token sum `y·M` conserved by a P-invariant.
pub fn weighted_sum(y: &[i64], m: &Marking) -> i64 {
    y.iter()
        .zip(m.as_slice())
        .map(|(w, t)| w * (*t as i64))
        .sum()
}

/// Checks that `x` is a T-invariant of `net` (that `C·x = 0`).
pub fn is_t_invariant(net: &PetriNet, x: &[i64]) -> bool {
    if x.len() != net.transition_count() {
        return false;
    }
    let c = IncidenceMatrix::of(net);
    (0..c.rows()).all(|p| (0..c.cols()).map(|t| c.get(p, t) * x[t]).sum::<i64>() == 0)
}

/// Firing-count vector of an occurrence sequence (the Parikh vector).
pub fn parikh(net: &PetriNet, steps: &[TransitionId]) -> Vec<u64> {
    let mut v = vec![0u64; net.transition_count()];
    for t in steps {
        v[t.index()] += 1;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::firing::RandomFirer;
    use crate::net::NetBuilder;

    fn cycle_net() -> (PetriNet, Marking) {
        let mut b = NetBuilder::new();
        let p0 = b.place("p0");
        let p1 = b.place("p1");
        let t0 = b.transition("t0");
        let t1 = b.transition("t1");
        b.arc_in(p0, t0, 1).unwrap();
        b.arc_out(t0, p1, 1).unwrap();
        b.arc_in(p1, t1, 1).unwrap();
        b.arc_out(t1, p0, 1).unwrap();
        let net = b.build();
        let mut m = Marking::new(2);
        m.set(p0, 1);
        (net, m)
    }

    #[test]
    fn incidence_matrix_entries() {
        let (net, _) = cycle_net();
        let c = IncidenceMatrix::of(&net);
        assert_eq!(c.get(0, 0), -1);
        assert_eq!(c.get(1, 0), 1);
        assert_eq!(c.get(0, 1), 1);
        assert_eq!(c.get(1, 1), -1);
    }

    #[test]
    fn cycle_has_conservation_invariant() {
        let (net, m0) = cycle_net();
        let basis = p_invariants(&net);
        assert_eq!(basis.len(), 1);
        assert!(is_p_invariant(&net, &basis[0]));
        // y = (1,1): total tokens conserved.
        assert_eq!(basis[0], vec![1, 1]);
        // Conservation along an actual run.
        let initial_sum = weighted_sum(&basis[0], &m0);
        let mut firer = RandomFirer::new(&net, m0);
        firer.run(50, |_| 0);
        assert_eq!(weighted_sum(&basis[0], firer.marking()), initial_sum);
    }

    #[test]
    fn cycle_has_t_invariant() {
        let (net, _) = cycle_net();
        let basis = t_invariants(&net);
        assert_eq!(basis.len(), 1);
        assert_eq!(basis[0], vec![1, 1]);
        assert!(is_t_invariant(&net, &basis[0]));
    }

    #[test]
    fn weighted_net_invariant() {
        // t consumes 2 from a, produces 1 into b: invariant y = (1, 2).
        let mut b = NetBuilder::new();
        let pa = b.place("a");
        let pb = b.place("b");
        let t = b.transition("t");
        b.arc_in(pa, t, 2).unwrap();
        b.arc_out(t, pb, 1).unwrap();
        let net = b.build();
        let basis = p_invariants(&net);
        assert_eq!(basis.len(), 1);
        assert_eq!(basis[0], vec![1, 2]);
        assert!(is_p_invariant(&net, &basis[0]));
    }

    #[test]
    fn source_transition_kills_invariants() {
        let mut b = NetBuilder::new();
        let p = b.place("p");
        let t = b.transition("t");
        b.arc_out(t, p, 1).unwrap();
        let net = b.build();
        assert!(p_invariants(&net).is_empty());
    }

    #[test]
    fn state_equation_matches_firing() {
        let (net, m0) = cycle_net();
        let c = IncidenceMatrix::of(&net);
        let mut firer = RandomFirer::new(&net, m0.clone());
        firer.run(7, |_| 0);
        let counts = parikh(&net, firer.sequence().steps());
        let predicted = c.apply(&m0, &counts).unwrap();
        let actual: Vec<i64> = firer
            .marking()
            .as_slice()
            .iter()
            .map(|&v| v as i64)
            .collect();
        assert_eq!(predicted, actual);
    }

    #[test]
    fn is_p_invariant_rejects_wrong_length() {
        let (net, _) = cycle_net();
        assert!(!is_p_invariant(&net, &[1]));
    }

    #[test]
    fn parikh_counts() {
        let (net, m0) = cycle_net();
        let mut firer = RandomFirer::new(&net, m0);
        firer.run(4, |_| 0);
        let v = parikh(&net, firer.sequence().steps());
        assert_eq!(v.iter().sum::<u64>(), 4);
    }
}
