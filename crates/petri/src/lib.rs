//! Petri-net substrate for the WMPS Lecture-on-Demand reproduction.
//!
//! The paper bases its synchronization model on Petri nets ("The concept of
//! our model is based on the Petri net", §1) and cites the classical
//! literature for plain nets (Murata, Peterson), timed nets (Holliday &
//! Vernon) and their analysis (Mayr's reachability). This crate provides
//! that substrate:
//!
//! * [`PetriNet`] — immutable place/transition structure built with
//!   [`NetBuilder`], with weighted arcs and optional place capacities.
//! * [`Marking`] — token assignment, with enabledness and firing rules.
//! * [`timed`] — timed Petri nets: per-transition firing durations and a
//!   deterministic event-driven executor producing an occurrence log.
//! * [`analysis`] — reachability graph exploration, boundedness/safeness,
//!   deadlock detection, and quasi-liveness.
//! * [`invariants`] — incidence matrix and P/T-invariant computation over
//!   rationals (Gaussian elimination), used to verify conservation
//!   properties of the multimedia nets built on top.
//!
//! # Example
//!
//! ```
//! use lod_petri::{NetBuilder, Marking};
//!
//! // A two-place producer/consumer loop.
//! let mut b = NetBuilder::new();
//! let free = b.place("free");
//! let full = b.place("full");
//! let produce = b.transition("produce");
//! let consume = b.transition("consume");
//! b.arc_in(free, produce, 1).unwrap();
//! b.arc_out(produce, full, 1).unwrap();
//! b.arc_in(full, consume, 1).unwrap();
//! b.arc_out(consume, free, 1).unwrap();
//! let net = b.build();
//!
//! let mut m = Marking::new(net.place_count());
//! m.set(free, 3);
//! assert!(net.is_enabled(&m, produce));
//! net.fire(&mut m, produce).unwrap();
//! assert_eq!(m.tokens(full), 1);
//! ```

pub mod analysis;
pub mod coverability;
pub mod dot;
pub mod error;
pub mod firing;
pub mod invariants;
pub mod marking;
pub mod net;
pub mod stochastic;
pub mod timed;

pub use dot::to_dot;
pub use error::PetriError;
pub use firing::{FiringSequence, RandomFirer};
pub use marking::Marking;
pub use net::{NetBuilder, PetriNet, PlaceId, TransitionId};
pub use stochastic::{Delay, StochasticExecutor, StochasticNet};
pub use timed::{TimedEvent, TimedExecutor, TimedNet};
