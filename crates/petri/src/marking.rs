//! Token markings.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::net::{PetriNet, PlaceId};

/// A token assignment over the places of a net.
///
/// Markings are plain data: they know their own length but not which net
/// they belong to. All mutating operations saturate at zero rather than
/// underflow; enabledness checks live on [`PetriNet`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Marking {
    tokens: Vec<u64>,
}

impl Marking {
    /// An empty marking over `places` places.
    pub fn new(places: usize) -> Self {
        Self {
            tokens: vec![0; places],
        }
    }

    /// Builds a marking from explicit token counts.
    pub fn from_counts(counts: impl Into<Vec<u64>>) -> Self {
        Self {
            tokens: counts.into(),
        }
    }

    /// Number of places this marking covers.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the marking covers zero places.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Tokens currently in `place`.
    ///
    /// # Panics
    ///
    /// Panics if `place` is out of range for this marking.
    pub fn tokens(&self, place: PlaceId) -> u64 {
        self.tokens[place.index()]
    }

    /// Sets the token count of `place`.
    ///
    /// # Panics
    ///
    /// Panics if `place` is out of range for this marking.
    pub fn set(&mut self, place: PlaceId, count: u64) {
        self.tokens[place.index()] = count;
    }

    /// Adds `count` tokens to `place`.
    pub fn add(&mut self, place: PlaceId, count: u64) {
        self.tokens[place.index()] += count;
    }

    /// Removes up to `count` tokens from `place`, saturating at zero.
    pub fn remove(&mut self, place: PlaceId, count: u64) {
        let t = &mut self.tokens[place.index()];
        *t = t.saturating_sub(count);
    }

    /// Total number of tokens across all places.
    pub fn total(&self) -> u64 {
        self.tokens.iter().sum()
    }

    /// Raw slice of token counts, indexed by place index.
    pub fn as_slice(&self) -> &[u64] {
        &self.tokens
    }

    /// `true` when every place holds at most one token (a *safe* marking).
    pub fn is_safe(&self) -> bool {
        self.tokens.iter().all(|&t| t <= 1)
    }

    /// Componentwise `self >= other` (coverability comparison).
    ///
    /// Returns `false` when the lengths differ.
    pub fn covers(&self, other: &Marking) -> bool {
        self.tokens.len() == other.tokens.len()
            && self.tokens.iter().zip(&other.tokens).all(|(a, b)| a >= b)
    }

    /// Renders the marking against a net's place names, e.g. `{ready:2, done:1}`.
    pub fn display<'a>(&'a self, net: &'a PetriNet) -> MarkingDisplay<'a> {
        MarkingDisplay { marking: self, net }
    }
}

impl FromIterator<u64> for Marking {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        Self {
            tokens: iter.into_iter().collect(),
        }
    }
}

/// Helper returned by [`Marking::display`].
#[derive(Debug)]
pub struct MarkingDisplay<'a> {
    marking: &'a Marking,
    net: &'a PetriNet,
}

impl fmt::Display for MarkingDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for p in self.net.places() {
            let t = self.marking.tokens(p);
            if t > 0 {
                if !first {
                    write!(f, ", ")?;
                }
                write!(f, "{}:{}", self.net.place_name(p), t)?;
                first = false;
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetBuilder;

    #[test]
    fn remove_saturates() {
        let mut b = NetBuilder::new();
        let p = b.place("p");
        let _net = b.build();
        let mut m = Marking::new(1);
        m.add(p, 2);
        m.remove(p, 5);
        assert_eq!(m.tokens(p), 0);
    }

    #[test]
    fn covers_is_componentwise() {
        let a = Marking::from_counts(vec![2, 1]);
        let b = Marking::from_counts(vec![1, 1]);
        assert!(a.covers(&b));
        assert!(!b.covers(&a));
        assert!(a.covers(&a));
    }

    #[test]
    fn covers_rejects_length_mismatch() {
        let a = Marking::from_counts(vec![2, 1]);
        let b = Marking::from_counts(vec![2, 1, 0]);
        assert!(!a.covers(&b));
    }

    #[test]
    fn safe_marking() {
        assert!(Marking::from_counts(vec![1, 0, 1]).is_safe());
        assert!(!Marking::from_counts(vec![2, 0]).is_safe());
    }

    #[test]
    fn display_skips_empty_places() {
        let mut b = NetBuilder::new();
        let ready = b.place("ready");
        let _idle = b.place("idle");
        let done = b.place("done");
        let net = b.build();
        let mut m = Marking::new(3);
        m.set(ready, 2);
        m.set(done, 1);
        assert_eq!(m.display(&net).to_string(), "{ready:2, done:1}");
    }

    #[test]
    fn from_iterator_collects() {
        let m: Marking = [1u64, 2, 3].into_iter().collect();
        assert_eq!(m.total(), 6);
        assert_eq!(m.len(), 3);
    }
}
