//! Net structure: places, transitions, weighted arcs, and the builder.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::PetriError;
use crate::marking::Marking;

/// Identifier of a place within a [`PetriNet`].
///
/// Ids are dense indices handed out by [`NetBuilder::place`]; they are only
/// meaningful for the net that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PlaceId(pub(crate) usize);

/// Identifier of a transition within a [`PetriNet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TransitionId(pub(crate) usize);

impl PlaceId {
    /// Dense index of this place (0-based, in creation order).
    pub fn index(self) -> usize {
        self.0
    }
}

impl TransitionId {
    /// Dense index of this transition (0-based, in creation order).
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for PlaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for TransitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct Place {
    pub(crate) name: String,
    pub(crate) capacity: Option<u32>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct Transition {
    pub(crate) name: String,
    /// `(place, weight)` pairs consumed when this transition fires.
    pub(crate) inputs: Vec<(PlaceId, u32)>,
    /// `(place, weight)` pairs produced when this transition fires.
    pub(crate) outputs: Vec<(PlaceId, u32)>,
}

/// An immutable place/transition net with weighted arcs.
///
/// Build one with [`NetBuilder`]. The structure is fixed after
/// [`NetBuilder::build`]; dynamic state lives in a [`Marking`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PetriNet {
    pub(crate) places: Vec<Place>,
    pub(crate) transitions: Vec<Transition>,
}

/// Incremental builder for a [`PetriNet`].
///
/// # Example
///
/// ```
/// use lod_petri::NetBuilder;
/// let mut b = NetBuilder::new();
/// let p = b.place("ready");
/// let t = b.transition("go");
/// b.arc_in(p, t, 1).unwrap();
/// let net = b.build();
/// assert_eq!(net.place_count(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct NetBuilder {
    places: Vec<Place>,
    transitions: Vec<Transition>,
}

impl NetBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a place with unbounded capacity and returns its id.
    pub fn place(&mut self, name: impl Into<String>) -> PlaceId {
        self.places.push(Place {
            name: name.into(),
            capacity: None,
        });
        PlaceId(self.places.len() - 1)
    }

    /// Adds a place that may hold at most `capacity` tokens.
    ///
    /// Firing a transition whose output would exceed the capacity fails with
    /// [`PetriError::CapacityExceeded`].
    pub fn place_with_capacity(&mut self, name: impl Into<String>, capacity: u32) -> PlaceId {
        self.places.push(Place {
            name: name.into(),
            capacity: Some(capacity),
        });
        PlaceId(self.places.len() - 1)
    }

    /// Adds a transition with no arcs and returns its id.
    pub fn transition(&mut self, name: impl Into<String>) -> TransitionId {
        self.transitions.push(Transition {
            name: name.into(),
            inputs: Vec::new(),
            outputs: Vec::new(),
        });
        TransitionId(self.transitions.len() - 1)
    }

    /// Adds an input arc `place --weight--> transition`.
    ///
    /// # Errors
    ///
    /// Returns [`PetriError::ZeroWeightArc`] for `weight == 0` and
    /// `UnknownPlace`/`UnknownTransition` for foreign ids.
    pub fn arc_in(
        &mut self,
        place: PlaceId,
        transition: TransitionId,
        weight: u32,
    ) -> Result<&mut Self, PetriError> {
        self.check(place, transition, weight)?;
        let inputs = &mut self.transitions[transition.0].inputs;
        // Merge parallel arcs into a single weighted arc.
        if let Some(entry) = inputs.iter_mut().find(|(p, _)| *p == place) {
            entry.1 += weight;
        } else {
            inputs.push((place, weight));
        }
        Ok(self)
    }

    /// Adds an output arc `transition --weight--> place`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`NetBuilder::arc_in`].
    pub fn arc_out(
        &mut self,
        transition: TransitionId,
        place: PlaceId,
        weight: u32,
    ) -> Result<&mut Self, PetriError> {
        self.check(place, transition, weight)?;
        let outputs = &mut self.transitions[transition.0].outputs;
        if let Some(entry) = outputs.iter_mut().find(|(p, _)| *p == place) {
            entry.1 += weight;
        } else {
            outputs.push((place, weight));
        }
        Ok(self)
    }

    fn check(
        &self,
        place: PlaceId,
        transition: TransitionId,
        weight: u32,
    ) -> Result<(), PetriError> {
        if weight == 0 {
            return Err(PetriError::ZeroWeightArc);
        }
        if place.0 >= self.places.len() {
            return Err(PetriError::UnknownPlace(place));
        }
        if transition.0 >= self.transitions.len() {
            return Err(PetriError::UnknownTransition(transition));
        }
        Ok(())
    }

    /// Finalizes the structure into an immutable [`PetriNet`].
    pub fn build(self) -> PetriNet {
        PetriNet {
            places: self.places,
            transitions: self.transitions,
        }
    }
}

impl PetriNet {
    /// Number of places.
    pub fn place_count(&self) -> usize {
        self.places.len()
    }

    /// Number of transitions.
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// Name of a place.
    ///
    /// # Panics
    ///
    /// Panics if `place` does not belong to this net.
    pub fn place_name(&self, place: PlaceId) -> &str {
        &self.places[place.0].name
    }

    /// Name of a transition.
    ///
    /// # Panics
    ///
    /// Panics if `transition` does not belong to this net.
    pub fn transition_name(&self, transition: TransitionId) -> &str {
        &self.transitions[transition.0].name
    }

    /// Declared capacity of a place, or `None` for unbounded.
    pub fn place_capacity(&self, place: PlaceId) -> Option<u32> {
        self.places[place.0].capacity
    }

    /// Iterator over all place ids in index order.
    pub fn places(&self) -> impl Iterator<Item = PlaceId> + '_ {
        (0..self.places.len()).map(PlaceId)
    }

    /// Iterator over all transition ids in index order.
    pub fn transitions(&self) -> impl Iterator<Item = TransitionId> + '_ {
        (0..self.transitions.len()).map(TransitionId)
    }

    /// Input arcs `(place, weight)` of a transition.
    pub fn inputs(&self, transition: TransitionId) -> &[(PlaceId, u32)] {
        &self.transitions[transition.0].inputs
    }

    /// Output arcs `(place, weight)` of a transition.
    pub fn outputs(&self, transition: TransitionId) -> &[(PlaceId, u32)] {
        &self.transitions[transition.0].outputs
    }

    /// Transitions that consume from `place`.
    pub fn post_set(&self, place: PlaceId) -> Vec<TransitionId> {
        self.transitions()
            .filter(|t| self.inputs(*t).iter().any(|(p, _)| *p == place))
            .collect()
    }

    /// Transitions that produce into `place`.
    pub fn pre_set(&self, place: PlaceId) -> Vec<TransitionId> {
        self.transitions()
            .filter(|t| self.outputs(*t).iter().any(|(p, _)| *p == place))
            .collect()
    }

    /// Whether `transition` may fire in `marking`.
    ///
    /// A transition is enabled when every input place carries at least the
    /// arc weight, and firing it would not exceed any output capacity.
    pub fn is_enabled(&self, marking: &Marking, transition: TransitionId) -> bool {
        let t = &self.transitions[transition.0];
        let inputs_ok = t
            .inputs
            .iter()
            .all(|(p, w)| marking.tokens(*p) >= u64::from(*w));
        if !inputs_ok {
            return false;
        }
        t.outputs.iter().all(|(p, w)| {
            match self.places[p.0].capacity {
                None => true,
                Some(cap) => {
                    // Net effect on p: +w minus whatever this same firing consumes.
                    let consumed: u64 = t
                        .inputs
                        .iter()
                        .filter(|(ip, _)| ip == p)
                        .map(|(_, iw)| u64::from(*iw))
                        .sum();
                    marking.tokens(*p) + u64::from(*w) - consumed <= u64::from(cap)
                }
            }
        })
    }

    /// All transitions enabled in `marking`, in index order.
    pub fn enabled(&self, marking: &Marking) -> Vec<TransitionId> {
        self.transitions()
            .filter(|t| self.is_enabled(marking, *t))
            .collect()
    }

    /// Fires `transition`, mutating `marking` in place.
    ///
    /// # Errors
    ///
    /// [`PetriError::NotEnabled`] if the transition cannot fire, and
    /// [`PetriError::MarkingSizeMismatch`] if the marking does not match the
    /// net.
    pub fn fire(&self, marking: &mut Marking, transition: TransitionId) -> Result<(), PetriError> {
        if marking.len() != self.places.len() {
            return Err(PetriError::MarkingSizeMismatch {
                expected: self.places.len(),
                actual: marking.len(),
            });
        }
        if transition.0 >= self.transitions.len() {
            return Err(PetriError::UnknownTransition(transition));
        }
        if !self.is_enabled(marking, transition) {
            return Err(PetriError::NotEnabled(transition));
        }
        let t = &self.transitions[transition.0];
        for (p, w) in &t.inputs {
            marking.remove(*p, u64::from(*w));
        }
        for (p, w) in &t.outputs {
            marking.add(*p, u64::from(*w));
        }
        Ok(())
    }

    /// Fires `transition` on a copy of `marking` and returns the successor.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PetriNet::fire`].
    pub fn successor(
        &self,
        marking: &Marking,
        transition: TransitionId,
    ) -> Result<Marking, PetriError> {
        let mut next = marking.clone();
        self.fire(&mut next, transition)?;
        Ok(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_net() -> (PetriNet, PlaceId, PlaceId, TransitionId) {
        let mut b = NetBuilder::new();
        let a = b.place("a");
        let c = b.place("c");
        let t = b.transition("t");
        b.arc_in(a, t, 2).unwrap();
        b.arc_out(t, c, 1).unwrap();
        (b.build(), a, c, t)
    }

    #[test]
    fn weighted_arc_requires_enough_tokens() {
        let (net, a, _, t) = simple_net();
        let mut m = Marking::new(net.place_count());
        m.set(a, 1);
        assert!(!net.is_enabled(&m, t));
        m.set(a, 2);
        assert!(net.is_enabled(&m, t));
    }

    #[test]
    fn firing_moves_tokens() {
        let (net, a, c, t) = simple_net();
        let mut m = Marking::new(net.place_count());
        m.set(a, 5);
        net.fire(&mut m, t).unwrap();
        assert_eq!(m.tokens(a), 3);
        assert_eq!(m.tokens(c), 1);
    }

    #[test]
    fn firing_disabled_fails() {
        let (net, _, _, t) = simple_net();
        let mut m = Marking::new(net.place_count());
        assert_eq!(net.fire(&mut m, t), Err(PetriError::NotEnabled(t)));
    }

    #[test]
    fn capacity_blocks_enabling() {
        let mut b = NetBuilder::new();
        let src = b.place("src");
        let dst = b.place_with_capacity("dst", 1);
        let t = b.transition("t");
        b.arc_in(src, t, 1).unwrap();
        b.arc_out(t, dst, 1).unwrap();
        let net = b.build();
        let mut m = Marking::new(net.place_count());
        m.set(src, 2);
        net.fire(&mut m, t).unwrap();
        // dst now at capacity: t must be disabled although src has tokens.
        assert!(!net.is_enabled(&m, t));
    }

    #[test]
    fn self_loop_respects_capacity_net_effect() {
        // p --1--> t --1--> p with capacity 1: net effect zero, always enabled.
        let mut b = NetBuilder::new();
        let p = b.place_with_capacity("p", 1);
        let t = b.transition("t");
        b.arc_in(p, t, 1).unwrap();
        b.arc_out(t, p, 1).unwrap();
        let net = b.build();
        let mut m = Marking::new(1);
        m.set(p, 1);
        assert!(net.is_enabled(&m, t));
        net.fire(&mut m, t).unwrap();
        assert_eq!(m.tokens(p), 1);
    }

    #[test]
    fn parallel_arcs_merge() {
        let mut b = NetBuilder::new();
        let p = b.place("p");
        let t = b.transition("t");
        b.arc_in(p, t, 1).unwrap();
        b.arc_in(p, t, 1).unwrap();
        let net = b.build();
        assert_eq!(net.inputs(t), &[(p, 2)]);
    }

    #[test]
    fn zero_weight_rejected() {
        let mut b = NetBuilder::new();
        let p = b.place("p");
        let t = b.transition("t");
        assert_eq!(b.arc_in(p, t, 0).unwrap_err(), PetriError::ZeroWeightArc);
    }

    #[test]
    fn foreign_ids_rejected() {
        let mut b1 = NetBuilder::new();
        let _ = b1.place("p");
        let mut b2 = NetBuilder::new();
        let p2 = b2.place("x");
        let p_far = PlaceId(7);
        let t = b1.transition("t");
        assert!(matches!(
            b1.arc_in(p_far, t, 1),
            Err(PetriError::UnknownPlace(_))
        ));
        // An id from another builder that happens to be in range is accepted:
        // ids are dense indices, the caller owns that discipline.
        assert!(b1.arc_in(p2, t, 1).is_ok());
    }

    #[test]
    fn pre_and_post_sets() {
        let (net, a, c, t) = simple_net();
        assert_eq!(net.post_set(a), vec![t]);
        assert_eq!(net.pre_set(c), vec![t]);
        assert!(net.post_set(c).is_empty());
    }

    #[test]
    fn names_round_trip() {
        let (net, a, _, t) = simple_net();
        assert_eq!(net.place_name(a), "a");
        assert_eq!(net.transition_name(t), "t");
    }

    #[test]
    fn successor_leaves_original_untouched() {
        let (net, a, c, t) = simple_net();
        let mut m = Marking::new(net.place_count());
        m.set(a, 2);
        let next = net.successor(&m, t).unwrap();
        assert_eq!(m.tokens(a), 2);
        assert_eq!(next.tokens(c), 1);
    }

    #[test]
    fn display_ids() {
        assert_eq!(PlaceId(3).to_string(), "p3");
        assert_eq!(TransitionId(0).to_string(), "t0");
    }
}
