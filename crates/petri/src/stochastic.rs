//! Stochastic timed execution.
//!
//! The paper's §1 lists the stochastic Petri net among the extensions its
//! model draws on. Here a [`StochasticNet`] carries a *distribution* per
//! transition instead of a fixed duration; the executor samples a fresh
//! firing time at every start from a caller-seeded generator, so runs are
//! random but reproducible. The multimedia use: unit playout times and
//! transport delays with jitter, without hand-building arrival traces.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

use crate::error::PetriError;
use crate::marking::Marking;
use crate::net::{PetriNet, TransitionId};
use crate::timed::{TimedEvent, TimedEventKind};

/// A firing-duration distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Delay {
    /// Always exactly this many ticks.
    Fixed(u64),
    /// Uniform in `[lo, hi]`.
    Uniform {
        /// Inclusive lower bound.
        lo: u64,
        /// Inclusive upper bound.
        hi: u64,
    },
    /// Exponential with the given mean (geometric approximation on ticks).
    Exponential {
        /// Mean delay in ticks.
        mean: u64,
    },
}

impl Delay {
    /// Samples a delay using `rng` (a uniform u64 source).
    pub fn sample(&self, rng: &mut impl FnMut() -> u64) -> u64 {
        match *self {
            Delay::Fixed(d) => d,
            Delay::Uniform { lo, hi } => {
                if hi <= lo {
                    lo
                } else {
                    lo + rng() % (hi - lo + 1)
                }
            }
            Delay::Exponential { mean } => {
                if mean == 0 {
                    return 0;
                }
                // Inverse-CDF on a uniform double in (0, 1).
                let u = ((rng() >> 11) as f64 + 0.5) / (1u64 << 53) as f64;
                (-(u.ln()) * mean as f64).round() as u64
            }
        }
    }

    /// The distribution's mean in ticks.
    pub fn mean(&self) -> f64 {
        match *self {
            Delay::Fixed(d) => d as f64,
            Delay::Uniform { lo, hi } => (lo + hi) as f64 / 2.0,
            Delay::Exponential { mean } => mean as f64,
        }
    }
}

/// A net whose transitions carry delay distributions.
#[derive(Debug, Clone)]
pub struct StochasticNet {
    net: PetriNet,
    delays: Vec<Delay>,
}

impl StochasticNet {
    /// Wraps `net` with every delay `Fixed(0)`.
    pub fn new(net: PetriNet) -> Self {
        let n = net.transition_count();
        Self {
            net,
            delays: vec![Delay::Fixed(0); n],
        }
    }

    /// Sets a transition's delay distribution.
    pub fn set_delay(&mut self, t: TransitionId, delay: Delay) -> &mut Self {
        self.delays[t.index()] = delay;
        self
    }

    /// The underlying structure.
    pub fn net(&self) -> &PetriNet {
        &self.net
    }

    /// The distribution of a transition.
    pub fn delay(&self, t: TransitionId) -> Delay {
        self.delays[t.index()]
    }
}

/// Executor sampling delays from a seeded xorshift generator.
#[derive(Debug)]
pub struct StochasticExecutor<'a> {
    snet: &'a StochasticNet,
    marking: Marking,
    now: u64,
    pending: BinaryHeap<Reverse<(u64, u64, TransitionId)>>,
    seq: u64,
    rng_state: u64,
    log: Vec<TimedEvent>,
}

impl<'a> StochasticExecutor<'a> {
    /// Starts at time zero from `initial`, seeded with `seed`.
    pub fn new(snet: &'a StochasticNet, initial: Marking, seed: u64) -> Self {
        Self {
            snet,
            marking: initial,
            now: 0,
            pending: BinaryHeap::new(),
            seq: 0,
            rng_state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1),
            log: Vec::new(),
        }
    }

    fn rng(&mut self) -> u64 {
        self.rng_state ^= self.rng_state << 13;
        self.rng_state ^= self.rng_state >> 7;
        self.rng_state ^= self.rng_state << 17;
        self.rng_state
    }

    /// Current time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Current marking.
    pub fn marking(&self) -> &Marking {
        &self.marking
    }

    /// The event log.
    pub fn log(&self) -> &[TimedEvent] {
        &self.log
    }

    /// Runs until quiescent or `max_events` log entries.
    ///
    /// # Errors
    ///
    /// [`PetriError::HorizonExceeded`] when the budget trips (livelock
    /// guard).
    pub fn run_to_quiescence(&mut self, max_events: usize) -> Result<(), PetriError> {
        loop {
            // Start everything enabled (eager, like the timed executor).
            loop {
                let enabled: Vec<_> = self
                    .snet
                    .net()
                    .enabled(&self.marking)
                    .into_iter()
                    .filter(|t| !self.snet.net().inputs(*t).is_empty())
                    .collect();
                let Some(&t) = enabled.first() else { break };
                self.snet
                    .net()
                    .fire_inputs_only(&mut self.marking, t)
                    .expect("enabled transition consumes");
                self.log.push(TimedEvent {
                    time: self.now,
                    transition: t,
                    kind: TimedEventKind::Started,
                });
                let delay = {
                    let d = self.snet.delay(t);
                    let mut f = || self.rng();
                    d.sample(&mut f)
                };
                let completion = self.now + delay;
                self.pending.push(Reverse((completion, self.seq, t)));
                self.seq += 1;
                if self.log.len() > max_events {
                    return Err(PetriError::HorizonExceeded);
                }
            }
            let Some(Reverse((time, _, _))) = self.pending.peek().copied() else {
                return Ok(());
            };
            self.now = time;
            while let Some(Reverse((t_time, _, t))) = self.pending.peek().copied() {
                if t_time != time {
                    break;
                }
                self.pending.pop();
                for (p, w) in self.snet.net().outputs(t) {
                    self.marking.add(*p, u64::from(*w));
                }
                self.log.push(TimedEvent {
                    time,
                    transition: t,
                    kind: TimedEventKind::Completed,
                });
            }
            if self.log.len() > max_events {
                return Err(PetriError::HorizonExceeded);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetBuilder;

    fn chain(n: usize) -> (PetriNet, Vec<TransitionId>, Marking) {
        let mut b = NetBuilder::new();
        let ps: Vec<_> = (0..=n).map(|i| b.place(format!("p{i}"))).collect();
        let mut ts = Vec::new();
        for i in 0..n {
            let t = b.transition(format!("t{i}"));
            b.arc_in(ps[i], t, 1).unwrap();
            b.arc_out(t, ps[i + 1], 1).unwrap();
            ts.push(t);
        }
        let net = b.build();
        let mut m = Marking::new(n + 1);
        m.set(ps[0], 1);
        (net, ts, m)
    }

    #[test]
    fn fixed_delays_match_timed_executor() {
        let (net, ts, m0) = chain(10);
        let mut snet = StochasticNet::new(net);
        for t in &ts {
            snet.set_delay(*t, Delay::Fixed(7));
        }
        let mut exec = StochasticExecutor::new(&snet, m0, 1);
        exec.run_to_quiescence(1_000).unwrap();
        assert_eq!(exec.now(), 70);
    }

    #[test]
    fn same_seed_same_run() {
        let (net, ts, m0) = chain(20);
        let mut snet = StochasticNet::new(net);
        for t in &ts {
            snet.set_delay(*t, Delay::Uniform { lo: 5, hi: 50 });
        }
        let run = |seed| {
            let mut e = StochasticExecutor::new(&snet, m0.clone(), seed);
            e.run_to_quiescence(1_000).unwrap();
            e.now()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let (net, ts, m0) = chain(50);
        let mut snet = StochasticNet::new(net);
        for t in &ts {
            snet.set_delay(*t, Delay::Uniform { lo: 10, hi: 20 });
        }
        let mut exec = StochasticExecutor::new(&snet, m0, 3);
        exec.run_to_quiescence(10_000).unwrap();
        assert!(exec.now() >= 50 * 10);
        assert!(exec.now() <= 50 * 20);
    }

    #[test]
    fn exponential_mean_roughly_holds() {
        // 200 sequential exponential(100) delays: total ≈ 20_000 ± 40%.
        let (net, ts, m0) = chain(200);
        let mut snet = StochasticNet::new(net);
        for t in &ts {
            snet.set_delay(*t, Delay::Exponential { mean: 100 });
        }
        let mut exec = StochasticExecutor::new(&snet, m0, 12);
        exec.run_to_quiescence(100_000).unwrap();
        let total = exec.now() as f64;
        assert!(total > 20_000.0 * 0.6, "total {total}");
        assert!(total < 20_000.0 * 1.4, "total {total}");
    }

    #[test]
    fn delay_means() {
        assert_eq!(Delay::Fixed(9).mean(), 9.0);
        assert_eq!(Delay::Uniform { lo: 10, hi: 20 }.mean(), 15.0);
        assert_eq!(Delay::Exponential { mean: 42 }.mean(), 42.0);
    }

    #[test]
    fn livelock_guard() {
        let mut b = NetBuilder::new();
        let p = b.place("p");
        let t = b.transition("t");
        b.arc_in(p, t, 1).unwrap();
        b.arc_out(t, p, 1).unwrap();
        let snet = StochasticNet::new(b.build());
        let mut m = Marking::new(1);
        m.set(lod_place(0), 1);
        let mut exec = StochasticExecutor::new(&snet, m, 5);
        assert_eq!(
            exec.run_to_quiescence(100),
            Err(PetriError::HorizonExceeded)
        );
    }

    fn lod_place(i: usize) -> crate::net::PlaceId {
        crate::net::PlaceId(i)
    }
}
