//! Timed Petri nets and a deterministic event-driven executor.
//!
//! The model follows the timed-transition convention of Holliday & Vernon
//! (paper ref \[9\]): a firing consumes its input tokens at the moment it
//! starts and deposits its output tokens after the transition's *duration*.
//! Conflicts are resolved by per-transition priority (higher fires first),
//! then by creation order, which makes every execution deterministic — a
//! property the multimedia nets built on top rely on for reproducible
//! playout schedules.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

use crate::error::PetriError;
use crate::marking::Marking;
use crate::net::{PetriNet, TransitionId};

/// A Petri net whose transitions carry firing durations and priorities.
#[derive(Debug, Clone)]
pub struct TimedNet {
    net: PetriNet,
    durations: Vec<u64>,
    priorities: Vec<i32>,
}

impl TimedNet {
    /// Wraps `net` with all durations zero and all priorities zero.
    pub fn new(net: PetriNet) -> Self {
        let nt = net.transition_count();
        Self {
            net,
            durations: vec![0; nt],
            priorities: vec![0; nt],
        }
    }

    /// Sets the firing duration of `transition` (in abstract ticks).
    ///
    /// # Panics
    ///
    /// Panics if `transition` does not belong to the wrapped net.
    pub fn set_duration(&mut self, transition: TransitionId, ticks: u64) -> &mut Self {
        self.durations[transition.index()] = ticks;
        self
    }

    /// Sets the conflict-resolution priority of `transition`.
    ///
    /// Higher priorities fire first when transitions compete for tokens;
    /// this is the hook the prioritized floor-control net (paper ref \[13\])
    /// uses.
    pub fn set_priority(&mut self, transition: TransitionId, priority: i32) -> &mut Self {
        self.priorities[transition.index()] = priority;
        self
    }

    /// Firing duration of `transition`.
    pub fn duration(&self, transition: TransitionId) -> u64 {
        self.durations[transition.index()]
    }

    /// Priority of `transition`.
    pub fn priority(&self, transition: TransitionId) -> i32 {
        self.priorities[transition.index()]
    }

    /// The underlying untimed structure.
    pub fn net(&self) -> &PetriNet {
        &self.net
    }
}

/// What happened at a point in a timed execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TimedEventKind {
    /// The transition consumed its input tokens and began firing.
    Started,
    /// The transition finished and deposited its output tokens.
    Completed,
}

/// One entry in the execution log of a [`TimedExecutor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimedEvent {
    /// Simulation time of the event, in ticks.
    pub time: u64,
    /// The transition involved.
    pub transition: TransitionId,
    /// Start or completion.
    pub kind: TimedEventKind,
}

/// Deterministic executor for a [`TimedNet`].
///
/// # Example
///
/// ```
/// use lod_petri::{NetBuilder, Marking, TimedNet, TimedExecutor};
///
/// let mut b = NetBuilder::new();
/// let start = b.place("start");
/// let done = b.place("done");
/// let play = b.transition("play");
/// b.arc_in(start, play, 1).unwrap();
/// b.arc_out(play, done, 1).unwrap();
/// let mut timed = TimedNet::new(b.build());
/// timed.set_duration(play, 100);
///
/// let mut m = Marking::new(2);
/// m.set(start, 1);
/// let mut exec = TimedExecutor::new(&timed, m);
/// exec.run_to_quiescence(1_000).unwrap();
/// assert_eq!(exec.now(), 100);
/// assert_eq!(exec.marking().tokens(done), 1);
/// ```
#[derive(Debug)]
pub struct TimedExecutor<'a> {
    timed: &'a TimedNet,
    marking: Marking,
    now: u64,
    // Min-heap of (completion_time, sequence, transition).
    pending: BinaryHeap<Reverse<(u64, u64, TransitionId)>>,
    seq: u64,
    log: Vec<TimedEvent>,
}

impl<'a> TimedExecutor<'a> {
    /// Starts an execution at time zero from `initial`.
    pub fn new(timed: &'a TimedNet, initial: Marking) -> Self {
        Self {
            timed,
            marking: initial,
            now: 0,
            pending: BinaryHeap::new(),
            seq: 0,
            log: Vec::new(),
        }
    }

    /// Current simulation time in ticks.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Current marking (tokens inside in-flight transitions are *not*
    /// visible anywhere — they were consumed at start time).
    pub fn marking(&self) -> &Marking {
        &self.marking
    }

    /// The full start/completion event log so far.
    pub fn log(&self) -> &[TimedEvent] {
        &self.log
    }

    /// Number of firings currently in flight.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Completion time of the earliest in-flight firing, if any.
    pub fn next_completion(&self) -> Option<u64> {
        self.pending.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Injects `count` tokens into `place` at the current time — the hook
    /// through which the environment (network arrivals, user interactions)
    /// feeds an executing net.
    pub fn inject(&mut self, place: crate::net::PlaceId, count: u64) {
        self.marking.add(place, count);
    }

    /// Removes up to `count` tokens from `place` (environment-side token
    /// withdrawal, e.g. revoking a pending request). Returns how many were
    /// actually removed.
    pub fn withdraw(&mut self, place: crate::net::PlaceId, count: u64) -> u64 {
        let have = self.marking.tokens(place);
        let taken = have.min(count);
        self.marking.remove(place, taken);
        taken
    }

    /// Advances the clock to exactly `t` without requiring a completion
    /// event (delivering any completions at or before `t` first).
    ///
    /// Does nothing if `t` is in the past.
    pub fn advance_clock_to(&mut self, t: u64) {
        self.run_until(t);
        if t > self.now {
            self.now = t;
        }
    }

    /// Starts every currently-enabled transition (priority order), without
    /// advancing time. Returns how many were started.
    ///
    /// Transitions with no input arcs are never started: under eager
    /// semantics a source transition would fire unboundedly at a single
    /// instant. Model sources as places pre-loaded with tokens instead.
    pub fn start_enabled(&mut self) -> usize {
        let mut started = 0;
        loop {
            let mut enabled: Vec<_> = self
                .timed
                .net()
                .enabled(&self.marking)
                .into_iter()
                .filter(|t| !self.timed.net().inputs(*t).is_empty())
                .collect();
            if enabled.is_empty() {
                break;
            }
            enabled.sort_by_key(|t| (Reverse(self.timed.priority(*t)), t.index()));
            let t = enabled[0];
            self.timed
                .net()
                .fire_inputs_only(&mut self.marking, t)
                .expect("enabled transition must consume");
            self.log.push(TimedEvent {
                time: self.now,
                transition: t,
                kind: TimedEventKind::Started,
            });
            let completion = self.now + self.timed.duration(t);
            self.pending.push(Reverse((completion, self.seq, t)));
            self.seq += 1;
            started += 1;
        }
        started
    }

    /// Advances to the next completion time and delivers every completion
    /// scheduled at that instant. Returns `false` if nothing was pending.
    pub fn advance(&mut self) -> bool {
        let Some(Reverse((time, _, _))) = self.pending.peek().copied() else {
            return false;
        };
        self.now = time;
        while let Some(Reverse((t_time, _, t))) = self.pending.peek().copied() {
            if t_time != time {
                break;
            }
            self.pending.pop();
            for (p, w) in self.timed.net().outputs(t) {
                self.marking.add(*p, u64::from(*w));
            }
            self.log.push(TimedEvent {
                time,
                transition: t,
                kind: TimedEventKind::Completed,
            });
        }
        true
    }

    /// Runs start/advance cycles until no transition is enabled and nothing
    /// is in flight.
    ///
    /// # Errors
    ///
    /// Returns [`PetriError::HorizonExceeded`] after `max_events` log
    /// entries, which guards against livelocks in cyclic nets.
    pub fn run_to_quiescence(&mut self, max_events: usize) -> Result<(), PetriError> {
        loop {
            self.start_enabled();
            if self.log.len() > max_events {
                return Err(PetriError::HorizonExceeded);
            }
            if !self.advance() {
                return Ok(());
            }
            if self.log.len() > max_events {
                return Err(PetriError::HorizonExceeded);
            }
        }
    }

    /// Runs until the clock would pass `horizon`; in-flight transitions with
    /// later completions stay pending.
    pub fn run_until(&mut self, horizon: u64) {
        loop {
            self.start_enabled();
            match self.pending.peek() {
                Some(Reverse((t, _, _))) if *t <= horizon => {
                    self.advance();
                }
                _ => break,
            }
        }
    }

    /// Completion times of each transition, extracted from the log.
    pub fn completions(&self) -> Vec<(TransitionId, u64)> {
        self.log
            .iter()
            .filter(|e| e.kind == TimedEventKind::Completed)
            .map(|e| (e.transition, e.time))
            .collect()
    }
}

impl PetriNet {
    /// Consumes the input tokens of `transition` without producing outputs
    /// (the first half of a timed firing).
    ///
    /// # Errors
    ///
    /// [`PetriError::NotEnabled`] when the transition cannot fire.
    pub(crate) fn fire_inputs_only(
        &self,
        marking: &mut Marking,
        transition: TransitionId,
    ) -> Result<(), PetriError> {
        if !self.is_enabled(marking, transition) {
            return Err(PetriError::NotEnabled(transition));
        }
        for (p, w) in self.inputs(transition) {
            marking.remove(*p, u64::from(*w));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetBuilder;

    /// Two media places playing in parallel, joined by a sync transition —
    /// the classic OCPN "lips-sync" skeleton.
    fn parallel_join(d_a: u64, d_b: u64) -> (TimedNet, Marking, TransitionId) {
        let mut b = NetBuilder::new();
        let start = b.place("start");
        let sa = b.place("sa");
        let sb = b.place("sb");
        let a_done = b.place("a_done");
        let b_done = b.place("b_done");
        let both = b.place("both");
        let fork = b.transition("fork");
        let play_a = b.transition("play_a");
        let play_b = b.transition("play_b");
        let join = b.transition("join");
        b.arc_in(start, fork, 1).unwrap();
        b.arc_out(fork, sa, 1).unwrap();
        b.arc_out(fork, sb, 1).unwrap();
        b.arc_in(sa, play_a, 1).unwrap();
        b.arc_out(play_a, a_done, 1).unwrap();
        b.arc_in(sb, play_b, 1).unwrap();
        b.arc_out(play_b, b_done, 1).unwrap();
        b.arc_in(a_done, join, 1).unwrap();
        b.arc_in(b_done, join, 1).unwrap();
        b.arc_out(join, both, 1).unwrap();
        let net = b.build();
        let mut timed = TimedNet::new(net);
        timed.set_duration(play_a, d_a).set_duration(play_b, d_b);
        let mut m = Marking::new(6);
        m.set(start, 1);
        (timed, m, join)
    }

    #[test]
    fn join_completes_at_max_of_branches() {
        let (timed, m, join) = parallel_join(30, 70);
        let mut exec = TimedExecutor::new(&timed, m);
        exec.run_to_quiescence(100).unwrap();
        let completions = exec.completions();
        let join_time = completions
            .iter()
            .find(|(t, _)| *t == join)
            .map(|(_, time)| *time)
            .unwrap();
        assert_eq!(join_time, 70);
        assert_eq!(exec.now(), 70);
    }

    #[test]
    fn zero_duration_transitions_fire_same_instant() {
        let (timed, m, _) = parallel_join(0, 0);
        let mut exec = TimedExecutor::new(&timed, m);
        exec.run_to_quiescence(100).unwrap();
        assert_eq!(exec.now(), 0);
        assert_eq!(exec.log().len(), 8); // 4 starts + 4 completions
    }

    #[test]
    fn priority_resolves_conflict_deterministically() {
        // One token, two competing transitions; high priority must win.
        let mut b = NetBuilder::new();
        let p = b.place("p");
        let lo_out = b.place("lo");
        let hi_out = b.place("hi");
        let lo = b.transition("lo");
        let hi = b.transition("hi");
        b.arc_in(p, lo, 1).unwrap();
        b.arc_out(lo, lo_out, 1).unwrap();
        b.arc_in(p, hi, 1).unwrap();
        b.arc_out(hi, hi_out, 1).unwrap();
        let mut timed = TimedNet::new(b.build());
        timed.set_priority(hi, 10);
        let mut m = Marking::new(3);
        m.set(p, 1);
        let mut exec = TimedExecutor::new(&timed, m);
        exec.run_to_quiescence(10).unwrap();
        assert_eq!(exec.marking().tokens(hi_out), 1);
        assert_eq!(exec.marking().tokens(lo_out), 0);
    }

    #[test]
    fn livelock_guard_trips() {
        // Cyclic zero-duration net never quiesces.
        let mut b = NetBuilder::new();
        let p = b.place("p");
        let t = b.transition("t");
        b.arc_in(p, t, 1).unwrap();
        b.arc_out(t, p, 1).unwrap();
        let timed = TimedNet::new(b.build());
        let mut m = Marking::new(1);
        m.set(p, 1);
        let mut exec = TimedExecutor::new(&timed, m);
        assert_eq!(exec.run_to_quiescence(50), Err(PetriError::HorizonExceeded));
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let (timed, m, _) = parallel_join(30, 70);
        let mut exec = TimedExecutor::new(&timed, m);
        exec.run_until(40);
        // play_a completed at 30; play_b still in flight.
        assert_eq!(exec.now(), 30);
        assert_eq!(exec.in_flight(), 1);
    }

    #[test]
    fn sequential_chain_accumulates_time() {
        let mut b = NetBuilder::new();
        let p0 = b.place("p0");
        let p1 = b.place("p1");
        let p2 = b.place("p2");
        let t0 = b.transition("t0");
        let t1 = b.transition("t1");
        b.arc_in(p0, t0, 1).unwrap();
        b.arc_out(t0, p1, 1).unwrap();
        b.arc_in(p1, t1, 1).unwrap();
        b.arc_out(t1, p2, 1).unwrap();
        let mut timed = TimedNet::new(b.build());
        timed.set_duration(t0, 25).set_duration(t1, 17);
        let mut m = Marking::new(3);
        m.set(p0, 1);
        let mut exec = TimedExecutor::new(&timed, m);
        exec.run_to_quiescence(100).unwrap();
        assert_eq!(exec.now(), 42);
        assert_eq!(exec.marking().tokens(p2), 1);
    }
}
