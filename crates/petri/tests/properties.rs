//! Property-based tests for the Petri-net substrate.

use lod_petri::invariants::{p_invariants, parikh, weighted_sum, IncidenceMatrix};
use lod_petri::{Marking, NetBuilder, PetriNet, RandomFirer};
use proptest::prelude::*;

/// Strategy: a random connected net of `n_places` places and `n_trans`
/// transitions where every transition has at least one input and one output
/// (so token totals stay finite under the conservation nets we care about).
fn arb_net(max_places: usize, max_trans: usize) -> impl Strategy<Value = (PetriNet, Marking, u64)> {
    (2..=max_places, 1..=max_trans, any::<u64>()).prop_flat_map(|(np, nt, seed)| {
        // For each transition: input place, output place, weights 1..=3.
        let arcs = proptest::collection::vec((0..np, 0..np, 1u32..=3, 1u32..=3), nt);
        let tokens = proptest::collection::vec(0u64..5, np);
        (Just(np), arcs, tokens, Just(seed)).prop_map(|(np, arcs, tokens, seed)| {
            let mut b = NetBuilder::new();
            let places: Vec<_> = (0..np).map(|i| b.place(format!("p{i}"))).collect();
            for (i, (ip, op, iw, ow)) in arcs.iter().enumerate() {
                let t = b.transition(format!("t{i}"));
                b.arc_in(places[*ip], t, *iw).unwrap();
                b.arc_out(t, places[*op], *ow).unwrap();
            }
            let net = b.build();
            let mut m = Marking::new(np);
            for (i, tk) in tokens.iter().enumerate() {
                m.set(places[i], *tk);
            }
            (net, m, seed)
        })
    })
}

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

proptest! {
    /// The state equation M' = M + C·x must agree with any concrete run.
    #[test]
    fn state_equation_agrees_with_execution((net, m0, seed) in arb_net(6, 6)) {
        let mut firer = RandomFirer::new(&net, m0.clone());
        let mut s = seed | 1;
        firer.run(40, |n| (lcg(&mut s) as usize) % n);
        let counts = parikh(&net, firer.sequence().steps());
        let c = IncidenceMatrix::of(&net);
        let predicted = c.apply(&m0, &counts).expect("run was realizable");
        let actual: Vec<i64> = firer.marking().as_slice().iter().map(|&v| v as i64).collect();
        prop_assert_eq!(predicted, actual);
    }

    /// Every computed P-invariant conserves its weighted token sum along
    /// every execution.
    #[test]
    fn p_invariants_conserved((net, m0, seed) in arb_net(5, 5)) {
        let basis = p_invariants(&net);
        let sums_before: Vec<i64> = basis.iter().map(|y| weighted_sum(y, &m0)).collect();
        let mut firer = RandomFirer::new(&net, m0);
        let mut s = seed | 1;
        firer.run(30, |n| (lcg(&mut s) as usize) % n);
        for (y, before) in basis.iter().zip(sums_before) {
            prop_assert_eq!(weighted_sum(y, firer.marking()), before);
        }
    }

    /// Replaying a recorded sequence always reproduces the final marking.
    #[test]
    fn replay_is_deterministic((net, m0, seed) in arb_net(6, 6)) {
        let mut firer = RandomFirer::new(&net, m0.clone());
        let mut s = seed | 1;
        firer.run(25, |n| (lcg(&mut s) as usize) % n);
        let replayed = firer.sequence().clone().replay(&net, &m0).unwrap();
        prop_assert_eq!(&replayed, firer.marking());
    }

    /// Firing an enabled transition never produces a negative token count
    /// (tokens are unsigned; this asserts the enabledness check is sound:
    /// enabled ⇒ fire succeeds).
    #[test]
    fn enabled_implies_fireable((net, m0, _seed) in arb_net(6, 6)) {
        for t in net.enabled(&m0) {
            let mut m = m0.clone();
            prop_assert!(net.fire(&mut m, t).is_ok());
        }
    }

    /// Disabled transitions always refuse to fire.
    #[test]
    fn disabled_implies_error((net, m0, _seed) in arb_net(6, 6)) {
        for t in net.transitions() {
            if !net.is_enabled(&m0, t) {
                let mut m = m0.clone();
                prop_assert!(net.fire(&mut m, t).is_err());
            }
        }
    }
}

#[test]
fn reachability_of_bounded_random_nets_terminates() {
    use lod_petri::analysis::{ExploreLimits, ReachabilityGraph};
    // A deterministic spot-check that exploration respects its budget on a
    // larger net: 1-token ring of 12 places.
    let mut b = NetBuilder::new();
    let ps: Vec<_> = (0..12).map(|i| b.place(format!("p{i}"))).collect();
    for i in 0..12 {
        let t = b.transition(format!("t{i}"));
        b.arc_in(ps[i], t, 1).unwrap();
        b.arc_out(t, ps[(i + 1) % 12], 1).unwrap();
    }
    let net = b.build();
    let mut m = Marking::new(12);
    m.set(ps[0], 1);
    let g = ReachabilityGraph::explore(&net, &m, ExploreLimits::default()).unwrap();
    assert_eq!(g.state_count(), 12);
    assert!(g.is_safe());
}
