//! The playback engine: demux, clock, script execution.

use lod_asf::{AsfError, AsfFile, License, MediaSample, Reassembler, ScriptCommandList};
use lod_media::{MediaClock, Ticks};

use crate::renderer::{RenderItem, RenderTrace, RenderedItem};

/// Stream-number conventions shared with `lod-encoder`.
const VIDEO_STREAM: u16 = 1;
const AUDIO_STREAM: u16 = 2;

/// A loaded piece of content, ready to play.
#[derive(Debug)]
pub struct PlayerEngine {
    samples: Vec<MediaSample>,
    script: ScriptCommandList,
    duration: u64,
}

impl PlayerEngine {
    /// Loads content: verifies DRM (license required iff protected),
    /// reassembles every packet into media samples.
    ///
    /// # Errors
    ///
    /// [`AsfError::LicenseRejected`] for protected content without a valid
    /// license, or any parse-level error from reassembly.
    pub fn load(mut file: AsfFile, license: Option<&License>) -> Result<Self, AsfError> {
        if let Some(drm) = &file.drm {
            match license {
                Some(l) => {
                    drm.verify(l)?;
                    file.unprotect(l)?;
                }
                None => {
                    return Err(AsfError::LicenseRejected {
                        key_id: drm.key_id.clone(),
                    })
                }
            }
        }
        let mut reasm = Reassembler::new();
        for p in &file.packets {
            reasm.push_packet(p)?;
        }
        let samples = reasm.take_completed();
        let duration = file.props.play_duration.max(file.last_presentation_time());
        Ok(Self {
            samples,
            script: file.script.clone(),
            duration,
        })
    }

    /// Content duration in ticks.
    pub fn duration(&self) -> u64 {
        self.duration
    }

    /// Number of media samples.
    pub fn sample_count(&self) -> usize {
        self.samples.len()
    }

    /// The script commands.
    pub fn script(&self) -> &ScriptCommandList {
        &self.script
    }

    /// Ideal local playback: every sample and script command renders at
    /// exactly its presentation time (wall = pres). This is the reference
    /// trace that networked playback is compared against.
    pub fn render_ideal(&self) -> RenderTrace {
        let mut trace = RenderTrace::new();
        for s in &self.samples {
            trace.push(RenderedItem {
                wall_time: s.pres_time,
                pres_time: s.pres_time,
                item: sample_item(s),
            });
        }
        for c in self.script.commands() {
            trace.push(RenderedItem {
                wall_time: c.time,
                pres_time: c.time,
                item: script_item(&c.kind, &c.param),
            });
        }
        let mut items: Vec<RenderedItem> = trace.items().to_vec();
        items.sort_by_key(|a| a.wall_time);
        let mut sorted = RenderTrace::new();
        sorted.extend(items);
        sorted
    }

    /// Starts an interactive playback anchored at wall time `wall_now`.
    pub fn play(&self, wall_now: u64) -> Playback<'_> {
        let mut samples: Vec<&MediaSample> = self.samples.iter().collect();
        samples.sort_by_key(|s| (s.pres_time, s.stream));
        Playback {
            engine: self,
            samples,
            next_sample: 0,
            last_media: None,
            clock: MediaClock::start_at(Ticks(wall_now)),
            trace: RenderTrace::new(),
        }
    }
}

fn sample_item(s: &MediaSample) -> RenderItem {
    match s.stream {
        VIDEO_STREAM => RenderItem::VideoFrame {
            bytes: s.data.len(),
        },
        AUDIO_STREAM => RenderItem::AudioBlock {
            bytes: s.data.len(),
        },
        _ => RenderItem::Image {
            bytes: s.data.len(),
        },
    }
}

fn script_item(kind: &str, param: &str) -> RenderItem {
    match kind {
        "slide" => RenderItem::SlideChange { uri: param.into() },
        "annotation" => RenderItem::Annotation { text: param.into() },
        _ => RenderItem::Script {
            kind: kind.into(),
            param: param.into(),
        },
    }
}

/// An in-progress interactive playback session.
#[derive(Debug)]
pub struct Playback<'a> {
    engine: &'a PlayerEngine,
    samples: Vec<&'a MediaSample>,
    next_sample: usize,
    /// Media time of the previous tick (`None` before the first tick).
    last_media: Option<u64>,
    clock: MediaClock,
    trace: RenderTrace,
}

impl Playback<'_> {
    /// Current media time at wall time `now`.
    pub fn media_time(&self, now: u64) -> u64 {
        self.clock.media_time(Ticks(now)).0
    }

    /// Everything rendered so far.
    pub fn trace(&self) -> &RenderTrace {
        &self.trace
    }

    /// Whether playback has consumed all content.
    pub fn is_finished(&self, now: u64) -> bool {
        self.next_sample >= self.samples.len() && self.media_time(now) >= self.engine.duration
    }

    /// Pauses at wall time `now`.
    pub fn pause(&mut self, now: u64) {
        self.clock.pause(Ticks(now));
    }

    /// Resumes at wall time `now`.
    pub fn resume(&mut self, now: u64) {
        self.clock.resume(Ticks(now));
    }

    /// Seeks to media time `target` at wall time `now`. Items between the
    /// old and new positions are skipped (not rendered); the current slide
    /// is re-rendered so the screen is correct after the jump.
    pub fn seek(&mut self, now: u64, target: u64) {
        self.clock.seek(Ticks(now), Ticks(target));
        self.next_sample = self.samples.partition_point(|s| s.pres_time < target);
        self.last_media = Some(target);
        // Restore the slide that should be visible at the target.
        if let Some(cmd) = self.engine.script.current_of_kind("slide", target) {
            self.trace.push(RenderedItem {
                wall_time: now,
                pres_time: cmd.time,
                item: RenderItem::SlideChange {
                    uri: cmd.param.clone(),
                },
            });
        }
    }

    /// Advances to wall time `now`, rendering everything due. Returns the
    /// newly rendered items.
    pub fn tick(&mut self, now: u64) -> Vec<RenderedItem> {
        let media_now = self.media_time(now);
        let mut out = Vec::new();
        // Media samples due.
        while self.next_sample < self.samples.len() {
            let s = self.samples[self.next_sample];
            if s.pres_time > media_now {
                break;
            }
            out.push(RenderedItem {
                wall_time: now,
                pres_time: s.pres_time,
                item: sample_item(s),
            });
            self.next_sample += 1;
        }
        // Script commands due: on the first tick everything with
        // time ≤ media_now (including t = 0); afterwards the half-open
        // window (last_media, media_now].
        let due: Vec<_> = match self.last_media {
            None => self
                .engine
                .script
                .commands()
                .iter()
                .filter(|c| c.time <= media_now)
                .cloned()
                .collect(),
            Some(prev) => self.engine.script.fired_between(prev, media_now).to_vec(),
        };
        for c in &due {
            out.push(RenderedItem {
                wall_time: now,
                pres_time: c.time,
                item: script_item(&c.kind, &c.param),
            });
        }
        self.last_media = Some(media_now);
        self.trace.extend(out.clone());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lod_asf::{FileProperties, Packetizer, ScriptCommand, StreamKind, StreamProperties};

    fn content(protect: Option<&License>) -> AsfFile {
        let mut pk = Packetizer::new(300).unwrap();
        for i in 0..20u64 {
            pk.push(&MediaSample::new(1, i * 5_000_000, vec![1; 400]));
        }
        for i in 0..10u64 {
            pk.push(&MediaSample::new(2, i * 10_000_000, vec![2; 100]));
        }
        let mut script = ScriptCommandList::new();
        script.push(ScriptCommand::new(0, "slide", "d/s0.png"));
        script.push(ScriptCommand::new(40_000_000, "slide", "d/s1.png"));
        script.push(ScriptCommand::new(45_000_000, "annotation", "look here"));
        let mut f = AsfFile {
            props: FileProperties {
                file_id: 1,
                created: 0,
                packet_size: 300,
                play_duration: 100_000_000,
                preroll: 0,
                broadcast: false,
                max_bitrate: 100_000,
            },
            streams: vec![
                StreamProperties {
                    number: 1,
                    kind: StreamKind::Video,
                    codec: 4,
                    bitrate: 1,
                    name: "v".into(),
                },
                StreamProperties {
                    number: 2,
                    kind: StreamKind::Audio,
                    codec: 1,
                    bitrate: 1,
                    name: "a".into(),
                },
            ],
            script,
            drm: None,
            packets: pk.finish(),
            index: None,
        };
        if let Some(l) = protect {
            f.protect(l);
        }
        f
    }

    #[test]
    fn load_rebuilds_samples() {
        let engine = PlayerEngine::load(content(None), None).unwrap();
        assert_eq!(engine.sample_count(), 30);
        assert_eq!(engine.duration(), 100_000_000);
    }

    #[test]
    fn drm_requires_license() {
        let lic = License::new("k", 5);
        let f = content(Some(&lic));
        assert!(matches!(
            PlayerEngine::load(f.clone(), None),
            Err(AsfError::LicenseRejected { .. })
        ));
        assert!(matches!(
            PlayerEngine::load(f.clone(), Some(&License::new("k", 6))),
            Err(AsfError::LicenseRejected { .. })
        ));
        let engine = PlayerEngine::load(f, Some(&lic)).unwrap();
        assert_eq!(engine.sample_count(), 30);
    }

    #[test]
    fn ideal_render_is_time_sorted_and_complete() {
        let engine = PlayerEngine::load(content(None), None).unwrap();
        let trace = engine.render_ideal();
        assert_eq!(trace.len(), 30 + 3);
        let walls: Vec<u64> = trace.items().iter().map(|i| i.wall_time).collect();
        let mut sorted = walls.clone();
        sorted.sort_unstable();
        assert_eq!(walls, sorted);
        assert!(trace.items().iter().all(|i| i.wall_time == i.pres_time));
    }

    #[test]
    fn interactive_playback_renders_in_order() {
        let engine = PlayerEngine::load(content(None), None).unwrap();
        let mut pb = engine.play(1_000_000_000);
        let mut rendered = 0;
        for step in 0..=25u64 {
            rendered += pb.tick(1_000_000_000 + step * 5_000_000).len();
        }
        assert_eq!(rendered, 33);
        assert!(pb.is_finished(1_000_000_000 + 130_000_000));
        assert_eq!(pb.trace().slide_changes().len(), 2);
        assert_eq!(pb.trace().annotations().len(), 1);
    }

    #[test]
    fn pause_holds_rendering() {
        let engine = PlayerEngine::load(content(None), None).unwrap();
        let mut pb = engine.play(0);
        pb.tick(10_000_000);
        pb.pause(10_000_000);
        assert!(pb.tick(90_000_000).is_empty());
        pb.resume(90_000_000);
        assert!(!pb.tick(120_000_000).is_empty());
    }

    #[test]
    fn seek_restores_current_slide() {
        let engine = PlayerEngine::load(content(None), None).unwrap();
        let mut pb = engine.play(0);
        pb.tick(1_000_000);
        pb.seek(2_000_000, 50_000_000);
        // Slide s1 (changed at 40 ms) must be visible after seeking to 50 ms.
        assert_eq!(pb.trace().slide_at(2_000_000), Some("d/s1.png"));
        // Items between are skipped: next tick renders only from 50 ms on.
        let items = pb.tick(3_000_000);
        assert!(items.iter().all(|i| i.pres_time >= 50_000_000));
    }

    #[test]
    fn seek_backwards_replays() {
        let engine = PlayerEngine::load(content(None), None).unwrap();
        let mut pb = engine.play(0);
        pb.tick(100_000_000); // render everything
        let before = pb.trace().len();
        pb.seek(100_000_001, 0);
        pb.tick(200_000_000);
        assert!(pb.trace().len() > before);
    }
}
