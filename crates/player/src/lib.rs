//! The media player (Fig. 7).
//!
//! "When user replayed the presentation by media player, the orchestrated
//! ASF file will show the video and the presented slides." This crate is
//! that player, with rendering replaced by a [`RenderTrace`] — a typed log
//! of what would have appeared on screen and when — so experiments can
//! assert on synchronization instead of eyeballing a window:
//!
//! * [`engine`] — loads an [`lod_asf::AsfFile`] (verifying DRM), rebuilds
//!   the media samples, and plays them against a pausable clock with
//!   script-command execution (slide flips, annotations, captions).
//! * [`renderer`] — the trace types.
//! * [`sync`] — skew statistics over traces (how far from its scheduled
//!   time did each item render).

pub mod engine;
pub mod renderer;
pub mod sync;

pub use engine::{Playback, PlayerEngine};
pub use renderer::{RenderItem, RenderTrace, RenderedItem};
pub use sync::SkewStats;
