//! Render traces: what the player showed, and when.

use serde::{Deserialize, Serialize};

/// One thing appearing on the "screen".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RenderItem {
    /// A video frame of `bytes` encoded bytes.
    VideoFrame {
        /// Encoded size.
        bytes: usize,
    },
    /// An audio block.
    AudioBlock {
        /// Encoded size.
        bytes: usize,
    },
    /// A slide image replacing the current slide.
    SlideChange {
        /// Slide URI from the script command.
        uri: String,
    },
    /// An annotation overlaid on the slide.
    Annotation {
        /// Annotation text.
        text: String,
    },
    /// Any other script command (captions, URL flips).
    Script {
        /// Command kind.
        kind: String,
        /// Command parameter.
        param: String,
    },
    /// A raw image sample (the slide stream's pixels arriving).
    Image {
        /// Encoded size.
        bytes: usize,
    },
}

/// A rendered item with its timing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RenderedItem {
    /// Wall time at which it rendered.
    pub wall_time: u64,
    /// Presentation time it was scheduled for.
    pub pres_time: u64,
    /// What rendered.
    pub item: RenderItem,
}

/// The full log of one playback.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RenderTrace {
    items: Vec<RenderedItem>,
}

impl RenderTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an item.
    pub fn push(&mut self, item: RenderedItem) {
        self.items.push(item);
    }

    /// All items in render order.
    pub fn items(&self) -> &[RenderedItem] {
        &self.items
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing rendered.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Only the slide changes, in order.
    pub fn slide_changes(&self) -> Vec<&RenderedItem> {
        self.items
            .iter()
            .filter(|i| matches!(i.item, RenderItem::SlideChange { .. }))
            .collect()
    }

    /// Only the annotations, in order.
    pub fn annotations(&self) -> Vec<&RenderedItem> {
        self.items
            .iter()
            .filter(|i| matches!(i.item, RenderItem::Annotation { .. }))
            .collect()
    }

    /// Video frames rendered.
    pub fn video_frames(&self) -> usize {
        self.items
            .iter()
            .filter(|i| matches!(i.item, RenderItem::VideoFrame { .. }))
            .count()
    }

    /// The slide visible at wall time `t` (last change at or before `t`).
    pub fn slide_at(&self, t: u64) -> Option<&str> {
        self.items
            .iter()
            .filter(|i| i.wall_time <= t)
            .rev()
            .find_map(|i| match &i.item {
                RenderItem::SlideChange { uri } => Some(uri.as_str()),
                _ => None,
            })
    }
}

impl Extend<RenderedItem> for RenderTrace {
    fn extend<T: IntoIterator<Item = RenderedItem>>(&mut self, iter: T) {
        self.items.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> RenderTrace {
        let mut t = RenderTrace::new();
        t.push(RenderedItem {
            wall_time: 0,
            pres_time: 0,
            item: RenderItem::SlideChange { uri: "s1".into() },
        });
        t.push(RenderedItem {
            wall_time: 10,
            pres_time: 10,
            item: RenderItem::VideoFrame { bytes: 100 },
        });
        t.push(RenderedItem {
            wall_time: 50,
            pres_time: 50,
            item: RenderItem::SlideChange { uri: "s2".into() },
        });
        t.push(RenderedItem {
            wall_time: 60,
            pres_time: 60,
            item: RenderItem::Annotation { text: "hi".into() },
        });
        t
    }

    #[test]
    fn filters() {
        let t = trace();
        assert_eq!(t.slide_changes().len(), 2);
        assert_eq!(t.annotations().len(), 1);
        assert_eq!(t.video_frames(), 1);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn slide_at_tracks_current_slide() {
        let t = trace();
        assert_eq!(t.slide_at(0), Some("s1"));
        assert_eq!(t.slide_at(49), Some("s1"));
        assert_eq!(t.slide_at(50), Some("s2"));
        assert_eq!(t.slide_at(9_999), Some("s2"));
    }
}
