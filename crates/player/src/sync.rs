//! Synchronization measurement over render traces.
//!
//! The paper's demo claim (Fig. 7) is that video and slides stay
//! synchronized. These statistics quantify it: for each rendered item,
//! the *skew* is how far its actual render time deviated from its
//! scheduled time under a common anchor.

use serde::{Deserialize, Serialize};

use crate::renderer::RenderTrace;

/// Summary statistics of a set of skews (in ticks).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SkewStats {
    /// Number of measurements.
    pub count: usize,
    /// Maximum skew.
    pub max: u64,
    /// Mean skew.
    pub mean: f64,
    /// 95th-percentile skew.
    pub p95: u64,
}

impl SkewStats {
    /// Computes statistics over raw skews.
    pub fn from_skews(mut skews: Vec<u64>) -> Self {
        if skews.is_empty() {
            return Self::default();
        }
        skews.sort_unstable();
        let count = skews.len();
        let max = *skews.last().expect("non-empty");
        let mean = skews.iter().sum::<u64>() as f64 / count as f64;
        let p95 = skews[((count as f64 * 0.95).ceil() as usize).min(count) - 1];
        Self {
            count,
            max,
            mean,
            p95,
        }
    }

    /// Skew of every item in `trace` against a wall-time anchor: item
    /// scheduled at presentation time `p` should render at `anchor + p`.
    pub fn of_trace(trace: &RenderTrace, anchor: u64) -> Self {
        let skews = trace
            .items()
            .iter()
            .map(|i| i.wall_time.abs_diff(anchor + i.pres_time))
            .collect();
        Self::from_skews(skews)
    }

    /// Skew restricted to slide changes (the paper's headline sync).
    pub fn of_slides(trace: &RenderTrace, anchor: u64) -> Self {
        let skews = trace
            .slide_changes()
            .iter()
            .map(|i| i.wall_time.abs_diff(anchor + i.pres_time))
            .collect();
        Self::from_skews(skews)
    }

    /// Audio/video lip-sync: for each audio block, the wall-time distance
    /// to the video frame whose presentation time is closest — the "lips
    /// match the voice" number. Empty when either stream is missing.
    pub fn av_sync(trace: &RenderTrace) -> Self {
        use crate::renderer::RenderItem;
        let video: Vec<(u64, u64)> = trace
            .items()
            .iter()
            .filter(|i| matches!(i.item, RenderItem::VideoFrame { .. }))
            .map(|i| (i.pres_time, i.wall_time))
            .collect();
        if video.is_empty() {
            return Self::default();
        }
        let skews: Vec<u64> = trace
            .items()
            .iter()
            .filter(|i| matches!(i.item, RenderItem::AudioBlock { .. }))
            .map(|a| {
                // Video frame nearest in presentation time (video is in
                // pres order in every trace the engine produces).
                let at = video.partition_point(|&(p, _)| p < a.pres_time);
                let candidates = [at.checked_sub(1), Some(at)];
                let (vp, vw) = candidates
                    .into_iter()
                    .flatten()
                    .filter_map(|i| video.get(i))
                    .min_by_key(|(p, _)| p.abs_diff(a.pres_time))
                    .copied()
                    .expect("video non-empty");
                // Difference between the A/V wall gap and the intended
                // presentation gap.
                let intended = vp.abs_diff(a.pres_time);
                let actual = vw.abs_diff(a.wall_time);
                actual.abs_diff(intended)
            })
            .collect();
        Self::from_skews(skews)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::renderer::{RenderItem, RenderedItem};

    #[test]
    fn stats_basic() {
        let s = SkewStats::from_skews(vec![0, 10, 20, 30, 100]);
        assert_eq!(s.count, 5);
        assert_eq!(s.max, 100);
        assert!((s.mean - 32.0).abs() < 1e-9);
        assert_eq!(s.p95, 100);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = SkewStats::from_skews(vec![]);
        assert_eq!(s.count, 0);
        assert_eq!(s.max, 0);
    }

    #[test]
    fn trace_skew_uses_anchor() {
        let mut t = RenderTrace::new();
        t.push(RenderedItem {
            wall_time: 1_010,
            pres_time: 0,
            item: RenderItem::VideoFrame { bytes: 1 },
        });
        t.push(RenderedItem {
            wall_time: 1_100,
            pres_time: 100,
            item: RenderItem::SlideChange { uri: "s".into() },
        });
        let s = SkewStats::of_trace(&t, 1_000);
        assert_eq!(s.max, 10);
        let slides = SkewStats::of_slides(&t, 1_000);
        assert_eq!(slides.count, 1);
        assert_eq!(slides.max, 0);
    }

    #[test]
    fn av_sync_zero_on_ideal_trace() {
        let mut t = RenderTrace::new();
        for i in 0..10u64 {
            t.push(RenderedItem {
                wall_time: i * 40,
                pres_time: i * 40,
                item: RenderItem::VideoFrame { bytes: 1 },
            });
        }
        for i in 0..4u64 {
            t.push(RenderedItem {
                wall_time: i * 100,
                pres_time: i * 100,
                item: RenderItem::AudioBlock { bytes: 1 },
            });
        }
        let s = SkewStats::av_sync(&t);
        assert_eq!(s.count, 4);
        assert_eq!(s.max, 0);
    }

    #[test]
    fn av_sync_detects_drift() {
        let mut t = RenderTrace::new();
        for i in 0..10u64 {
            t.push(RenderedItem {
                wall_time: i * 40,
                pres_time: i * 40,
                item: RenderItem::VideoFrame { bytes: 1 },
            });
        }
        // Audio rendered 25 ticks late relative to its schedule.
        t.push(RenderedItem {
            wall_time: 200 + 25,
            pres_time: 200,
            item: RenderItem::AudioBlock { bytes: 1 },
        });
        let s = SkewStats::av_sync(&t);
        assert_eq!(s.max, 25);
    }

    #[test]
    fn av_sync_empty_without_video() {
        let mut t = RenderTrace::new();
        t.push(RenderedItem {
            wall_time: 0,
            pres_time: 0,
            item: RenderItem::AudioBlock { bytes: 1 },
        });
        assert_eq!(SkewStats::av_sync(&t).count, 0);
    }

    #[test]
    fn p95_is_percentile() {
        let skews: Vec<u64> = (1..=100).collect();
        let s = SkewStats::from_skews(skews);
        assert_eq!(s.p95, 95);
    }
}
