//! Property-based tests for the playback engine.

use lod_asf::{
    AsfFile, FileProperties, MediaSample, Packetizer, ScriptCommand, ScriptCommandList, StreamKind,
    StreamProperties,
};
use lod_player::PlayerEngine;
use proptest::prelude::*;

fn make_file(samples: &[(u16, u64, usize)], commands: &[(u64, String)]) -> AsfFile {
    let mut pk = Packetizer::new(256).unwrap();
    for &(stream, t, len) in samples {
        pk.push(&MediaSample::new(stream, t, vec![1; len]));
    }
    let mut script = ScriptCommandList::new();
    for (t, p) in commands {
        script.push(ScriptCommand::new(*t, "slide", p.clone()));
    }
    AsfFile {
        props: FileProperties {
            file_id: 1,
            created: 0,
            packet_size: 256,
            play_duration: 0,
            preroll: 0,
            broadcast: false,
            max_bitrate: 0,
        },
        streams: vec![
            StreamProperties {
                number: 1,
                kind: StreamKind::Video,
                codec: 4,
                bitrate: 1,
                name: "v".into(),
            },
            StreamProperties {
                number: 2,
                kind: StreamKind::Audio,
                codec: 1,
                bitrate: 1,
                name: "a".into(),
            },
        ],
        script,
        drm: None,
        packets: pk.finish(),
        index: None,
    }
}

fn arb_samples() -> impl Strategy<Value = Vec<(u16, u64, usize)>> {
    proptest::collection::vec((1u16..=2, 0u64..1_000_000, 1usize..300), 1..25)
}

fn arb_commands() -> impl Strategy<Value = Vec<(u64, String)>> {
    proptest::collection::vec((0u64..1_000_000, "[a-z]{1,6}"), 0..8)
}

proptest! {
    /// Interactive playback with arbitrary tick cadence renders exactly
    /// the items the ideal trace renders (same multiset of pres times).
    #[test]
    fn interactive_matches_ideal(
        samples in arb_samples(),
        commands in arb_commands(),
        steps in proptest::collection::vec(1u64..400_000, 1..40),
    ) {
        let file = make_file(&samples, &commands);
        let engine = PlayerEngine::load(file, None).unwrap();
        let ideal = engine.render_ideal();

        let mut pb = engine.play(0);
        let mut now = 0u64;
        for s in &steps {
            now += s;
            pb.tick(now);
        }
        // Final tick far past the end renders the tail.
        pb.tick(now + 2_000_000);
        let mut got: Vec<u64> = pb.trace().items().iter().map(|i| i.pres_time).collect();
        let mut want: Vec<u64> = ideal.items().iter().map(|i| i.pres_time).collect();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// Pausing never loses items: pause/resume playback still renders the
    /// complete set.
    #[test]
    fn pause_resume_is_lossless(
        samples in arb_samples(),
        pause_at in 1u64..500_000,
        pause_len in 1u64..2_000_000,
    ) {
        let file = make_file(&samples, &[]);
        let engine = PlayerEngine::load(file, None).unwrap();
        let total = engine.render_ideal().len();
        let mut pb = engine.play(0);
        pb.tick(pause_at);
        pb.pause(pause_at);
        prop_assert!(pb.tick(pause_at + pause_len).is_empty());
        pb.resume(pause_at + pause_len);
        pb.tick(pause_at + pause_len + 3_000_000);
        prop_assert_eq!(pb.trace().len(), total);
    }

    /// Loading never panics and sample counts match what was packetized,
    /// for arbitrary content.
    #[test]
    fn load_reassembles_every_sample(
        samples in arb_samples(),
        commands in arb_commands(),
    ) {
        let file = make_file(&samples, &commands);
        let engine = PlayerEngine::load(file, None).unwrap();
        prop_assert_eq!(engine.sample_count(), samples.len());
        prop_assert_eq!(engine.script().len(), commands.len());
    }
}
