//! Byte-budgeted LRU cache of ASF packet segments.
//!
//! Relays do not mirror whole lectures; they pull fixed-size packet
//! *segments* from the origin on demand and keep the hottest ones within
//! a configurable byte budget. Recency is tracked with a monotonic use
//! counter, and eviction removes least-recently-used segments until a new
//! entry fits.
//!
//! # Budget accounting vs. real heap residency
//!
//! The budget counts each segment's *wire size* ([`CachedSegment::bytes`]),
//! exactly as it did before payloads became ref-counted [`bytes::Bytes`]
//! views. That keeps admission, eviction order and every counter
//! bit-identical to the deep-copy era: a segment's cost is what it would
//! occupy on the wire, whether or not its payloads share backing storage
//! with
//! another resident segment or an in-flight fan-out. The *actual* unique
//! heap held by cached payloads — where sharing IS visible — is reported
//! separately by [`CachedSegment::unique_backing_bytes`] and
//! [`SegmentCache::resident_backing_bytes`], which deduplicate backing
//! allocations by identity so shared storage is counted once.

use std::collections::{HashMap, HashSet};

use lod_asf::DataPacket;
use serde::{Deserialize, Serialize};

/// One cached run of packets for `(content, segment)`.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedSegment {
    /// Global index of the first packet in this segment.
    pub base_packet: u32,
    /// The packets, in stream order.
    pub packets: Vec<DataPacket>,
    /// Wire size of the segment in bytes (what the budget accounts).
    pub bytes: u64,
}

impl CachedSegment {
    /// Unique payload heap bytes this segment keeps alive: each distinct
    /// backing allocation is counted once at its full length, no matter
    /// how many payload views point into it. A freshly packetized segment
    /// whose fragments all slice one sample reports that sample's size,
    /// not the sum of the fragment lengths.
    pub fn unique_backing_bytes(&self) -> u64 {
        let mut seen = HashSet::new();
        let mut total = 0u64;
        for packet in &self.packets {
            for payload in &packet.payloads {
                if seen.insert(payload.data.backing_id()) {
                    total += payload.data.backing_len() as u64;
                }
            }
        }
        total
    }
}

/// Hit/miss/eviction accounting for a [`SegmentCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups answered from cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Segments accepted by [`SegmentCache::insert`].
    pub insertions: u64,
    /// Segments evicted to make room.
    pub evictions: u64,
    /// Total bytes reclaimed by eviction.
    pub bytes_evicted: u64,
}

impl std::ops::AddAssign for CacheStats {
    fn add_assign(&mut self, rhs: Self) {
        self.hits += rhs.hits;
        self.misses += rhs.misses;
        self.insertions += rhs.insertions;
        self.evictions += rhs.evictions;
        self.bytes_evicted += rhs.bytes_evicted;
    }
}

impl CacheStats {
    /// Total recorded lookups (`hits + misses`).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from cache; 0 when nothing was looked
    /// up yet.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }
}

#[derive(Debug, Clone)]
struct Entry {
    segment: CachedSegment,
    last_used: u64,
}

/// LRU segment cache with a hard byte budget.
#[derive(Debug, Clone)]
pub struct SegmentCache {
    budget: u64,
    used: u64,
    clock: u64,
    entries: HashMap<(String, u32), Entry>,
    stats: CacheStats,
}

impl SegmentCache {
    /// An empty cache allowed to hold at most `budget_bytes` of segment
    /// data.
    pub fn new(budget_bytes: u64) -> Self {
        Self {
            budget: budget_bytes,
            used: 0,
            clock: 0,
            entries: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// The configured byte budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Bytes currently held, in the budget's wire-size accounting.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// Unique payload heap bytes resident across *all* cached segments:
    /// backing allocations shared between segments (or with fan-out
    /// queues) are counted once. Always `<=` the sum of per-segment
    /// [`CachedSegment::unique_backing_bytes`]; introspection only — the
    /// budget never looks at this.
    pub fn resident_backing_bytes(&self) -> u64 {
        let mut seen = HashSet::new();
        let mut total = 0u64;
        for entry in self.entries.values() {
            for packet in &entry.segment.packets {
                for payload in &packet.payloads {
                    if seen.insert(payload.data.backing_id()) {
                        total += payload.data.backing_len() as u64;
                    }
                }
            }
        }
        total
    }

    /// Number of cached segments.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Accounting so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up a segment, recording a hit or miss and refreshing its
    /// recency on hit.
    pub fn get(&mut self, content: &str, segment: u32) -> Option<&CachedSegment> {
        self.clock += 1;
        let clock = self.clock;
        match self.entries.get_mut(&(content.to_string(), segment)) {
            Some(entry) => {
                entry.last_used = clock;
                self.stats.hits += 1;
                Some(&entry.segment)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Records a lookup answered by a fetch another lookup already has in
    /// flight (request coalescing / collapsed forwarding). Counted as a
    /// hit: the bytes are served locally without another origin pull.
    pub fn record_coalesced_hit(&mut self) {
        self.stats.hits += 1;
    }

    /// Looks up a segment without touching recency or the hit/miss
    /// counters (for introspection and tests).
    pub fn peek(&self, content: &str, segment: u32) -> Option<&CachedSegment> {
        self.entries
            .get(&(content.to_string(), segment))
            .map(|e| &e.segment)
    }

    /// Whether the segment is resident (no accounting).
    pub fn contains(&self, content: &str, segment: u32) -> bool {
        self.entries.contains_key(&(content.to_string(), segment))
    }

    /// Inserts a segment, evicting least-recently-used entries until it
    /// fits. Returns `None` (and caches nothing) when the segment alone
    /// exceeds the whole budget; otherwise the evicted
    /// `(content, segment, bytes)` triples, in eviction order (the LRU
    /// clock is unique per entry, so the order is deterministic).
    /// Re-inserting an existing key replaces it without counting an
    /// eviction.
    pub fn insert(
        &mut self,
        content: &str,
        segment: u32,
        data: CachedSegment,
    ) -> Option<Vec<(String, u32, u64)>> {
        if data.bytes > self.budget {
            return None;
        }
        let key = (content.to_string(), segment);
        if let Some(old) = self.entries.remove(&key) {
            self.used -= old.segment.bytes;
        }
        let mut evicted = Vec::new();
        while self.used + data.bytes > self.budget {
            evicted.push(self.evict_lru());
        }
        self.used += data.bytes;
        self.clock += 1;
        self.stats.insertions += 1;
        self.entries.insert(
            key,
            Entry {
                segment: data,
                last_used: self.clock,
            },
        );
        Some(evicted)
    }

    fn evict_lru(&mut self) -> (String, u32, u64) {
        let victim = self
            .entries
            .iter()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, _)| k.clone())
            .expect("eviction requested on an empty cache");
        let entry = self.entries.remove(&victim).expect("victim just found");
        self.used -= entry.segment.bytes;
        self.stats.evictions += 1;
        self.stats.bytes_evicted += entry.segment.bytes;
        (victim.0, victim.1, entry.segment.bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(bytes: u64) -> CachedSegment {
        CachedSegment {
            base_packet: 0,
            packets: Vec::new(),
            bytes,
        }
    }

    #[test]
    fn hit_miss_accounting() {
        let mut cache = SegmentCache::new(1_000);
        assert!(cache.get("talk", 0).is_none());
        assert!(cache.insert("talk", 0, seg(100)).is_some());
        assert!(cache.get("talk", 0).is_some());
        assert!(cache.get("talk", 1).is_none());
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.lookups(), 3);
    }

    #[test]
    fn evicts_least_recently_used_first() {
        let mut cache = SegmentCache::new(300);
        assert!(cache.insert("talk", 0, seg(100)).is_some());
        assert!(cache.insert("talk", 1, seg(100)).is_some());
        assert!(cache.insert("talk", 2, seg(100)).is_some());
        // Touch 0 so 1 becomes the LRU victim.
        assert!(cache.get("talk", 0).is_some());
        let evicted = cache
            .insert("talk", 3, seg(100))
            .expect("fits after eviction");
        assert_eq!(evicted, vec![("talk".to_string(), 1, 100)]);
        assert!(cache.contains("talk", 0));
        assert!(!cache.contains("talk", 1));
        assert!(cache.contains("talk", 2));
        assert!(cache.contains("talk", 3));
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().bytes_evicted, 100);
        assert_eq!(cache.used_bytes(), 300);
    }

    #[test]
    fn rejects_segment_larger_than_budget() {
        let mut cache = SegmentCache::new(50);
        assert!(cache.insert("talk", 0, seg(51)).is_none());
        assert!(cache.is_empty());
        assert_eq!(cache.used_bytes(), 0);
    }

    #[test]
    fn reinsert_replaces_without_double_counting() {
        let mut cache = SegmentCache::new(200);
        assert!(cache.insert("talk", 0, seg(80)).is_some());
        let evicted = cache.insert("talk", 0, seg(120)).expect("replacement fits");
        assert!(evicted.is_empty(), "replacement is not an eviction");
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.used_bytes(), 120);
    }

    fn packet_slicing(sample: &bytes::Bytes, chunk: usize) -> lod_asf::DataPacket {
        let payloads = (0..sample.len())
            .step_by(chunk)
            .map(|off| lod_asf::Payload {
                stream: 1,
                object_id: 0,
                offset: off as u32,
                total: sample.len() as u32,
                pres_time: 0,
                data: sample.slice(off..(off + chunk).min(sample.len())),
            })
            .collect();
        lod_asf::DataPacket {
            send_time: 0,
            payloads,
        }
    }

    #[test]
    fn unique_backing_counts_shared_storage_once() {
        let sample = bytes::Bytes::from(vec![7u8; 1_000]);
        let seg = CachedSegment {
            base_packet: 0,
            packets: vec![packet_slicing(&sample, 100), packet_slicing(&sample, 250)],
            bytes: 2_000,
        };
        // 14 payload views over one 1000-byte sample: counted once.
        assert_eq!(seg.unique_backing_bytes(), 1_000);

        let mut cache = SegmentCache::new(10_000);
        assert!(cache.insert("talk", 0, seg.clone()).is_some());
        assert!(cache.insert("talk", 1, seg).is_some());
        // Two cached segments, same backing sample: resident heap is
        // still one sample, while the wire-size budget charges both.
        assert_eq!(cache.resident_backing_bytes(), 1_000);
        assert_eq!(cache.used_bytes(), 4_000);
    }

    #[test]
    fn unique_backing_sums_distinct_samples() {
        let a = bytes::Bytes::from(vec![1u8; 300]);
        let b = bytes::Bytes::from(vec![2u8; 500]);
        let seg = CachedSegment {
            base_packet: 0,
            packets: vec![packet_slicing(&a, 100), packet_slicing(&b, 100)],
            bytes: 800,
        };
        assert_eq!(seg.unique_backing_bytes(), 800);
    }

    #[test]
    fn peek_does_not_count() {
        let mut cache = SegmentCache::new(100);
        assert!(cache.insert("talk", 0, seg(10)).is_some());
        assert!(cache.peek("talk", 0).is_some());
        assert!(cache.peek("talk", 9).is_none());
        assert_eq!(cache.stats().lookups(), 0);
    }
}
