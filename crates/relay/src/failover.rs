//! Origin failure detection for warm-standby failover.
//!
//! A [`HeartbeatMonitor`] runs on the standby and pings the primary
//! origin on a fixed tick cadence. Silence is counted in *missed beats*
//! — wall clocks do not exist in the simulation — and after
//! `miss_threshold` consecutive misses the monitor declares the origin
//! dead exactly once, which is the driver's cue to promote the standby
//! (see `lod_core::serve_with_relays`). After promotion the monitor
//! keeps pinging the *old* origin with the new fencing epoch: a healed
//! primary that answers learns it was deposed and demotes itself, which
//! is what prevents split-brain.

use lod_obs::{Event, Recorder};
use lod_simnet::NodeId;
use lod_streaming::wire::{ControlRequest, Wire};
use lod_transport::Transport;

/// Knobs for origin failure detection and standby replication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailoverConfig {
    /// Ticks between heartbeat pings.
    pub heartbeat_interval: u64,
    /// Consecutive unanswered pings before the origin is declared dead.
    pub miss_threshold: u32,
    /// Checkpoint cadence forwarded to
    /// `StreamingServer::with_checkpointing`: a running session is
    /// journaled at least this often even without a state transition
    /// (0 = transitions only).
    pub checkpoint_every: u64,
}

impl Default for FailoverConfig {
    fn default() -> Self {
        Self {
            // 200 ms beats, dead after 3 misses: detection in well under
            // a second of simulated time, slow enough that LAN jitter
            // never fakes a death.
            heartbeat_interval: 2_000_000,
            miss_threshold: 3,
            checkpoint_every: 10_000_000,
        }
    }
}

/// Tick-driven heartbeat prober that declares an unresponsive origin
/// dead after a run of missed beats.
#[derive(Debug)]
pub struct HeartbeatMonitor {
    /// The node the pings are sent from (the standby).
    node: NodeId,
    /// The node being probed (the primary; post-fence, the old primary).
    target: NodeId,
    interval: u64,
    miss_threshold: u32,
    /// Epoch stamped into outgoing pings. Pre-promotion this is the
    /// standby's (lower) epoch, which no healthy primary reacts to;
    /// post-fence it is the promotion epoch, which demotes a healed one.
    epoch: u64,
    next_ping_at: u64,
    /// Whether the previous ping is still unanswered.
    outstanding: bool,
    misses: u32,
    dead: bool,
    /// Set by [`Self::fence`]: the target is known-deposed, so silence
    /// is expected and no further misses or deaths are reported.
    fencing: bool,
    obs: Recorder,
}

impl HeartbeatMonitor {
    /// A monitor on `node` probing `target` with `cfg`'s cadence.
    pub fn new(node: NodeId, target: NodeId, cfg: FailoverConfig) -> Self {
        assert!(
            cfg.heartbeat_interval > 0,
            "heartbeat interval must be positive"
        );
        assert!(cfg.miss_threshold > 0, "miss threshold must be positive");
        Self {
            node,
            target,
            interval: cfg.heartbeat_interval,
            miss_threshold: cfg.miss_threshold,
            epoch: 0,
            next_ping_at: 0,
            outstanding: false,
            misses: 0,
            dead: false,
            fencing: false,
            obs: Recorder::disabled(),
        }
    }

    /// Routes events into a shared recorder.
    pub fn with_recorder(mut self, obs: Recorder) -> Self {
        self.obs = obs;
        self
    }

    /// The node currently being probed.
    pub fn target(&self) -> NodeId {
        self.target
    }

    /// Consecutive missed beats so far.
    pub fn misses(&self) -> u32 {
        self.misses
    }

    /// Whether the target has been declared dead.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Sends the next heartbeat when due and accounts the silence since
    /// the previous one. Returns `true` exactly once — on the poll that
    /// crosses the miss threshold and declares the target dead.
    pub fn poll(&mut self, net: &mut impl Transport<Wire>, now: u64) -> bool {
        if now < self.next_ping_at {
            return false;
        }
        if self.outstanding && !self.dead && !self.fencing {
            self.misses += 1;
            self.obs.emit(
                now,
                Event::HeartbeatMiss {
                    node: self.target.index() as u64,
                    misses: u64::from(self.misses),
                },
            );
        }
        let msg = Wire::Request(ControlRequest::Ping { epoch: self.epoch });
        let bytes = msg.wire_bytes(0);
        let _ = net.send_reliable(self.node, self.target, bytes, msg);
        self.outstanding = true;
        self.next_ping_at = now.saturating_add(self.interval);
        if !self.dead && !self.fencing && self.misses >= self.miss_threshold {
            self.dead = true;
            return true;
        }
        false
    }

    /// Records a [`Wire::Pong`] from the target: the run of misses is
    /// broken.
    pub fn on_pong(&mut self, _now: u64) {
        self.outstanding = false;
        self.misses = 0;
    }

    /// Switches the monitor to fencing duty after promotion: keep
    /// pinging `old_target` with the promotion `epoch` so a healed
    /// primary observes it was deposed and demotes itself. Silence from
    /// a fenced target is expected and never re-reported.
    pub fn fence(&mut self, old_target: NodeId, epoch: u64) {
        self.target = old_target;
        self.epoch = epoch;
        self.fencing = true;
        self.outstanding = false;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lod_simnet::LinkSpec;
    use lod_simnet::Network;
    use lod_streaming::StreamingServer;

    const BEAT: u64 = 2_000_000;

    fn world() -> (Network<Wire>, NodeId, NodeId) {
        let mut net = Network::new(11);
        let origin = net.add_node("origin");
        let standby = net.add_node("standby");
        net.connect_bidirectional(origin, standby, LinkSpec::lan());
        (net, origin, standby)
    }

    fn drive(
        net: &mut Network<Wire>,
        origin_srv: Option<&mut StreamingServer>,
        mon: &mut HeartbeatMonitor,
        origin: NodeId,
        standby: NodeId,
        from: u64,
        to: u64,
    ) -> bool {
        let mut died = false;
        let mut origin_srv = origin_srv;
        let mut t = from;
        while t <= to {
            died |= mon.poll(net, t);
            for d in net.advance_to(t) {
                if d.dst == origin {
                    if let Some(srv) = origin_srv.as_deref_mut() {
                        srv.on_message(net, d.time, d.src, d.message);
                    }
                } else if d.dst == standby {
                    if let Wire::Pong { .. } = d.message {
                        mon.on_pong(d.time);
                    }
                }
            }
            t += BEAT / 2;
        }
        died
    }

    #[test]
    fn answered_heartbeats_never_declare_death() {
        let (mut net, origin, standby) = world();
        let mut srv = StreamingServer::new(origin);
        let mut mon = HeartbeatMonitor::new(standby, origin, FailoverConfig::default());
        let died = drive(
            &mut net,
            Some(&mut srv),
            &mut mon,
            origin,
            standby,
            0,
            40 * BEAT,
        );
        assert!(!died);
        assert_eq!(mon.misses(), 0);
        assert!(!mon.is_dead());
    }

    #[test]
    fn silent_origin_dies_after_the_miss_threshold_exactly_once() {
        let (mut net, origin, standby) = world();
        let cfg = FailoverConfig::default();
        let mut mon = HeartbeatMonitor::new(standby, origin, cfg);
        // Nobody answers at the origin: every beat after the first is a
        // miss.
        let died = drive(&mut net, None, &mut mon, origin, standby, 0, 10 * BEAT);
        assert!(died);
        assert!(mon.is_dead());
        assert!(mon.misses() >= cfg.miss_threshold);
        // Death is reported exactly once.
        let died_again = drive(
            &mut net,
            None,
            &mut mon,
            origin,
            standby,
            10 * BEAT + 1,
            20 * BEAT,
        );
        assert!(!died_again);
    }

    #[test]
    fn fenced_ping_demotes_a_healed_primary() {
        let (mut net, origin, standby) = world();
        let mut srv = StreamingServer::new(origin); // epoch 1
        let mut mon = HeartbeatMonitor::new(standby, origin, FailoverConfig::default());
        // Promotion happened elsewhere at epoch 2; the monitor now
        // fences the old primary.
        mon.fence(origin, 2);
        let died = drive(
            &mut net,
            Some(&mut srv),
            &mut mon,
            origin,
            standby,
            0,
            4 * BEAT,
        );
        assert!(!died, "a fenced target never re-dies");
        assert!(
            srv.is_standby(),
            "healed primary must demote on a higher epoch"
        );
        assert_eq!(srv.epoch(), 2);
    }

    // A Pong that limps in *after* the miss threshold declared the target
    // dead, but *before* the driver promotes the standby, is the nastiest
    // heartbeat race: if it resurrected the target or re-armed the death
    // edge, the driver would promote twice and mint conflicting epochs.
    #[test]
    fn delayed_pong_after_death_does_not_redeclare_on_simnet() {
        let (mut net, origin, standby) = world();
        let cfg = FailoverConfig::default();
        let mut mon = HeartbeatMonitor::new(standby, origin, cfg);
        // Silence until the verdict.
        let died = drive(&mut net, None, &mut mon, origin, standby, 0, 10 * BEAT);
        assert!(died);
        assert!(mon.is_dead());
        // The long-delayed answer to an early ping finally arrives,
        // through the network, after the verdict.
        let late = Wire::Pong { epoch: 1 };
        let bytes = late.wire_bytes(0);
        net.send_reliable(origin, standby, bytes, late).unwrap();
        let died_again = drive(
            &mut net,
            None,
            &mut mon,
            origin,
            standby,
            10 * BEAT + 1,
            30 * BEAT,
        );
        assert!(
            !died_again,
            "death is edge-triggered; a late pong must not re-arm it"
        );
        assert!(mon.is_dead(), "a late pong must not resurrect the target");
        assert_eq!(mon.misses(), 0, "the pong still clears the miss run");
        // Promotion fencing then proceeds exactly once, at the promotion
        // epoch, with no second death report to trigger a re-promotion.
        mon.fence(origin, 2);
        let died_after_fence = drive(
            &mut net,
            None,
            &mut mon,
            origin,
            standby,
            30 * BEAT + 1,
            40 * BEAT,
        );
        assert!(!died_after_fence);
    }

    // The same race on real sockets: the monitor runs over a
    // `UdpTransport` with a manual clock, the "origin" is a raw socket
    // that answers its oldest ping only after the death verdict.
    #[test]
    fn delayed_pong_after_death_does_not_redeclare_on_udp() {
        use lod_transport::{decode_frame, encode_frame, UdpConfig, UdpTransport, WireCodec};
        use std::net::UdpSocket;
        use std::time::{Duration, Instant};

        let origin = NodeId::from_index(0);
        let standby = NodeId::from_index(1);
        let mut udp: UdpTransport<Wire> =
            UdpTransport::bind_localhost(standby, UdpConfig::default()).unwrap();
        let origin_sock = UdpSocket::bind("127.0.0.1:0").unwrap();
        origin_sock.set_nonblocking(true).unwrap();
        udp.register_peer(origin, origin_sock.local_addr().unwrap());

        let cfg = FailoverConfig::default();
        let mut mon = HeartbeatMonitor::new(standby, origin, cfg);
        let mut deaths = 0;
        let mut t = 0u64;
        while deaths == 0 && t <= 10 * BEAT {
            udp.set_manual_now(t);
            if mon.poll(&mut udp, t) {
                deaths += 1;
            }
            for d in udp.poll(t) {
                if let Wire::Pong { .. } = d.message {
                    mon.on_pong(d.time);
                }
            }
            t += BEAT;
        }
        assert_eq!(deaths, 1);
        assert!(mon.is_dead());

        // The origin's socket holds the unanswered pings; answer now,
        // long after the verdict.
        std::thread::sleep(Duration::from_millis(20));
        let mut buf = [0u8; 2048];
        let mut last_ping_seq = 0;
        let mut reply_to = None;
        while let Ok((n, from)) = origin_sock.recv_from(&mut buf) {
            let (hdr, payload) = decode_frame(&buf[..n]).unwrap();
            let wire = Wire::from_frame_payload(payload).unwrap();
            assert!(matches!(
                wire,
                Wire::Request(ControlRequest::Ping { epoch: 0 })
            ));
            last_ping_seq = hdr.seq;
            reply_to = Some(from);
        }
        assert!(last_ping_seq >= u64::from(cfg.miss_threshold));
        let pong = Wire::Pong { epoch: 1 };
        let frame = encode_frame(1, t, true, &pong.to_frame_payload());
        origin_sock.send_to(&frame, reply_to.unwrap()).unwrap();

        // Keep beating while the delayed pong crosses the loopback.
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut got_pong = false;
        while !got_pong {
            assert!(Instant::now() < deadline, "delayed pong never delivered");
            t += BEAT;
            udp.set_manual_now(t);
            assert!(
                !mon.poll(&mut udp, t),
                "late pong must not re-arm the death edge"
            );
            for d in udp.poll(t) {
                if let Wire::Pong { .. } = d.message {
                    mon.on_pong(d.time);
                    got_pong = true;
                }
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(mon.is_dead(), "a late pong must not resurrect the target");
        assert_eq!(mon.misses(), 0);

        // Fencing after promotion: exactly one epoch on the wire, the
        // promotion epoch — no conflict from the resurrected-looking peer.
        mon.fence(origin, 2);
        t += BEAT;
        udp.set_manual_now(t);
        assert!(!mon.poll(&mut udp, t));
        std::thread::sleep(Duration::from_millis(20));
        let mut fenced_epoch = None;
        while let Ok((n, _)) = origin_sock.recv_from(&mut buf) {
            let (_, payload) = decode_frame(&buf[..n]).unwrap();
            if let Wire::Request(ControlRequest::Ping { epoch }) =
                Wire::from_frame_payload(payload).unwrap()
            {
                fenced_epoch = Some(epoch);
            }
        }
        assert_eq!(fenced_epoch, Some(2));
    }

    #[test]
    #[should_panic(expected = "heartbeat interval must be positive")]
    fn zero_interval_is_rejected() {
        let (_net, origin, standby) = world();
        let cfg = FailoverConfig {
            heartbeat_interval: 0,
            ..FailoverConfig::default()
        };
        let _ = HeartbeatMonitor::new(standby, origin, cfg);
    }
}
