//! `lod-relay`: the edge distribution tier of the WMPS reproduction.
//!
//! The paper's lecture-on-demand system pushes presentations from a
//! central origin to campus-edge servers so that classrooms stream from a
//! nearby node instead of hammering the origin uplink. This crate models
//! that tier on top of [`lod_simnet`]:
//!
//! - [`SegmentCache`]: byte-budgeted LRU cache of ASF packet segments
//!   pulled from the origin on demand.
//! - [`RelayNode`]: an edge relay that serves stored lectures from its
//!   segment cache (fetching misses from the origin) and re-broadcasts
//!   live lectures from a single upstream subscription.
//! - [`RedirectManager`]: origin-side session director that answers
//!   client `Play` requests with a redirect to the least-loaded relay and
//!   re-attaches clients when a relay fails mid-lecture.
//! - [`HeartbeatMonitor`]: standby-side failure detector that declares
//!   the origin dead after a run of missed heartbeats and, after
//!   promotion, fences the old primary with the new epoch.

pub mod cache;
pub mod failover;
pub mod redirect;
pub mod relay;

pub use cache::{CacheStats, CachedSegment, SegmentCache};
pub use failover::{FailoverConfig, HeartbeatMonitor};
pub use redirect::RedirectManager;
pub use relay::{RelayMetrics, RelayNode};
