//! Play-time redirection and failover across the relay tier.
//!
//! The origin fronts the whole relay fleet: students always address their
//! Play at the origin, and a [`RedirectManager`] standing in front of the
//! origin's session logic answers with [`Wire::Redirect`] pointing at the
//! least-loaded healthy relay. When a relay dies mid-lecture, its students
//! are re-pointed at a surviving sibling (or the origin itself) and their
//! clients re-issue Play from their playback horizon.

use std::collections::{HashMap, HashSet};

use lod_simnet::NodeId;
use lod_streaming::wire::{ControlRequest, Wire};
use lod_transport::Transport;

/// Assigns sessions to relays and re-homes them on failure.
#[derive(Debug)]
pub struct RedirectManager {
    origin: NodeId,
    relays: Vec<NodeId>,
    failed: HashSet<NodeId>,
    /// client → relay (or origin) currently serving it.
    assignments: HashMap<NodeId, NodeId>,
    /// Seats per relay the manager will steer into (None = unbounded).
    relay_capacity: Option<usize>,
}

impl RedirectManager {
    /// A manager fronting `origin` with the given relay fleet.
    pub fn new(origin: NodeId, relays: Vec<NodeId>) -> Self {
        Self {
            origin,
            relays,
            failed: HashSet::new(),
            assignments: HashMap::new(),
            relay_capacity: None,
        }
    }

    /// Caps how many clients the manager steers at any one relay; a full
    /// fleet spills the overflow to the origin. Size this to the relays'
    /// own [`lod_streaming::AdmissionPolicy`] so steering and admission
    /// agree.
    pub fn with_relay_capacity(mut self, seats: usize) -> Self {
        assert!(seats > 0, "relay capacity must be positive");
        self.relay_capacity = Some(seats);
        self
    }

    /// Relays still in service.
    pub fn healthy_relays(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.relays
            .iter()
            .copied()
            .filter(move |r| !self.failed.contains(r))
    }

    /// Where `client` was last pointed.
    pub fn assignment(&self, client: NodeId) -> Option<NodeId> {
        self.assignments.get(&client).copied()
    }

    /// Number of clients currently assigned to `target`.
    pub fn load(&self, target: NodeId) -> usize {
        self.assignments.values().filter(|&&t| t == target).count()
    }

    /// Whether `relay` has a free seat under the capacity cap, not
    /// counting `exclude`'s own assignment (a client re-checking the
    /// relay it already occupies must not evict itself).
    fn has_seat(&self, relay: NodeId, exclude: Option<NodeId>) -> bool {
        match self.relay_capacity {
            None => true,
            Some(cap) => {
                self.assignments
                    .iter()
                    .filter(|&(&c, &t)| t == relay && Some(c) != exclude)
                    .count()
                    < cap
            }
        }
    }

    /// The healthy relay carrying the fewest sessions (first in fleet
    /// order on ties), or the origin when every relay is down or full.
    fn least_loaded(&self) -> NodeId {
        self.least_loaded_excluding(None)
    }

    /// [`Self::least_loaded`] with one relay ruled out (the one that just
    /// answered Busy). An explicit fleet-order scan with a strict `<`:
    /// only a strictly lower load displaces the incumbent, so ties always
    /// resolve to the earliest relay in fleet order and seeded runs
    /// replay byte for byte.
    fn least_loaded_excluding(&self, skip: Option<NodeId>) -> NodeId {
        let mut best: Option<(NodeId, usize)> = None;
        for r in self.healthy_relays() {
            if Some(r) == skip || !self.has_seat(r, None) {
                continue;
            }
            let load = self.load(r);
            if best.is_none_or(|(_, b)| load < b) {
                best = Some((r, load));
            }
        }
        best.map_or(self.origin, |(r, _)| r)
    }

    /// Re-steers a client bounced with [`Wire::Busy`] by `busy` at the
    /// least-loaded healthy sibling with a free seat, returning the new
    /// target to name as the Busy `alternate`. `None` means no sibling
    /// can take it — the assignment is forgotten so the client's paced
    /// retry at the origin gets a fresh pick once capacity frees.
    pub fn reassign_busy(&mut self, client: NodeId, busy: NodeId) -> Option<NodeId> {
        let target = self.least_loaded_excluding(Some(busy));
        if target == self.origin {
            self.assignments.remove(&client);
            return None;
        }
        self.assignments.insert(client, target);
        Some(target)
    }

    /// Examines a message addressed to the origin *before* the origin's
    /// session logic sees it. Returns `true` when the message was consumed
    /// by answering with a redirect — the driver must then skip
    /// `StreamingServer::on_message` for it. Everything except a first
    /// Play from a student (relay fetches, control on origin-homed
    /// sessions) passes through.
    pub fn intercept(&mut self, net: &mut impl Transport<Wire>, from: NodeId, msg: &Wire) -> bool {
        if self.relays.contains(&from) {
            return false; // relay ↔ origin traffic is never redirected
        }
        let Wire::Request(ControlRequest::Play { .. }) = msg else {
            return false;
        };
        let target = match self.assignment(from) {
            // Respect a still-healthy earlier assignment (client
            // restarts) as long as the client still fits there.
            Some(t)
                if t == self.origin
                    || (!self.failed.contains(&t) && self.has_seat(t, Some(from))) =>
            {
                t
            }
            _ => self.least_loaded(),
        };
        if target == self.origin {
            // Nobody better to hand this to; let the origin serve it.
            self.assignments.insert(from, self.origin);
            return false;
        }
        self.assignments.insert(from, target);
        let msg = Wire::Redirect { to: target };
        let bytes = msg.wire_bytes(0);
        let _ = net.send_reliable(self.origin, from, bytes, msg);
        true
    }

    /// Marks `relay` failed and re-points every client it carried at the
    /// least-loaded survivor (or the origin). Returns the clients that
    /// were re-homed; the redirects are already on the wire.
    pub fn fail_relay(&mut self, net: &mut impl Transport<Wire>, relay: NodeId) -> Vec<NodeId> {
        if !self.failed.insert(relay) {
            return Vec::new();
        }
        let mut stranded: Vec<NodeId> = self
            .assignments
            .iter()
            .filter(|&(_, &t)| t == relay)
            .map(|(&c, _)| c)
            .collect();
        // HashMap order is not deterministic; redirect order decides who
        // lands on which survivor, and the whole simulation must replay
        // byte-for-byte under one seed.
        stranded.sort_unstable();
        for &client in &stranded {
            let target = self.least_loaded();
            self.assignments.insert(client, target);
            let msg = Wire::Redirect { to: target };
            let bytes = msg.wire_bytes(0);
            let _ = net.send_reliable(self.origin, client, bytes, msg);
        }
        stranded
    }

    /// Re-fronts the manager at a promoted `standby` after the origin
    /// itself fails. Clients homed *at the origin* (spilled or
    /// fallback assignments) are re-pointed at the standby and sent a
    /// redirect — from the standby, since the old origin can no longer
    /// speak. Relay-homed assignments stay put; the relays re-point
    /// their uplinks separately. Returns the re-homed clients in sorted
    /// order (the same determinism discipline as [`Self::fail_relay`]:
    /// redirect order must not depend on map iteration).
    pub fn retarget_origin(
        &mut self,
        net: &mut impl Transport<Wire>,
        standby: NodeId,
    ) -> Vec<NodeId> {
        let old = self.origin;
        self.origin = standby;
        let mut stranded: Vec<NodeId> = self
            .assignments
            .iter()
            .filter(|&(_, &t)| t == old)
            .map(|(&c, _)| c)
            .collect();
        stranded.sort_unstable();
        for &client in &stranded {
            self.assignments.insert(client, standby);
            let msg = Wire::Redirect { to: standby };
            let bytes = msg.wire_bytes(0);
            let _ = net.send_reliable(standby, client, bytes, msg);
        }
        stranded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lod_simnet::LinkSpec;
    use lod_simnet::Network;

    fn world() -> (Network<Wire>, NodeId, Vec<NodeId>, Vec<NodeId>) {
        let mut net = Network::new(7);
        let origin = net.add_node("origin");
        let relays: Vec<NodeId> = (0..2).map(|i| net.add_node(format!("relay{i}"))).collect();
        let students: Vec<NodeId> = (0..4)
            .map(|i| net.add_node(format!("student{i}")))
            .collect();
        for &s in &students {
            net.connect_bidirectional(origin, s, LinkSpec::lan());
        }
        (net, origin, relays, students)
    }

    fn play(name: &str) -> Wire {
        Wire::Request(ControlRequest::Play {
            content: name.into(),
            from: 0,
        })
    }

    #[test]
    fn spreads_players_across_relays() {
        let (mut net, origin, relays, students) = world();
        let mut mgr = RedirectManager::new(origin, relays.clone());
        for &s in &students {
            assert!(mgr.intercept(&mut net, s, &play("lec")));
        }
        assert_eq!(mgr.load(relays[0]), 2);
        assert_eq!(mgr.load(relays[1]), 2);
        // Four redirects went out on the wire.
        let redirects = net
            .advance_to(10_000_000)
            .into_iter()
            .filter(|d| matches!(d.message, Wire::Redirect { .. }))
            .count();
        assert_eq!(redirects, 4);
    }

    #[test]
    fn passes_through_non_play_and_relay_traffic() {
        let (mut net, origin, relays, students) = world();
        let mut mgr = RedirectManager::new(origin, relays.clone());
        assert!(!mgr.intercept(&mut net, students[0], &Wire::Request(ControlRequest::Pause)));
        assert!(!mgr.intercept(
            &mut net,
            relays[0],
            &play("lec") // a relay's upstream live subscription
        ));
    }

    #[test]
    fn fail_relay_rehomes_its_clients() {
        let (mut net, origin, relays, students) = world();
        let mut mgr = RedirectManager::new(origin, relays.clone());
        for &s in &students {
            mgr.intercept(&mut net, s, &play("lec"));
        }
        net.advance_to(10_000_000);
        let stranded = mgr.fail_relay(&mut net, relays[0]);
        assert_eq!(stranded.len(), 2);
        for &c in &stranded {
            assert_eq!(mgr.assignment(c), Some(relays[1]));
        }
        assert_eq!(mgr.load(relays[1]), 4);
        let redirects: Vec<NodeId> = net
            .advance_to(20_000_000)
            .into_iter()
            .filter_map(|d| match d.message {
                Wire::Redirect { to } => Some(to),
                _ => None,
            })
            .collect();
        assert_eq!(redirects, vec![relays[1], relays[1]]);
    }

    #[test]
    fn all_relays_down_falls_back_to_origin() {
        let (mut net, origin, relays, students) = world();
        let mut mgr = RedirectManager::new(origin, relays.clone());
        mgr.fail_relay(&mut net, relays[0]);
        mgr.fail_relay(&mut net, relays[1]);
        // Play passes through to the origin's own session logic.
        assert!(!mgr.intercept(&mut net, students[0], &play("lec")));
        assert_eq!(mgr.assignment(students[0]), Some(origin));
    }

    #[test]
    fn failing_every_relay_rehomes_to_origin_without_looping() {
        let (mut net, origin, relays, students) = world();
        let mut mgr = RedirectManager::new(origin, relays.clone());
        for &s in &students {
            assert!(mgr.intercept(&mut net, s, &play("lec")));
        }
        net.advance_to(10_000_000);
        // First casualty: its clients move to the surviving relay.
        let stranded = mgr.fail_relay(&mut net, relays[0]);
        assert_eq!(stranded.len(), 2);
        // Second casualty: now *no* relay is healthy; everyone must land
        // on the origin, not on the already-failed sibling.
        let stranded = mgr.fail_relay(&mut net, relays[1]);
        assert_eq!(stranded.len(), 4);
        for &s in &students {
            assert_eq!(mgr.assignment(s), Some(origin));
        }
        // The initial 4 redirects were already drained above; what's left
        // is 2 from the first failure and 4 from the second.
        let redirects: Vec<NodeId> = net
            .advance_to(30_000_000)
            .into_iter()
            .filter_map(|d| match d.message {
                Wire::Redirect { to } => Some(to),
                _ => None,
            })
            .collect();
        assert_eq!(redirects.len(), 2 + 4);
        // (Arrival order interleaves under link jitter; count targets.)
        assert_eq!(
            redirects.iter().filter(|&&t| t == origin).count(),
            4,
            "the second failure must re-home everyone to the origin: {redirects:?}"
        );
        assert_eq!(redirects.iter().filter(|&&t| t == relays[1]).count(), 2);
        // Replayed Plays now pass through to the origin (no redirect
        // ping-pong for origin-homed clients).
        for &s in &students {
            assert!(!mgr.intercept(&mut net, s, &play("lec")));
            assert_eq!(mgr.assignment(s), Some(origin));
        }
        // A failed relay failing again is a no-op.
        assert!(mgr.fail_relay(&mut net, relays[0]).is_empty());
    }

    #[test]
    fn least_loaded_breaks_ties_in_fleet_order() {
        let mut net: Network<Wire> = Network::new(7);
        let origin = net.add_node("origin");
        let relays: Vec<NodeId> = (0..3).map(|i| net.add_node(format!("relay{i}"))).collect();
        let students: Vec<NodeId> = (0..6)
            .map(|i| net.add_node(format!("student{i}")))
            .collect();
        for &s in &students {
            net.connect_bidirectional(origin, s, LinkSpec::lan());
        }
        let mut mgr = RedirectManager::new(origin, relays.clone());
        // Every relay starts at load 0: each arrival must land on the
        // earliest tied relay, giving round-robin in fleet order — never
        // an order that depends on map iteration.
        for (i, &s) in students.iter().enumerate() {
            mgr.intercept(&mut net, s, &play("lec"));
            assert_eq!(
                mgr.assignment(s),
                Some(relays[i % 3]),
                "student {i} must land in fleet order"
            );
        }
    }

    #[test]
    fn full_fleet_spills_to_origin() {
        let (mut net, origin, relays, students) = world();
        let mut mgr = RedirectManager::new(origin, relays.clone()).with_relay_capacity(1);
        assert!(mgr.intercept(&mut net, students[0], &play("lec")));
        assert!(mgr.intercept(&mut net, students[1], &play("lec")));
        assert_eq!(mgr.assignment(students[0]), Some(relays[0]));
        assert_eq!(mgr.assignment(students[1]), Some(relays[1]));
        // Both seats taken: the third student passes through to the
        // origin itself, and a replay from a seated student still sticks.
        assert!(!mgr.intercept(&mut net, students[2], &play("lec")));
        assert_eq!(mgr.assignment(students[2]), Some(origin));
        assert!(mgr.intercept(&mut net, students[0], &play("lec")));
        assert_eq!(mgr.assignment(students[0]), Some(relays[0]));
    }

    #[test]
    fn busy_bounce_reassigns_to_a_sibling() {
        let (mut net, origin, relays, students) = world();
        let mut mgr = RedirectManager::new(origin, relays.clone());
        mgr.intercept(&mut net, students[0], &play("lec"));
        assert_eq!(mgr.assignment(students[0]), Some(relays[0]));
        // relay0 answered Busy: the manager names relay1 as the alternate.
        assert_eq!(mgr.reassign_busy(students[0], relays[0]), Some(relays[1]));
        assert_eq!(mgr.assignment(students[0]), Some(relays[1]));
        // relay1 Busy too and relay0 is the only sibling — but say it
        // failed meanwhile: no alternate, and the stale assignment is
        // forgotten so the retry re-rolls.
        mgr.fail_relay(&mut net, relays[0]);
        assert_eq!(mgr.reassign_busy(students[0], relays[1]), None);
        assert_eq!(mgr.assignment(students[0]), None);
    }

    #[test]
    #[should_panic(expected = "relay capacity must be positive")]
    fn zero_relay_capacity_is_rejected() {
        let mut net: Network<Wire> = Network::new(1);
        let origin = net.add_node("origin");
        let _ = RedirectManager::new(origin, Vec::new()).with_relay_capacity(0);
    }

    #[test]
    fn retarget_origin_rehomes_origin_clients_in_sorted_order() {
        let mut net: Network<Wire> = Network::new(5);
        let origin = net.add_node("origin");
        let standby = net.add_node("standby");
        let relays: Vec<NodeId> = (0..1).map(|i| net.add_node(format!("relay{i}"))).collect();
        let students: Vec<NodeId> = (0..4)
            .map(|i| net.add_node(format!("student{i}")))
            .collect();
        for &s in &students {
            net.connect_bidirectional(origin, s, LinkSpec::lan());
            net.connect_bidirectional(standby, s, LinkSpec::lan());
        }
        // One seat on the single relay: student0 takes it, the rest
        // spill to the origin itself.
        let mut mgr = RedirectManager::new(origin, relays.clone()).with_relay_capacity(1);
        for &s in &students {
            mgr.intercept(&mut net, s, &play("lec"));
        }
        assert_eq!(mgr.assignment(students[0]), Some(relays[0]));
        net.advance_to(10_000_000);
        // The origin dies; the standby takes over the front door.
        let rehomed = mgr.retarget_origin(&mut net, standby);
        // Exactly the origin-homed clients, in sorted (insertion-
        // independent) order — the same determinism rule as fail_relay.
        let mut expect = vec![students[1], students[2], students[3]];
        expect.sort_unstable();
        assert_eq!(rehomed, expect);
        // The relay-homed student keeps its seat; the rest now point at
        // the standby.
        assert_eq!(mgr.assignment(students[0]), Some(relays[0]));
        for &s in &students[1..] {
            assert_eq!(mgr.assignment(s), Some(standby));
        }
        // Every redirect came *from the standby* (the origin is dead)
        // and names the standby.
        let redirects: Vec<(NodeId, NodeId)> = net
            .advance_to(20_000_000)
            .into_iter()
            .filter_map(|d| match d.message {
                Wire::Redirect { to } => Some((d.src, to)),
                _ => None,
            })
            .collect();
        assert_eq!(redirects.len(), 3);
        assert!(redirects
            .iter()
            .all(|&(src, to)| src == standby && to == standby));
        // A post-failover Play from a fresh client intercepts against
        // the promoted origin: full relay ⇒ pass-through to standby.
        let extra = students[1];
        assert!(!mgr.intercept(&mut net, extra, &play("lec")));
        assert_eq!(mgr.assignment(extra), Some(standby));
    }

    #[test]
    fn sticky_assignment_survives_replays() {
        let (mut net, origin, relays, students) = world();
        let mut mgr = RedirectManager::new(origin, relays.clone());
        mgr.intercept(&mut net, students[0], &play("lec"));
        let first = mgr.assignment(students[0]).unwrap();
        mgr.intercept(&mut net, students[0], &play("lec"));
        assert_eq!(mgr.assignment(students[0]), Some(first));
    }
}
